"""Unit tests for traffic metering and per-node load accounting."""

from repro.net.message import Message, MessageKind, TrafficCategory
from repro.net.traffic import TrafficMeter


def query(source="user:0", destination="node:1", payload=("q",)):
    return Message(MessageKind.QUERY_REQUEST, source, destination, payload)


def cache_insert(destination="node:1"):
    return Message(MessageKind.CACHE_INSERT, "user:0", destination, ("q", "d"))


class TestByteAccounting:
    def test_bytes_accumulate_by_category(self):
        meter = TrafficMeter()
        first = query()
        meter.record(first)
        meter.record(cache_insert())
        assert meter.normal_bytes == first.size_bytes
        assert meter.cache_bytes == cache_insert().size_bytes
        assert meter.total_bytes == meter.normal_bytes + meter.cache_bytes

    def test_message_counts(self):
        meter = TrafficMeter()
        meter.record(query())
        meter.record(query())
        meter.record(cache_insert())
        assert meter.messages_for(TrafficCategory.NORMAL) == 2
        assert meter.messages_for(TrafficCategory.CACHE) == 1

    def test_node_bytes_in_out(self):
        meter = TrafficMeter()
        message = query("user:0", "node:1")
        meter.record(message)
        assert meter.node_load("node:1").bytes_in == message.size_bytes
        assert meter.node_load("user:0").bytes_out == message.size_bytes

    def test_reset(self):
        meter = TrafficMeter()
        meter.record(query())
        meter.touch_node("node:1")
        meter.reset()
        assert meter.total_bytes == 0
        assert meter.query_counts_by_node() == {}


class TestQueryLoad:
    def test_touch_counts_once_per_query(self):
        meter = TrafficMeter()
        meter.touch_node("node:1")
        meter.touch_node("node:1")  # same query touches the node twice
        meter.touch_node("node:2")
        meter.end_query()
        counts = meter.query_counts_by_node()
        assert counts == {"node:1": 1, "node:2": 1}

    def test_counts_accumulate_across_queries(self):
        meter = TrafficMeter()
        for _ in range(3):
            meter.touch_node("node:1")
            meter.end_query()
        assert meter.query_counts_by_node() == {"node:1": 3}

    def test_sum_exceeds_query_count_with_fanout(self):
        """One query touching several nodes: totals sum above 100%."""
        meter = TrafficMeter()
        for node in ("node:1", "node:2", "node:3"):
            meter.touch_node(node)
        meter.end_query()
        assert sum(meter.query_counts_by_node().values()) == 3

    def test_end_query_without_touches(self):
        meter = TrafficMeter()
        meter.end_query()
        assert meter.query_counts_by_node() == {}

    def test_untouched_nodes_not_reported(self):
        meter = TrafficMeter()
        meter.record(query())  # records message but no touch
        assert meter.query_counts_by_node() == {}
