"""The ``timeout`` delivery reason and the legacy ``*_ticks`` aliases.

Real transports (repro.rpc) detect loss with a timer, so the typed
failure hierarchy gained a ``timeout`` reason.  These tests pin its
contract: transient exactly like ``dropped`` -- the engine retries the
same node, the service does *not* fail over to a replica -- so the
retry/failover split stays semantically identical between the simulated
and the real transport.  They also pin that the deprecated tick-based
latency spellings warn exactly once (the new transport is ms-only).
"""

import warnings

import pytest

from repro.core.engine import LookupEngine
from repro.core.fields import ARTICLE_SCHEMA, Record
from repro.core.query import FieldQuery
from repro.core.scheme import simple_scheme
from repro.core.service import IndexService
from repro.dht.idspace import hash_key
from repro.dht.ring import IdealRing
from repro.net.faults import FaultPlan
from repro.net.transport import DeliveryError, SimulatedTransport
from repro.sim.experiment import ExperimentConfig
from repro.storage.store import DHTStorage

RECORD = Record(
    ARTICLE_SCHEMA,
    {
        "author": "karger",
        "title": "chord",
        "conf": "sigcomm",
        "year": "2001",
        "size": "9",
    },
)


class TimingOutTransport(SimulatedTransport):
    """Delivers normally, except the first ``failures`` sends time out."""

    def __init__(self, failures):
        super().__init__()
        self.failures = failures
        self.timeouts_raised = 0

    def send(self, message):
        if self.failures > 0:
            self.failures -= 1
            self.timeouts_raised += 1
            raise DeliveryError(DeliveryError.TIMEOUT, message.destination)
        return super().send(message)


def build_stack(transport):
    ring = IdealRing(64)
    for index in range(8):
        ring.add_node(hash_key(f"node-{index}", 64))
    service = IndexService(
        ARTICLE_SCHEMA,
        simple_scheme(),
        DHTStorage(ring),
        DHTStorage(ring),
        transport,
    )
    service.insert_record(RECORD)
    return service


class TestTimeoutReason:
    def test_timeout_is_a_distinct_reason(self):
        error = DeliveryError(DeliveryError.TIMEOUT, "node:1")
        assert error.reason == "timeout"
        assert error.reason != DeliveryError.DROPPED

    def test_timeout_is_transient_like_dropped(self):
        # retry_elsewhere drives both the engine's retry-vs-abort choice
        # and the service's replica failover: a timed-out node may well
        # be alive (or the response was lost), so the caller must retry
        # the SAME node, exactly as for a dropped message.
        timeout = DeliveryError(DeliveryError.TIMEOUT, "node:1")
        dropped = DeliveryError(DeliveryError.DROPPED, "node:1")
        assert timeout.retry_elsewhere == dropped.retry_elsewhere == False  # noqa: E712

    def test_service_propagates_timeout_without_failover(self):
        transport = TimingOutTransport(failures=1)
        service = build_stack(transport)
        with pytest.raises(DeliveryError) as excinfo:
            service.query(FieldQuery.msd_of(RECORD), "user:t")
        assert excinfo.value.reason == DeliveryError.TIMEOUT

    def test_engine_retries_timeouts_and_succeeds(self):
        transport = TimingOutTransport(failures=2)
        service = build_stack(transport)
        engine = LookupEngine(service, user="user:t")
        trace = engine.search(FieldQuery.msd_of(RECORD), RECORD)
        assert trace.found
        assert not trace.gave_up
        assert transport.timeouts_raised == 2
        assert trace.retries >= 2

    def test_engine_treats_timeout_and_dropped_identically(self):
        """Same failure count, either reason: same search outcome."""
        outcomes = []
        for reason in (DeliveryError.TIMEOUT, DeliveryError.DROPPED):

            class OneReasonTransport(TimingOutTransport):
                def send(self, message, _reason=reason):
                    if self.failures > 0:
                        self.failures -= 1
                        self.timeouts_raised += 1
                        raise DeliveryError(_reason, message.destination)
                    return SimulatedTransport.send(self, message)

            transport = OneReasonTransport(failures=2)
            engine = LookupEngine(build_stack(transport), user="user:t")
            trace = engine.search(FieldQuery.msd_of(RECORD), RECORD)
            outcomes.append(
                (trace.found, trace.retries, trace.interactions)
            )
        assert outcomes[0] == outcomes[1]


class TestTickAliasesWarnOnce:
    def test_fault_plan_ticks_alias_warns_exactly_once(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            plan = FaultPlan(max_latency_ticks=5)
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "max_latency_ticks" in str(deprecations[0].message)
        assert plan.max_latency_ms == 5.0

    def test_experiment_config_ticks_alias_warns_exactly_once(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            config = ExperimentConfig(fault_latency_ticks=3)
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "fault_latency_ticks" in str(deprecations[0].message)
        assert config.effective_fault_latency_ms == 3.0

    def test_ms_spelling_warns_never(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            FaultPlan(max_latency_ms=5.0)
            ExperimentConfig(fault_latency_ms=3.0)
        assert not [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
