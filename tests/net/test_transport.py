"""Unit tests for the simulated transport."""

import pytest

from repro.net.message import Message, MessageKind
from repro.net.transport import SimulatedTransport, TransportError


@pytest.fixture
def transport():
    return SimulatedTransport()


class TestRegistration:
    def test_register_and_send(self, transport):
        received = []
        transport.register("node:1", lambda m: received.append(m))
        transport.send(Message(MessageKind.QUERY_REQUEST, "u", "node:1", ("q",)))
        assert len(received) == 1

    def test_duplicate_registration_rejected(self, transport):
        transport.register("node:1", lambda m: None)
        with pytest.raises(TransportError):
            transport.register("node:1", lambda m: None)

    def test_unregister(self, transport):
        transport.register("node:1", lambda m: None)
        transport.unregister("node:1")
        assert not transport.is_registered("node:1")
        with pytest.raises(TransportError):
            transport.unregister("node:1")

    def test_endpoint_names(self, transport):
        transport.register("a", lambda m: None)
        transport.register("b", lambda m: None)
        assert sorted(transport.endpoint_names) == ["a", "b"]


class TestDelivery:
    def test_unknown_destination(self, transport):
        with pytest.raises(TransportError):
            transport.send(Message(MessageKind.QUERY_REQUEST, "u", "nowhere"))

    def test_response_returned(self, transport):
        transport.register(
            "node:1",
            lambda m: m.reply(MessageKind.QUERY_RESPONSE, ("result",)),
        )
        response = transport.send(
            Message(MessageKind.QUERY_REQUEST, "u", "node:1", ("q",))
        )
        assert response is not None
        assert response.payload == ("result",)
        assert response.destination == "u"

    def test_request_and_response_both_metered(self, transport):
        transport.register(
            "node:1",
            lambda m: m.reply(MessageKind.QUERY_RESPONSE, ("abc",)),
        )
        request = Message(MessageKind.QUERY_REQUEST, "u", "node:1", ("q",))
        response = transport.send(request)
        assert (
            transport.meter.normal_bytes
            == request.size_bytes + response.size_bytes
        )

    def test_no_response_endpoint(self, transport):
        transport.register("sink", lambda m: None)
        request = Message(MessageKind.QUERY_REQUEST, "u", "sink", ("q",))
        assert transport.send(request) is None
        assert transport.meter.normal_bytes == request.size_bytes

    def test_shared_meter_injection(self):
        from repro.net.traffic import TrafficMeter

        meter = TrafficMeter()
        transport = SimulatedTransport(meter)
        assert transport.meter is meter
