"""Unit tests for the simulated transport."""

import pytest

from repro.net.message import Message, MessageKind
from repro.net.transport import (
    DeliveryError,
    SimulatedTransport,
    TransportError,
)


@pytest.fixture
def transport():
    return SimulatedTransport()


class TestRegistration:
    def test_register_and_send(self, transport):
        received = []
        transport.register("node:1", lambda m: received.append(m))
        transport.send(Message(MessageKind.QUERY_REQUEST, "u", "node:1", ("q",)))
        assert len(received) == 1

    def test_duplicate_registration_rejected(self, transport):
        transport.register("node:1", lambda m: None)
        with pytest.raises(TransportError):
            transport.register("node:1", lambda m: None)

    def test_unregister(self, transport):
        transport.register("node:1", lambda m: None)
        transport.unregister("node:1")
        assert not transport.is_registered("node:1")
        with pytest.raises(TransportError):
            transport.unregister("node:1")

    def test_endpoint_names(self, transport):
        transport.register("a", lambda m: None)
        transport.register("b", lambda m: None)
        assert sorted(transport.endpoint_names) == ["a", "b"]


class TestErrorTaxonomy:
    """Never-existed destinations are programming errors; departed ones
    are runtime conditions a robust caller retries or fails over."""

    def test_never_existed_is_hard_error(self, transport):
        with pytest.raises(TransportError) as excinfo:
            transport.send(Message(MessageKind.QUERY_REQUEST, "u", "node:x"))
        assert not isinstance(excinfo.value, DeliveryError)

    def test_unregister_then_send_is_delivery_error(self, transport):
        transport.register("node:1", lambda m: None)
        transport.unregister("node:1")
        with pytest.raises(DeliveryError) as excinfo:
            transport.send(Message(MessageKind.QUERY_REQUEST, "u", "node:1"))
        assert excinfo.value.reason == DeliveryError.UNREGISTERED
        assert excinfo.value.destination == "node:1"
        assert excinfo.value.retry_elsewhere

    def test_delivery_error_is_transport_error(self, transport):
        # Callers that only catch the broad class still see departures.
        transport.register("node:1", lambda m: None)
        transport.unregister("node:1")
        with pytest.raises(TransportError):
            transport.send(Message(MessageKind.QUERY_REQUEST, "u", "node:1"))

    def test_failed_send_to_departed_still_meters_request(self, transport):
        transport.register("node:1", lambda m: None)
        transport.unregister("node:1")
        message = Message(MessageKind.QUERY_REQUEST, "u", "node:1", ("q",))
        with pytest.raises(DeliveryError):
            transport.send(message)
        assert transport.meter.normal_bytes == message.size_bytes

    def test_reregistration_after_departure(self, transport):
        transport.register("node:1", lambda m: None)
        transport.unregister("node:1")
        transport.register("node:1", lambda m: None)  # rejoining is fine
        assert transport.is_registered("node:1")


class TestDelivery:
    def test_unknown_destination(self, transport):
        with pytest.raises(TransportError):
            transport.send(Message(MessageKind.QUERY_REQUEST, "u", "nowhere"))

    def test_response_returned(self, transport):
        transport.register(
            "node:1",
            lambda m: m.reply(MessageKind.QUERY_RESPONSE, ("result",)),
        )
        response = transport.send(
            Message(MessageKind.QUERY_REQUEST, "u", "node:1", ("q",))
        )
        assert response is not None
        assert response.payload == ("result",)
        assert response.destination == "u"

    def test_request_and_response_both_metered(self, transport):
        transport.register(
            "node:1",
            lambda m: m.reply(MessageKind.QUERY_RESPONSE, ("abc",)),
        )
        request = Message(MessageKind.QUERY_REQUEST, "u", "node:1", ("q",))
        response = transport.send(request)
        assert (
            transport.meter.normal_bytes
            == request.size_bytes + response.size_bytes
        )

    def test_no_response_endpoint(self, transport):
        transport.register("sink", lambda m: None)
        request = Message(MessageKind.QUERY_REQUEST, "u", "sink", ("q",))
        assert transport.send(request) is None
        assert transport.meter.normal_bytes == request.size_bytes

    def test_shared_meter_injection(self):
        from repro.net.traffic import TrafficMeter

        meter = TrafficMeter()
        transport = SimulatedTransport(meter)
        assert transport.meter is meter
