"""Unit tests for the simulated transport."""

import pytest

from repro.net.message import Message, MessageKind
from repro.net.transport import (
    DeliveryError,
    SimulatedTransport,
    TransportError,
)


@pytest.fixture
def transport():
    return SimulatedTransport()


class TestRegistration:
    def test_register_and_send(self, transport):
        received = []
        transport.register("node:1", lambda m: received.append(m))
        transport.send(Message(MessageKind.QUERY_REQUEST, "u", "node:1", ("q",)))
        assert len(received) == 1

    def test_duplicate_registration_rejected(self, transport):
        transport.register("node:1", lambda m: None)
        with pytest.raises(TransportError):
            transport.register("node:1", lambda m: None)

    def test_unregister(self, transport):
        transport.register("node:1", lambda m: None)
        transport.unregister("node:1")
        assert not transport.is_registered("node:1")
        with pytest.raises(TransportError):
            transport.unregister("node:1")

    def test_endpoint_names(self, transport):
        transport.register("a", lambda m: None)
        transport.register("b", lambda m: None)
        assert sorted(transport.endpoint_names) == ["a", "b"]


class TestErrorTaxonomy:
    """Never-existed destinations are programming errors; departed ones
    are runtime conditions a robust caller retries or fails over."""

    def test_never_existed_is_hard_error(self, transport):
        with pytest.raises(TransportError) as excinfo:
            transport.send(Message(MessageKind.QUERY_REQUEST, "u", "node:x"))
        assert not isinstance(excinfo.value, DeliveryError)

    def test_unregister_then_send_is_delivery_error(self, transport):
        transport.register("node:1", lambda m: None)
        transport.unregister("node:1")
        with pytest.raises(DeliveryError) as excinfo:
            transport.send(Message(MessageKind.QUERY_REQUEST, "u", "node:1"))
        assert excinfo.value.reason == DeliveryError.UNREGISTERED
        assert excinfo.value.destination == "node:1"
        assert excinfo.value.retry_elsewhere

    def test_delivery_error_is_transport_error(self, transport):
        # Callers that only catch the broad class still see departures.
        transport.register("node:1", lambda m: None)
        transport.unregister("node:1")
        with pytest.raises(TransportError):
            transport.send(Message(MessageKind.QUERY_REQUEST, "u", "node:1"))

    def test_failed_send_to_departed_still_meters_request(self, transport):
        transport.register("node:1", lambda m: None)
        transport.unregister("node:1")
        message = Message(MessageKind.QUERY_REQUEST, "u", "node:1", ("q",))
        with pytest.raises(DeliveryError):
            transport.send(message)
        assert transport.meter.normal_bytes == message.size_bytes

    def test_reregistration_after_departure(self, transport):
        transport.register("node:1", lambda m: None)
        transport.unregister("node:1")
        transport.register("node:1", lambda m: None)  # rejoining is fine
        assert transport.is_registered("node:1")


class TestDelivery:
    def test_unknown_destination(self, transport):
        with pytest.raises(TransportError):
            transport.send(Message(MessageKind.QUERY_REQUEST, "u", "nowhere"))

    def test_response_returned(self, transport):
        transport.register(
            "node:1",
            lambda m: m.reply(MessageKind.QUERY_RESPONSE, ("result",)),
        )
        response = transport.send(
            Message(MessageKind.QUERY_REQUEST, "u", "node:1", ("q",))
        )
        assert response is not None
        assert response.payload == ("result",)
        assert response.destination == "u"

    def test_request_and_response_both_metered(self, transport):
        transport.register(
            "node:1",
            lambda m: m.reply(MessageKind.QUERY_RESPONSE, ("abc",)),
        )
        request = Message(MessageKind.QUERY_REQUEST, "u", "node:1", ("q",))
        response = transport.send(request)
        assert (
            transport.meter.normal_bytes
            == request.size_bytes + response.size_bytes
        )

    def test_no_response_endpoint(self, transport):
        transport.register("sink", lambda m: None)
        request = Message(MessageKind.QUERY_REQUEST, "u", "sink", ("q",))
        assert transport.send(request) is None
        assert transport.meter.normal_bytes == request.size_bytes

    def test_shared_meter_injection(self):
        from repro.net.traffic import TrafficMeter

        meter = TrafficMeter()
        transport = SimulatedTransport(meter)
        assert transport.meter is meter


class TestAsyncDelivery:
    """Kernel-scheduled sends: deliveries take virtual time."""

    @pytest.fixture
    def clocked(self, transport):
        from repro.net.latency import ConstantLatency
        from repro.sim.kernel import EventKernel

        kernel = EventKernel()
        transport.bind_clock(kernel, ConstantLatency(10.0))
        return transport, kernel

    def echo(self, message):
        return message.reply(MessageKind.QUERY_RESPONSE, ("ok",))

    def request(self, destination="node:1", route_hops=1):
        return Message(
            MessageKind.QUERY_REQUEST,
            "u",
            destination,
            ("q",),
            route_hops=route_hops,
        )

    def test_unbound_transport_rejects_async(self, transport):
        transport.register("node:1", self.echo)
        with pytest.raises(TransportError):
            transport.send_async(self.request(), lambda r: None, lambda e: None)

    def test_response_arrives_after_both_legs(self, clocked):
        transport, kernel = clocked
        transport.register("node:1", self.echo)
        arrivals = []
        transport.send_async(
            self.request(),
            lambda response: arrivals.append((kernel.now, response.payload)),
            lambda error: arrivals.append(("error", error)),
        )
        assert arrivals == []  # nothing is delivered synchronously
        kernel.run()
        # One 10 ms request leg plus one 10 ms response leg.
        assert arrivals == [(20.0, ("ok",))]

    def test_route_hops_multiply_the_request_leg(self, clocked):
        transport, kernel = clocked
        transport.register("node:1", self.echo)
        arrivals = []
        transport.send_async(
            self.request(route_hops=4),
            lambda response: arrivals.append(kernel.now),
            lambda error: None,
        )
        kernel.run()
        # 4 overlay hops out (40 ms), one direct response leg back.
        assert arrivals == [50.0]

    def test_no_response_handler_completes_with_none(self, clocked):
        transport, kernel = clocked
        transport.register("sink", lambda m: None)
        arrivals = []
        transport.send_async(
            self.request("sink"),
            lambda response: arrivals.append((kernel.now, response)),
            lambda error: None,
        )
        kernel.run()
        assert arrivals == [(10.0, None)]

    def test_departure_during_flight_is_delivery_error(self, clocked):
        transport, kernel = clocked
        transport.register("node:1", self.echo)
        errors = []
        transport.send_async(
            self.request(),
            lambda response: errors.append("delivered"),
            lambda error: errors.append(error.reason),
        )
        # The endpoint leaves while the request is in flight; arrival
        # resolves the handler and finds it gone.
        transport.unregister("node:1")
        kernel.run()
        assert errors == [DeliveryError.UNREGISTERED]

    def test_never_existed_destination_still_hard_error(self, clocked):
        transport, _ = clocked
        with pytest.raises(TransportError):
            transport.send_async(
                self.request("node:never"), lambda r: None, lambda e: None
            )

    def test_async_meters_like_sync(self, clocked):
        transport, kernel = clocked
        transport.register("node:1", self.echo)
        request = self.request()
        sizes = []
        transport.send_async(
            request,
            lambda response: sizes.append(response.size_bytes),
            lambda error: None,
        )
        kernel.run()
        assert transport.meter.normal_bytes == request.size_bytes + sizes[0]
