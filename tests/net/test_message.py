"""Unit tests for the message model and size accounting."""

from repro.net.message import (
    HEADER_BYTES,
    PER_ENTRY_BYTES,
    Message,
    MessageKind,
    TrafficCategory,
)


class TestSizes:
    def test_empty_payload_is_header_only(self):
        message = Message(MessageKind.QUERY_REQUEST, "a", "b")
        assert message.size_bytes == HEADER_BYTES

    def test_payload_bytes_counted(self):
        message = Message(
            MessageKind.QUERY_RESPONSE, "a", "b", payload=("abc", "de")
        )
        assert message.size_bytes == HEADER_BYTES + 3 + 2 + 2 * PER_ENTRY_BYTES

    def test_utf8_length_used(self):
        message = Message(MessageKind.QUERY_REQUEST, "a", "b", payload=("é",))
        assert message.size_bytes == HEADER_BYTES + 2 + PER_ENTRY_BYTES

    def test_explicit_size_overrides(self):
        message = Message(
            MessageKind.FILE_RESPONSE, "a", "b", payload=("x",), explicit_size=250_000
        )
        assert message.size_bytes == 250_000

    def test_size_grows_with_result_set(self):
        small = Message(MessageKind.QUERY_RESPONSE, "a", "b", payload=("x",))
        large = Message(
            MessageKind.QUERY_RESPONSE, "a", "b", payload=tuple("x" * 5 for _ in range(9))
        )
        assert large.size_bytes > small.size_bytes


class TestCategories:
    def test_cache_insert_is_cache_traffic(self):
        message = Message(MessageKind.CACHE_INSERT, "a", "b")
        assert message.category is TrafficCategory.CACHE

    def test_query_is_normal_traffic(self):
        for kind in (
            MessageKind.QUERY_REQUEST,
            MessageKind.QUERY_RESPONSE,
            MessageKind.FILE_REQUEST,
            MessageKind.FILE_RESPONSE,
        ):
            assert Message(kind, "a", "b").category is TrafficCategory.NORMAL

    def test_inserts_are_maintenance(self):
        for kind in (MessageKind.INDEX_INSERT, MessageKind.INDEX_REMOVE,
                     MessageKind.CONTROL):
            assert Message(kind, "a", "b").category is TrafficCategory.MAINTENANCE

    def test_explicit_category_kept(self):
        message = Message(
            MessageKind.QUERY_REQUEST, "a", "b", category=TrafficCategory.CACHE
        )
        assert message.category is TrafficCategory.CACHE


class TestReply:
    def test_reply_reverses_direction(self):
        request = Message(MessageKind.QUERY_REQUEST, "user:1", "node:9")
        response = request.reply(MessageKind.QUERY_RESPONSE, ("entry",))
        assert response.source == "node:9"
        assert response.destination == "user:1"
        assert response.payload == ("entry",)

    def test_reply_with_explicit_size(self):
        request = Message(MessageKind.FILE_REQUEST, "u", "n")
        response = request.reply(MessageKind.FILE_RESPONSE, explicit_size=99)
        assert response.size_bytes == 99
