"""Unit tests for latency models."""

import pytest

from repro.net.latency import ConstantLatency, SeededUniformLatency


class TestConstantLatency:
    def test_fixed_value(self):
        model = ConstantLatency(25.0)
        assert model.sample("a", "b") == 25.0
        assert model.sample("x", "y") == 25.0

    def test_default(self):
        assert ConstantLatency().sample("a", "b") == 50.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ConstantLatency(-1)


class TestSeededUniformLatency:
    def test_within_range(self):
        model = SeededUniformLatency(low=10, high=100, seed=1)
        for pair in (("a", "b"), ("c", "d"), ("node:1", "node:2")):
            value = model.sample(*pair)
            assert 10 <= value <= 100

    def test_stable_per_pair(self):
        model = SeededUniformLatency(seed=2)
        first = model.sample("a", "b")
        assert model.sample("a", "b") == first

    def test_self_latency_zero(self):
        assert SeededUniformLatency().sample("a", "a") == 0.0

    def test_pairs_differ(self):
        model = SeededUniformLatency(low=0, high=1000, seed=3)
        samples = {model.sample("a", f"n{i}") for i in range(20)}
        assert len(samples) > 10

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            SeededUniformLatency(low=5, high=1)
        with pytest.raises(ValueError):
            SeededUniformLatency(low=-1, high=1)
