"""Unit tests for latency models."""

import pytest

from repro.net.latency import (
    ConstantLatency,
    SeededUniformLatency,
    ZeroLatency,
    parse_latency_model,
)


class TestConstantLatency:
    def test_fixed_value(self):
        model = ConstantLatency(25.0)
        assert model.sample("a", "b") == 25.0
        assert model.sample("x", "y") == 25.0

    def test_default(self):
        assert ConstantLatency().sample("a", "b") == 50.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ConstantLatency(-1)


class TestSeededUniformLatency:
    def test_within_range(self):
        model = SeededUniformLatency(low=10, high=100, seed=1)
        for pair in (("a", "b"), ("c", "d"), ("node:1", "node:2")):
            value = model.sample(*pair)
            assert 10 <= value <= 100

    def test_stable_per_pair(self):
        model = SeededUniformLatency(seed=2)
        first = model.sample("a", "b")
        assert model.sample("a", "b") == first

    def test_self_latency_zero(self):
        assert SeededUniformLatency().sample("a", "a") == 0.0

    def test_pairs_differ(self):
        model = SeededUniformLatency(low=0, high=1000, seed=3)
        samples = {model.sample("a", f"n{i}") for i in range(20)}
        assert len(samples) > 10

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            SeededUniformLatency(low=5, high=1)
        with pytest.raises(ValueError):
            SeededUniformLatency(low=-1, high=1)

    def test_stable_across_instances(self):
        # The per-pair draw must not depend on interpreter state (e.g.
        # salted string hashing): two models with one seed agree.
        first = SeededUniformLatency(seed=9).sample("node:1", "node:2")
        second = SeededUniformLatency(seed=9).sample("node:1", "node:2")
        assert first == second

    def test_direction_matters(self):
        model = SeededUniformLatency(low=0, high=1000, seed=4)
        assert model.sample("a", "b") != model.sample("b", "a")


class TestZeroLatency:
    def test_always_zero(self):
        model = ZeroLatency()
        assert model.sample("a", "b") == 0.0
        assert model.sample("x", "x") == 0.0


class TestParseLatencyModel:
    def test_zero(self):
        assert isinstance(parse_latency_model("zero"), ZeroLatency)

    def test_constant_default_and_explicit(self):
        assert parse_latency_model("constant").sample("a", "b") == 50.0
        assert parse_latency_model("constant:25").sample("a", "b") == 25.0
        assert parse_latency_model("constant:2.5").sample("a", "b") == 2.5

    def test_uniform_default_and_explicit(self):
        default = parse_latency_model("uniform", seed=1)
        assert isinstance(default, SeededUniformLatency)
        assert 10.0 <= default.sample("a", "b") <= 100.0
        custom = parse_latency_model("uniform:5:20", seed=1)
        assert 5.0 <= custom.sample("a", "b") <= 20.0

    def test_seed_forwarded(self):
        one = parse_latency_model("uniform:0:1000", seed=1)
        two = parse_latency_model("uniform:0:1000", seed=2)
        assert one.sample("a", "b") != two.sample("a", "b")

    @pytest.mark.parametrize(
        "spec",
        ["bogus", "constant:x", "constant:-5", "uniform:9", "uniform:9:1", ""],
    )
    def test_invalid_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            parse_latency_model(spec)
