"""Unit tests for Byzantine fault injection (repro.net.adversary)."""

import random

import pytest

from repro import perf
from repro.core import service
from repro.net.adversary import (
    _SHORTCUT_MARK,
    NO_ADVERSARY,
    ROLE_LIAR,
    ROLE_POISONER,
    ROLE_SYBIL,
    AdversarialTransport,
    AdversaryPlan,
)
from repro.net.faults import NO_FAULTS, FaultyTransport
from repro.net.message import Message, MessageKind
from repro.net.transport import DeliveryError, SimulatedTransport


def echo_endpoint(received):
    def handle(message):
        received.append(message)
        if message.kind is MessageKind.FILE_REQUEST:
            return message.reply(MessageKind.FILE_RESPONSE, ("honest-file",))
        return message.reply(MessageKind.QUERY_RESPONSE, ("honest-entry",))

    return handle


def query(destination="node:1"):
    return Message(MessageKind.QUERY_REQUEST, "user:t", destination, ("q",))


def fetch(destination="node:1", key="k1"):
    return Message(MessageKind.FILE_REQUEST, "user:t", destination, (key,))


def insert(destination="node:1"):
    return Message(MessageKind.INDEX_INSERT, "user:t", destination, ("a", "b"))


@pytest.fixture
def wired():
    """Factory: (transport, received) over N echo endpoints."""

    def build(adversary=NO_ADVERSARY, rng=None, verify=False, nodes=3):
        inner = SimulatedTransport()
        received = []
        for i in range(1, nodes + 1):
            inner.register(f"node:{i}", echo_endpoint(received))
        transport = AdversarialTransport(
            inner, NO_FAULTS, adversary=adversary, rng=rng, verify=verify
        )
        return transport, received

    return build


class TestPlan:
    def test_zero_plan_is_zero(self):
        assert NO_ADVERSARY.is_zero
        assert not AdversaryPlan(poisoners=1).is_zero
        assert not AdversaryPlan(eclipse_victims=1).is_zero

    def test_counts_validated(self):
        with pytest.raises(ValueError):
            AdversaryPlan(poisoners=-1)
        with pytest.raises(ValueError):
            AdversaryPlan(eclipse_drop=1.5)


class TestShortcutMarkPin:
    def test_matches_the_service_constant(self):
        """The net layer hardcodes the mark to avoid importing core;
        this pin breaks if the service ever changes it."""
        assert _SHORTCUT_MARK == service.SHORTCUT_MARK


class TestZeroPlanTransparency:
    def test_no_rng_draws(self, wired):
        rng = random.Random(5)
        transport, _ = wired(NO_ADVERSARY, rng=rng)
        state = rng.getstate()
        for _ in range(10):
            transport.send(query())
        assert rng.getstate() == state

    def test_same_results_as_faulty_transport(self, wired):
        transport, received = wired(NO_ADVERSARY)
        bare_inner = SimulatedTransport()
        bare_received = []
        bare_inner.register("node:1", echo_endpoint(bare_received))
        bare = FaultyTransport(bare_inner, NO_FAULTS)
        for _ in range(10):
            assert transport.send(query()).payload == bare.send(
                query()
            ).payload
        assert transport.meter.normal_bytes == bare.meter.normal_bytes


class TestRecruitment:
    def test_roles_are_disjoint_and_complete(self, wired):
        plan = AdversaryPlan(poisoners=2, liars=1, eclipse_victims=1)
        transport, _ = wired(plan, rng=random.Random(3), nodes=6)
        names = [f"node:{i}" for i in range(1, 7)]
        transport.recruit(names)
        assert len(transport.roles) == 3
        assert len(transport.eclipsed) == 1
        assert not transport.eclipsed & set(transport.roles)
        assert sorted(transport.roles.values()) == [
            ROLE_LIAR, ROLE_POISONER, ROLE_POISONER,
        ]

    def test_recruitment_is_deterministic(self, wired):
        plan = AdversaryPlan(poisoners=2, liars=2, eclipse_victims=1)
        names = [f"node:{i}" for i in range(1, 9)]
        populations = []
        for _ in range(2):
            transport, _ = wired(plan, rng=random.Random(77), nodes=8)
            transport.recruit(names)
            populations.append((dict(transport.roles), set(transport.eclipsed)))
        assert populations[0] == populations[1]

    def test_overdraft_rejected(self, wired):
        plan = AdversaryPlan(poisoners=5)
        transport, _ = wired(plan, rng=random.Random(1), nodes=3)
        with pytest.raises(ValueError):
            transport.recruit(["node:1", "node:2", "node:3"])

    def test_unknown_role_rejected(self, wired):
        transport, _ = wired()
        with pytest.raises(ValueError):
            transport.mark("node:1", "trickster")


class TestForgery:
    def test_poisoner_replaces_query_answers(self, wired):
        transport, received = wired()
        transport.mark("node:1", ROLE_POISONER)
        before = perf.counters.sec_poisoned_answers
        response = transport.send(query())
        assert all(entry.startswith("poison=") for entry in response.payload)
        assert perf.counters.sec_poisoned_answers == before + 1
        assert len(received) == 1  # the honest handler still ran

    def test_liar_forges_referrals(self, wired):
        transport, _ = wired()
        transport.mark("node:1", ROLE_LIAR)
        before = perf.counters.sec_forged_referrals
        response = transport.send(query())
        assert response.payload[0].startswith(_SHORTCUT_MARK + "forged:")
        assert perf.counters.sec_forged_referrals == before + 1

    def test_sybil_withholds(self, wired):
        transport, _ = wired()
        transport.mark("node:1", ROLE_SYBIL)
        assert transport.send(query()).payload == ()

    def test_any_role_poisons_file_fetches(self, wired):
        transport, _ = wired()
        transport.mark("node:1", ROLE_LIAR)
        before = perf.counters.sec_poisoned_results
        response = transport.send(fetch(key="desc-9"))
        # The forged fetch echoes the requested key: found=True with
        # attacker-controlled bytes.
        assert response.payload == ("desc-9",)
        assert perf.counters.sec_poisoned_results == before + 1

    def test_maintenance_traffic_passes_uncorrupted(self, wired):
        transport, received = wired()
        transport.mark("node:1", ROLE_POISONER)
        response = transport.send(insert())
        assert response is None or "poison" not in "".join(response.payload)
        assert len(received) == 1

    def test_honest_nodes_untouched(self, wired):
        transport, _ = wired()
        transport.mark("node:1", ROLE_POISONER)
        assert transport.send(query("node:2")).payload == ("honest-entry",)


class TestVerification:
    def test_forgery_raises_verify_failed(self, wired):
        transport, _ = wired(verify=True)
        transport.mark("node:1", ROLE_POISONER)
        before = perf.counters.sec_verify_failures
        with pytest.raises(DeliveryError) as excinfo:
            transport.send(query())
        assert excinfo.value.reason == DeliveryError.VERIFY_FAILED
        assert excinfo.value.retry_elsewhere
        assert perf.counters.sec_verify_failures == before + 1

    def test_verification_off_delivers_the_forgery(self, wired):
        transport, _ = wired(verify=False)
        transport.mark("node:1", ROLE_POISONER)
        assert transport.send(query()).payload[0].startswith("poison=")

    def test_liar_referrals_caught(self, wired):
        transport, _ = wired(verify=True)
        transport.mark("node:1", ROLE_LIAR)
        with pytest.raises(DeliveryError) as excinfo:
            transport.send(query())
        assert excinfo.value.reason == DeliveryError.VERIFY_FAILED

    def test_file_forgeries_caught(self, wired):
        transport, _ = wired(verify=True)
        transport.mark("node:1", ROLE_SYBIL)
        with pytest.raises(DeliveryError) as excinfo:
            transport.send(fetch(key="desc-3"))
        assert excinfo.value.reason == DeliveryError.VERIFY_FAILED

    def test_sybil_withholding_passes_verification(self, wired):
        """No signature can prove a node *has* an entry it denies:
        verification must deliver the empty answer unmolested.  The
        defence against withholding lives a layer up (replica second
        opinions, repro.core.service)."""
        transport, _ = wired(verify=True)
        transport.mark("node:1", ROLE_SYBIL)
        before = perf.counters.sec_verify_failures
        assert transport.send(query()).payload == ()
        assert perf.counters.sec_verify_failures == before


class TestEclipse:
    def test_lookups_to_victims_drop(self, wired):
        transport, received = wired()
        transport.eclipse("node:1")
        before = perf.counters.sec_eclipse_drops
        with pytest.raises(DeliveryError) as excinfo:
            transport.send(query())
        # Indistinguishable from ordinary loss to the caller.
        assert excinfo.value.reason == DeliveryError.DROPPED
        assert perf.counters.sec_eclipse_drops == before + 1
        assert received == []  # the victim never saw the request

    def test_maintenance_passes_the_eclipse(self, wired):
        transport, received = wired()
        transport.eclipse("node:1")
        transport.send(insert())
        assert len(received) == 1

    def test_partial_eclipse_draws_from_chaos_rng(self, wired):
        plan = AdversaryPlan(eclipse_victims=1, eclipse_drop=0.5)
        outcomes = []
        for _ in range(2):
            transport, _ = wired(plan, rng=random.Random(9))
            transport.eclipse("node:1")
            delivered = 0
            for _ in range(50):
                try:
                    transport.send(query())
                    delivered += 1
                except DeliveryError:
                    pass
            outcomes.append(delivered)
        assert outcomes[0] == outcomes[1]
        assert 0 < outcomes[0] < 50
