"""Unit tests for deterministic fault injection (repro.net.faults)."""

import random

import pytest

from repro import perf
from repro.net.faults import (
    MS_PER_TICK,
    NO_FAULTS,
    CrashEvent,
    FaultPlan,
    FaultyTransport,
)
from repro.net.message import Message, MessageKind
from repro.net.transport import (
    DeliveryError,
    SimulatedTransport,
    TransportError,
)


def echo_endpoint(received):
    def handle(message):
        received.append(message)
        return message.reply(MessageKind.QUERY_RESPONSE, ("ok",))

    return handle


def request(destination="node:1"):
    return Message(MessageKind.QUERY_REQUEST, "user:t", destination, ("q",))


@pytest.fixture
def wired():
    """(faulty transport factory, received list) over one echo endpoint."""

    def build(plan, rng=None):
        inner = SimulatedTransport()
        received = []
        inner.register("node:1", echo_endpoint(received))
        return FaultyTransport(inner, plan, rng=rng), received

    return build


class TestFaultPlan:
    def test_zero_plan_is_zero(self):
        assert NO_FAULTS.is_zero
        assert FaultPlan(drop_probability=0.1).is_zero is False
        assert FaultPlan(crash_schedule=(CrashEvent(0, 5),)).is_zero is False

    def test_probabilities_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(drop_probability=1.5)
        with pytest.raises(ValueError):
            FaultPlan(duplicate_probability=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(max_latency_ms=-1.0)
        with pytest.raises(ValueError):
            CrashEvent(at_send=-1, downtime_sends=3)


class TestZeroPlanTransparency:
    def test_same_metering_as_bare_transport(self, wired):
        faulty, received = wired(NO_FAULTS)
        bare = SimulatedTransport()
        bare_received = []
        bare.register("node:1", echo_endpoint(bare_received))
        for _ in range(20):
            faulty.send(request())
            bare.send(request())
        assert faulty.meter.normal_bytes == bare.meter.normal_bytes
        assert len(received) == len(bare_received) == 20

    def test_no_rng_draws(self, wired):
        rng = random.Random(5)
        faulty, _ = wired(NO_FAULTS, rng=rng)
        state = rng.getstate()
        for _ in range(50):
            faulty.send(request())
        assert rng.getstate() == state

    def test_no_fault_counters(self, wired):
        faulty, _ = wired(NO_FAULTS)
        before = perf.snapshot()
        for _ in range(20):
            faulty.send(request())
        delta = perf.delta(before, perf.snapshot())
        assert delta["fault_drops"] == 0
        assert delta["fault_duplicates"] == 0
        assert delta["fault_latency_ms"] == 0
        assert delta["fault_crashed_sends"] == 0


class TestDrops:
    def test_drop_raises_delivery_error(self, wired):
        faulty, received = wired(FaultPlan(drop_probability=1.0, seed=3))
        with pytest.raises(DeliveryError) as excinfo:
            faulty.send(request())
        assert excinfo.value.reason == DeliveryError.DROPPED
        assert not excinfo.value.retry_elsewhere
        assert received == []  # the handler never ran

    def test_dropped_request_still_meters_request_bytes(self, wired):
        faulty, _ = wired(FaultPlan(drop_probability=1.0, seed=3))
        message = request()
        with pytest.raises(DeliveryError):
            faulty.send(message)
        assert faulty.meter.normal_bytes == message.size_bytes

    def test_drop_rate_roughly_respected(self, wired):
        faulty, received = wired(FaultPlan(drop_probability=0.3, seed=9))
        outcomes = []
        for _ in range(600):
            try:
                faulty.send(request())
                outcomes.append(True)
            except DeliveryError:
                outcomes.append(False)
        drop_share = outcomes.count(False) / len(outcomes)
        # Request and response each face the drop draw, so the
        # per-exchange failure rate is 1 - 0.7 * 0.7 = 0.51.
        assert 0.4 < drop_share < 0.62

    def test_deterministic_in_seed(self, wired):
        def run():
            faulty, _ = wired(FaultPlan(drop_probability=0.25, seed=21))
            outcomes = []
            for _ in range(200):
                try:
                    faulty.send(request())
                    outcomes.append("ok")
                except DeliveryError:
                    outcomes.append("drop")
            return outcomes

        assert run() == run()


class TestDuplicates:
    def test_duplicate_delivers_twice_and_meters_both(self, wired):
        faulty, received = wired(FaultPlan(duplicate_probability=1.0, seed=3))
        message = request()
        response = faulty.send(message)
        assert response is not None
        assert len(received) == 2
        # Two full request+response exchanges hit the wire.
        assert faulty.meter.normal_bytes == 2 * (
            message.size_bytes + response.size_bytes
        )


class TestLatency:
    def test_latency_ms_accumulates(self, wired):
        faulty, _ = wired(FaultPlan(max_latency_ms=5.0, seed=3))
        for _ in range(50):
            faulty.send(request())
        assert 0 < faulty.latency_ms <= 250.0

    def test_deprecated_ticks_alias_converts(self):
        with pytest.warns(DeprecationWarning):
            plan = FaultPlan(max_latency_ticks=7)
        # The pinned conversion rate: one legacy tick is one virtual
        # millisecond on the shared clock.
        assert MS_PER_TICK == 1.0
        assert plan.max_latency_ms == 7 * MS_PER_TICK

    def test_ticks_and_ms_together_rejected(self):
        with pytest.raises(ValueError), pytest.warns(DeprecationWarning):
            FaultPlan(max_latency_ms=3.0, max_latency_ticks=4)


class TestCrashes:
    def test_crashed_endpoint_refuses_delivery(self, wired):
        faulty, received = wired(NO_FAULTS)
        faulty.fail_node("node:1")
        message = request()
        with pytest.raises(DeliveryError) as excinfo:
            faulty.send(message)
        assert excinfo.value.reason == DeliveryError.CRASHED
        assert excinfo.value.retry_elsewhere
        assert received == []
        assert faulty.meter.normal_bytes == message.size_bytes

    def test_recover_restores_delivery(self, wired):
        faulty, received = wired(NO_FAULTS)
        faulty.fail_node("node:1")
        faulty.recover_node("node:1")
        assert faulty.send(request()) is not None
        assert len(received) == 1

    def test_scheduled_crash_and_rejoin(self, wired):
        plan = FaultPlan(
            crash_schedule=(CrashEvent(at_send=2, downtime_sends=3),)
        )
        faulty, _ = wired(plan)
        outcomes = []
        for _ in range(8):
            try:
                faulty.send(request())
                outcomes.append("ok")
            except DeliveryError:
                outcomes.append("down")
        assert outcomes == ["ok", "ok", "down", "down", "down", "ok", "ok", "ok"]

    def test_explicit_victim(self):
        inner = SimulatedTransport()
        inner.register("node:1", lambda m: None)
        inner.register("node:2", lambda m: None)
        plan = FaultPlan(
            crash_schedule=(
                CrashEvent(at_send=0, downtime_sends=10, victim="node:2"),
            )
        )
        faulty = FaultyTransport(inner, plan)
        faulty.send(request("node:1"))  # fires the schedule
        assert faulty.is_crashed("node:2")
        assert not faulty.is_crashed("node:1")

    def test_unregister_clears_crash_state(self, wired):
        faulty, _ = wired(NO_FAULTS)
        faulty.fail_node("node:1")
        faulty.unregister("node:1")
        assert not faulty.is_crashed("node:1")


class TestAsyncFaults:
    """Kernel-scheduled sends through the fault layer."""

    def clocked(self, wired, plan, rng=None):
        from repro.net.latency import ConstantLatency
        from repro.sim.kernel import EventKernel

        faulty, received = wired(plan, rng=rng)
        kernel = EventKernel()
        faulty.bind_clock(kernel, ConstantLatency(10.0))
        return faulty, received, kernel

    def test_zero_plan_delivers_on_schedule(self, wired):
        faulty, received, kernel = self.clocked(wired, NO_FAULTS)
        arrivals = []
        faulty.send_async(
            request(),
            lambda response: arrivals.append(kernel.now),
            lambda error: arrivals.append(error),
        )
        kernel.run()
        assert arrivals == [20.0]
        assert len(received) == 1

    def test_crashed_node_fails_after_request_leg(self, wired):
        faulty, received, kernel = self.clocked(wired, NO_FAULTS)
        faulty.fail_node("node:1")
        outcomes = []
        faulty.send_async(
            request(),
            lambda response: outcomes.append("delivered"),
            lambda error: outcomes.append((kernel.now, error.reason)),
        )
        kernel.run()
        # The failure surfaces only after the request leg has elapsed
        # (an idealized failure-detector timeout), never instantly.
        assert outcomes == [(10.0, DeliveryError.CRASHED)]
        assert received == []

    def test_dropped_request_fails_async(self, wired):
        faulty, received, kernel = self.clocked(
            wired, FaultPlan(drop_probability=1.0, seed=3)
        )
        outcomes = []
        faulty.send_async(
            request(),
            lambda response: outcomes.append("delivered"),
            lambda error: outcomes.append(error.reason),
        )
        kernel.run()
        assert outcomes == [DeliveryError.DROPPED]
        assert received == []

    def test_duplicate_delivers_twice_async(self, wired):
        faulty, received, kernel = self.clocked(
            wired, FaultPlan(duplicate_probability=1.0, seed=3)
        )
        responses = []
        faulty.send_async(
            request(),
            lambda response: responses.append(response),
            lambda error: responses.append(error),
        )
        kernel.run()
        # The caller sees one response; the endpoint handled two copies.
        assert len(responses) == 1
        assert len(received) == 2

    def test_injected_latency_delays_arrival(self, wired):
        faulty, received, kernel = self.clocked(
            wired, FaultPlan(max_latency_ms=500.0, seed=3)
        )
        arrivals = []
        faulty.send_async(
            request(),
            lambda response: arrivals.append(kernel.now),
            lambda error: None,
        )
        kernel.run()
        assert len(arrivals) == 1
        assert arrivals[0] > 20.0  # both legs plus the injected delay
        assert faulty.latency_ms > 0

    def test_async_faults_deterministic_in_seed(self, wired):
        def drive():
            faulty, _, kernel = self.clocked(
                wired, FaultPlan(drop_probability=0.3, seed=11),
                rng=random.Random(11),
            )
            outcomes = []
            for _ in range(100):
                faulty.send_async(
                    request(),
                    lambda response: outcomes.append("ok"),
                    lambda error: outcomes.append("drop"),
                )
            kernel.run()
            return outcomes

        assert drive() == drive()


class TestEndpointProtocol:
    def test_delegation(self, wired):
        faulty, _ = wired(NO_FAULTS)
        assert faulty.is_registered("node:1")
        assert faulty.endpoint_names == ["node:1"]
        faulty.register("node:2", lambda m: None)
        assert faulty.inner.is_registered("node:2")
        faulty.unregister("node:2")
        assert not faulty.is_registered("node:2")

    def test_never_registered_still_loud(self, wired):
        faulty, _ = wired(NO_FAULTS)
        with pytest.raises(TransportError) as excinfo:
            faulty.send(request("node:never"))
        assert not isinstance(excinfo.value, DeliveryError)
