"""Unit tests for the capacity model: knee detection and reporting."""

import json

from repro.loadgen.report import (
    StageSummary,
    append_bench_record,
    detect_knee,
    format_capacity_report,
)
from repro.loadgen.runner import LoadTestConfig


def stage(index, offered, completed, *, p95=10.0, errors=0, duration=5.0,
          scheduled=None):
    if scheduled is None:
        scheduled = int(offered * duration)
    return StageSummary(
        stage=index,
        offered_hz=offered,
        duration_s=duration,
        scheduled=scheduled,
        completed=completed,
        stores=completed // 4,
        retrieves=completed - completed // 4,
        not_found=errors,
        gave_up=0,
        delivery_errors=0,
        lost=scheduled - completed,
        duplicates=0,
        p50_ms=p95 / 3,
        p95_ms=p95,
        p99_ms=p95 * 1.5,
        mean_ms=p95 / 2,
        digest="d" * 16,
    )


class TestDetectKnee:
    def test_healthy_ramp_has_no_knee(self):
        stages = [
            stage(0, 50, 250),
            stage(1, 100, 500),
            stage(2, 200, 1000),
        ]
        assert detect_knee(stages) is None

    def test_goodput_flattening_with_latency_inflection(self):
        stages = [
            stage(0, 100, 500, p95=10.0),
            stage(1, 200, 1000, p95=12.0),
            # Offered +200/s but goodput only +10/s, p95 blows up 5x.
            stage(2, 400, 1050, p95=60.0),
        ]
        knee = detect_knee(stages)
        assert knee is not None
        assert knee.stage == 2
        assert knee.offered_hz == 400
        assert "p95 inflected" in knee.reason

    def test_goodput_flattening_with_error_shedding(self):
        stages = [
            stage(0, 100, 500, p95=10.0),
            # Flat goodput, stable latency, but the cluster sheds 20%.
            stage(1, 200, 520, p95=11.0, errors=200),
        ]
        knee = detect_knee(stages)
        assert knee is not None
        assert knee.stage == 1
        assert "error rate" in knee.reason

    def test_flat_goodput_without_symptoms_is_not_a_knee(self):
        # Goodput flattens but latency and errors are unremarkable --
        # e.g. the generator itself was the bottleneck and dispatched
        # fewer operations than the nominal offer.  Not a verdict.
        stages = [
            stage(0, 100, 500, p95=10.0),
            stage(1, 200, 520, p95=11.0, scheduled=520),
        ]
        assert detect_knee(stages) is None

    def test_non_increasing_offered_stage_skipped(self):
        stages = [
            stage(0, 100, 500, p95=10.0),
            stage(1, 100, 480, p95=50.0),
        ]
        assert detect_knee(stages) is None

    def test_latency_inflection_alone_without_flattening_is_fine(self):
        # Latency grew 3x but every added request is being served.
        stages = [
            stage(0, 100, 500, p95=10.0),
            stage(1, 200, 1000, p95=30.0),
        ]
        assert detect_knee(stages) is None


class TestReporting:
    def test_format_includes_table_and_verdict(self):
        from repro.loadgen.report import CapacityReport

        stages = [
            stage(0, 100, 500, p95=10.0),
            stage(1, 200, 1010, p95=60.0),
            stage(2, 400, 1050, p95=220.0),
        ]
        report = CapacityReport(
            config={}, stages=stages, knee=detect_knee(stages), digest="abcd"
        )
        text = format_capacity_report(report)
        assert "offered/s" in text and "p95 ms" in text
        assert "knee at stage 2" in text
        assert "schedule digest abcd" in text

    def test_stage_summary_rates(self):
        summary = stage(0, 100, 450, errors=50, duration=5.0)
        assert summary.scheduled == 500
        assert summary.errors == 50 + summary.lost
        assert summary.throughput_hz == 90.0
        assert summary.goodput_hz == 80.0

    def test_append_bench_record_grows_history(self, tmp_path):
        path = str(tmp_path / "BENCH_rpc.json")
        append_bench_record(path, {"run": 1})
        append_bench_record(path, {"run": 2})
        with open(path) as handle:
            history = json.load(handle)
        assert history == [{"run": 1}, {"run": 2}]

    def test_append_recovers_from_corrupt_file(self, tmp_path):
        path = str(tmp_path / "BENCH_rpc.json")
        with open(path, "w") as handle:
            handle.write("{not json")
        append_bench_record(path, {"run": 1})
        with open(path) as handle:
            assert json.load(handle) == [{"run": 1}]


class TestConfigDescribe:
    def test_describe_carries_extra_meta(self):
        config = LoadTestConfig(extra_meta={"label": "ab-test"})
        echo = config.describe()
        assert echo["label"] == "ab-test"
        assert echo["pipelined"] is True
        assert echo["ramp_hz"] == [50.0, 100.0, 200.0]
