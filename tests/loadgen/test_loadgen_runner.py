"""End-to-end runner tests against a small live cluster (thread mode)."""

import json

import pytest

from repro.loadgen.runner import (
    LoadTestConfig,
    merge_results,
    run_load_test,
    worker_configs,
)
from repro.loadgen.worker import StageOutcome, WorkerResult


def small_config(**overrides):
    options = dict(
        num_nodes=3,
        workers=2,
        ramp=(20.0, 40.0),
        stage_seconds=1.5,
        num_base_records=10,
        store_pool_size=40,
        processes=False,
        start_grace_s=0.5,
        drain_timeout_s=10.0,
    )
    options.update(overrides)
    return LoadTestConfig(**options)


@pytest.fixture(scope="module")
def small_run():
    """One real ramp shared by the assertions below (cluster boots once)."""
    return run_load_test(small_config())


class TestRunLoadTest:
    def test_every_stage_reported(self, small_run):
        assert [s.stage for s in small_run.stages] == [0, 1]
        assert [s.offered_hz for s in small_run.stages] == [20.0, 40.0]

    def test_exactly_once_accounting(self, small_run):
        for summary in small_run.stages:
            assert summary.scheduled > 0
            assert summary.duplicates == 0
            assert summary.lost == 0
            assert summary.completed == summary.scheduled

    def test_healthy_cluster_serves_cleanly(self, small_run):
        for summary in small_run.stages:
            assert summary.error_rate < 0.05
            assert summary.p95_ms > 0.0
            assert summary.stores > 0 and summary.retrieves > 0

    def test_digest_is_reproducible_without_rerunning(self, small_run):
        # The digest depends only on (seed, workers, ramp): recomputing
        # the schedules offline must reproduce the run's fingerprint.
        from repro.loadgen.schedule import (
            combine_digests,
            schedule_digest,
            stage_schedule,
        )

        from repro.core.fields import ARTICLE_SCHEMA
        from repro.rpc.daemon import build_scheme

        config = small_config()
        entry_classes = len(
            build_scheme(config.scheme, ARTICLE_SCHEMA).entry_classes()
        )
        per_stage = []
        for stage_index, rate in enumerate(config.ramp):
            digests = [
                schedule_digest(
                    stage_schedule(
                        config.seed,
                        worker,
                        stage_index,
                        rate / config.workers,
                        config.stage_seconds,
                        store_fraction=config.store_fraction,
                        num_store_records=config.store_pool_size,
                        num_base_records=config.num_base_records,
                        num_entry_classes=entry_classes,
                    )
                )
                for worker in range(config.workers)
            ]
            per_stage.append(combine_digests(digests))
        assert combine_digests(per_stage) == small_run.digest

    def test_start_skew_is_honest_and_small(self, small_run):
        for summary in small_run.stages:
            assert 0.0 <= summary.max_start_skew_s < 1.0


class TestWorkerConfigs:
    def test_rates_split_evenly_and_offsets_stack(self):
        config = small_config(workers=4, ramp=(100.0, 200.0), stage_seconds=3.0)
        configs = worker_configs(config, ("127.0.0.1", 1), 123.0)
        assert len(configs) == 4
        for worker_config in configs:
            assert [plan.rate_hz for plan in worker_config.stages] == [
                25.0,
                50.0,
            ]
            assert [plan.offset_s for plan in worker_config.stages] == [
                0.0,
                3.0,
            ]
            assert worker_config.start_at == 123.0

    def test_validation(self):
        with pytest.raises(ValueError):
            worker_configs(small_config(workers=0), ("h", 1), 0.0)
        with pytest.raises(ValueError):
            worker_configs(small_config(ramp=()), ("h", 1), 0.0)


class TestMergeResults:
    def make_outcome(self, stage, values, **counts):
        from repro.analysis.stats import LogBucketQuantiles

        sketch = LogBucketQuantiles()
        for value in values:
            sketch.add(value)
        base = dict(
            scheduled=len(values),
            completed=len(values),
            stores=0,
            retrieves=len(values),
            digest="aa",
        )
        base.update(counts)
        return StageOutcome(stage=stage, sketch_state=sketch.to_state(), **base)

    def test_counts_and_sketches_fold_across_workers(self):
        config = small_config(workers=2, ramp=(10.0,), stage_seconds=2.0)
        results = [
            WorkerResult(0, [self.make_outcome(0, [1.0, 2.0, 3.0])]),
            WorkerResult(1, [self.make_outcome(0, [100.0], not_found=1)]),
        ]
        report = merge_results(config, results)
        summary = report.stages[0]
        assert summary.scheduled == 4
        assert summary.completed == 4
        assert summary.not_found == 1
        # p99 over {1,2,3,100} must see worker 1's contribution.
        assert summary.p99_ms == pytest.approx(100.0, rel=0.02)

    def test_worker_order_does_not_change_percentiles(self):
        config = small_config(workers=2, ramp=(10.0,))
        a = WorkerResult(0, [self.make_outcome(0, [1.0, 5.0, 9.0])])
        b = WorkerResult(1, [self.make_outcome(0, [2.0, 100.0])])
        forward = merge_results(config, [a, b])
        backward = merge_results(config, [b, a])
        assert forward.stages[0].p95_ms == backward.stages[0].p95_ms
        assert forward.digest == backward.digest


class TestCli:
    def test_cli_writes_bench_record(self, tmp_path):
        from repro.loadgen.__main__ import main

        out = str(tmp_path / "BENCH_rpc.json")
        status = main(
            [
                "--nodes", "3",
                "--workers", "1",
                "--ramp", "15,30",
                "--stage-seconds", "1",
                "--base-records", "8",
                "--threads",
                "--out", out,
                "--label", "cli-smoke",
            ]
        )
        assert status == 0
        with open(out) as handle:
            history = json.load(handle)
        assert len(history) == 1
        record = history[0]
        assert record["config"]["label"] == "cli-smoke"
        assert len(record["stages"]) == 2
        assert record["schedule_digest"]
        for stage in record["stages"]:
            assert stage["duplicates"] == 0
            assert stage["scheduled"] > 0

    def test_ramp_parsing_rejects_garbage(self):
        from repro.loadgen.__main__ import build_parser

        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["--ramp", "10,abc"])
        with pytest.raises(SystemExit):
            parser.parse_args(["--ramp", "-5"])
