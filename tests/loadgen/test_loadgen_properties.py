"""Property suite: schedule determinism/shape, sketch merge algebra.

Two pillars of the load generator's credibility live here:

- the arrival schedules are *reproducible* (bit-identical per
  ``(seed, worker, stage)`` cell) and genuinely *Poisson-shaped*
  (inter-arrival gaps exponential: mean ~ 1/rate, coefficient of
  variation ~ 1);
- the cross-process latency merge is sound: ``LogBucketQuantiles``
  merging is associative and commutative, and a merged sketch answers
  percentiles within the documented 0.99% relative error of the exact
  distribution.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import ExactQuantiles, LogBucketQuantiles
from repro.loadgen.schedule import schedule_digest, stage_schedule

seeds = st.integers(min_value=0, max_value=2**32 - 1)
small_ints = st.integers(min_value=0, max_value=7)
latencies = st.lists(
    st.floats(min_value=0.01, max_value=10_000.0,
              allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=300,
)


def sketch_of(values):
    sketch = LogBucketQuantiles()
    for value in values:
        sketch.add(value)
    return sketch


def sketch_state(sketch):
    """The observable identity of a sketch: everything percentile() reads."""
    state = sketch.to_state()
    # Bucket counts, totals, and extrema are integer/exact under merge
    # reordering; the float sum is compared approximately separately.
    return (
        tuple(sorted(state["buckets"].items())),
        state["zero_count"],
        state["count"],
        state["min"],
        state["max"],
    )


class TestScheduleProperties:
    @settings(max_examples=50, deadline=None)
    @given(seed=seeds, worker=small_ints, stage=small_ints)
    def test_reproducible_bit_for_bit(self, seed, worker, stage):
        kwargs = dict(num_store_records=10, num_base_records=25,
                      num_entry_classes=3)
        first = stage_schedule(seed, worker, stage, 40.0, 3.0, **kwargs)
        second = stage_schedule(seed, worker, stage, 40.0, 3.0, **kwargs)
        assert first == second
        assert schedule_digest(first) == schedule_digest(second)

    @settings(max_examples=15, deadline=None)
    @given(seed=seeds)
    def test_poisson_shape(self, seed):
        # One long stage gives ~4000 arrivals: enough for the law of
        # large numbers, generous bounds so the test cannot flake.
        rate = 400.0
        ops = stage_schedule(seed, 0, 0, rate, 10.0)
        times = [op.at_s for op in ops]
        gaps = [b - a for a, b in zip([0.0] + times[:-1], times)]
        assert len(gaps) > 2000
        mean = sum(gaps) / len(gaps)
        assert 0.75 / rate < mean < 1.25 / rate
        variance = sum((g - mean) ** 2 for g in gaps) / len(gaps)
        cv = math.sqrt(variance) / mean
        # Exponential gaps have CV = 1; uniform ~0.58, deterministic 0.
        assert 0.6 < cv < 1.4

    @settings(max_examples=15, deadline=None)
    @given(seed=seeds, fraction=st.floats(min_value=0.1, max_value=0.9))
    def test_mix_tracks_store_fraction(self, seed, fraction):
        ops = stage_schedule(seed, 0, 0, 400.0, 10.0,
                             store_fraction=fraction,
                             num_store_records=10, num_base_records=10)
        stores = sum(op.kind == "store" for op in ops)
        observed = stores / len(ops)
        assert abs(observed - fraction) < 0.08


class TestSketchMergeProperties:
    @settings(max_examples=40, deadline=None)
    @given(left=latencies, right=latencies)
    def test_merge_commutes(self, left, right):
        ab = sketch_of(left).merge(sketch_of(right))
        ba = sketch_of(right).merge(sketch_of(left))
        assert sketch_state(ab) == sketch_state(ba)
        assert math.isclose(ab.to_state()["sum"], ba.to_state()["sum"],
                            rel_tol=1e-9)
        for q in (0.5, 0.95, 0.99):
            assert ab.percentile(q) == ba.percentile(q)

    @settings(max_examples=40, deadline=None)
    @given(a=latencies, b=latencies, c=latencies)
    def test_merge_associates(self, a, b, c):
        left = sketch_of(a).merge(sketch_of(b)).merge(sketch_of(c))
        right = sketch_of(a).merge(sketch_of(b).merge(sketch_of(c)))
        assert sketch_state(left) == sketch_state(right)
        for q in (0.5, 0.95, 0.99):
            assert left.percentile(q) == right.percentile(q)

    @settings(max_examples=40, deadline=None)
    @given(parts=st.lists(latencies, min_size=2, max_size=5))
    def test_merged_sketch_tracks_exact_quantiles(self, parts):
        merged = LogBucketQuantiles()
        exact = ExactQuantiles()
        for part in parts:
            merged.merge(sketch_of(part))
            for value in part:
                exact.add(value)
        assert merged.count == exact.count
        bound = merged.relative_error  # 0.0099... for the default gamma
        assert bound < 0.0099 + 1e-6
        for q in (0.5, 0.9, 0.95, 0.99):
            estimate = merged.percentile(q)
            truth = exact.percentile(q)
            assert abs(estimate - truth) <= bound * truth + 1e-12

    @settings(max_examples=40, deadline=None)
    @given(values=latencies)
    def test_state_round_trip_preserves_everything(self, values):
        sketch = sketch_of(values)
        clone = LogBucketQuantiles.from_state(sketch.to_state())
        assert sketch_state(clone) == sketch_state(sketch)
        for q in (0.5, 0.95, 0.99):
            assert clone.percentile(q) == sketch.percentile(q)

    @settings(max_examples=20, deadline=None)
    @given(values=latencies)
    def test_merge_with_empty_is_identity(self, values):
        sketch = sketch_of(values)
        merged = sketch_of(values).merge(LogBucketQuantiles())
        assert sketch_state(merged) == sketch_state(sketch)
