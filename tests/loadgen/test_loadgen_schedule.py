"""Unit tests for the deterministic schedule core."""

import pytest

from repro.loadgen.schedule import (
    RETRIEVE,
    STORE,
    combine_digests,
    schedule_digest,
    stage_rng,
    stage_schedule,
)


class TestStageSchedule:
    def test_same_cell_reproduces_exactly(self):
        first = stage_schedule(7, 0, 0, 50.0, 5.0, num_store_records=10,
                               num_base_records=20, num_entry_classes=3)
        second = stage_schedule(7, 0, 0, 50.0, 5.0, num_store_records=10,
                                num_base_records=20, num_entry_classes=3)
        assert first == second
        assert schedule_digest(first) == schedule_digest(second)

    def test_different_cells_differ(self):
        base = stage_schedule(7, 0, 0, 50.0, 5.0)
        assert stage_schedule(8, 0, 0, 50.0, 5.0) != base
        assert stage_schedule(7, 1, 0, 50.0, 5.0) != base
        assert stage_schedule(7, 0, 1, 50.0, 5.0) != base

    def test_arrivals_sorted_and_within_duration(self):
        ops = stage_schedule(3, 2, 1, 80.0, 4.0)
        times = [op.at_s for op in ops]
        assert times == sorted(times)
        assert all(0.0 <= at < 4.0 for at in times)

    def test_mix_extremes(self):
        all_stores = stage_schedule(1, 0, 0, 100.0, 3.0, store_fraction=1.0,
                                    num_store_records=5)
        assert {op.kind for op in all_stores} == {STORE}
        all_retrieves = stage_schedule(1, 0, 0, 100.0, 3.0, store_fraction=0.0,
                                       num_base_records=5, num_entry_classes=2)
        assert {op.kind for op in all_retrieves} == {RETRIEVE}

    def test_indices_in_range(self):
        ops = stage_schedule(5, 0, 0, 200.0, 3.0, num_store_records=7,
                             num_base_records=11, num_entry_classes=2)
        for op in ops:
            if op.kind == STORE:
                assert 0 <= op.record_index < 7
            else:
                assert 0 <= op.record_index < 11
                assert 0 <= op.entry_class < 2

    def test_validation(self):
        with pytest.raises(ValueError):
            stage_schedule(1, 0, 0, 0.0, 5.0)
        with pytest.raises(ValueError):
            stage_schedule(1, 0, 0, 50.0, 0.0)
        with pytest.raises(ValueError):
            stage_schedule(1, 0, 0, 50.0, 5.0, store_fraction=1.5)

    def test_rng_is_process_stable(self):
        # String seeding hashes with SHA-512; a fixed cell must produce a
        # fixed first draw forever (guards against hash()-based seeding).
        rng = stage_rng(42, 0, 0)
        again = stage_rng(42, 0, 0)
        assert [rng.random() for _ in range(5)] == [
            again.random() for _ in range(5)
        ]


class TestDigests:
    def test_digest_sensitive_to_every_field(self):
        ops = stage_schedule(9, 0, 0, 60.0, 2.0, num_store_records=4,
                             num_base_records=4, num_entry_classes=2)
        base = schedule_digest(ops)
        perturbed = list(ops)
        first = perturbed[0]
        perturbed[0] = type(first)(
            first.at_s + 1e-9, first.kind, first.record_index,
            first.entry_class,
        )
        assert schedule_digest(perturbed) != base

    def test_combine_is_order_sensitive(self):
        assert combine_digests(["a", "b"]) != combine_digests(["b", "a"])
        assert combine_digests(["a", "b"]) == combine_digests(["a", "b"])
