"""Unit tests for the tracer and the JSONL reader round trip."""

from __future__ import annotations

import json

import pytest

from repro.obs.reader import (
    TraceEvent,
    TraceReadError,
    group_lookups,
    load_trace,
)
from repro.obs.tracer import TRACE_VERSION, Tracer


class FakeKernel:
    """A stand-in clock the tracer can bind to."""

    def __init__(self) -> None:
        self.now = 0.0


def make_span(tracer: Tracer) -> int:
    """Record one complete, found lookup span by hand."""
    lookup = tracer.begin_lookup("/article/title/TCP", "user:0")
    exchange = tracer.open_exchange(lookup)
    tracer.set_context(lookup, exchange)
    tracer.route_hop(
        src="user:0", dst="node:a", message="query_request",
        legs=2, latency_ms=10.0, leg="request", use_current=True,
    )
    tracer.route_hop(
        src="node:a", dst="user:0", message="query_response",
        legs=1, latency_ms=5.0, leg="response", use_current=True,
    )
    tracer.index_step(
        lookup, exchange, node=17, query="/article/title/TCP",
        cache_hit=False, entries=1, shortcuts=0, file_found=False,
    )
    tracer.end_lookup(lookup, found=True, gave_up=False)
    return lookup


class TestTracerEvents:
    def test_header_is_first_event_and_carries_meta(self):
        tracer = Tracer(meta={"scheme": "simple", "query_seed": 42})
        header = tracer.events[0]
        assert header["kind"] == "trace_header"
        assert header["version"] == TRACE_VERSION
        assert header["scheme"] == "simple"
        assert header["query_seed"] == 42

    def test_lookup_ids_are_dense_and_sequential(self):
        tracer = Tracer()
        assert make_span(tracer) == 0
        assert make_span(tracer) == 1
        assert make_span(tracer) == 2

    def test_exchange_ids_count_per_lookup(self):
        tracer = Tracer()
        first = tracer.begin_lookup("/article/conf/INFOCOM", "user:0")
        assert tracer.open_exchange(first) == 1
        assert tracer.open_exchange(first) == 2
        tracer.end_lookup(first, found=False, gave_up=True)
        second = tracer.begin_lookup("/article/conf/INFOCOM", "user:1")
        assert tracer.open_exchange(second) == 1

    def test_end_lookup_derives_hops_and_elapsed(self):
        tracer = Tracer()
        kernel = FakeKernel()
        tracer.bind_clock(kernel)
        kernel.now = 100.0
        lookup = tracer.begin_lookup("/article/year/1996", "user:0")
        tracer.route_hop(
            src="user:0", dst="node:b", message="query_request",
            legs=1, latency_ms=25.0, leg="request", ref=(lookup, 1),
        )
        kernel.now = 125.0
        tracer.end_lookup(lookup, found=True, gave_up=False)
        end = tracer.events[-1]
        assert end["kind"] == "lookup_end"
        assert end["hops"] == 1
        assert end["elapsed_ms"] == 25.0

    def test_unattributed_hop_does_not_count_toward_any_span(self):
        tracer = Tracer()
        lookup = tracer.begin_lookup("/article/title/IPv6", "user:0")
        tracer.route_hop(
            src="user:0", dst="node:c", message="query_request",
            legs=1, latency_ms=7.0, leg="request", ref=None,
        )
        tracer.end_lookup(lookup, found=False, gave_up=False)
        end = tracer.events[-1]
        assert end["hops"] == 0
        hop = tracer.events[-2]
        assert hop["lookup"] is None and hop["exchange"] is None

    def test_current_pointer_set_and_cleared(self):
        tracer = Tracer()
        assert tracer.current is None
        lookup = tracer.begin_lookup("/article/author/Smith", "user:0")
        assert tracer.current == (lookup, None)
        tracer.set_context(lookup, 3)
        assert tracer.current == (lookup, 3)
        tracer.end_lookup(lookup, found=True, gave_up=False)
        assert tracer.current is None

    def test_activated_restores_previous_context(self):
        tracer = Tracer()
        lookup = tracer.begin_lookup("/article/conf/SIGCOMM", "user:0")
        tracer.set_context(lookup, 1)
        with tracer.activated(None):
            assert tracer.current is None
            with tracer.activated((lookup, 2)):
                assert tracer.current == (lookup, 2)
            assert tracer.current is None
        assert tracer.current == (lookup, 1)

    def test_sequence_numbers_are_dense_from_zero(self):
        tracer = Tracer()
        make_span(tracer)
        make_span(tracer)
        assert [event["seq"] for event in tracer.events] == list(
            range(len(tracer.events))
        )


class TestSerialization:
    def test_jsonl_lines_are_compact_with_fixed_envelope_order(self):
        tracer = Tracer()
        make_span(tracer)
        for line in tracer.jsonl_lines():
            assert ": " not in line and ", " not in line
            keys = list(json.loads(line).keys())
            assert keys[:5] == ["seq", "t", "kind", "lookup", "exchange"]

    def test_write_and_load_round_trip(self, tmp_path):
        tracer = Tracer(meta={"scheme": "flat"})
        make_span(tracer)
        make_span(tracer)
        path = tmp_path / "trace.jsonl"
        written = tracer.write_jsonl(str(path))
        assert written == len(tracer.events)

        trace = load_trace(str(path))
        assert trace.header["scheme"] == "flat"
        assert trace.header["version"] == TRACE_VERSION
        assert len(trace.events) == written
        assert [span.lookup_id for span in trace.lookups] == [0, 1]
        for span in trace.lookups:
            assert span.start is not None and span.end is not None
            assert span.chain_length == 1
            assert span.hops == 2
            assert span.found
            assert span.visited_nodes() == {17}
            assert span.waited_latency_ms() == pytest.approx(15.0)

    def test_same_events_serialize_to_identical_bytes(self):
        first, second = Tracer(meta={"seed": 9}), Tracer(meta={"seed": 9})
        make_span(first)
        make_span(second)
        assert list(first.jsonl_lines()) == list(second.jsonl_lines())


class TestReader:
    def test_malformed_json_raises_typed_error(self):
        with pytest.raises(TraceReadError):
            TraceEvent.from_line("{not json")

    def test_missing_envelope_raises_typed_error(self):
        with pytest.raises(TraceReadError):
            TraceEvent.from_line('{"seq": 0, "kind": "x"}')

    def test_payload_split_from_envelope(self):
        event = TraceEvent.from_line(
            '{"seq":4,"t":1.5,"kind":"retry","lookup":2,"exchange":1,'
            '"attempt":1,"backoff_units":2}'
        )
        assert event.seq == 4 and event.t == 1.5
        assert event.kind == "retry"
        assert (event.lookup, event.exchange) == (2, 1)
        assert event.data == {"attempt": 1, "backoff_units": 2}

    def test_group_lookups_skips_unattributed_events(self):
        tracer = Tracer()
        make_span(tracer)
        tracer.route_hop(
            src="user:0", dst="node:d", message="query_request",
            legs=1, latency_ms=1.0, leg="request", ref=None,
        )
        events = [
            TraceEvent.from_line(line) for line in tracer.jsonl_lines()
        ]
        spans = group_lookups(events)
        assert len(spans) == 1
        assert all(
            event.lookup == spans[0].lookup_id for event in spans[0].events
        )

    def test_load_trace_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_trace(str(tmp_path / "absent.jsonl"))
