"""Property tests: structural trace invariants under arbitrary chaos.

Hypothesis drives small experiments across the configuration space --
concurrency, latency models, message faults, crashes, churn, replication
-- and every produced trace must satisfy the span grammar and the
accounting invariants the observability layer promises:

- spans are well-nested: one ``lookup_start`` first, one ``lookup_end``
  last, every other attributed event in between;
- timestamps are monotone (globally, and within every span);
- ``lookup_end.hops`` equals the number of ``dht_route_hop`` events
  attributed to the span;
- every ``retry`` is preceded by a ``delivery_error`` of the same
  exchange;
- the waited leg latencies plus backoff sum to ``elapsed_ms``, and the
  per-lookup elapsed times reproduce the run's response-time
  percentiles.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.stats import percentile
from repro.obs.reader import TraceEvent, group_lookups
from repro.obs.tracer import TRACE_VERSION
from repro.sim.experiment import Experiment, ExperimentConfig

configs = st.fixed_dictionaries(
    {
        "concurrency": st.sampled_from([1, 2, 8]),
        "latency_model": st.sampled_from(
            ["zero", "constant:20", "uniform:5:50"]
        ),
        "fault_drop_probability": st.sampled_from([0.0, 0.08]),
        "fault_duplicate_probability": st.sampled_from([0.0, 0.05]),
        "replication": st.sampled_from([1, 3]),
        "churn_events": st.sampled_from([0, 2]),
        "crash_events": st.sampled_from([0, 1]),
        "query_seed": st.integers(min_value=0, max_value=10_000),
        "churn_seed": st.integers(min_value=0, max_value=10_000),
    }
).map(
    lambda draw: ExperimentConfig(
        cache="single",
        num_nodes=12,
        num_articles=60,
        num_queries=60,
        num_authors=24,
        crash_downtime_queries=20,
        trace=True,
        **draw,
    )
)


def run_and_parse(config):
    experiment = Experiment(config)
    result = experiment.run()
    events = [
        TraceEvent.from_line(line)
        for line in experiment.tracer.jsonl_lines()
    ]
    return result, events, group_lookups(events)


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(config=configs)
def test_trace_invariants(config):
    result, events, spans = run_and_parse(config)

    # Envelope: a single leading header, dense sequence numbers, globally
    # monotone timestamps.
    assert events[0].kind == "trace_header"
    assert events[0].data["version"] == TRACE_VERSION
    assert sum(1 for event in events if event.kind == "trace_header") == 1
    assert [event.seq for event in events] == list(range(len(events)))
    assert all(
        later.t >= earlier.t for earlier, later in zip(events, events[1:])
    )

    # One span per issued query, ids dense from zero.
    assert len(spans) == result.searches == config.num_queries
    assert sorted(span.lookup_id for span in spans) == list(
        range(len(spans))
    )

    retries = failed_sends = found = cache_hits = 0
    for span in spans:
        kinds = [event.kind for event in span.events]

        # Well-nested: start opens, end closes, neither repeats.
        assert kinds[0] == "lookup_start"
        assert kinds[-1] == "lookup_end"
        assert kinds.count("lookup_start") == 1
        assert kinds.count("lookup_end") == 1

        # Monotone within the span.
        times = [event.t for event in span.events]
        assert all(b >= a for a, b in zip(times, times[1:]))

        # Hop accounting: the derived field equals the event count.
        end = span.end
        assert end.data["hops"] == span.hops

        # Interactions: one index/fetch step per completed exchange.
        assert end.data["interactions"] == span.chain_length + len(
            span.of_kind("fetch_step")
        )

        # Every retry is preceded by a delivery error on its exchange.
        errored_exchanges = set()
        for event in span.events:
            if event.kind == "delivery_error":
                errored_exchanges.add(event.exchange)
            elif event.kind == "retry":
                assert event.exchange in errored_exchanges, (
                    "retry without a prior delivery_error"
                )

        # Latency decomposition: waited legs + backoff == elapsed.
        assert span.waited_latency_ms() == pytest.approx(
            span.elapsed_ms, abs=1e-6
        )

        # Span outcome fields agree with the engine's bookkeeping.
        assert end.data["retries"] == len(span.of_kind("retry"))
        assert end.data["failed_sends"] == len(
            span.of_kind("delivery_error")
        )
        retries += end.data["retries"]
        failed_sends += end.data["failed_sends"]
        found += bool(end.data["found"])
        cache_hits += bool(end.data["cache_hit"])

    # Aggregates reconstructed from the trace match the result exactly.
    assert retries == result.total_retries
    assert failed_sends == result.total_failed_sends
    assert found == result.found
    assert cache_hits == result.cache_hits

    # Kernel runs: per-lookup elapsed times reproduce the percentiles.
    if config.uses_kernel:
        elapsed = [span.elapsed_ms for span in spans]
        assert percentile(elapsed, 0.50) == pytest.approx(
            result.response_time_ms_p50
        )
        assert percentile(elapsed, 0.95) == pytest.approx(
            result.response_time_ms_p95
        )
        assert percentile(elapsed, 0.99) == pytest.approx(
            result.response_time_ms_p99
        )
