"""Golden-trace replay: same seed, same bytes; tracing observes nothing.

Two guarantees pin the observability layer down:

- **Deterministic bytes.**  Re-running the churn-smoke and concurrent
  presets with the same seeds must export byte-identical JSONL traces --
  the trace is a pure function of the configuration.
- **Zero observer effect.**  A run with ``trace=True`` must produce an
  :class:`ExperimentResult` bit-identical to the untraced run's:
  recording reads simulation state but never draws randomness, counts
  bytes, or reorders events.
"""

from __future__ import annotations

from dataclasses import asdict, replace

import pytest

from repro.sim.experiment import Experiment
from repro.sim.presets import CHURN_SMOKE_CONFIG, CONCURRENT_CONFIG

#: Result fields excluded from bit-identity comparisons (wall clock and
#: process-global memo-cache warmup; see tests/sim/test_concurrent.py).
_NONDETERMINISTIC_FIELDS = ("runtime_seconds", "perf_counters")

#: The concurrent preset at test scale: the full chaos plan and the
#: 16-user kernel of CONCURRENT_CONFIG over a small corpus.
CONCURRENT_SMOKE = replace(
    CONCURRENT_CONFIG,
    num_nodes=30,
    num_articles=200,
    num_queries=600,
    num_authors=80,
    churn_events=4,
    crash_events=2,
    crash_downtime_queries=80,
)

PRESETS = {
    "churn-smoke": CHURN_SMOKE_CONFIG.scaled(0.25),
    "concurrent": CONCURRENT_SMOKE,
}


def run_traced(config):
    experiment = Experiment(replace(config, trace=True))
    result = experiment.run()
    return result, list(experiment.tracer.jsonl_lines())


def comparable(result):
    fields = asdict(result)
    for name in _NONDETERMINISTIC_FIELDS:
        fields.pop(name)
    return fields


@pytest.fixture(scope="module", params=sorted(PRESETS))
def replayed(request):
    """One preset run three ways: traced twice, untraced once."""
    config = PRESETS[request.param]
    first_result, first_lines = run_traced(config)
    second_result, second_lines = run_traced(config)
    untraced_result = Experiment(replace(config, trace=False)).run()
    return {
        "name": request.param,
        "config": config,
        "traced_results": (first_result, second_result),
        "lines": (first_lines, second_lines),
        "untraced_result": untraced_result,
    }


class TestGoldenReplay:
    def test_same_seed_traces_are_byte_identical(self, replayed):
        first, second = replayed["lines"]
        assert first == second, (
            f"{replayed['name']}: same-seed traces diverged"
        )

    def test_trace_is_nonempty_and_complete(self, replayed):
        lines, _ = replayed["lines"]
        result, _ = replayed["traced_results"]
        starts = sum(1 for line in lines if '"kind":"lookup_start"' in line)
        ends = sum(1 for line in lines if '"kind":"lookup_end"' in line)
        assert starts == ends == result.searches

    def test_traced_results_are_identical_across_runs(self, replayed):
        first, second = replayed["traced_results"]
        assert comparable(first) == comparable(second)


class TestObserverEffect:
    def test_tracing_changes_no_aggregate(self, replayed):
        traced, _ = replayed["traced_results"]
        untraced = replayed["untraced_result"]
        assert comparable(traced) == comparable(untraced), (
            f"{replayed['name']}: tracing perturbed the measurement"
        )

    def test_untraced_run_constructs_no_tracer(self, replayed):
        experiment = Experiment(replayed["config"])
        assert experiment.tracer is None
        assert experiment.engine.tracer is None
        assert experiment.transport.tracer is None
        assert experiment.index_store.tracer is None
        assert experiment.file_store.tracer is None
