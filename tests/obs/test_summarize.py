"""Tests for ``python -m repro.obs summarize`` and its tables."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.analysis.stats import percentile
from repro.obs.__main__ import main
from repro.obs.reader import load_trace
from repro.obs.summarize import summarize_file, summarize_trace
from repro.sim.experiment import Experiment, ExperimentConfig

TRACED_KERNEL = ExperimentConfig(
    cache="single",
    num_nodes=20,
    num_articles=120,
    num_queries=300,
    num_authors=48,
    concurrency=8,
    latency_model="uniform:10:100",
    fault_drop_probability=0.03,
    replication=3,
    trace=True,
)


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory):
    experiment = Experiment(TRACED_KERNEL)
    result = experiment.run()
    path = tmp_path_factory.mktemp("traces") / "kernel.jsonl"
    experiment.write_trace(str(path))
    return result, str(path)


class TestSummarizeReport:
    def test_report_has_all_sections(self, traced_run):
        _, path = traced_run
        report = summarize_file(path)
        assert "lookup outcomes" in report
        assert "index-chain length distribution" in report
        assert "hops per chain step" in report
        assert "latency breakdown by leg" in report

    def test_intro_names_the_configuration(self, traced_run):
        _, path = traced_run
        report = summarize_file(path)
        assert report.startswith("trace: simple/single/ideal")
        assert f"{TRACED_KERNEL.num_queries} lookups" in report

    def test_percentiles_match_experiment_result(self, traced_run):
        """The table's response times must agree with the run's own
        percentiles -- the trace is a faithful per-lookup decomposition
        of exactly what the experiment measured."""
        result, path = traced_run
        trace = load_trace(path)
        elapsed = [span.elapsed_ms for span in trace.lookups]
        assert len(elapsed) == result.searches
        assert percentile(elapsed, 0.50) == pytest.approx(
            result.response_time_ms_p50
        )
        assert percentile(elapsed, 0.95) == pytest.approx(
            result.response_time_ms_p95
        )
        assert percentile(elapsed, 0.99) == pytest.approx(
            result.response_time_ms_p99
        )
        assert sum(elapsed) / len(elapsed) == pytest.approx(
            result.response_time_ms_mean
        )

    def test_chain_length_shares_sum_to_all_lookups(self, traced_run):
        result, path = traced_run
        trace = load_trace(path)
        by_length = {}
        for span in trace.lookups:
            by_length[span.chain_length] = (
                by_length.get(span.chain_length, 0) + 1
            )
        assert sum(by_length.values()) == result.searches

    def test_empty_trace_summarizes_without_tables(self, tmp_path):
        config = replace(TRACED_KERNEL, num_queries=0)
        experiment = Experiment(config)
        experiment.run()
        path = tmp_path / "empty.jsonl"
        experiment.write_trace(str(path))
        report = summarize_trace(load_trace(str(path)))
        assert "(no lookup spans in trace)" in report


class TestObsCli:
    def test_summarize_prints_report(self, traced_run, capsys):
        _, path = traced_run
        assert main(["summarize", path]) == 0
        output = capsys.readouterr().out
        assert "lookup outcomes" in output
        assert "latency breakdown by leg" in output

    def test_missing_file_exits_nonzero(self, tmp_path, capsys):
        code = main(["summarize", str(tmp_path / "nope.jsonl")])
        assert code == 2
        assert "no such trace file" in capsys.readouterr().err

    def test_corrupt_file_exits_nonzero(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("this is not json\n", encoding="utf-8")
        assert main(["summarize", str(path)]) == 2
        assert "error" in capsys.readouterr().err

    def test_command_is_required(self):
        with pytest.raises(SystemExit):
            main([])
