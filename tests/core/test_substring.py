"""Unit tests for prefix (substring) index classes -- Section IV-C."""

import pytest

from repro.core.cache import CachePolicy
from repro.core.engine import LookupEngine
from repro.core.fields import ARTICLE_SCHEMA, SchemaError
from repro.core.query import FieldQuery
from repro.core.substring import PrefixIndex, PrefixQuery


@pytest.fixture
def stack(paper_records, service_factory):
    service = service_factory()
    for record in paper_records:
        service.insert_record(record)
    prefix_index = PrefixIndex(service, {"author": [1, 4]})
    prefix_index.insert_all(paper_records)
    engine = LookupEngine(service, user="user:px")
    return service, prefix_index, engine


class TestPrefixQuery:
    def test_key_is_canonical_and_stable(self):
        query = PrefixQuery(ARTICLE_SCHEMA, "author", "Jo")
        assert query.key() == "/article[author[name[prefix:Jo]]]"
        assert query.key() == query.key()

    def test_covers_field_query(self, paper_records):
        query = PrefixQuery(ARTICLE_SCHEMA, "author", "John")
        smith = FieldQuery.of_record(paper_records[0], ["author"])
        doe = FieldQuery.of_record(paper_records[2], ["author"])
        assert query.covers(smith)
        assert not query.covers(doe)

    def test_covers_record(self, paper_records):
        assert PrefixQuery(ARTICLE_SCHEMA, "author", "J").covers_record(
            paper_records[0]
        )
        assert not PrefixQuery(ARTICLE_SCHEMA, "author", "J").covers_record(
            paper_records[2]
        )

    def test_does_not_cover_other_fields(self, paper_records):
        query = PrefixQuery(ARTICLE_SCHEMA, "author", "J")
        title_only = FieldQuery(ARTICLE_SCHEMA, {"title": "Jaws"})
        assert not query.covers(title_only)

    def test_equality(self):
        a = PrefixQuery(ARTICLE_SCHEMA, "author", "J")
        b = PrefixQuery(ARTICLE_SCHEMA, "author", "J")
        c = PrefixQuery(ARTICLE_SCHEMA, "author", "Jo")
        assert a == b and hash(a) == hash(b) and a != c

    def test_validation(self):
        with pytest.raises(SchemaError):
            PrefixQuery(ARTICLE_SCHEMA, "author", "")
        with pytest.raises(SchemaError):
            PrefixQuery(ARTICLE_SCHEMA, "publisher", "X")


class TestPrefixIndexConstruction:
    def test_levels_validated(self, small_service):
        with pytest.raises(SchemaError):
            PrefixIndex(small_service, {})
        with pytest.raises(SchemaError):
            PrefixIndex(small_service, {"author": [0]})
        with pytest.raises(SchemaError):
            PrefixIndex(small_service, {"publisher": [1]})

    def test_queries_for_record(self, stack, paper_records):
        _, prefix_index, _ = stack
        queries = prefix_index.queries_for(paper_records[0])
        prefixes = {query.prefix for query in queries}
        assert prefixes == {"J", "John"}

    def test_chain_short_to_long_prefix(self, stack, paper_records):
        service, _, _ = stack
        one = PrefixQuery(ARTICLE_SCHEMA, "author", "J")
        four = PrefixQuery(ARTICLE_SCHEMA, "author", "John")
        assert four.key() in service.index_store.values(one.key())
        exact = FieldQuery.of_record(paper_records[0], ["author"])
        assert exact.key() in service.index_store.values(four.key())

    def test_shared_prefix_entry(self, stack):
        """John_Smith and Alan_Doe differ at letter one; Smith's two
        records share every prefix entry."""
        service, _, _ = stack
        one = PrefixQuery(ARTICLE_SCHEMA, "author", "J")
        values = service.index_store.values(one.key())
        assert len(values) == len(set(values)) == 1


class TestPrefixSearch:
    def test_explore_prefix_level(self, stack):
        _, prefix_index, _ = stack
        entries = prefix_index.explore("author", "A")
        assert entries == ["/article[author[name[prefix:Alan]]]"]

    def test_search_from_one_letter(self, stack, paper_records):
        _, prefix_index, engine = stack
        trace = prefix_index.search(engine, "author", "J", paper_records[0])
        assert trace.found
        # prefix:J -> prefix:John -> author -> author+title -> file.
        assert trace.interactions == 5

    def test_search_from_longer_prefix(self, stack, paper_records):
        _, prefix_index, engine = stack
        trace = prefix_index.search(engine, "author", "John", paper_records[1])
        assert trace.found
        assert trace.interactions == 4

    def test_search_requires_covering(self, stack, paper_records):
        _, prefix_index, engine = stack
        with pytest.raises(SchemaError):
            prefix_index.search(engine, "author", "J", paper_records[2])

    def test_unindexed_prefix_not_found(self, stack, paper_records):
        service, prefix_index, engine = stack
        from repro.core.fields import Record

        ghost = Record(
            ARTICLE_SCHEMA,
            {"author": "Zoe_Zed", "title": "Zzz", "conf": "X", "year": "2000"},
        )
        trace = prefix_index.search(engine, "author", "Z", ghost)
        assert not trace.found
        assert trace.errors == 1

    def test_search_with_cache_enabled(self, paper_records, service_factory):
        service = service_factory(cache_policy=CachePolicy.SINGLE)
        for record in paper_records:
            service.insert_record(record)
        prefix_index = PrefixIndex(service, {"author": [1]})
        prefix_index.insert_all(paper_records)
        engine = LookupEngine(service, user="user:pxc")
        first = prefix_index.search(engine, "author", "J", paper_records[0])
        second = prefix_index.search(engine, "author", "J", paper_records[0])
        assert first.found and second.found
        assert second.interactions <= first.interactions
