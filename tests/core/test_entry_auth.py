"""Service-level tests for publisher-signed entries and second opinions.

These cover the two Byzantine behaviours that transport signatures
cannot address (a lying endpoint signs its forgery with its own valid
key): *fabrication*, caught by entry attestation, and *withholding*,
caught by cross-replica second opinions feeding the trust ledger.
"""

from repro import perf
from repro.core.fields import ARTICLE_SCHEMA
from repro.core.query import FieldQuery
from repro.core.scheme import simple_scheme
from repro.core.service import IndexService
from repro.dht.idspace import hash_key
from repro.dht.ring import IdealRing
from repro.net.transport import SimulatedTransport
from repro.sec import NodeIdentity, TrustLedger, is_attested
from repro.sec.entries import attest_entry
from repro.storage.store import DHTStorage

PUBLISHER = NodeIdentity("service-publisher")
IMPOSTOR = NodeIdentity("impostor")


def build(replication=1, num_nodes=12, identity=PUBLISHER, trust=None):
    ring = IdealRing(64)
    for index in range(num_nodes):
        ring.add_node(hash_key(f"peer-{index}", 64))
    transport = SimulatedTransport()
    return IndexService(
        ARTICLE_SCHEMA,
        simple_scheme(),
        DHTStorage(ring, replication=replication),
        DHTStorage(ring, replication=replication),
        transport,
        trust=trust,
        entry_identity=identity,
    )


class TestAttestedStorage:
    def test_stored_values_are_attested(self, paper_records):
        service = build()
        for record in paper_records:
            service.insert_record(record)
        author = FieldQuery(ARTICLE_SCHEMA, {"author": "John_Smith"})
        stored = service.index_store.values(author.key())
        assert stored and all(is_attested(value) for value in stored)

    def test_query_returns_raw_entries(self, paper_records):
        service = build()
        for record in paper_records:
            service.insert_record(record)
        author = FieldQuery(ARTICLE_SCHEMA, {"author": "John_Smith"})
        answer = service.query(author, user="user:t")
        assert len(answer.entries) == 2
        assert not any(is_attested(entry) for entry in answer.entries)

    def test_delete_removes_attested_entries(self, paper_records):
        service = build()
        for record in paper_records:
            service.insert_record(record)
        service.delete_record(paper_records[0])
        title = FieldQuery(ARTICLE_SCHEMA, {"title": "TCP"})
        assert service.query(title, user="user:t").empty


class TestFabricationRejected:
    def test_unattested_entry_dropped(self, paper_records):
        service = build()
        service.insert_record(paper_records[0])
        author = FieldQuery(ARTICLE_SCHEMA, {"author": "John_Smith"})
        key = author.key()
        for node in service.index_store.responsible_nodes(key):
            service.index_store.put_local(node, key, "fabricated-entry")
        before = perf.counters.sec_entry_verify_failures
        answer = service.query(author, user="user:t")
        assert "fabricated-entry" not in answer.entries
        assert len(answer.entries) == 1  # the genuine mapping survives
        assert perf.counters.sec_entry_verify_failures > before

    def test_self_signed_forgery_dropped(self, paper_records):
        """An attacker attesting garbage with its own fresh key gains
        nothing: that key is not in the trusted publisher set."""
        service = build()
        service.insert_record(paper_records[0])
        author = FieldQuery(ARTICLE_SCHEMA, {"author": "John_Smith"})
        key = author.key()
        forged = attest_entry(key, "forged-entry", IMPOSTOR)
        for node in service.index_store.responsible_nodes(key):
            service.index_store.put_local(node, key, forged)
        answer = service.query(author, user="user:t")
        assert "forged-entry" not in answer.entries

    def test_forgery_penalizes_the_serving_node(self, paper_records):
        trust = TrustLedger()
        service = build(trust=trust)
        service.insert_record(paper_records[0])
        author = FieldQuery(ARTICLE_SCHEMA, {"author": "John_Smith"})
        key = author.key()
        node = service.index_store.responsible_nodes(key)[0]
        service.index_store.put_local(node, key, "fabricated-entry")
        service.query(author, user="user:t")
        assert not trust.is_trusted(IndexService.endpoint_name(node))


class TestSecondOpinions:
    def withholding_setup(self, paper_records):
        trust = TrustLedger()
        service = build(replication=3, trust=trust)
        service.insert_record(paper_records[0])
        author = FieldQuery(ARTICLE_SCHEMA, {"author": "John_Smith"})
        key = author.key()
        withholder = service.index_store.responsible_nodes(key)[0]
        # Model withholding: the replica holds nothing to serve, but is
        # alive and answers (an empty answer passes every check).
        service.index_store._node_stores[withholder].pop(key, None)
        return service, trust, author, withholder

    def test_empty_answer_gets_second_opinion(self, paper_records):
        service, trust, author, withholder = self.withholding_setup(
            paper_records
        )
        before = perf.counters.sec_contradictions
        for _ in range(6):  # rotation guarantees the withholder leads once
            answer = service.query(author, user="user:t")
            assert not answer.empty  # another replica supplied the truth
        assert perf.counters.sec_contradictions > before
        assert not trust.is_trusted(IndexService.endpoint_name(withholder))

    def test_agreeing_empty_answers_accepted(self, paper_records):
        """A key nobody holds resolves empty without contradictions."""
        trust = TrustLedger()
        service = build(replication=3, trust=trust)
        service.insert_record(paper_records[0])
        ghost = FieldQuery(ARTICLE_SCHEMA, {"author": "Nobody_Here"})
        before = perf.counters.sec_contradictions
        answer = service.query(ghost, user="user:t")
        assert answer.empty
        assert perf.counters.sec_contradictions == before
