"""Failure-aware lookup tests: retries, backoff budget, replica failover."""


from repro.core.engine import LookupEngine
from repro.core.fields import ARTICLE_SCHEMA
from repro.core.query import FieldQuery
from repro.core.scheme import simple_scheme
from repro.core.service import IndexService
from repro.dht.idspace import hash_key
from repro.dht.ring import IdealRing
from repro.net.faults import FaultPlan, FaultyTransport
from repro.net.transport import SimulatedTransport
from repro.storage.store import DHTStorage


def build_faulty(plan, num_nodes=12, replication=1, user="user:f"):
    ring = IdealRing(64)
    for index in range(num_nodes):
        ring.add_node(hash_key(f"peer-{index}", 64))
    transport = FaultyTransport(SimulatedTransport(), plan)
    service = IndexService(
        ARTICLE_SCHEMA,
        simple_scheme(),
        DHTStorage(ring, replication=replication),
        DHTStorage(ring, replication=replication),
        transport,
    )
    return ring, service, LookupEngine(service, user=user)


AUTHOR = {"author": "John_Smith"}


class TestRetries:
    def test_search_recovers_from_drops(self, paper_records):
        # At 20% drop an exchange fails with p = 1 - 0.8^2 = 0.36, but
        # three retries shrink the abandon rate to 0.36^4 ~ 1.7%.
        _, service, engine = build_faulty(FaultPlan(drop_probability=0.2, seed=5))
        for record in paper_records:
            service.insert_record(record)
        query = FieldQuery(ARTICLE_SCHEMA, AUTHOR)
        found = retried = 0
        for _ in range(40):
            trace = engine.search(query, paper_records[0])
            found += int(trace.found)
            retried += trace.retries
        assert found >= 35  # lossy network survived via retries
        assert retried > 0

    def test_trace_counts_failed_sends_separately(self, paper_records):
        _, service, engine = build_faulty(FaultPlan(drop_probability=0.5, seed=1))
        for record in paper_records:
            service.insert_record(record)
        query = FieldQuery(ARTICLE_SCHEMA, AUTHOR)
        traces = [engine.search(query, paper_records[0]) for _ in range(30)]
        assert any(t.failed_sends for t in traces)
        for trace in traces:
            # Interactions count only completed exchanges.
            assert trace.interactions <= engine.max_interactions
            assert trace.failed_sends >= trace.retries

    def test_gave_up_on_total_loss(self, paper_records):
        _, service, engine = build_faulty(FaultPlan(drop_probability=1.0, seed=2))
        for record in paper_records:
            service.insert_record(record)
        trace = engine.search(FieldQuery(ARTICLE_SCHEMA, AUTHOR), paper_records[0])
        assert not trace.found
        assert trace.gave_up
        assert trace.interactions == 0
        assert trace.retries == engine.max_retries
        assert trace.failed_sends == engine.max_retries + 1

    def test_budget_bounds_retry_storm(self, paper_records):
        ring, service, _ = build_faulty(FaultPlan(drop_probability=1.0, seed=2))
        for record in paper_records:
            service.insert_record(record)
        engine = LookupEngine(
            service, user="user:tight", max_interactions=3, max_retries=99
        )
        trace = engine.search(FieldQuery(ARTICLE_SCHEMA, AUTHOR), paper_records[0])
        assert trace.gave_up
        # Budget of 3: first exchange (1) + backoff (1) + retry (1) = spent.
        assert trace.failed_sends <= 3

    def test_reliable_network_unchanged(self, paper_records):
        _, service, engine = build_faulty(FaultPlan())
        for record in paper_records:
            service.insert_record(record)
        trace = engine.search(FieldQuery(ARTICLE_SCHEMA, AUTHOR), paper_records[0])
        assert trace.found
        assert trace.retries == 0
        assert trace.failed_sends == 0
        assert not trace.gave_up


class TestReplicaFailover:
    def test_crashed_primary_served_by_replica(self, paper_records):
        _, service, engine = build_faulty(FaultPlan(), replication=3)
        for record in paper_records:
            service.insert_record(record)
        query = FieldQuery(ARTICLE_SCHEMA, AUTHOR)
        replicas = service.index_store.responsible_nodes(query.key())
        assert len(replicas) == 3
        service.transport.fail_node(service.endpoint_name(replicas[0]))
        for _ in range(6):  # rotation passes over the dead replica
            trace = engine.search(query, paper_records[0])
            assert trace.found

    def test_all_replicas_down_gives_up(self, paper_records):
        _, service, engine = build_faulty(FaultPlan(), replication=2)
        for record in paper_records:
            service.insert_record(record)
        query = FieldQuery(ARTICLE_SCHEMA, AUTHOR)
        for node in service.index_store.responsible_nodes(query.key()):
            service.transport.fail_node(service.endpoint_name(node))
        trace = engine.search(query, paper_records[0])
        assert not trace.found
        assert trace.gave_up

    def test_recovery_restores_service(self, paper_records):
        _, service, engine = build_faulty(FaultPlan(), replication=1)
        for record in paper_records:
            service.insert_record(record)
        query = FieldQuery(ARTICLE_SCHEMA, AUTHOR)
        (primary,) = service.index_store.responsible_nodes(query.key())
        name = service.endpoint_name(primary)
        service.transport.fail_node(name)
        assert not engine.search(query, paper_records[0]).found
        service.transport.recover_node(name)
        assert engine.search(query, paper_records[0]).found


class TestIdempotentUserRegistration:
    def test_reconstruction_shares_user_endpoint(self, small_service):
        first = LookupEngine(small_service, user="user:same")
        second = LookupEngine(small_service, user="user:same")
        assert small_service.transport.is_registered("user:same")
        assert first.user == second.user

    def test_reconstruction_after_unregister(self, small_service):
        LookupEngine(small_service, user="user:gone")
        small_service.transport.unregister("user:gone")
        LookupEngine(small_service, user="user:gone")  # must not raise
        assert small_service.transport.is_registered("user:gone")
