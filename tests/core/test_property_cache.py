"""Model-based property tests for the node cache.

A :class:`repro.core.cache.NodeCache` with LRU key eviction is checked
against a trivially correct reference model (a plain ordered dict with
explicit recency bookkeeping) under arbitrary interleavings of inserts
and lookups.
"""

from __future__ import annotations

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core.cache import NodeCache

KEYS = [f"q{i}" for i in range(8)]
TARGETS = [f"d{i}" for i in range(5)]
CAPACITY = 3
ENTRY_CAPACITY = 2


class _ReferenceCache:
    """Straight-line reference implementation of the cache semantics."""

    def __init__(self) -> None:
        self.entries: OrderedDict[str, OrderedDict[str, None]] = OrderedDict()

    def insert(self, key: str, target: str) -> None:
        if key in self.entries:
            self.entries.move_to_end(key)
            targets = self.entries[key]
            if target in targets:
                targets.move_to_end(target)
            else:
                if len(targets) >= ENTRY_CAPACITY:
                    targets.popitem(last=False)
                targets[target] = None
            return
        if len(self.entries) >= CAPACITY:
            self.entries.popitem(last=False)
        self.entries[key] = OrderedDict([(target, None)])

    def lookup(self, key: str):
        if key not in self.entries:
            return None
        self.entries.move_to_end(key)
        return list(self.entries[key])


class CacheMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self.cache = NodeCache(capacity=CAPACITY, entry_capacity=ENTRY_CAPACITY)
        self.model = _ReferenceCache()

    @rule(key=st.sampled_from(KEYS), msd=st.sampled_from(TARGETS))
    def insert(self, key: str, msd: str) -> None:
        self.cache.insert(key, msd)
        self.model.insert(key, msd)

    @rule(key=st.sampled_from(KEYS))
    def lookup(self, key: str) -> None:
        entry = self.cache.lookup(key)
        expected = self.model.lookup(key)
        if expected is None:
            assert entry is None
        else:
            assert entry is not None
            assert sorted(entry) == sorted(expected)

    @invariant()
    def capacity_respected(self) -> None:
        assert len(self.cache) <= CAPACITY
        assert self.cache.shortcut_count() <= CAPACITY * ENTRY_CAPACITY

    @invariant()
    def same_keys_as_model(self) -> None:
        model_keys = set(self.model.entries)
        cache_keys = {key for key in KEYS if self.cache.peek(key) is not None}
        assert cache_keys == model_keys


CacheMachine.TestCase.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)
TestCacheAgainstModel = CacheMachine.TestCase


@given(
    st.lists(
        st.tuples(st.sampled_from(KEYS), st.sampled_from(TARGETS)),
        min_size=1,
        max_size=60,
    )
)
@settings(max_examples=120, deadline=None)
def test_unbounded_cache_never_evicts(operations):
    cache = NodeCache()  # unbounded keys
    for key, target in operations:
        cache.insert(key, target)
    assert len(cache) == len({key for key, _ in operations})
    assert cache.evictions == 0


@given(
    st.lists(
        st.tuples(st.sampled_from(KEYS), st.sampled_from(TARGETS)),
        min_size=1,
        max_size=60,
    ),
    st.integers(1, 5),
)
@settings(max_examples=120, deadline=None)
def test_most_recent_key_always_survives(operations, capacity):
    cache = NodeCache(capacity=capacity)
    for key, target in operations:
        cache.insert(key, target)
    last_key, last_target = operations[-1]
    entry = cache.peek(last_key)
    assert entry is not None
    assert last_target in entry
