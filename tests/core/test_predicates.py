"""Unit tests for the predicate algebra (matching, covering, spelling)."""

import pytest

from repro.core.fields import SchemaError
from repro.core.predicates import (
    Exact,
    PredicateError,
    Prefix,
    Range,
    Wildcard,
    coerce,
)


class TestValidation:
    def test_exact_rejects_empty(self):
        with pytest.raises(PredicateError):
            Exact("")

    def test_exact_rejects_reserved_tags(self):
        with pytest.raises(PredicateError):
            Exact("prefix:Al")
        with pytest.raises(PredicateError):
            Exact("range:1:2")

    def test_exact_rejects_wildcard_and_quote_chars(self):
        for bad in ("Al*n", 'A"B', "A'B"):
            with pytest.raises(PredicateError):
                Exact(bad)

    def test_prefix_rejects_empty_and_non_bareword(self):
        with pytest.raises(PredicateError):
            Prefix("")
        with pytest.raises(PredicateError):
            Prefix("a b")

    def test_wildcard_requires_star(self):
        with pytest.raises(PredicateError):
            Wildcard("Alan")
        with pytest.raises(PredicateError):
            Wildcard('A*"')

    def test_range_rejects_empty_and_non_numeric(self):
        with pytest.raises(PredicateError):
            Range(2000, 1995)
        with pytest.raises(PredicateError):
            Range("abc", "def")

    def test_predicate_error_is_schema_error(self):
        # Callers catching SchemaError keep working across the refactor.
        with pytest.raises(SchemaError):
            Exact("")


class TestMatching:
    def test_exact(self):
        assert Exact("Alan_Doe").matches("Alan_Doe")
        assert not Exact("Alan_Doe").matches("Alan")

    def test_prefix(self):
        assert Prefix("Al").matches("Alan_Doe")
        assert not Prefix("Al").matches("John")

    @pytest.mark.parametrize(
        "pattern,value,expected",
        [
            ("*", "anything", True),
            ("Al*", "Alan", True),
            ("*n", "Alan", True),
            ("Al*n", "Alan", True),
            ("Al*n", "Aln", True),  # '*' may span the empty string
            ("Al*l", "Al", False),  # segments must not overlap
            ("Al*l", "All", True),
            ("A*a*e", "Abigail_Rose", True),
            ("A*a*e", "Abe", False),
            ("Al*n", "John", False),
        ],
    )
    def test_wildcard(self, pattern, value, expected):
        assert Wildcard(pattern).matches(value) is expected

    def test_range(self):
        year = Range(1995, 2000)
        assert year.matches("1996")
        assert year.matches("1995") and year.matches("2000")
        assert not year.matches("1994")
        assert not year.matches("not_a_year")


class TestCovering:
    """The implication truth table (sound, conservative on wildcards)."""

    def test_exact_covers_only_equal_exact(self):
        assert Exact("A").covers(Exact("A"))
        assert not Exact("A").covers(Exact("B"))
        assert not Exact("Alan").covers(Prefix("Alan"))

    def test_prefix_covering(self):
        assert Prefix("Al").covers(Exact("Alan_Doe"))
        assert Prefix("Al").covers(Prefix("Alan"))
        assert not Prefix("Alan").covers(Prefix("Al"))
        assert Prefix("Al").covers(Wildcard("Alan*"))
        assert not Prefix("Al").covers(Wildcard("*Al"))
        assert not Prefix("19").covers(Range(1995, 1999))

    def test_wildcard_universal_covers_everything(self):
        star = Wildcard("*")
        for other in (Exact("x"), Prefix("x"), Wildcard("x*"), Range(1, 2)):
            assert star.covers(other)

    def test_wildcard_covering(self):
        assert Wildcard("Al*").covers(Exact("Alan"))
        assert Wildcard("Al*").covers(Prefix("Alan"))
        assert not Wildcard("Al*n").covers(Prefix("Alan"))  # tail not free
        assert Wildcard("Al*").covers(Wildcard("Alan*"))
        assert Wildcard("A*e").covers(Wildcard("A*e"))
        assert not Wildcard("A*e").covers(Wildcard("A*f"))

    def test_range_covering(self):
        assert Range(1990, 2000).covers(Range(1995, 1999))
        assert not Range(1995, 1999).covers(Range(1990, 2000))
        assert Range(1990, 2000).covers(Exact("1995"))
        assert not Range(1990, 2000).covers(Exact("2001"))
        assert not Range(1990, 2000).covers(Prefix("19"))

    def test_covering_implies_match_subset(self):
        # Spot-check soundness: whenever covers() says yes, every
        # matching value of the specific also matches the general.
        values = ["Alan_Doe", "Alan", "Al", "John_Smith", "1995", "1999"]
        preds = [
            Exact("Alan_Doe"), Prefix("Al"), Prefix("Alan"),
            Wildcard("Al*"), Wildcard("*n"), Wildcard("A*e"),
            Range(1990, 2000), Range(1995, 1999),
        ]
        for general in preds:
            for specific in preds:
                if general.covers(specific):
                    for value in values:
                        if specific.matches(value):
                            assert general.matches(value), (
                                general, specific, value
                            )


class TestRanksAndAnchors:
    def test_rank_ordering(self):
        assert Exact("A").rank() > Prefix("Alan_Doe_Longest").rank()
        assert Prefix("Alan").rank() > Prefix("Al").rank()
        assert Wildcard("Al*n").rank() == 3
        assert Range(1, 2).rank() == 0

    def test_trie_anchors(self):
        assert Exact("Alan").trie_anchor == "Alan"
        assert Prefix("Al").trie_anchor == "Al"
        assert Wildcard("Al*n").trie_anchor == "Al"
        assert Wildcard("*n").trie_anchor == ""
        assert Range(1995, 1999).trie_anchor == "199"
        assert Range(1950, 1999).trie_anchor == "19"
        assert Range(1995, 2000).trie_anchor == ""
        assert Range(995, 1005).trie_anchor == ""  # differing widths


class TestCoerce:
    def test_passthrough_and_spellings(self):
        assert coerce(Prefix("Al")) == Prefix("Al")
        assert coerce("prefix:Al") == Prefix("Al")
        assert coerce("range:1995:2000") == Range(1995, 2000)
        assert coerce("Al*n") == Wildcard("Al*n")
        assert coerce("Alan_Doe") == Exact("Alan_Doe")

    def test_malformed_spellings_raise(self):
        for bad in ("prefix:", "range:1995", "range::2000", "range:a:b"):
            with pytest.raises(PredicateError):
                coerce(bad)
