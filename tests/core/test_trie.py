"""Tests for the trie-over-DHT index and its engine-folded lookups."""

import pytest

from conftest_helpers import build_engine_stack
from repro.core.engine import LookupEngine
from repro.core.fields import ARTICLE_SCHEMA, SchemaError
from repro.core.predicates import Prefix, Range, Wildcard
from repro.core.query import FieldQuery
from repro.core.scheme import FieldPredicates, article_predicates, simple_scheme
from repro.core.trie import TrieIndex
from repro.obs.tracer import Tracer
from repro.perf import counters


@pytest.fixture
def trie_stack(paper_records):
    scheme = simple_scheme(predicates=article_predicates())
    service, engine = build_engine_stack(scheme)
    for record in paper_records:
        service.insert_record(record)
    trie = TrieIndex(service)
    trie.insert_all(paper_records)
    return service, engine, trie


class TestConstruction:
    def test_requires_trie_levels(self):
        scheme = simple_scheme()  # no predicate declarations
        service, _ = build_engine_stack(scheme)
        with pytest.raises(SchemaError):
            TrieIndex(service)

    def test_chain_structure(self, trie_stack, paper_records):
        _, _, trie = trie_stack
        alan = paper_records[2]  # Alan_Doe / Wavelets / INFOCOM / 1996
        chain = [q.key() for q in trie.chain_for(alan, "author")]
        assert chain == [
            '/article[author[name="*"]]',
            "/article[author[name[prefix:A]]]",
            "/article[author[name[prefix:Al]]]",
            "/article[author[name[Alan_Doe]]]",
        ]

    def test_year_chain_uses_declared_levels(self, trie_stack, paper_records):
        _, _, trie = trie_stack
        chain = [q.key() for q in trie.chain_for(paper_records[0], "year")]
        # year declares levels (2, 3): 19 -> 198 -> 1989.
        assert chain == [
            '/article[year="*"]',
            "/article[year[prefix:19]]",
            "/article[year[prefix:198]]",
            "/article[year[1989]]",
        ]

    def test_links_are_ordinary_index_entries(self, trie_stack):
        service, _, _ = trie_stack
        root = FieldQuery(ARTICLE_SCHEMA, {"author": Wildcard("*")})
        children = service.index_store.get(root.key()).values
        assert "/article[author[name[prefix:A]]]" in children
        assert "/article[author[name[prefix:J]]]" in children


class TestWalks:
    def test_prefix_walk_counts_interactions(self, trie_stack, paper_records):
        _, engine, _ = trie_stack
        alan = paper_records[2]
        # prefix:Al is itself a trie node: Al -> Alan_Doe -> author+title
        # -> fetch.
        trace = engine.search(
            FieldQuery(ARTICLE_SCHEMA, {"author": Prefix("Al")}), alan
        )
        assert trace.found
        assert trace.errors == 0
        assert trace.interactions == 4

    def test_shallow_prefix_descends_extra_level(
        self, trie_stack, paper_records
    ):
        _, engine, _ = trie_stack
        alan = paper_records[2]
        trace = engine.search(
            FieldQuery(ARTICLE_SCHEMA, {"author": Prefix("A")}), alan
        )
        assert trace.found and trace.errors == 0
        assert trace.interactions == 5

    def test_range_walk_from_field_root(self, trie_stack, paper_records):
        _, engine, _ = trie_stack
        alan = paper_records[2]  # year 1996
        before = counters.trie_walks
        # 1995..2000 spans the 19/20 prefixes: anchor is empty, so the
        # walk starts at the field root and is fully bounded by the
        # declared levels.
        trace = engine.search(
            FieldQuery(ARTICLE_SCHEMA, {"year": Range(1995, 2000)}), alan
        )
        assert trace.found and trace.errors == 0
        assert counters.trie_walks == before + 1
        visited_keys = [key for _, key in trace.visited]
        assert visited_keys[0] == '/article[year="*"]'
        assert "/article[year[prefix:19]]" in visited_keys

    def test_wildcard_walk_uses_literal_anchor(self, trie_stack, paper_records):
        _, engine, _ = trie_stack
        alan = paper_records[2]
        trace = engine.search(
            FieldQuery(ARTICLE_SCHEMA, {"author": Wildcard("Al*e")}), alan
        )
        assert trace.found and trace.errors == 0
        assert trace.visited[0][1] == "/article[author[name[prefix:Al]]]"

    def test_exact_queries_bypass_the_trie(self, trie_stack, paper_records):
        _, engine, _ = trie_stack
        before = counters.trie_walks
        trace = engine.search(
            FieldQuery.of_record(paper_records[0], ["author"]),
            paper_records[0],
        )
        assert trace.found
        assert counters.trie_walks == before


class TestObservability:
    """Satellite 1: predicate lookups emit the same tracer events and
    perf counters as ordinary chains (they *are* ordinary chains now)."""

    def test_prefix_search_emits_index_and_fetch_steps(self, paper_records):
        scheme = simple_scheme(predicates=article_predicates())
        service, _ = build_engine_stack(scheme)
        for record in paper_records:
            service.insert_record(record)
        TrieIndex(service).insert_all(paper_records)
        tracer = Tracer()
        engine = LookupEngine(service, user="user:traced", tracer=tracer)
        alan = paper_records[2]
        trace = engine.search(
            FieldQuery(ARTICLE_SCHEMA, {"author": Prefix("Al")}), alan
        )
        assert trace.found
        kinds = [event["kind"] for event in tracer.events]
        assert kinds.count("index_step") == 3
        assert kinds.count("fetch_step") == 1
        index_queries = [
            event["query"]
            for event in tracer.events
            if event["kind"] == "index_step"
        ]
        assert index_queries[0] == "/article[author[name[prefix:Al]]]"
        ends = [e for e in tracer.events if e["kind"] == "lookup_end"]
        assert len(ends) == 1 and ends[0]["found"] is True

    def test_prefix_search_counts_service_queries(self, paper_records):
        scheme = simple_scheme(predicates=article_predicates())
        service, engine = build_engine_stack(scheme)
        for record in paper_records:
            service.insert_record(record)
        TrieIndex(service).insert_all(paper_records)
        before = counters.service_queries
        engine.search(
            FieldQuery(ARTICLE_SCHEMA, {"author": Prefix("Al")}),
            paper_records[2],
        )
        assert counters.service_queries == before + 3


class TestSchemeValidation:
    def test_levels_without_kinds_rejected(self):
        with pytest.raises(Exception):
            FieldPredicates(kinds=(), trie_levels=(1, 2))

    def test_levels_must_increase(self):
        with pytest.raises(Exception):
            FieldPredicates(kinds=("prefix",), trie_levels=(2, 2))

    def test_declaration_on_unknown_field_rejected(self):
        from repro.core.scheme import SchemeValidationError

        with pytest.raises(SchemeValidationError):
            simple_scheme(
                predicates={
                    "publisher": FieldPredicates(("prefix",), (1,))
                }
            )
