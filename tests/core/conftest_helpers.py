"""Importable helpers for core-layer tests (kept out of conftest so
property tests can import them under pytest's rootdir-based sys.path)."""

from __future__ import annotations

from repro.core.cache import CachePolicy
from repro.core.engine import LookupEngine
from repro.core.fields import ARTICLE_SCHEMA
from repro.core.service import IndexService
from repro.dht.idspace import hash_key
from repro.dht.ring import IdealRing
from repro.net.transport import SimulatedTransport
from repro.storage.store import DHTStorage


def build_engine_stack(scheme, cache_policy=CachePolicy.NONE, cache_capacity=None):
    """A small ring + service + engine stack for search tests."""
    ring = IdealRing(64)
    for index in range(16):
        ring.add_node(hash_key(f"node-{index}", 64))
    transport = SimulatedTransport()
    service = IndexService(
        ARTICLE_SCHEMA,
        scheme,
        DHTStorage(ring),
        DHTStorage(ring),
        transport,
        cache_policy=cache_policy,
        cache_capacity=cache_capacity,
    )
    return service, LookupEngine(service, user="user:prop")
