"""Tests for the per-schema FieldQuery parse cache and engine hoisting.

The seed keyed its parse cache on ``id(schema)``: after a schema was
garbage-collected, a new schema allocated at the same address would be
served queries bound to the dead schema.  The cache now lives on the
schema instance itself, so its lifetime is the schema's lifetime, and it
evicts least-recently-used entries instead of clearing wholesale.
"""

from __future__ import annotations

from repro import perf
from repro.core.engine import LookupEngine
from repro.core.fields import ARTICLE_SCHEMA, Record, Schema
from repro.core.query import FieldQuery


def _fresh_schema() -> Schema:
    return Schema(
        root="article",
        fields={
            "author": "author/name",
            "title": "title",
            "conf": "conf",
            "year": "year",
        },
        admin={"size": "size"},
    )


class TestPerSchemaParseCache:
    def test_repeat_parse_returns_cached_object(self):
        schema = _fresh_schema()
        text = schema.xpath_for({"author": "John_Smith"})
        first = FieldQuery.parse(schema, text)
        second = FieldQuery.parse(schema, text)
        assert first is second

    def test_cache_counts_hits_and_misses(self):
        schema = _fresh_schema()
        text = schema.xpath_for({"title": "TCP"})
        before = perf.snapshot()
        FieldQuery.parse(schema, text)
        FieldQuery.parse(schema, text)
        delta = perf.delta(before, perf.snapshot())
        assert delta["field_parse_calls"] == 2
        assert delta["field_parse_cache_misses"] == 1
        assert delta["field_parse_cache_hits"] == 1

    def test_equal_schemas_have_independent_caches(self):
        """Two equal-valued schema instances must not share entries:
        FieldQuery binds by identity (``schema is other.schema``)."""
        schema_a = _fresh_schema()
        schema_b = _fresh_schema()
        text = schema_a.xpath_for({"conf": "SIGCOMM"})
        query_a = FieldQuery.parse(schema_a, text)
        query_b = FieldQuery.parse(schema_b, text)
        assert query_a is not query_b
        assert query_a.schema is schema_a
        assert query_b.schema is schema_b

    def test_cache_dies_with_schema(self):
        """The cache hangs off the instance: no global table keeps dead
        schemas (or their queries) alive, and a recycled id() can never
        resurface another schema's entries."""
        schema = _fresh_schema()
        text = schema.xpath_for({"year": "1996"})
        FieldQuery.parse(schema, text)
        assert FieldQuery._PARSE_CACHE_ATTR in schema.__dict__
        assert not hasattr(FieldQuery, "_parse_cache")  # seed global gone

    def test_lru_eviction_keeps_recent_entries(self, monkeypatch):
        monkeypatch.setattr(FieldQuery, "_PARSE_CACHE_LIMIT", 4)
        schema = _fresh_schema()
        texts = [
            schema.xpath_for({"year": str(1990 + i)}) for i in range(6)
        ]
        parsed = [FieldQuery.parse(schema, text) for text in texts]
        cache = schema.__dict__[FieldQuery._PARSE_CACHE_ATTR]
        assert len(cache) == 4
        # The most recent entries survived; the oldest two were evicted.
        assert FieldQuery.parse(schema, texts[-1]) is parsed[-1]
        assert FieldQuery.parse(schema, texts[0]) is not parsed[0]

    def test_lru_recency_is_updated_on_hit(self, monkeypatch):
        monkeypatch.setattr(FieldQuery, "_PARSE_CACHE_LIMIT", 2)
        schema = _fresh_schema()
        first = schema.xpath_for({"year": "1990"})
        second = schema.xpath_for({"year": "1991"})
        third = schema.xpath_for({"year": "1992"})
        kept = FieldQuery.parse(schema, first)
        FieldQuery.parse(schema, second)
        FieldQuery.parse(schema, first)  # refresh recency of `first`
        FieldQuery.parse(schema, third)  # evicts `second`, not `first`
        assert FieldQuery.parse(schema, first) is kept


class TestEngineHoisting:
    def test_generalization_order_precomputed(self, small_service):
        engine = LookupEngine(small_service, user="user:hoist")
        order = engine._generalization_order
        assert order, "generalization order must be precomputed"
        # Larger keysets come first; ties follow schema field order
        # (author before title before conf before year).
        sizes = [len(keyset) for keyset in order]
        assert sizes == sorted(sizes, reverse=True)
        pairs = [keyset for keyset in order if len(keyset) == 2]
        assert pairs[0] == frozenset({"author", "title"})

    def test_generalize_prefers_largest_then_selective(self, small_service):
        engine = LookupEngine(small_service, user="user:hoist2")
        record = Record(
            ARTICLE_SCHEMA,
            {
                "author": "A",
                "title": "T",
                "conf": "C",
                "year": "1996",
                "size": "1",
            },
        )
        full = FieldQuery.msd_of(record)
        attempted: set[frozenset[str]] = set()
        first = engine._generalize(full, attempted)
        assert first is not None
        assert first.fields == frozenset({"author", "title"})
        second = engine._generalize(full, attempted)
        assert second is not None
        assert second.fields == frozenset({"conf", "year"})
