"""Accounting invariants of the :mod:`repro.perf` cache counters.

Every cached operation advertises a ``(calls, hits, misses)`` triple in
:data:`repro.perf.CACHE_TRIPLES`; the instrumented layers must keep
``hits + misses == calls`` at every instant, and each counter must be
monotone between resets.  A realistic search workload drives all four
cached operations (normalize, pattern interning, covering memo, and the
``field_parse_*`` triple added by the FieldQuery parse cache) and checks
the books afterwards.
"""

from __future__ import annotations

from repro import perf
from repro.core.cache import CachePolicy
from repro.core.engine import LookupEngine
from repro.core.fields import ARTICLE_SCHEMA
from repro.core.scheme import simple_scheme
from repro.core.service import IndexService
from repro.dht.idspace import hash_key
from repro.dht.ring import IdealRing
from repro.net.transport import SimulatedTransport
from repro.storage.store import DHTStorage
from repro.workload.corpus import CorpusConfig, SyntheticCorpus
from repro.workload.querygen import QueryGenerator
from repro.xmlq.partial_order import PartialOrderGraph
from repro.xmlq.pattern import covers


def run_search_workload(num_queries: int = 200) -> None:
    """Drive every cached hot-path operation through real searches.

    Engine searches exercise the ``field_parse_*`` triple; the text-level
    covering checks and the partial-order build at the end exercise
    normalize, pattern interning, and the covers memo on the same mix.
    """
    ring = IdealRing(64)
    for index in range(16):
        ring.add_node(hash_key(f"peer-{index}", 64))
    service = IndexService(
        ARTICLE_SCHEMA,
        simple_scheme(),
        DHTStorage(ring),
        DHTStorage(ring),
        SimulatedTransport(),
        cache_policy=CachePolicy.SINGLE,
    )
    corpus = SyntheticCorpus(
        CorpusConfig(num_articles=64, num_authors=24, seed=5)
    )
    for record in corpus.records:
        service.insert_record(record)
    engine = LookupEngine(service, user="user:invariant")
    texts = []
    for item in QueryGenerator(corpus, seed=7).generate(num_queries):
        trace = engine.search(item.query, item.target)
        service.transport.meter.end_query()
        assert trace.found
        texts.append(item.query.key())
    for specific in texts[:20]:
        for general in texts[:5]:
            covers(general, specific)
    PartialOrderGraph(texts[:20])


class TestCacheTripleInvariants:
    def test_every_triple_names_real_counters(self):
        for triple in perf.CACHE_TRIPLES:
            for name in triple:
                assert name in perf.PerfCounters.__slots__, name

    def test_hits_plus_misses_equals_calls_after_workload(self):
        """The defining cache identity holds for every triple -- in
        particular ``field_parse_*``, whose calls counter must tick on
        every FieldQuery.parse, hit or miss."""
        before = perf.snapshot()
        run_search_workload()
        increments = perf.delta(before, perf.snapshot())
        for calls_name, hits_name, misses_name in perf.CACHE_TRIPLES:
            calls = increments[calls_name]
            hits = increments[hits_name]
            misses = increments[misses_name]
            assert calls > 0, f"workload never exercised {calls_name}"
            assert hits + misses == calls, (
                f"{calls_name}: {hits} hits + {misses} misses != "
                f"{calls} calls"
            )

    def test_counters_are_monotone_across_workloads(self):
        first = perf.snapshot()
        run_search_workload(num_queries=60)
        second = perf.snapshot()
        run_search_workload(num_queries=60)
        third = perf.snapshot()
        for name in perf.PerfCounters.__slots__:
            assert first[name] <= second[name] <= third[name], name

    def test_identity_holds_at_every_intermediate_snapshot(self):
        """Sampling mid-workload never catches the books unbalanced:
        the layers bump hit/miss in the same step as the call."""
        perf.reset()
        samples = []
        for _ in range(4):
            run_search_workload(num_queries=30)
            samples.append(perf.snapshot())
        for sample in samples:
            for calls_name, hits_name, misses_name in perf.CACHE_TRIPLES:
                assert (
                    sample[hits_name] + sample[misses_name]
                    == sample[calls_name]
                ), calls_name

    def test_cache_hit_rates_only_reports_exercised_triples(self):
        counters = perf.PerfCounters()
        assert counters.cache_hit_rates() == {}
        counters.field_parse_calls = 10
        counters.field_parse_cache_hits = 8
        counters.field_parse_cache_misses = 2
        assert counters.cache_hit_rates() == {"field_parse_calls": 0.8}
