"""Predicate queries through FieldQuery: round-trip, covering, oracle.

Satellite coverage for the algebra refactor:

- property test ``parse(key(q)) == q`` under hypothesis over all four
  predicate kinds (and mixed conjunctions);
- malformed ``prefix:`` / range spellings raise ``QueryParseError``;
- predicate covering pinned against the ``covers_uncached`` tree-pattern
  homomorphism oracle on the fragments where both apply: full agreement
  on the exact/range fragment (the oracle understands the comparison
  pair numerically), oracle ⟹ algebra on the prefix fragment (the
  ``prefix:`` tag is an opaque label to the homomorphism, so the oracle
  only confirms the equality sub-relation).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fields import ARTICLE_SCHEMA, Record, SchemaError
from repro.core.predicates import Exact, Prefix, Range, Wildcard
from repro.core.query import FieldQuery, QueryParseError
from repro.xmlq.pattern import covers_uncached

AUTHORS = ["John_Smith", "Alan_Doe", "Wei_Chen", "Maria_Garcia"]
TITLES = ["TCP", "IPv6", "Wavelets", "Routing", "Caching"]
YEARS = [1989, 1996, 2001]

author_predicates = st.one_of(
    st.sampled_from(AUTHORS).map(Exact),
    st.sampled_from(AUTHORS).flatmap(
        lambda a: st.integers(1, len(a)).map(lambda n: Prefix(a[:n]))
    ),
    st.sampled_from(AUTHORS).map(lambda a: Wildcard(f"{a[:2]}*{a[-1]}")),
    st.just(Wildcard("*")),
)
title_predicates = st.one_of(
    st.sampled_from(TITLES).map(Exact),
    st.sampled_from(TITLES).flatmap(
        lambda t: st.integers(1, len(t)).map(lambda n: Prefix(t[:n]))
    ),
)
year_predicates = st.one_of(
    st.sampled_from([str(y) for y in YEARS]).map(Exact),
    st.tuples(st.sampled_from(YEARS), st.integers(0, 6), st.integers(0, 6)).map(
        lambda t: Range(t[0] - t[1], t[0] + t[2])
    ),
)


@st.composite
def predicate_queries(draw):
    constraints = {}
    if draw(st.booleans()):
        constraints["author"] = draw(author_predicates)
    if draw(st.booleans()):
        constraints["title"] = draw(title_predicates)
    if draw(st.booleans()) or not constraints:
        constraints["year"] = draw(year_predicates)
    return FieldQuery(ARTICLE_SCHEMA, constraints)


class TestRoundTrip:
    @given(predicate_queries())
    @settings(max_examples=300, deadline=None)
    def test_parse_inverts_key(self, query):
        parsed = FieldQuery.parse(ARTICLE_SCHEMA, query.key())
        assert parsed == query
        assert parsed.key() == query.key()
        assert dict(parsed.predicate_items) == dict(query.predicate_items)

    @pytest.mark.parametrize(
        "constraints,key",
        [
            ({"author": Exact("Alan_Doe")}, "/article[author[name[Alan_Doe]]]"),
            ({"author": Prefix("Al")}, "/article[author[name[prefix:Al]]]"),
            ({"author": Wildcard("Al*n")}, '/article[author[name="Al*n"]]'),
            ({"year": Range(1995, 2000)}, "/article[year<=2000][year>=1995]"),
            ({"author": Wildcard("*")}, '/article[author[name="*"]]'),
        ],
    )
    def test_canonical_spellings(self, constraints, key):
        query = FieldQuery(ARTICLE_SCHEMA, constraints)
        assert query.key() == key
        assert FieldQuery.parse(ARTICLE_SCHEMA, key) == query


class TestMalformedRejection:
    @pytest.mark.parametrize(
        "key",
        [
            "/article[author[name[prefix:]]]",          # empty prefix
            "/article[author[name[range:1995:2000]]]",  # range leaf spelling
            "/article[year[range:1995:2000]]",
            "/article[year>=1995]",                      # missing upper bound
            "/article[year<=2000]",                      # missing lower bound
            "/article[year>=1995][year>=1996]",          # duplicate bound
            "/article[year<=x][year>=1995]",             # non-numeric bound
            "/article[year<=1990][year>=1995]",          # empty interval
            '/article[author[name="no_star"]]',          # comparison w/o '*'
        ],
    )
    def test_rejected(self, key):
        with pytest.raises(QueryParseError):
            FieldQuery.parse(ARTICLE_SCHEMA, key)


class TestCoveringOracle:
    @given(predicate_queries(), predicate_queries())
    @settings(max_examples=300, deadline=None)
    def test_oracle_implies_algebra(self, general, specific):
        # The homomorphism treats prefix:/wildcard spellings as opaque
        # labels, so whatever covering it *can* prove (equality-style
        # embeddings, range containment) the algebra must also accept.
        if covers_uncached(general.key(), specific.key()):
            assert general.covers(specific)

    @st.composite
    @staticmethod
    def exact_range_queries(draw):
        constraints = {}
        if draw(st.booleans()):
            constraints["author"] = Exact(draw(st.sampled_from(AUTHORS)))
        if draw(st.booleans()) or not constraints:
            constraints["year"] = draw(year_predicates)
        return FieldQuery(ARTICLE_SCHEMA, constraints)

    @given(exact_range_queries(), exact_range_queries())
    @settings(max_examples=300, deadline=None)
    def test_exact_range_fragment_agrees(self, general, specific):
        # Comparison predicates are understood numerically on both
        # sides, so the exact/range fragment agrees in both directions.
        assert general.covers(specific) == covers_uncached(
            general.key(), specific.key()
        )


class TestAlgebraOnQueries:
    record = Record(
        ARTICLE_SCHEMA,
        {
            "author": "Alan_Doe",
            "title": "Wavelets",
            "conf": "INFOCOM",
            "year": "1996",
            "size": "100",
        },
    )

    def test_covers_record_through_predicates(self):
        query = FieldQuery(
            ARTICLE_SCHEMA,
            {"author": Prefix("Al"), "year": Range(1990, 2000)},
        )
        assert query.covers_record(self.record)
        assert not FieldQuery(
            ARTICLE_SCHEMA, {"author": Prefix("J")}
        ).covers_record(self.record)

    def test_specialize_replaces_predicates_with_values(self):
        query = FieldQuery(
            ARTICLE_SCHEMA,
            {"author": Prefix("Al"), "year": Range(1990, 2000)},
        )
        specialized = query.specialize(self.record)
        assert specialized.is_exact()
        assert specialized == FieldQuery.of_record(
            self.record, ["author", "year"]
        )

    def test_specialize_requires_coverage(self):
        query = FieldQuery(ARTICLE_SCHEMA, {"author": Prefix("J")})
        with pytest.raises(SchemaError):
            query.specialize(self.record)

    def test_specificity_orders_exact_above_predicates(self):
        exact = FieldQuery(ARTICLE_SCHEMA, {"author": Exact("Alan_Doe")})
        prefix = FieldQuery(ARTICLE_SCHEMA, {"author": Prefix("Alan")})
        wild = FieldQuery(ARTICLE_SCHEMA, {"author": Wildcard("Al*")})
        assert exact.specificity() > prefix.specificity()
        assert prefix.specificity() > wild.specificity()
        two_fields = FieldQuery(
            ARTICLE_SCHEMA, {"author": Prefix("A"), "year": Range(1, 2)}
        )
        assert two_fields.specificity() > exact.specificity()

    def test_is_exact(self):
        assert FieldQuery(ARTICLE_SCHEMA, {"author": "Alan_Doe"}).is_exact()
        assert not FieldQuery(
            ARTICLE_SCHEMA, {"author": Prefix("Al")}
        ).is_exact()
