"""Unit tests for the distributed index service."""

import pytest

from repro.core.cache import CachePolicy
from repro.core.fields import ARTICLE_SCHEMA
from repro.core.query import FieldQuery
from repro.core.scheme import complex_scheme, flat_scheme, simple_scheme

@pytest.fixture
def service(paper_records, service_factory):
    service = service_factory()
    for record in paper_records:
        service.insert_record(record)
    return service


class TestInsertion:
    def test_file_stored_under_msd(self, service, paper_records):
        msd = FieldQuery.msd_of(paper_records[0])
        assert msd.key() in service.file_store

    def test_index_mappings_created(self, service, paper_records):
        author = FieldQuery.of_record(paper_records[0], ["author"])
        values = service.index_store.values(author.key())
        author_title = FieldQuery.of_record(paper_records[0], ["author", "title"])
        assert author_title.key() in values

    def test_shared_entries_deduplicated(self, service, paper_records):
        """d2 and d3 share INFOCOM/1996: one conf->conf+year mapping."""
        conf = FieldQuery(ARTICLE_SCHEMA, {"conf": "INFOCOM"})
        values = service.index_store.values(conf.key())
        assert len(values) == len(set(values)) == 1

    def test_query_returns_all_matching_entries(self, service, paper_records):
        author = FieldQuery(ARTICLE_SCHEMA, {"author": "John_Smith"})
        answer = service.query(author, user="user:test")
        assert len(answer.entries) == 2  # TCP and IPv6 author+title pairs


class TestQueryAndFetch:
    def test_query_unknown_key_is_empty(self, service):
        ghost = FieldQuery(ARTICLE_SCHEMA, {"author": "Nobody_Here"})
        answer = service.query(ghost, user="user:test")
        assert answer.empty

    def test_fetch_file(self, service, paper_records):
        msd = FieldQuery.msd_of(paper_records[0])
        node, found = service.fetch_file(msd, user="user:test")
        assert found
        assert node in service.file_store.protocol.node_ids

    def test_fetch_missing_file(self, service, paper_records):
        fake = FieldQuery.msd_of(paper_records[0]).extend({})
        service.file_store.remove_key(fake.key())
        _, found = service.fetch_file(fake, user="user:test")
        assert not found

    def test_query_traffic_metered(self, service, paper_records):
        before = service.transport.meter.normal_bytes
        author = FieldQuery(ARTICLE_SCHEMA, {"author": "John_Smith"})
        service.query(author, user="user:test")
        assert service.transport.meter.normal_bytes > before


class TestCachingPath:
    def test_shortcut_roundtrip(self, paper_records, service_factory):
        service = service_factory(cache_policy=CachePolicy.SINGLE)
        for record in paper_records:
            service.insert_record(record)
        author = FieldQuery(ARTICLE_SCHEMA, {"author": "John_Smith"})
        msd = FieldQuery.msd_of(paper_records[0])
        node = service.index_store.responsible_nodes(author.key())[0]
        service.insert_shortcut(node, author.key(), msd.key(), user="user:test")
        answer = service.query(author, user="user:test")
        assert msd.key() in answer.shortcuts
        assert msd.key() not in answer.entries

    def test_shortcut_counts_as_cache_traffic(self, paper_records, service_factory):
        service = service_factory(cache_policy=CachePolicy.SINGLE)
        service.insert_record(paper_records[0])
        author = FieldQuery(ARTICLE_SCHEMA, {"author": "John_Smith"})
        msd = FieldQuery.msd_of(paper_records[0])
        node = service.index_store.responsible_nodes(author.key())[0]
        before = service.transport.meter.cache_bytes
        service.insert_shortcut(node, author.key(), msd.key(), user="user:test")
        assert service.transport.meter.cache_bytes > before

    def test_shortcut_noop_without_policy(self, service, paper_records):
        author = FieldQuery(ARTICLE_SCHEMA, {"author": "John_Smith"})
        msd = FieldQuery.msd_of(paper_records[0])
        node = service.index_store.responsible_nodes(author.key())[0]
        service.insert_shortcut(node, author.key(), msd.key(), user="user:test")
        assert service.transport.meter.cache_bytes == 0
        assert service.query(author, user="user:test").shortcuts == []

    def test_permanent_shortcut_mapping(self, service, paper_records):
        service.insert_shortcut_mapping(paper_records[0], ["author"])
        author = FieldQuery(ARTICLE_SCHEMA, {"author": "John_Smith"})
        answer = service.query(author, user="user:test")
        msd = FieldQuery.msd_of(paper_records[0])
        assert msd.key() in answer.entries


class TestDeletion:
    def test_delete_removes_file_and_exclusive_entries(
        self, service, paper_records
    ):
        service.delete_record(paper_records[0])
        msd = FieldQuery.msd_of(paper_records[0])
        assert msd.key() not in service.file_store
        title = FieldQuery(ARTICLE_SCHEMA, {"title": "TCP"})
        assert service.query(title, user="user:test").empty

    def test_delete_preserves_shared_entries(self, service, paper_records):
        service.delete_record(paper_records[1])  # IPv6 (INFOCOM 1996)
        conf = FieldQuery(ARTICLE_SCHEMA, {"conf": "INFOCOM"})
        answer = service.query(conf, user="user:test")
        assert not answer.empty  # Wavelets still reachable

    def test_delete_preserves_author_for_remaining_articles(
        self, service, paper_records
    ):
        service.delete_record(paper_records[0])  # TCP
        author = FieldQuery(ARTICLE_SCHEMA, {"author": "John_Smith"})
        answer = service.query(author, user="user:test")
        assert len(answer.entries) == 1  # only IPv6 left

    def test_delete_unknown_record(self, service, paper_records):
        service.delete_record(paper_records[0])
        from repro.core.service import IndexServiceError

        with pytest.raises(IndexServiceError):
            service.delete_record(paper_records[0])

    def test_delete_then_reinsert(self, service, paper_records):
        service.delete_record(paper_records[0])
        service.insert_record(paper_records[0])
        title = FieldQuery(ARTICLE_SCHEMA, {"title": "TCP"})
        assert not service.query(title, user="user:test").empty


class TestStatistics:
    def test_cache_sizes_empty_without_policy(self, service):
        assert all(size == 0 for size in service.cache_sizes().values())

    def test_cache_occupancy(self, paper_records, service_factory):
        service = service_factory(
            cache_policy=CachePolicy.LRU, cache_capacity=1, num_nodes=4
        )
        service.insert_record(paper_records[0])
        empty, full, total = service.cache_occupancy()
        assert total == 4 and empty == 4 and full == 0

    def test_index_keys_per_node_counts_entries(self, service):
        per_node = service.index_keys_per_node()
        # 3 records x 6 simple-scheme mappings, minus 1 shared INFOCOM
        # pair mapping... plus 3 files.
        total_expected = (
            service.index_store.total_entries() + service.file_store.total_entries()
        )
        assert sum(per_node.values()) == total_expected

    def test_index_storage_bytes_positive(self, service):
        assert service.index_storage_bytes() > 0

    def test_scheme_comparison_storage(self, paper_records, service_factory):
        """Flat must cost more index bytes than simple (Section V-B)."""
        sizes = {}
        for name, scheme in (
            ("simple", simple_scheme()),
            ("flat", flat_scheme()),
            ("complex", complex_scheme()),
        ):
            service = service_factory(scheme=scheme)
            for record in paper_records:
                service.insert_record(record)
            sizes[name] = service.index_storage_bytes()
        assert sizes["flat"] > sizes["simple"]


class TestValidation:
    def test_mismatched_substrates_rejected(self, ring_factory):
        from repro.core.service import IndexService, IndexServiceError
        from repro.net.transport import SimulatedTransport
        from repro.storage.store import DHTStorage

        with pytest.raises(IndexServiceError):
            IndexService(
                ARTICLE_SCHEMA,
                simple_scheme(),
                DHTStorage(ring_factory()),
                DHTStorage(ring_factory()),
                SimulatedTransport(),
            )


class TestFileLevelQuery:
    def test_msd_query_reports_file(self, service, paper_records):
        """Section IV-B: the node returns f when q is f's MSD."""
        msd = FieldQuery.msd_of(paper_records[0])
        answer = service.query(msd, user="user:test")
        assert answer.file_found
        assert not answer.empty

    def test_msd_query_after_delete_reports_nothing(self, service, paper_records):
        msd = FieldQuery.msd_of(paper_records[0])
        service.delete_record(paper_records[0])
        answer = service.query(msd, user="user:test")
        assert not answer.file_found

    def test_non_msd_query_has_no_file_marker(self, service):
        author = FieldQuery(ARTICLE_SCHEMA, {"author": "John_Smith"})
        answer = service.query(author, user="user:test")
        assert not answer.file_found
        assert all(not e.startswith("!") for e in answer.entries)
