"""Property-based tests for the core indexing layer.

Key invariants:

- FieldQuery covering is *equivalent* to the tree-pattern homomorphism on
  canonical text (the //-free, *-free fragment where the homomorphism is
  complete);
- canonical keys are injective on distinct queries and stable;
- every search for data that exists succeeds, regardless of query shape,
  scheme, or cache policy, and its interaction count is bounded by the
  scheme's chain length plus generalization overhead.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cache import CachePolicy
from repro.core.fields import ARTICLE_SCHEMA, Record
from repro.core.query import FieldQuery
from repro.core.scheme import complex_scheme, flat_scheme, simple_scheme
from repro.xmlq.pattern import covers as pattern_covers

AUTHORS = ["John_Smith", "Alan_Doe", "Wei_Chen", "Maria_Garcia"]
TITLES = ["TCP", "IPv6", "Wavelets", "Routing", "Caching"]
CONFS = ["SIGCOMM", "INFOCOM", "ICDCS"]
YEARS = ["1989", "1996", "2001"]

records = st.builds(
    lambda a, t, c, y, s: Record(
        ARTICLE_SCHEMA,
        {"author": a, "title": t, "conf": c, "year": y, "size": str(s)},
    ),
    st.sampled_from(AUTHORS),
    st.sampled_from(TITLES),
    st.sampled_from(CONFS),
    st.sampled_from(YEARS),
    st.integers(10_000, 999_999),
)

field_subsets = st.sets(
    st.sampled_from(["author", "title", "conf", "year"]), min_size=1
)


@st.composite
def query_pairs(draw):
    record = draw(records)
    general = FieldQuery.of_record(record, draw(field_subsets))
    other = draw(records)
    use_same = draw(st.booleans())
    base = record if use_same else other
    specific = FieldQuery.of_record(base, draw(field_subsets))
    return general, specific


class TestCoveringEquivalence:
    @given(query_pairs())
    @settings(max_examples=300, deadline=None)
    def test_field_covering_equals_pattern_containment(self, pair):
        general, specific = pair
        assert general.covers(specific) == pattern_covers(
            general.key(), specific.key()
        )

    @given(records, field_subsets)
    @settings(max_examples=200, deadline=None)
    def test_projection_always_covers_msd(self, record, fields):
        projected = FieldQuery.of_record(record, fields)
        msd = FieldQuery.msd_of(record)
        assert projected.covers(msd)
        assert projected.covers_record(record)

    @given(records, field_subsets)
    @settings(max_examples=200, deadline=None)
    def test_key_parse_roundtrip(self, record, fields):
        query = FieldQuery.of_record(record, fields)
        assert FieldQuery.parse(ARTICLE_SCHEMA, query.key()) == query

    @given(records, records, field_subsets, field_subsets)
    @settings(max_examples=200, deadline=None)
    def test_key_injective(self, r1, r2, f1, f2):
        q1 = FieldQuery.of_record(r1, f1)
        q2 = FieldQuery.of_record(r2, f2)
        assert (q1 == q2) == (q1.key() == q2.key())


class TestSearchTotality:
    @given(
        st.lists(records, min_size=1, max_size=8, unique_by=lambda r: r.values["title"]),
        st.integers(0, 7),
        field_subsets,
        st.sampled_from(["simple", "flat", "complex"]),
        st.sampled_from(["none", "multi", "single", "lru10"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_every_existing_record_is_findable(
        self, record_list, target_index, fields, scheme_name, cache_name
    ):
        from conftest_helpers import build_engine_stack

        schemes = {
            "simple": simple_scheme,
            "flat": flat_scheme,
            "complex": complex_scheme,
        }
        policy, capacity = CachePolicy.parse(cache_name)
        service, engine = build_engine_stack(
            schemes[scheme_name](), policy, capacity
        )
        for record in record_list:
            service.insert_record(record)
        target = record_list[target_index % len(record_list)]
        query = FieldQuery.of_record(target, fields)
        trace = engine.search(query, target)
        assert trace.found
        # Bounded cost: worst chain (4 for complex) + generalization
        # detours (at most one per index class) + final fetch.
        assert trace.interactions <= 10

    @given(
        st.lists(records, min_size=2, max_size=6, unique_by=lambda r: r.values["title"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_deletion_makes_unreachable_without_breaking_others(
        self, record_list
    ):
        from conftest_helpers import build_engine_stack

        service, engine = build_engine_stack(simple_scheme(), CachePolicy.NONE, None)
        for record in record_list:
            service.insert_record(record)
        victim, survivor = record_list[0], record_list[1]
        service.delete_record(victim)
        gone = engine.search(
            FieldQuery.of_record(victim, ["title"]), victim
        )
        assert not gone.found
        alive = engine.search(
            FieldQuery.of_record(survivor, ["title"]), survivor
        )
        assert alive.found
