"""Cross-layer consistency: core field semantics vs xmlq XML semantics.

The core layer reasons about records and field queries; the xmlq layer
reasons about XML descriptors and XPath text.  The system is coherent
only if they always agree:

    query.covers_record(record)  ==  matches(record.descriptor(), query.key())
    query.covers(other)          ==  covers(query.key(), other.key())

These properties are exercised over randomized records and field subsets.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fields import ARTICLE_SCHEMA, Record
from repro.core.query import FieldQuery
from repro.xmlq.evaluator import matches
from repro.xmlq.pattern import covers, descriptor_to_pattern

AUTHORS = ["John_Smith", "Alan_Doe", "Wei_Chen"]
TITLES = ["TCP", "IPv6", "Wavelets", "Routing"]
CONFS = ["SIGCOMM", "INFOCOM"]
YEARS = ["1989", "1996"]

records = st.builds(
    lambda a, t, c, y, s: Record(
        ARTICLE_SCHEMA,
        {"author": a, "title": t, "conf": c, "year": y, "size": str(s)},
    ),
    st.sampled_from(AUTHORS),
    st.sampled_from(TITLES),
    st.sampled_from(CONFS),
    st.sampled_from(YEARS),
    st.integers(10_000, 999_999),
)

field_subsets = st.sets(
    st.sampled_from(["author", "title", "conf", "year"]), min_size=1
)


@given(records, records, field_subsets)
@settings(max_examples=300, deadline=None)
def test_covers_record_equals_xml_matching(query_source, target, fields):
    """Field-level record matching == XPath evaluation on the descriptor."""
    query = FieldQuery.of_record(query_source, fields)
    assert query.covers_record(target) == matches(
        target.descriptor(), query.key()
    )


@given(records, field_subsets)
@settings(max_examples=200, deadline=None)
def test_msd_key_matches_only_its_own_descriptor(record, fields):
    msd = FieldQuery.msd_of(record)
    assert matches(record.descriptor(), msd.key())
    projected = FieldQuery.of_record(record, fields)
    assert matches(record.descriptor(), projected.key())


@given(records, records, field_subsets)
@settings(max_examples=200, deadline=None)
def test_pattern_covering_of_descriptor_agrees(query_source, target, fields):
    """covers(query, descriptor-pattern) == covers_record."""
    query = FieldQuery.of_record(query_source, fields)
    pattern = descriptor_to_pattern(target.descriptor())
    assert covers(query.key(), pattern) == query.covers_record(target)


@given(records, field_subsets, field_subsets)
@settings(max_examples=200, deadline=None)
def test_restriction_monotone_in_matching(record, fields_a, fields_b):
    """A query over more fields never matches more descriptors."""
    union = fields_a | fields_b
    narrow = FieldQuery.of_record(record, union)
    broad = FieldQuery.of_record(record, fields_a)
    # broad covers narrow; so anything narrow matches, broad matches.
    assert broad.covers(narrow)
    assert covers(broad.key(), narrow.key())
