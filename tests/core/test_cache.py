"""Unit tests for the adaptive cache policies (Section IV-C / V-D)."""

import pytest

from repro.core.cache import CacheEntry, CachePolicy, NodeCache


class TestPolicyParsing:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("none", (CachePolicy.NONE, None)),
            ("multi", (CachePolicy.MULTI, None)),
            ("single", (CachePolicy.SINGLE, None)),
            ("lru10", (CachePolicy.LRU, 10)),
            ("LRU30", (CachePolicy.LRU, 30)),
            ("  single  ", (CachePolicy.SINGLE, None)),
        ],
    )
    def test_parse(self, text, expected):
        assert CachePolicy.parse(text) == expected

    @pytest.mark.parametrize("text", ["lru", "lru0", "lru-5", "bogus", ""])
    def test_parse_rejects(self, text):
        with pytest.raises(ValueError):
            CachePolicy.parse(text)

    def test_flags(self):
        assert not CachePolicy.NONE.caches_enabled
        assert CachePolicy.MULTI.all_path_nodes
        assert not CachePolicy.SINGLE.all_path_nodes


class TestCacheEntry:
    def test_bounded_targets(self):
        entry = CacheEntry(capacity=2)
        entry.add("a")
        entry.add("b")
        entry.add("c")
        assert len(entry) == 2
        assert "a" not in entry and "c" in entry

    def test_readd_refreshes_recency(self):
        entry = CacheEntry(capacity=2)
        entry.add("a")
        entry.add("b")
        entry.add("a")  # refresh
        entry.add("c")  # evicts b, not a
        assert "a" in entry and "b" not in entry

    def test_add_reports_change(self):
        entry = CacheEntry()
        assert entry.add("a")
        assert not entry.add("a")

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            CacheEntry(capacity=0)


class TestNodeCacheUnbounded:
    def test_insert_and_lookup(self):
        cache = NodeCache()
        cache.insert("q", "d")
        entry = cache.lookup("q")
        assert entry is not None and "d" in entry

    def test_miss_counted(self):
        cache = NodeCache()
        assert cache.lookup("nope") is None
        assert cache.misses == 1

    def test_hit_counted(self):
        cache = NodeCache()
        cache.insert("q", "d")
        cache.lookup("q")
        assert cache.hits == 1

    def test_peek_does_not_touch_counters(self):
        cache = NodeCache()
        cache.insert("q", "d")
        cache.peek("q")
        cache.peek("other")
        assert cache.hits == 0 and cache.misses == 0

    def test_never_full(self):
        cache = NodeCache()
        for index in range(1000):
            cache.insert(f"q{index}", "d")
        assert not cache.is_full
        assert len(cache) == 1000

    def test_shortcut_count(self):
        cache = NodeCache()
        cache.insert("q", "d1")
        cache.insert("q", "d2")
        cache.insert("p", "d1")
        assert cache.shortcut_count() == 3

    def test_clear(self):
        cache = NodeCache()
        cache.insert("q", "d")
        cache.clear()
        assert len(cache) == 0


class TestNodeCacheLRU:
    def test_capacity_enforced(self):
        cache = NodeCache(capacity=3)
        for index in range(5):
            cache.insert(f"q{index}", "d")
        assert len(cache) == 3
        assert cache.evictions == 2
        assert cache.is_full

    def test_least_recently_used_evicted(self):
        cache = NodeCache(capacity=2)
        cache.insert("a", "d")
        cache.insert("b", "d")
        cache.lookup("a")          # refresh a
        cache.insert("c", "d")     # evicts b
        assert "a" in cache and "b" not in cache and "c" in cache

    def test_insert_refreshes_recency(self):
        cache = NodeCache(capacity=2)
        cache.insert("a", "d")
        cache.insert("b", "d")
        cache.insert("a", "d2")    # refresh a
        cache.insert("c", "d")     # evicts b
        assert "a" in cache and "b" not in cache

    def test_reinsert_same_key_not_evicting(self):
        cache = NodeCache(capacity=1)
        cache.insert("a", "d1")
        cache.insert("a", "d2")
        assert cache.evictions == 0
        entry = cache.peek("a")
        assert "d1" in entry and "d2" in entry

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            NodeCache(capacity=0)

    def test_paper_capacities(self):
        """The LRU variants evaluated: 10, 20, 30 keys per node."""
        for capacity in (10, 20, 30):
            cache = NodeCache(capacity=capacity)
            for index in range(capacity + 5):
                cache.insert(f"q{index}", "d")
            assert len(cache) == capacity
