"""Unit tests for interactive search sessions -- Section IV-B."""

import pytest

from repro.core.fields import ARTICLE_SCHEMA
from repro.core.query import FieldQuery
from repro.core.session import InteractiveSession, SessionError


@pytest.fixture
def service(paper_records, service_factory):
    service = service_factory()
    for record in paper_records:
        service.insert_record(record)
    return service


def start(service, constraints):
    return InteractiveSession(
        service, FieldQuery(ARTICLE_SCHEMA, constraints), user="user:sess"
    )


class TestNavigation:
    def test_initial_level(self, service):
        session = start(service, {"author": "John_Smith"})
        assert session.depth == 1
        assert len(session.choices()) == 2
        assert not session.at_file_level

    def test_refine_by_index_descends(self, service, paper_records):
        session = start(service, {"author": "John_Smith"})
        session.refine(0)
        assert session.depth == 2
        # The next level maps author+title pairs to MSDs.
        session.refine(0)
        assert session.at_file_level

    def test_refine_by_text(self, service):
        session = start(service, {"author": "John_Smith"})
        entry = session.choices()[1]
        session.refine(entry)
        assert session.current.query.key() == entry

    def test_back(self, service):
        session = start(service, {"author": "John_Smith"})
        session.refine(0)
        session.back()
        assert session.depth == 1

    def test_back_at_root_fails(self, service):
        with pytest.raises(SessionError):
            start(service, {"author": "John_Smith"}).back()

    def test_bad_choice_index(self, service):
        with pytest.raises(SessionError):
            start(service, {"author": "John_Smith"}).refine(99)

    def test_bad_choice_text(self, service):
        with pytest.raises(SessionError):
            start(service, {"author": "John_Smith"}).refine("/article[title[X]]")

    def test_history(self, service):
        session = start(service, {"author": "John_Smith"})
        session.refine(0)
        assert [query.fields for query in session.history] == [
            {"author"},
            {"author", "title"},
        ]

    def test_exhausted_on_unknown_query(self, service):
        session = start(service, {"author": "Nobody_Known"})
        assert session.exhausted

    def test_string_start_query(self, service):
        session = InteractiveSession(
            service, "/article[author[name[John_Smith]]]", user="user:s2"
        )
        assert len(session.choices()) == 2


class TestFileLevel:
    def test_walk_to_file(self, service, paper_records):
        session = start(service, {"author": "John_Smith"})
        session.refine_towards(paper_records[0]).refine_towards(paper_records[0])
        assert session.at_file_level
        assert session.fetch()
        assert session.fetched_msd == FieldQuery.msd_of(paper_records[0]).key()

    def test_fetch_requires_msd_level(self, service):
        with pytest.raises(SessionError):
            start(service, {"author": "John_Smith"}).fetch()

    def test_fetch_missing_file(self, service, paper_records):
        service.delete_record(paper_records[0])
        session = InteractiveSession(
            service, FieldQuery.msd_of(paper_records[0]), user="user:s3"
        )
        assert session.at_file_level
        assert not session.fetch()
        assert session.fetched_msd is None

    def test_refine_towards_unmatched(self, service, paper_records):
        session = start(service, {"author": "John_Smith"})
        with pytest.raises(SessionError):
            session.refine_towards(paper_records[2])  # Alan Doe

    def test_branch_exploration(self, service, paper_records):
        """Descend one branch, back out, take the sibling (Figure 6)."""
        session = start(service, {"author": "John_Smith"})
        session.refine_towards(paper_records[0]).back()
        session.refine_towards(paper_records[1])
        session.refine_towards(paper_records[1])
        assert session.fetch()
        assert session.fetched_msd == FieldQuery.msd_of(paper_records[1]).key()


class TestAccounting:
    def test_session_traffic_is_metered(self, service):
        before = service.transport.meter.normal_bytes
        session = start(service, {"author": "John_Smith"})
        session.refine(0)
        assert service.transport.meter.normal_bytes > before

    def test_covering_enforced_between_levels(self, service, paper_records):
        session = start(service, {"author": "John_Smith"})
        # Inject a non-covered entry into the node's store to simulate a
        # corrupted response; refine must reject it.
        rogue = FieldQuery(ARTICLE_SCHEMA, {"title": "Unrelated"})
        session.current.entries.append(rogue.key())
        with pytest.raises(SessionError):
            session.refine(rogue.key())

    def test_repr(self, service):
        assert "InteractiveSession" in repr(start(service, {"author": "John_Smith"}))
