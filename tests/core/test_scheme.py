"""Unit tests for indexing schemes (Figure 8)."""

import pytest

from repro.core.fields import ARTICLE_SCHEMA
from repro.core.query import FieldQuery
from repro.core.scheme import (
    MSD_TARGET,
    IndexScheme,
    SchemeValidationError,
    complex_scheme,
    flat_scheme,
    simple_scheme,
)


class TestBuiltinSchemes:
    def test_simple_classes(self):
        scheme = simple_scheme()
        assert scheme.is_indexed(["author"])
        assert scheme.is_indexed(["author", "title"])
        assert scheme.is_indexed(["conf", "year"])
        assert not scheme.is_indexed(["author", "year"])

    def test_flat_everything_points_to_msd(self):
        scheme = flat_scheme()
        for keyset in scheme.index_classes:
            assert scheme.targets_of(keyset) == [MSD_TARGET]

    def test_chain_lengths_match_figure8(self):
        # Interactions to reach the file: flat always 2; simple 3 from
        # single-field entries; complex 4 from an author query.
        assert flat_scheme().chain_length(["author"]) == 2
        assert simple_scheme().chain_length(["author"]) == 3
        assert simple_scheme().chain_length(["author", "title"]) == 2
        assert complex_scheme().chain_length(["author"]) == 4
        assert complex_scheme().chain_length(["title"]) == 3

    def test_entry_classes(self):
        entries = {frozenset(k) for k in simple_scheme().entry_classes()}
        assert frozenset(["author"]) in entries
        assert frozenset(["title"]) in entries
        # Pair classes are targets, not entry points.
        assert frozenset(["author", "title"]) not in entries

    def test_chain_length_unknown_class(self):
        with pytest.raises(KeyError):
            simple_scheme().chain_length(["author", "year"])


class TestValidation:
    def test_edge_must_increase_specificity(self):
        with pytest.raises(SchemeValidationError):
            IndexScheme(
                "bad",
                ARTICLE_SCHEMA,
                {("author", "title"): [("author",)], ("author",): [MSD_TARGET]},
            )

    def test_target_must_be_resolvable(self):
        with pytest.raises(SchemeValidationError):
            IndexScheme(
                "bad", ARTICLE_SCHEMA, {("author",): [("author", "title")]}
            )

    def test_empty_class_rejected(self):
        with pytest.raises(SchemeValidationError):
            IndexScheme("bad", ARTICLE_SCHEMA, {(): [MSD_TARGET]})

    def test_admin_field_rejected(self):
        with pytest.raises(SchemeValidationError):
            IndexScheme("bad", ARTICLE_SCHEMA, {("size",): [MSD_TARGET]})

    def test_class_with_no_targets_rejected(self):
        with pytest.raises(SchemeValidationError):
            IndexScheme("bad", ARTICLE_SCHEMA, {("author",): []})

    def test_custom_scheme_accepted(self):
        scheme = IndexScheme(
            "custom",
            ARTICLE_SCHEMA,
            {
                ("conf",): [("conf", "year"), MSD_TARGET],
                ("conf", "year"): [MSD_TARGET],
            },
        )
        assert scheme.chain_length(["conf"]) == 3


class TestMappingGeneration:
    def test_simple_mappings_for_record(self, paper_records):
        scheme = simple_scheme()
        record = paper_records[0]
        mappings = scheme.mappings_for(record)
        msd = FieldQuery.msd_of(record)
        author = FieldQuery.of_record(record, ["author"])
        author_title = FieldQuery.of_record(record, ["author", "title"])
        assert (author, author_title) in mappings
        assert (author_title, msd) in mappings
        # 6 edges, all distinct for one record.
        assert len(mappings) == 6

    def test_every_mapping_respects_covering(self, paper_records):
        for scheme in (simple_scheme(), flat_scheme(), complex_scheme()):
            for record in paper_records:
                for source, target in scheme.mappings_for(record):
                    assert source.covers(target)
                    assert source != target

    def test_flat_targets_are_msds(self, paper_records):
        for source, target in flat_scheme().mappings_for(paper_records[0]):
            assert target.is_msd()

    def test_mappings_deduplicated(self):
        scheme = IndexScheme(
            "diamond",
            ARTICLE_SCHEMA,
            {
                ("author",): [("author", "title"), ("author", "title")],
                ("author", "title"): [MSD_TARGET],
            },
        )
        record_mappings = scheme.mappings_for(
            __import__("repro.core.fields", fromlist=["Record"]).Record(
                ARTICLE_SCHEMA,
                {"author": "A", "title": "T", "conf": "C", "year": "1999"},
            )
        )
        assert len(record_mappings) == len(set(record_mappings))


class TestShortcuts:
    def test_shortcut_mapping(self, paper_records):
        scheme = simple_scheme()
        source, target = scheme.shortcut_mapping(paper_records[0], ["author"])
        assert source.fields == {"author"}
        assert target.is_msd()

    def test_shortcut_unknown_class(self, paper_records):
        with pytest.raises(KeyError):
            simple_scheme().shortcut_mapping(paper_records[0], ["author", "year"])

    def test_repr(self):
        assert "simple" in repr(simple_scheme())


class TestMultiTargetClasses:
    def test_class_may_resolve_to_msd_and_subclass(self, paper_records):
        """A class can offer both a deep link and a refinement step; the
        chain length is governed by the longest alternative."""
        scheme = IndexScheme(
            "hybrid",
            ARTICLE_SCHEMA,
            {
                ("author",): [("author", "title"), MSD_TARGET],
                ("author", "title"): [MSD_TARGET],
            },
        )
        assert scheme.chain_length(["author"]) == 3
        mappings = scheme.mappings_for(paper_records[0])
        targets_of_author = [
            target for source, target in mappings if source.fields == {"author"}
        ]
        assert any(target.is_msd() for target in targets_of_author)
        assert any(not target.is_msd() for target in targets_of_author)

    def test_engine_prefers_most_specific_entry(self, paper_records, service_factory):
        """Given both an MSD deep link and a pair entry under one key,
        the engine follows the MSD (fewest remaining steps)."""
        from repro.core.engine import LookupEngine

        scheme = IndexScheme(
            "hybrid",
            ARTICLE_SCHEMA,
            {
                ("author",): [("author", "title"), MSD_TARGET],
                ("author", "title"): [MSD_TARGET],
            },
        )
        service = service_factory(scheme=scheme)
        for record in paper_records:
            service.insert_record(record)
        engine = LookupEngine(service, user="user:hybrid")
        query = FieldQuery(ARTICLE_SCHEMA, {"author": "John_Smith"})
        trace = engine.search(query, paper_records[0])
        assert trace.found and trace.interactions == 2
