"""Unit tests for the user-side lookup engine (Section IV-B/IV-C)."""

import pytest

from repro.core.cache import CachePolicy
from repro.core.engine import LookupEngine, LookupError_
from repro.core.fields import ARTICLE_SCHEMA
from repro.core.query import FieldQuery
from repro.core.scheme import complex_scheme, flat_scheme


@pytest.fixture
def stack(paper_records, service_factory):
    def build(cache_policy=CachePolicy.NONE, cache_capacity=None, scheme=None):
        service = service_factory(
            scheme=scheme, cache_policy=cache_policy, cache_capacity=cache_capacity
        )
        for record in paper_records:
            service.insert_record(record)
        return service, LookupEngine(service, user="user:t")

    return build


class TestBasicSearch:
    def test_author_chain_simple(self, stack, paper_records):
        _, engine = stack()
        query = FieldQuery(ARTICLE_SCHEMA, {"author": "John_Smith"})
        trace = engine.search(query, paper_records[0])
        assert trace.found
        assert trace.interactions == 3  # author -> pair -> file
        assert trace.errors == 0
        assert trace.result_msd == FieldQuery.msd_of(paper_records[0]).key()

    def test_pair_query_is_shorter(self, stack, paper_records):
        _, engine = stack()
        query = FieldQuery.of_record(paper_records[0], ["author", "title"])
        trace = engine.search(query, paper_records[0])
        assert trace.found and trace.interactions == 2

    def test_msd_query_direct(self, stack, paper_records):
        _, engine = stack()
        trace = engine.search(
            FieldQuery.msd_of(paper_records[0]), paper_records[0]
        )
        assert trace.found and trace.interactions == 1

    def test_flat_chain_is_two(self, stack, paper_records):
        _, engine = stack(scheme=flat_scheme())
        for fields in (["author"], ["title"], ["year"]):
            trace = engine.search(
                FieldQuery.of_record(paper_records[1], fields), paper_records[1]
            )
            assert trace.found and trace.interactions == 2

    def test_complex_author_chain_is_four(self, stack, paper_records):
        _, engine = stack(scheme=complex_scheme())
        query = FieldQuery(ARTICLE_SCHEMA, {"author": "John_Smith"})
        trace = engine.search(query, paper_records[0])
        assert trace.found and trace.interactions == 4

    def test_query_must_cover_target(self, stack, paper_records):
        _, engine = stack()
        wrong = FieldQuery(ARTICLE_SCHEMA, {"author": "Alan_Doe"})
        with pytest.raises(LookupError_):
            engine.search(wrong, paper_records[0])

    def test_shared_broad_query_disambiguated_by_target(
        self, stack, paper_records
    ):
        """author John_Smith matches d1 and d2; the engine must reach the
        requested one."""
        _, engine = stack()
        query = FieldQuery(ARTICLE_SCHEMA, {"author": "John_Smith"})
        for record in paper_records[:2]:
            trace = engine.search(query, record)
            assert trace.result_msd == FieldQuery.msd_of(record).key()

    def test_visited_nodes_recorded(self, stack, paper_records):
        _, engine = stack()
        trace = engine.search(
            FieldQuery(ARTICLE_SCHEMA, {"author": "John_Smith"}), paper_records[0]
        )
        assert len(trace.visited) == trace.interactions
        assert trace.visited[0][1] == FieldQuery(
            ARTICLE_SCHEMA, {"author": "John_Smith"}
        ).key()


class TestGeneralization:
    def test_non_indexed_query_recovers(self, stack, paper_records):
        _, engine = stack()
        query = FieldQuery.of_record(paper_records[1], ["author", "year"])
        trace = engine.search(query, paper_records[1])
        assert trace.found
        assert trace.generalized
        assert trace.errors == 1
        # One wasted interaction, then the author chain (3).
        assert trace.interactions == 4

    def test_generalization_prefers_selective_field(self, stack, paper_records):
        """author+year generalizes to author (schema order = selectivity),
        not year."""
        _, engine = stack()
        query = FieldQuery.of_record(paper_records[1], ["author", "year"])
        trace = engine.search(query, paper_records[1])
        author_key = FieldQuery.of_record(paper_records[1], ["author"]).key()
        assert trace.visited[1][1] == author_key

    def test_deleted_data_not_found(self, stack, paper_records):
        service, engine = stack()
        service.delete_record(paper_records[0])
        query = FieldQuery.of_record(paper_records[0], ["title"])
        trace = engine.search(query, paper_records[0])
        assert not trace.found

    def test_error_counted_once_per_search(self, stack, paper_records):
        _, engine = stack()
        query = FieldQuery.of_record(paper_records[1], ["author", "year"])
        trace = engine.search(query, paper_records[1])
        assert trace.errors == 1


class TestCaching:
    def test_single_cache_hit_on_repeat(self, stack, paper_records):
        service, engine = stack(cache_policy=CachePolicy.SINGLE)
        query = FieldQuery(ARTICLE_SCHEMA, {"author": "John_Smith"})
        first = engine.search(query, paper_records[0])
        assert not first.cache_hit and first.interactions == 3
        second = engine.search(query, paper_records[0])
        assert second.cache_hit and second.first_contact_hit
        assert second.interactions == 2

    def test_multi_cache_populates_path_nodes(self, stack, paper_records):
        service, engine = stack(cache_policy=CachePolicy.MULTI)
        author = FieldQuery(ARTICLE_SCHEMA, {"author": "John_Smith"})
        engine.search(author, paper_records[0])
        # The author+title node also received a shortcut: a title query
        # reaching it can jump.
        pair = FieldQuery.of_record(paper_records[0], ["author", "title"])
        pair_node = service.index_store.responsible_nodes(pair.key())[0]
        assert pair.key() in service.caches[pair_node]

    def test_single_cache_populates_only_first_node(self, stack, paper_records):
        service, engine = stack(cache_policy=CachePolicy.SINGLE)
        author = FieldQuery(ARTICLE_SCHEMA, {"author": "John_Smith"})
        engine.search(author, paper_records[0])
        pair = FieldQuery.of_record(paper_records[0], ["author", "title"])
        pair_node = service.index_store.responsible_nodes(pair.key())[0]
        assert pair.key() not in service.caches[pair_node]
        author_node = service.index_store.responsible_nodes(author.key())[0]
        assert author.key() in service.caches[author_node]

    def test_cached_nonindexed_query_stops_erroring(self, stack, paper_records):
        _, engine = stack(cache_policy=CachePolicy.SINGLE)
        query = FieldQuery.of_record(paper_records[1], ["author", "year"])
        first = engine.search(query, paper_records[1])
        assert first.errors == 1
        second = engine.search(query, paper_records[1])
        assert second.errors == 0
        assert second.cache_hit and second.interactions == 2

    def test_same_key_different_target_no_error_but_generalizes(
        self, stack, paper_records
    ):
        """d2 and d3 share year 1996: caching one under a year+author key
        of the other... they differ in author, so use title instead:
        two searches with the same non-indexed key but different targets."""
        _, engine = stack(cache_policy=CachePolicy.SINGLE)
        # author+year of d2 (John_Smith, 1996)
        query = FieldQuery.of_record(paper_records[1], ["author", "year"])
        engine.search(query, paper_records[1])
        # Same author made no other 1996 article here, so reuse the same
        # query and target: presence suppresses the error.
        repeat = engine.search(query, paper_records[1])
        assert repeat.errors == 0

    def test_lru_eviction_restores_error(self, stack, paper_records):
        service, engine = stack(
            cache_policy=CachePolicy.LRU, cache_capacity=1
        )
        ay = FieldQuery.of_record(paper_records[1], ["author", "year"])
        engine.search(ay, paper_records[1])
        node = service.index_store.responsible_nodes(ay.key())[0]
        # Force eviction of the AY key on that node.
        service.caches[node].insert("other-key-1", "x")
        again = engine.search(ay, paper_records[1])
        assert again.errors == 1

    def test_no_cache_traffic_without_policy(self, stack, paper_records):
        service, engine = stack()
        engine.search(
            FieldQuery(ARTICLE_SCHEMA, {"author": "John_Smith"}), paper_records[0]
        )
        assert service.transport.meter.cache_bytes == 0


class TestInteractiveExplore:
    def test_explore_returns_raw_entries(self, stack, paper_records):
        _, engine = stack()
        results = engine.explore(FieldQuery(ARTICLE_SCHEMA, {"author": "John_Smith"}))
        assert len(results) == 2

    def test_explore_empty_for_unknown(self, stack):
        _, engine = stack()
        assert engine.explore(FieldQuery(ARTICLE_SCHEMA, {"author": "Ghost"})) == []
