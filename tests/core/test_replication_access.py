"""Unit tests for replica load-spreading in the index service."""


from repro.core.engine import LookupEngine
from repro.core.fields import ARTICLE_SCHEMA
from repro.core.query import FieldQuery
from repro.core.scheme import simple_scheme
from repro.core.service import IndexService
from repro.dht.idspace import hash_key
from repro.dht.ring import IdealRing
from repro.net.transport import SimulatedTransport
from repro.storage.store import DHTStorage


def build(replication=3, num_nodes=12):
    ring = IdealRing(64)
    for index in range(num_nodes):
        ring.add_node(hash_key(f"peer-{index}", 64))
    transport = SimulatedTransport()
    service = IndexService(
        ARTICLE_SCHEMA,
        simple_scheme(),
        DHTStorage(ring, replication=replication),
        DHTStorage(ring, replication=replication),
        transport,
    )
    return service, LookupEngine(service, user="user:rep")


class TestReplicaRotation:
    def test_queries_rotate_across_replicas(self, paper_records):
        service, _ = build(replication=3)
        for record in paper_records:
            service.insert_record(record)
        author = FieldQuery(ARTICLE_SCHEMA, {"author": "John_Smith"})
        nodes = {
            service.query(author, user="user:rep").node for _ in range(12)
        }
        expected = set(service.index_store.responsible_nodes(author.key()))
        assert nodes == expected

    def test_every_replica_answers_identically(self, paper_records):
        service, _ = build(replication=3)
        for record in paper_records:
            service.insert_record(record)
        author = FieldQuery(ARTICLE_SCHEMA, {"author": "John_Smith"})
        answers = {
            tuple(sorted(service.query(author, user="user:rep").entries))
            for _ in range(9)
        }
        assert len(answers) == 1

    def test_no_rotation_without_replication(self, paper_records):
        service, _ = build(replication=1)
        for record in paper_records:
            service.insert_record(record)
        author = FieldQuery(ARTICLE_SCHEMA, {"author": "John_Smith"})
        nodes = {service.query(author, user="user:rep").node for _ in range(6)}
        assert len(nodes) == 1

    def test_searches_succeed_through_replicas(self, paper_records):
        service, engine = build(replication=3)
        for record in paper_records:
            service.insert_record(record)
        for record in paper_records:
            for _ in range(3):  # exercise different rotations
                trace = engine.search(
                    FieldQuery.of_record(record, ["author"]), record
                )
                assert trace.found

    def test_file_fetch_rotates(self, paper_records):
        service, _ = build(replication=3)
        for record in paper_records:
            service.insert_record(record)
        msd = FieldQuery.msd_of(paper_records[0])
        nodes = set()
        for _ in range(9):
            node, found = service.fetch_file(msd, user="user:rep")
            assert found
            nodes.add(node)
        assert len(nodes) == 3
