"""Unit tests for field queries: covering, restriction, serialization."""

import pytest

from repro.core.fields import ARTICLE_SCHEMA, SchemaError
from repro.core.query import FieldQuery, QueryParseError


@pytest.fixture
def smith_tcp(paper_records):
    return FieldQuery.msd_of(paper_records[0])


class TestConstruction:
    def test_msd_constrains_every_field(self, smith_tcp):
        assert smith_tcp.is_msd()
        assert smith_tcp.fields == {"author", "title", "conf", "year", "size"}

    def test_of_record_subset(self, paper_records):
        query = FieldQuery.of_record(paper_records[0], ["author", "year"])
        assert query.fields == {"author", "year"}
        assert query.value("year") == "1989"
        assert query.value("title") is None

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            FieldQuery(ARTICLE_SCHEMA, {})

    def test_unknown_field_rejected(self):
        with pytest.raises(SchemaError):
            FieldQuery(ARTICLE_SCHEMA, {"publisher": "X"})

    def test_items_schema_ordered(self):
        query = FieldQuery(ARTICLE_SCHEMA, {"year": "1989", "author": "A"})
        assert [name for name, _ in query.items] == ["author", "year"]


class TestKeyAndParse:
    def test_key_is_canonical(self):
        query = FieldQuery(ARTICLE_SCHEMA, {"author": "A", "title": "T"})
        from repro.xmlq.normalize import normalize_xpath

        assert normalize_xpath(query.key()) == query.key()

    def test_parse_roundtrip(self, paper_records):
        for record in paper_records:
            for fields in (["author"], ["title", "year"], ["author", "conf"]):
                query = FieldQuery.of_record(record, fields)
                parsed = FieldQuery.parse(ARTICLE_SCHEMA, query.key())
                assert parsed == query

    def test_parse_msd_roundtrip(self, smith_tcp):
        assert FieldQuery.parse(ARTICLE_SCHEMA, smith_tcp.key()) == smith_tcp

    def test_parse_rejects_non_canonical(self):
        with pytest.raises(QueryParseError):
            FieldQuery.parse(ARTICLE_SCHEMA, "/article/author/name/A")
        # (path form, not the folded canonical single-step form)

    def test_parse_rejects_unknown_path(self):
        with pytest.raises(QueryParseError):
            FieldQuery.parse(ARTICLE_SCHEMA, "/article[editor[E]]")

    def test_parse_rejects_wrong_root(self):
        with pytest.raises(QueryParseError):
            FieldQuery.parse(ARTICLE_SCHEMA, "/book[title[T]]")

    def test_parse_rejects_garbage(self):
        with pytest.raises(QueryParseError):
            FieldQuery.parse(ARTICLE_SCHEMA, "not an xpath at all [")

    def test_parse_rejects_comparisons(self):
        with pytest.raises(QueryParseError):
            FieldQuery.parse(ARTICLE_SCHEMA, "/article[year>=1990]")

    def test_equal_queries_equal_keys(self):
        a = FieldQuery(ARTICLE_SCHEMA, {"author": "A", "year": "1999"})
        b = FieldQuery(ARTICLE_SCHEMA, {"year": "1999", "author": "A"})
        assert a == b and a.key() == b.key() and hash(a) == hash(b)


class TestCovering:
    def test_subset_covers(self, paper_records):
        author = FieldQuery.of_record(paper_records[0], ["author"])
        author_title = FieldQuery.of_record(paper_records[0], ["author", "title"])
        msd = FieldQuery.msd_of(paper_records[0])
        assert author.covers(author_title)
        assert author.covers(msd)
        assert author_title.covers(msd)
        assert not author_title.covers(author)

    def test_value_mismatch_does_not_cover(self, paper_records):
        smith = FieldQuery.of_record(paper_records[0], ["author"])
        doe = FieldQuery.of_record(paper_records[2], ["author"])
        assert not smith.covers(doe)
        assert not doe.covers(smith)

    def test_reflexive(self, smith_tcp):
        assert smith_tcp.covers(smith_tcp)

    def test_covers_record(self, paper_records):
        year_1996 = FieldQuery(ARTICLE_SCHEMA, {"year": "1996"})
        assert year_1996.covers_record(paper_records[1])
        assert year_1996.covers_record(paper_records[2])
        assert not year_1996.covers_record(paper_records[0])

    def test_agrees_with_pattern_covering(self, paper_records):
        """Field-level covering must agree with the tree-pattern
        homomorphism on canonical query text."""
        from repro.xmlq.pattern import covers as pattern_covers

        record = paper_records[0]
        subsets = [["author"], ["author", "title"], ["year"], ["conf", "year"]]
        queries = [FieldQuery.of_record(record, fields) for fields in subsets]
        for general in queries:
            for specific in queries:
                assert general.covers(specific) == pattern_covers(
                    general.key(), specific.key()
                )


class TestAlgebra:
    def test_restrict(self, smith_tcp):
        restricted = smith_tcp.restrict(["author", "year"])
        assert restricted.fields == {"author", "year"}
        assert restricted.value("author") == "John_Smith"

    def test_restrict_missing_field(self, paper_records):
        author = FieldQuery.of_record(paper_records[0], ["author"])
        with pytest.raises(SchemaError):
            author.restrict(["title"])

    def test_extend(self, paper_records):
        author = FieldQuery.of_record(paper_records[0], ["author"])
        extended = author.extend({"year": "1989"})
        assert extended.fields == {"author", "year"}

    def test_extend_conflict(self, paper_records):
        author = FieldQuery.of_record(paper_records[0], ["author"])
        with pytest.raises(SchemaError):
            author.extend({"author": "Somebody_Else"})

    def test_to_pattern(self, smith_tcp):
        pattern = smith_tcp.to_pattern()
        assert pattern.size() > 0
