"""Unit tests for schemas, records, and canonical query text."""

import pytest

from repro.core.fields import ARTICLE_SCHEMA, Record, Schema, SchemaError
from repro.xmlq.normalize import normalize_xpath


class TestSchema:
    def test_article_schema_fields(self):
        assert ARTICLE_SCHEMA.field_names == ("author", "title", "conf", "year")
        assert "size" in ARTICLE_SCHEMA.all_field_names

    def test_path_of(self):
        assert ARTICLE_SCHEMA.path_of("author") == "author/name"
        assert ARTICLE_SCHEMA.path_of("size") == "size"

    def test_unknown_field(self):
        with pytest.raises(SchemaError):
            ARTICLE_SCHEMA.path_of("publisher")

    def test_field_admin_overlap_rejected(self):
        with pytest.raises(SchemaError):
            Schema(root="x", fields={"a": "a"}, admin={"a": "a"})

    def test_empty_root_rejected(self):
        with pytest.raises(SchemaError):
            Schema(root="", fields={"a": "a"})


class TestCanonicalText:
    def test_matches_general_normalizer(self):
        constraints = {"author": "John_Smith", "year": "1989"}
        assert ARTICLE_SCHEMA.xpath_for(
            constraints
        ) == ARTICLE_SCHEMA.xpath_for_normalized(constraints)

    def test_order_independent(self):
        a = ARTICLE_SCHEMA.xpath_for({"year": "1989", "author": "X"})
        b = ARTICLE_SCHEMA.xpath_for({"author": "X", "year": "1989"})
        assert a == b

    def test_is_normalized_fixpoint(self):
        text = ARTICLE_SCHEMA.xpath_for({"author": "A", "title": "T"})
        assert normalize_xpath(text) == text

    def test_empty_constraints_rejected(self):
        with pytest.raises(SchemaError):
            ARTICLE_SCHEMA.xpath_for({})

    def test_unknown_constraint_rejected(self):
        with pytest.raises(SchemaError):
            ARTICLE_SCHEMA.xpath_for({"publisher": "X"})

    def test_nested_field_path(self):
        text = ARTICLE_SCHEMA.xpath_for({"author": "A"})
        assert text == "/article[author[name[A]]]"


class TestRecord:
    def test_construction_and_access(self, paper_records):
        record = paper_records[0]
        assert record["author"] == "John_Smith"
        assert record.get("size") == "315635"
        assert record.get("missing-field") is None

    def test_missing_queryable_field_rejected(self):
        with pytest.raises(SchemaError):
            Record(ARTICLE_SCHEMA, {"author": "A"})

    def test_admin_field_optional(self):
        record = Record(
            ARTICLE_SCHEMA,
            {"author": "A", "title": "T", "conf": "C", "year": "1999"},
        )
        assert record.get("size") is None

    def test_unknown_field_rejected(self):
        with pytest.raises(SchemaError):
            Record(
                ARTICLE_SCHEMA,
                {
                    "author": "A", "title": "T", "conf": "C",
                    "year": "1999", "publisher": "P",
                },
            )

    def test_getitem_missing_raises(self):
        record = Record(
            ARTICLE_SCHEMA,
            {"author": "A", "title": "T", "conf": "C", "year": "1999"},
        )
        with pytest.raises(SchemaError):
            record["size"]

    def test_equality_and_hash(self, paper_records):
        twin = Record(ARTICLE_SCHEMA, paper_records[0].values)
        assert twin == paper_records[0]
        assert hash(twin) == hash(paper_records[0])
        assert paper_records[0] != paper_records[1]

    def test_items_in_schema_order(self, paper_records):
        names = [name for name, _ in paper_records[0].items()]
        assert names == ["author", "title", "conf", "year", "size"]


class TestDescriptors:
    def test_descriptor_structure(self, paper_records):
        descriptor = paper_records[0].descriptor()
        assert descriptor.tag == "article"
        assert descriptor.findtext("author/name") == "John_Smith"
        assert descriptor.findtext("year") == "1989"

    def test_descriptor_roundtrip(self, paper_records):
        for record in paper_records:
            recovered = ARTICLE_SCHEMA.record_from_descriptor(record.descriptor())
            assert recovered == record

    def test_wrong_root_rejected(self):
        from repro.xmlq.element import Element

        with pytest.raises(SchemaError):
            ARTICLE_SCHEMA.record_from_descriptor(Element("book"))

    def test_descriptor_matches_own_msd(self, paper_records):
        from repro.core.query import FieldQuery
        from repro.xmlq.evaluator import matches

        for record in paper_records:
            msd = FieldQuery.msd_of(record)
            assert matches(record.descriptor(), msd.key())
