"""Smoke tests: the fast example scripts must run end to end.

The two workload-heavy examples (bibliographic_database,
substrate_comparison) are exercised at reduced scale through the sim
tests instead; here we execute the three fast walk-throughs exactly as a
user would.
"""

import pathlib
import runpy

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"


@pytest.mark.parametrize(
    "script",
    [
        "quickstart.py",
        "xpath_queries.py",
        "custom_scheme.py",
        "interactive_search.py",
    ],
)
# (bibliographic_database.py, substrate_comparison.py, and
# churn_and_replication.py run multi-minute workloads; their logic is
# covered at reduced scale by the sim tests.)
def test_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), script


def test_quickstart_locates_all_articles(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    output = capsys.readouterr().out
    assert output.count("found=True") == 4
    assert "errors=1" in output  # the author+year recoverable error

def test_xpath_example_prints_figure3(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "xpath_queries.py"), run_name="__main__")
    output = capsys.readouterr().out
    assert "Hasse edges" in output
    assert "q6 covers q1 (transitively): True" in output

def test_custom_scheme_deep_link_speedup(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "custom_scheme.py"), run_name="__main__")
    output = capsys.readouterr().out
    assert "4 interactions" in output
    assert "2 interactions" in output


def test_readme_quickstart_snippet():
    """The README's code block must run verbatim and find the article."""
    from repro.core import (ARTICLE_SCHEMA, FieldQuery, IndexService,
                            LookupEngine, Record, simple_scheme)
    from repro.dht import IdealRing, hash_key
    from repro.net import SimulatedTransport
    from repro.storage import DHTStorage

    ring = IdealRing()
    for i in range(16):
        ring.add_node(hash_key(f"peer-{i}"))
    service = IndexService(ARTICLE_SCHEMA, simple_scheme(),
                           DHTStorage(ring), DHTStorage(ring),
                           SimulatedTransport())
    article = Record(ARTICLE_SCHEMA, {"author": "John_Smith", "title": "TCP",
                                      "conf": "SIGCOMM", "year": "1989",
                                      "size": "315635"})
    service.insert_record(article)
    engine = LookupEngine(service)
    trace = engine.search(
        FieldQuery(ARTICLE_SCHEMA, {"author": "John_Smith"}), article
    )
    assert trace.found and trace.interactions == 3
