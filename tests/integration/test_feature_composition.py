"""Cross-feature integration: compositions the unit tests don't cover.

Each test wires together at least three features that were developed and
tested separately: prefix indexes over a real DHT, interactive sessions
with caching, replication with deletion, churned storage beneath prefix
search, and Twine beside the index service on one substrate.
"""


from repro.baselines.twine import TwineResolver
from repro.core.cache import CachePolicy
from repro.core.engine import LookupEngine
from repro.core.fields import ARTICLE_SCHEMA
from repro.core.query import FieldQuery
from repro.core.scheme import complex_scheme, simple_scheme
from repro.core.service import IndexService
from repro.core.session import InteractiveSession
from repro.core.substring import PrefixIndex
from repro.dht.chord import ChordNetwork
from repro.dht.idspace import hash_key
from repro.dht.ring import IdealRing
from repro.net.transport import SimulatedTransport
from repro.storage.store import DHTStorage


def chord_service(paper_records, policy=CachePolicy.NONE, replication=1):
    node_ids = sorted(hash_key(f"peer-{i}", 32) for i in range(20))
    network = ChordNetwork.bulk_build(node_ids, bits=32)
    service = IndexService(
        ARTICLE_SCHEMA,
        simple_scheme(),
        DHTStorage(network, replication=replication),
        DHTStorage(network, replication=replication),
        SimulatedTransport(),
        cache_policy=policy,
    )
    for record in paper_records:
        service.insert_record(record)
    return service


class TestPrefixOverChord:
    def test_prefix_search_over_real_dht(self, paper_records):
        service = chord_service(paper_records)
        prefix_index = PrefixIndex(service, {"author": [1]})
        prefix_index.insert_all(paper_records)
        engine = LookupEngine(service, user="user:fc1")
        trace = prefix_index.search(engine, "author", "J", paper_records[0])
        assert trace.found

    def test_prefix_entries_survive_rebalance(self, paper_records):
        service = chord_service(paper_records)
        prefix_index = PrefixIndex(service, {"author": [1]})
        prefix_index.insert_all(paper_records)
        protocol = service.index_store.protocol
        fresh = next(
            hash_key(f"late-{i}", 32)
            for i in range(100)
            if hash_key(f"late-{i}", 32) not in protocol
        )
        protocol.add_node(fresh)
        service.register_nodes()
        service.index_store.rebalance()
        service.file_store.rebalance()
        engine = LookupEngine(service, user="user:fc2")
        trace = prefix_index.search(engine, "author", "A", paper_records[2])
        assert trace.found


class TestSessionWithCache:
    def test_session_sees_shortcuts_after_engine_search(self, paper_records):
        service = chord_service(paper_records, policy=CachePolicy.SINGLE)
        engine = LookupEngine(service, user="user:fc3")
        author = FieldQuery(ARTICLE_SCHEMA, {"author": "John_Smith"})
        engine.search(author, paper_records[0])
        session = InteractiveSession(service, author, user="user:fc4")
        # The cached shortcut appears among the session's choices.
        msd = FieldQuery.msd_of(paper_records[0]).key()
        assert msd in session.current.shortcuts
        session.refine(msd)
        assert session.at_file_level and session.fetch()


class TestReplicatedDeletion:
    def test_delete_removes_all_replicas(self, paper_records):
        service = chord_service(paper_records, replication=3)
        msd = FieldQuery.msd_of(paper_records[0])
        assert len(service.file_store.responsible_nodes(msd.key())) == 3
        service.delete_record(paper_records[0])
        for node in service.file_store.protocol.node_ids:
            assert not service.file_store.values_at(node, msd.key())

    def test_search_fails_cleanly_after_replicated_delete(self, paper_records):
        service = chord_service(paper_records, replication=3)
        service.delete_record(paper_records[0])
        engine = LookupEngine(service, user="user:fc5")
        trace = engine.search(
            FieldQuery.of_record(paper_records[0], ["title"]), paper_records[0]
        )
        assert not trace.found


class TestTwineBesideIndexes:
    def test_both_systems_share_one_substrate(self, paper_records):
        """Twine resolvers and index nodes coexist on the same overlay
        and transport without interfering."""
        ring = IdealRing(64)
        for index in range(16):
            ring.add_node(hash_key(f"peer-{index}", 64))
        transport = SimulatedTransport()
        service = IndexService(
            ARTICLE_SCHEMA,
            complex_scheme(),
            DHTStorage(ring),
            DHTStorage(ring),
            transport,
        )
        twine = TwineResolver(
            ARTICLE_SCHEMA, DHTStorage(ring), DHTStorage(ring), transport
        )
        for record in paper_records:
            service.insert_record(record)
            twine.insert_record(record)
        engine = LookupEngine(service, user="user:fc6")
        query = FieldQuery(ARTICLE_SCHEMA, {"author": "John_Smith"})
        index_trace = engine.search(query, paper_records[0])
        twine_found, twine_interactions = twine.lookup(
            query, paper_records[0], user="user:fc7"
        )
        assert index_trace.found and twine_found
        assert twine_interactions == 2
        assert index_trace.interactions == 4  # complex chain
