"""Soak tier: sustained multi-stage load against a live cluster.

Excluded from tier 1 (``addopts = -m 'not soak'``); run explicitly with
``python -m pytest -m soak``.  The contract under minutes of sustained
open-loop load: every scheduled operation is acknowledged exactly once
(zero lost, zero duplicated), the error rate stays bounded, and the
latency sketches stay constant-memory.
"""

import pytest

from repro.loadgen.runner import LoadTestConfig, run_load_test

pytestmark = pytest.mark.soak


class TestSustainedRamp:
    def test_multi_stage_soak_exactly_once_and_bounded_errors(self):
        config = LoadTestConfig(
            num_nodes=5,
            workers=2,
            ramp=(40.0, 80.0, 120.0, 120.0),
            stage_seconds=15.0,
            num_base_records=30,
            store_pool_size=400,
            processes=True,
            drain_timeout_s=30.0,
        )
        report = run_load_test(config)
        assert len(report.stages) == 4
        total_scheduled = 0
        for summary in report.stages:
            total_scheduled += summary.scheduled
            # Exactly-once acknowledgement accounting.
            assert summary.duplicates == 0
            assert summary.lost == 0
            assert summary.completed == summary.scheduled
            # Bounded failures under sustained load.
            assert summary.error_rate < 0.02
            # The sketch stays constant-memory however long we soak.
            assert summary.p99_ms > 0.0
        assert total_scheduled > 3000
        for sketch in report.sketches:
            assert sketch.bucket_count < 600

    def test_repeated_stage_rate_stays_stable(self):
        """Back-to-back stages at one rate should not degrade (no leak)."""
        config = LoadTestConfig(
            num_nodes=3,
            workers=2,
            ramp=(60.0, 60.0, 60.0),
            stage_seconds=10.0,
            num_base_records=20,
            store_pool_size=300,
            processes=True,
            drain_timeout_s=20.0,
        )
        report = run_load_test(config)
        goodputs = [summary.goodput_hz for summary in report.stages]
        p95s = [summary.p95_ms for summary in report.stages]
        assert min(goodputs) > 0.8 * max(goodputs)
        # Latency in the last plateau stage within 3x of the first --
        # a leak or unbounded queue would blow far past this.
        assert p95s[-1] < 3.0 * p95s[0] + 5.0
