"""Exhaustive correctness matrix: scheme x cache policy x query shape.

Every combination of the paper's three indexing schemes, its six cache
configurations, and every indexed query shape must locate every record.
This is the search-totality guarantee the evaluation relies on, pinned
as an explicit matrix on the Figure 1 corpus.  The matrix also
cross-checks the observability layer: the per-lookup node touches
reconstructed from a trace must equal the TrafficMeter's Figure 15
aggregates, independently accumulated.
"""

from collections import Counter

import pytest

from repro.core.cache import CachePolicy
from repro.core.engine import LookupEngine
from repro.core.fields import ARTICLE_SCHEMA
from repro.core.query import FieldQuery
from repro.core.scheme import complex_scheme, flat_scheme, simple_scheme
from repro.core.service import IndexService
from repro.dht.idspace import hash_key
from repro.dht.ring import IdealRing
from repro.net.transport import SimulatedTransport
from repro.obs.reader import TraceEvent, group_lookups
from repro.obs.tracer import Tracer
from repro.sim.experiment import Experiment, ExperimentConfig
from repro.storage.store import DHTStorage

SCHEMES = {
    "simple": simple_scheme,
    "flat": flat_scheme,
    "complex": complex_scheme,
}
POLICIES = ["none", "multi", "single", "lru10", "lru20", "lru30"]
SHAPES = [
    ("author",),
    ("title",),
    ("conf",),
    ("year",),
    ("author", "title"),
    ("conf", "year"),
    ("author", "year"),   # non-indexed: exercises generalization
    ("author", "conf"),   # indexed only by complex
]


@pytest.mark.parametrize("scheme_name", SCHEMES)
@pytest.mark.parametrize("policy_name", POLICIES)
def test_matrix_cell(scheme_name, policy_name, paper_records):
    ring = IdealRing(64)
    for index in range(16):
        ring.add_node(hash_key(f"peer-{index}", 64))
    policy, capacity = CachePolicy.parse(policy_name)
    service = IndexService(
        ARTICLE_SCHEMA,
        SCHEMES[scheme_name](),
        DHTStorage(ring),
        DHTStorage(ring),
        SimulatedTransport(),
        cache_policy=policy,
        cache_capacity=capacity,
    )
    for record in paper_records:
        service.insert_record(record)
    engine = LookupEngine(service, user="user:matrix")

    for repetition in range(2):  # second pass exercises warmed caches
        for record in paper_records:
            for shape in SHAPES:
                query = FieldQuery.of_record(record, shape)
                trace = engine.search(query, record)
                service.transport.meter.end_query()
                assert trace.found, (scheme_name, policy_name, shape, repetition)
                assert trace.result_msd == FieldQuery.msd_of(record).key()
                # Bounded work: deepest chain (4) + one generalization
                # detour (1) + never more.
                assert trace.interactions <= 5


@pytest.mark.parametrize("scheme_name", SCHEMES)
@pytest.mark.parametrize("policy_name", ["none", "single", "multi"])
def test_trace_reconstructs_traffic_meter_counts(
    scheme_name, policy_name, paper_records
):
    """Per-lookup node touches from the trace == TrafficMeter aggregates.

    The meter accumulates Figure 15's queries-touched counts message by
    message; the trace records the resolution chain lookup by lookup.
    Reconstructing the meter's view from the trace (and vice versa: the
    trace's interaction count from the meter-backed SearchTrace) must
    agree exactly -- two independent accounting paths, one truth.
    """
    ring = IdealRing(64)
    for index in range(16):
        ring.add_node(hash_key(f"peer-{index}", 64))
    policy, capacity = CachePolicy.parse(policy_name)
    transport = SimulatedTransport()
    service = IndexService(
        ARTICLE_SCHEMA,
        SCHEMES[scheme_name](),
        DHTStorage(ring),
        DHTStorage(ring),
        transport,
        cache_policy=policy,
        cache_capacity=capacity,
    )
    for record in paper_records:
        service.insert_record(record)
    tracer = Tracer()
    transport.bind_tracer(tracer)
    engine = LookupEngine(service, user="user:xcheck", tracer=tracer)

    searches = 0
    for repetition in range(2):
        for record in paper_records:
            for shape in SHAPES:
                query = FieldQuery.of_record(record, shape)
                trace = engine.search(query, record)
                transport.meter.end_query()
                assert trace.found
                searches += 1

    spans = group_lookups(
        TraceEvent.from_line(line) for line in tracer.jsonl_lines()
    )
    assert len(spans) == searches

    reconstructed: Counter[str] = Counter()
    for span in spans:
        for node in span.visited_nodes():
            reconstructed[service.endpoint_name(node)] += 1
    assert dict(reconstructed) == transport.meter.query_counts_by_node()


def test_trace_reconstructs_traffic_in_kernel_mode():
    """The cross-check holds with overlapping lookups on the kernel.

    Concurrent mode feeds Figure 15 through ``count_query`` with each
    SearchTrace's own visited set; reconstructing those sets from the
    exported trace events must land on the same aggregate counts.
    """
    config = ExperimentConfig(
        cache="single",
        num_nodes=16,
        num_articles=80,
        num_queries=150,
        num_authors=32,
        concurrency=4,
        latency_model="uniform:5:50",
        trace=True,
    )
    experiment = Experiment(config)
    result = experiment.run()
    spans = group_lookups(
        TraceEvent.from_line(line)
        for line in experiment.tracer.jsonl_lines()
    )
    assert len(spans) == result.searches

    reconstructed: Counter[str] = Counter()
    for span in spans:
        for node in span.visited_nodes():
            reconstructed[experiment.service.endpoint_name(node)] += 1
    assert (
        dict(reconstructed)
        == experiment.transport.meter.query_counts_by_node()
    )


def test_matrix_interactions_never_increase_with_cache(paper_records):
    """For every (scheme, shape), warm-cache searches cost <= cold ones."""
    for scheme_name, scheme_builder in SCHEMES.items():
        ring = IdealRing(64)
        for index in range(16):
            ring.add_node(hash_key(f"peer-{index}", 64))
        service = IndexService(
            ARTICLE_SCHEMA,
            scheme_builder(),
            DHTStorage(ring),
            DHTStorage(ring),
            SimulatedTransport(),
            cache_policy=CachePolicy.SINGLE,
        )
        for record in paper_records:
            service.insert_record(record)
        engine = LookupEngine(service, user="user:m2")
        for record in paper_records:
            for shape in SHAPES:
                query = FieldQuery.of_record(record, shape)
                cold = engine.search(query, record)
                warm = engine.search(query, record)
                service.transport.meter.end_query()
                assert warm.interactions <= cold.interactions, (
                    scheme_name, shape,
                )
