"""Exhaustive correctness matrix: scheme x cache policy x query shape.

Every combination of the paper's three indexing schemes, its six cache
configurations, and every indexed query shape must locate every record.
This is the search-totality guarantee the evaluation relies on, pinned
as an explicit matrix on the Figure 1 corpus.
"""

import pytest

from repro.core.cache import CachePolicy
from repro.core.engine import LookupEngine
from repro.core.fields import ARTICLE_SCHEMA
from repro.core.query import FieldQuery
from repro.core.scheme import complex_scheme, flat_scheme, simple_scheme
from repro.core.service import IndexService
from repro.dht.idspace import hash_key
from repro.dht.ring import IdealRing
from repro.net.transport import SimulatedTransport
from repro.storage.store import DHTStorage

SCHEMES = {
    "simple": simple_scheme,
    "flat": flat_scheme,
    "complex": complex_scheme,
}
POLICIES = ["none", "multi", "single", "lru10", "lru20", "lru30"]
SHAPES = [
    ("author",),
    ("title",),
    ("conf",),
    ("year",),
    ("author", "title"),
    ("conf", "year"),
    ("author", "year"),   # non-indexed: exercises generalization
    ("author", "conf"),   # indexed only by complex
]


@pytest.mark.parametrize("scheme_name", SCHEMES)
@pytest.mark.parametrize("policy_name", POLICIES)
def test_matrix_cell(scheme_name, policy_name, paper_records):
    ring = IdealRing(64)
    for index in range(16):
        ring.add_node(hash_key(f"peer-{index}", 64))
    policy, capacity = CachePolicy.parse(policy_name)
    service = IndexService(
        ARTICLE_SCHEMA,
        SCHEMES[scheme_name](),
        DHTStorage(ring),
        DHTStorage(ring),
        SimulatedTransport(),
        cache_policy=policy,
        cache_capacity=capacity,
    )
    for record in paper_records:
        service.insert_record(record)
    engine = LookupEngine(service, user="user:matrix")

    for repetition in range(2):  # second pass exercises warmed caches
        for record in paper_records:
            for shape in SHAPES:
                query = FieldQuery.of_record(record, shape)
                trace = engine.search(query, record)
                service.transport.meter.end_query()
                assert trace.found, (scheme_name, policy_name, shape, repetition)
                assert trace.result_msd == FieldQuery.msd_of(record).key()
                # Bounded work: deepest chain (4) + one generalization
                # detour (1) + never more.
                assert trace.interactions <= 5


def test_matrix_interactions_never_increase_with_cache(paper_records):
    """For every (scheme, shape), warm-cache searches cost <= cold ones."""
    for scheme_name, scheme_builder in SCHEMES.items():
        ring = IdealRing(64)
        for index in range(16):
            ring.add_node(hash_key(f"peer-{index}", 64))
        service = IndexService(
            ARTICLE_SCHEMA,
            scheme_builder(),
            DHTStorage(ring),
            DHTStorage(ring),
            SimulatedTransport(),
            cache_policy=CachePolicy.SINGLE,
        )
        for record in paper_records:
            service.insert_record(record)
        engine = LookupEngine(service, user="user:m2")
        for record in paper_records:
            for shape in SHAPES:
                query = FieldQuery.of_record(record, shape)
                cold = engine.search(query, record)
                warm = engine.search(query, record)
                service.transport.meter.end_query()
                assert warm.interactions <= cold.interactions, (
                    scheme_name, shape,
                )
