"""Failure-injection tests: the stack under partial failure and abuse.

The paper leaves failure handling to the DHT substrate ("our indexing
techniques directly benefit from any mechanisms implemented in the DHT
to deal with failures"), so the interesting failure modes live at the
boundaries: unreachable endpoints, lost storage, exhausted search
budgets, and malformed index state injected by a misbehaving peer.
"""

import pytest

from repro.core.cache import CachePolicy
from repro.core.engine import LookupEngine
from repro.core.fields import ARTICLE_SCHEMA
from repro.core.query import FieldQuery
from repro.core.scheme import simple_scheme
from repro.core.service import IndexService
from repro.dht.idspace import hash_key
from repro.dht.ring import IdealRing
from repro.net.message import Message, MessageKind
from repro.net.transport import SimulatedTransport, TransportError
from repro.storage.store import DHTStorage


def build(num_nodes=12, policy=CachePolicy.NONE):
    ring = IdealRing(64)
    for index in range(num_nodes):
        ring.add_node(hash_key(f"peer-{index}", 64))
    transport = SimulatedTransport()
    service = IndexService(
        ARTICLE_SCHEMA,
        simple_scheme(),
        DHTStorage(ring),
        DHTStorage(ring),
        transport,
        cache_policy=policy,
    )
    return ring, service, LookupEngine(service, user="user:fi")


class TestUnreachableNodes:
    def test_departed_node_breaks_only_its_keys(self, paper_records):
        ring, service, engine = build()
        for record in paper_records:
            service.insert_record(record)
        # A node leaves without the storage layer rebalancing: keys that
        # hashed to it become unreachable (no replication), the transport
        # raises, and other keys keep working.
        author = FieldQuery(ARTICLE_SCHEMA, {"author": "John_Smith"})
        victim = service.index_store.responsible_nodes(author.key())[0]
        ring.remove_node(victim)
        service.transport.unregister(service.endpoint_name(victim))
        # The key now resolves to a different live node, which simply has
        # no data: an empty answer, not a crash.
        answer = service.query(author, user="user:fi")
        assert answer.empty

    def test_unregistered_endpoint_is_loud(self):
        transport = SimulatedTransport()
        with pytest.raises(TransportError):
            transport.send(
                Message(MessageKind.QUERY_REQUEST, "user:x", "node:dead", ("q",))
            )


class TestSearchBudget:
    def test_max_interactions_bounds_runaway_search(self, paper_records):
        _, service, engine = build()
        # Poison the index: a self-referential mapping that would loop a
        # naive client forever.  (A malicious peer cannot create covering
        # violations through insert_record, so we inject directly.)
        author = FieldQuery(ARTICLE_SCHEMA, {"author": "John_Smith"})
        pair = FieldQuery(
            ARTICLE_SCHEMA, {"author": "John_Smith", "title": "TCP"}
        )
        service.index_store.put(author.key(), pair.key())
        service.index_store.put(pair.key(), pair.key())  # self-loop
        bounded = LookupEngine(service, user="user:b", max_interactions=8)
        trace = bounded.search(author, paper_records[0])
        assert not trace.found
        assert trace.interactions <= 8

    def test_engine_rejects_non_covering_search(self, paper_records):
        from repro.core.engine import LookupError_

        _, _, engine = build()
        wrong = FieldQuery(ARTICLE_SCHEMA, {"author": "Alan_Doe"})
        with pytest.raises(LookupError_):
            engine.search(wrong, paper_records[0])


class TestMalformedIndexState:
    def test_garbage_index_entries_skipped(self, paper_records):
        _, service, engine = build()
        for record in paper_records:
            service.insert_record(record)
        author = FieldQuery(ARTICLE_SCHEMA, {"author": "John_Smith"})
        # A misbehaving peer stored unparseable entries under the key.
        service.index_store.put(author.key(), "!!not a query!!")
        service.index_store.put(author.key(), "/otherroot[x[y]]")
        trace = engine.search(author, paper_records[0])
        assert trace.found  # garbage ignored, real entries still usable

    def test_arbitrary_link_resistance(self, paper_records):
        """Section IV-D: a file can only be indexed under covering keys.

        The scheme layer enforces the discipline: trying to create an
        index class edge that does not increase specificity fails, so a
        peer cannot masquerade content under an unrelated key through
        the public API.
        """
        from repro.core.scheme import IndexScheme, SchemeValidationError

        with pytest.raises(SchemeValidationError):
            IndexScheme(
                "evil",
                ARTICLE_SCHEMA,
                {("author",): [("title",)], ("title",): ["MSD"]},
            )


class TestCacheUnderFailure:
    def test_stale_shortcut_to_deleted_file(self, paper_records):
        _, service, engine = build(policy=CachePolicy.SINGLE)
        for record in paper_records:
            service.insert_record(record)
        author = FieldQuery(ARTICLE_SCHEMA, {"author": "John_Smith"})
        engine.search(author, paper_records[0])  # seeds the shortcut
        service.delete_record(paper_records[0])
        # The shortcut now dangles; a search for the deleted record
        # follows it, misses the file, and reports not-found without
        # crashing or looping.
        trace = engine.search(author, paper_records[0])
        assert not trace.found
        assert trace.interactions <= 8

    def test_other_records_unaffected_by_stale_shortcut(self, paper_records):
        _, service, engine = build(policy=CachePolicy.SINGLE)
        for record in paper_records:
            service.insert_record(record)
        author = FieldQuery(ARTICLE_SCHEMA, {"author": "John_Smith"})
        engine.search(author, paper_records[0])
        service.delete_record(paper_records[0])
        trace = engine.search(author, paper_records[1])  # the other Smith
        assert trace.found
