"""Integration tests: the full stack wired end to end.

These tests exercise the exact scenario of the paper's Figures 4-6 (the
three bibliographic files indexed under author/title/conference/year) and
the full query workload over real substrates, including churn.
"""

import pytest

from repro.core.cache import CachePolicy
from repro.core.engine import LookupEngine
from repro.core.fields import ARTICLE_SCHEMA
from repro.core.query import FieldQuery
from repro.core.scheme import complex_scheme, flat_scheme, simple_scheme
from repro.core.service import IndexService
from repro.dht.chord import ChordNetwork
from repro.dht.idspace import hash_key
from repro.dht.kademlia import KademliaNetwork
from repro.dht.ring import IdealRing
from repro.net.transport import SimulatedTransport
from repro.storage.store import DHTStorage


def build_stack(protocol, scheme=None, policy=CachePolicy.NONE, capacity=None):
    transport = SimulatedTransport()
    service = IndexService(
        ARTICLE_SCHEMA,
        scheme or simple_scheme(),
        DHTStorage(protocol),
        DHTStorage(protocol),
        transport,
        cache_policy=policy,
        cache_capacity=capacity,
    )
    return service, LookupEngine(service, user="user:int")


def ring(num_nodes=24, bits=64):
    network = IdealRing(bits)
    for index in range(num_nodes):
        network.add_node(hash_key(f"peer-{index}", bits))
    return network


class TestPaperScenario:
    """Figures 4-6: three files, hierarchical indexes, iterative lookup."""

    def test_every_file_reachable_from_every_query_shape(self, paper_records):
        service, engine = build_stack(ring())
        for record in paper_records:
            service.insert_record(record)
        for record in paper_records:
            for fields in (["author"], ["title"], ["conf"], ["year"],
                           ["author", "title"]):
                query = FieldQuery.of_record(record, fields)
                trace = engine.search(query, record)
                assert trace.found, (record, fields)

    def test_figure6_index_path(self, paper_records):
        """q6 (author Smith) -> q3 -> d1/d2: the walk of Figure 6."""
        service, engine = build_stack(ring())
        for record in paper_records:
            service.insert_record(record)
        author_query = FieldQuery(ARTICLE_SCHEMA, {"author": "John_Smith"})
        results = engine.explore(author_query)
        # The author index returns the two John Smith author+title pairs.
        assert len(results) == 2
        parsed = [FieldQuery.parse(ARTICLE_SCHEMA, key) for key in results]
        assert {query.value("title") for query in parsed} == {"TCP", "IPv6"}

    def test_proceedings_index_shared(self, paper_records):
        """INFOCOM/1996 entry serves both d2 and d3 (Figure 5)."""
        service, engine = build_stack(ring())
        for record in paper_records:
            service.insert_record(record)
        conf_year = FieldQuery(
            ARTICLE_SCHEMA, {"conf": "INFOCOM", "year": "1996"}
        )
        results = engine.explore(conf_year)
        assert len(results) == 2

    def test_lookup_cost_ordering_across_schemes(self, paper_records):
        """Flat <= simple <= complex interactions on the same lookups."""
        totals = {}
        for name, scheme in (
            ("simple", simple_scheme()),
            ("flat", flat_scheme()),
            ("complex", complex_scheme()),
        ):
            service, engine = build_stack(ring(), scheme=scheme)
            for record in paper_records:
                service.insert_record(record)
            total = 0
            for record in paper_records:
                trace = engine.search(
                    FieldQuery.of_record(record, ["author"]), record
                )
                total += trace.interactions
            totals[name] = total
        assert totals["flat"] < totals["simple"] < totals["complex"]


class TestRealSubstrates:
    @pytest.mark.parametrize("substrate", ["chord", "kademlia"])
    def test_search_over_real_dht(self, paper_records, substrate):
        node_ids = sorted(hash_key(f"peer-{i}", 32) for i in range(24))
        if substrate == "chord":
            protocol = ChordNetwork.bulk_build(node_ids, bits=32)
        else:
            protocol = KademliaNetwork.bulk_build(node_ids, bits=32, k=6)
        service, engine = build_stack(protocol)
        for record in paper_records:
            service.insert_record(record)
        for record in paper_records:
            trace = engine.search(
                FieldQuery.of_record(record, ["title"]), record
            )
            assert trace.found

    def test_same_interactions_across_substrates(self, paper_records):
        node_ids = sorted(hash_key(f"peer-{i}", 32) for i in range(24))
        interaction_counts = []
        for protocol in (
            _ring32(node_ids),
            ChordNetwork.bulk_build(node_ids, bits=32),
            KademliaNetwork.bulk_build(node_ids, bits=32, k=6),
        ):
            service, engine = build_stack(protocol)
            for record in paper_records:
                service.insert_record(record)
            trace = engine.search(
                FieldQuery.of_record(paper_records[0], ["author"]),
                paper_records[0],
            )
            interaction_counts.append(trace.interactions)
        assert len(set(interaction_counts)) == 1


def _ring32(node_ids):
    network = IdealRing(32)
    for node in node_ids:
        network.add_node(node)
    return network


class TestChurn:
    def test_search_after_node_join_and_rebalance(self, paper_records):
        protocol = ring(num_nodes=10)
        service, engine = build_stack(protocol)
        for record in paper_records:
            service.insert_record(record)
        protocol.add_node(hash_key("late-joiner", 64))
        service.register_nodes()  # new node gets an endpoint + cache
        service.index_store.rebalance()
        service.file_store.rebalance()
        for record in paper_records:
            trace = engine.search(
                FieldQuery.of_record(record, ["author"]), record
            )
            assert trace.found

    def test_search_after_node_departure(self, paper_records):
        protocol = ring(num_nodes=10)
        service, engine = build_stack(protocol)
        for record in paper_records:
            service.insert_record(record)
        victim = protocol.node_ids[3]
        protocol.remove_node(victim)
        service.index_store.rebalance()
        service.file_store.rebalance()
        for record in paper_records:
            trace = engine.search(
                FieldQuery.of_record(record, ["title"]), record
            )
            assert trace.found

    def test_replicated_store_survives_loss_without_rebalance(
        self, paper_records
    ):
        protocol = ring(num_nodes=10)
        transport = SimulatedTransport()
        service = IndexService(
            ARTICLE_SCHEMA,
            simple_scheme(),
            DHTStorage(protocol, replication=3),
            DHTStorage(protocol, replication=3),
            transport,
        )
        for record in paper_records:
            service.insert_record(record)
        # Losing one node must not lose any key (replicas remain).
        victim = protocol.node_ids[0]
        protocol.remove_node(victim)
        for record in paper_records:
            msd = FieldQuery.msd_of(record)
            assert service.file_store.get(msd.key()).found


class TestCachingIntegration:
    def test_popular_lookup_accelerates(self, paper_records):
        service, engine = build_stack(ring(), policy=CachePolicy.SINGLE)
        for record in paper_records:
            service.insert_record(record)
        query = FieldQuery(ARTICLE_SCHEMA, {"author": "John_Smith"})
        cold = engine.search(query, paper_records[0])
        warm = engine.search(query, paper_records[0])
        assert warm.interactions < cold.interactions
        assert warm.cache_hit

    def test_cache_traffic_separated_from_normal(self, paper_records):
        service, engine = build_stack(ring(), policy=CachePolicy.MULTI)
        for record in paper_records:
            service.insert_record(record)
        engine.search(
            FieldQuery(ARTICLE_SCHEMA, {"author": "John_Smith"}), paper_records[0]
        )
        meter = service.transport.meter
        assert meter.cache_bytes > 0
        assert meter.normal_bytes > meter.cache_bytes
