"""Shared fixtures: the paper's running example and small stacks."""

from __future__ import annotations

import pytest

from repro.core.cache import CachePolicy
from repro.core.fields import ARTICLE_SCHEMA, Record
from repro.core.scheme import simple_scheme
from repro.core.service import IndexService
from repro.dht.idspace import hash_key
from repro.dht.ring import IdealRing
from repro.net.transport import SimulatedTransport
from repro.storage.store import DHTStorage
from repro.xmlq.xmlparse import parse_xml


@pytest.fixture
def paper_descriptors():
    """The three descriptors of Figure 1 (d1, d2, d3)."""
    d1 = parse_xml(
        "<article><author><first>John</first><last>Smith</last></author>"
        "<title>TCP</title><conf>SIGCOMM</conf><year>1989</year>"
        "<size>315635</size></article>"
    )
    d2 = parse_xml(
        "<article><author><first>John</first><last>Smith</last></author>"
        "<title>IPv6</title><conf>INFOCOM</conf><year>1996</year>"
        "<size>312352</size></article>"
    )
    d3 = parse_xml(
        "<article><author><first>Alan</first><last>Doe</last></author>"
        "<title>Wavelets</title><conf>INFOCOM</conf><year>1996</year>"
        "<size>259827</size></article>"
    )
    return d1, d2, d3


@pytest.fixture
def paper_queries():
    """The six queries of Figure 2 (q1 .. q6)."""
    return (
        "/article[author[first/John][last/Smith]][title/TCP]"
        "[conf/SIGCOMM][year/1989][size/315635]",
        "/article[author[first/John][last/Smith]][conf/INFOCOM]",
        "/article/author[first/John][last/Smith]",
        "/article/title/TCP",
        "/article/conf/INFOCOM",
        "/article/author/last/Smith",
    )


@pytest.fixture
def paper_records():
    """Figure 1's articles as records of the article schema."""
    return [
        Record(
            ARTICLE_SCHEMA,
            {
                "author": "John_Smith",
                "title": "TCP",
                "conf": "SIGCOMM",
                "year": "1989",
                "size": "315635",
            },
        ),
        Record(
            ARTICLE_SCHEMA,
            {
                "author": "John_Smith",
                "title": "IPv6",
                "conf": "INFOCOM",
                "year": "1996",
                "size": "312352",
            },
        ),
        Record(
            ARTICLE_SCHEMA,
            {
                "author": "Alan_Doe",
                "title": "Wavelets",
                "conf": "INFOCOM",
                "year": "1996",
                "size": "259827",
            },
        ),
    ]


def build_ring(num_nodes: int = 16, bits: int = 64) -> IdealRing:
    ring = IdealRing(bits)
    for index in range(num_nodes):
        ring.add_node(hash_key(f"node-{index}", bits))
    return ring


def build_service(
    scheme=None,
    cache_policy: CachePolicy = CachePolicy.NONE,
    cache_capacity=None,
    num_nodes: int = 16,
):
    """A small, fully wired index service for unit tests."""
    ring = build_ring(num_nodes)
    transport = SimulatedTransport()
    service = IndexService(
        ARTICLE_SCHEMA,
        scheme or simple_scheme(),
        DHTStorage(ring),
        DHTStorage(ring),
        transport,
        cache_policy=cache_policy,
        cache_capacity=cache_capacity,
    )
    return service


@pytest.fixture
def small_service():
    return build_service()


@pytest.fixture
def service_factory():
    """Factory fixture: build a wired index service on demand."""
    return build_service


@pytest.fixture
def ring_factory():
    """Factory fixture: build a populated ideal ring on demand."""
    return build_ring
