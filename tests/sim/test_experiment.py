"""Unit and smoke tests for the simulation harness."""

from dataclasses import replace

import pytest

from repro.sim.experiment import Experiment, ExperimentConfig
from repro.workload.corpus import CorpusConfig, SyntheticCorpus

TINY = ExperimentConfig(
    num_nodes=20,
    num_articles=120,
    num_queries=600,
    num_authors=60,
)


@pytest.fixture(scope="module")
def tiny_corpus():
    return SyntheticCorpus(
        CorpusConfig(
            num_articles=TINY.num_articles,
            num_authors=TINY.num_authors,
            seed=TINY.corpus_seed,
        )
    )


def run(config, corpus=None):
    return Experiment(config, corpus=corpus).run()


class TestConfig:
    def test_defaults_are_paper_setup(self):
        config = ExperimentConfig()
        assert config.num_nodes == 500
        assert config.num_articles == 10_000
        assert config.num_queries == 50_000

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"scheme": "bogus"},
            {"cache": "bogus"},
            {"substrate": "bogus"},
            {"num_nodes": 0},
            {"cache": "lru0"},
        ],
    )
    def test_invalid_configs(self, kwargs):
        with pytest.raises(ValueError):
            ExperimentConfig(**kwargs)

    def test_scaled(self):
        scaled = ExperimentConfig().scaled(0.01)
        assert scaled.num_nodes == 5
        assert scaled.num_articles == 100
        assert scaled.num_queries == 500


class TestRun:
    def test_all_searches_succeed(self, tiny_corpus):
        result = run(TINY, tiny_corpus)
        assert result.searches == TINY.num_queries
        assert result.found == result.searches

    def test_result_validates(self, tiny_corpus):
        result = run(TINY, tiny_corpus)
        result.validate()

    def test_no_cache_means_no_cache_activity(self, tiny_corpus):
        result = run(TINY, tiny_corpus)
        assert result.cache_hits == 0
        assert result.cache_bytes_total == 0
        assert result.avg_cached_keys_per_node == 0

    def test_deterministic(self, tiny_corpus):
        first = run(TINY, tiny_corpus)
        second = run(TINY, tiny_corpus)
        assert first.avg_interactions == second.avg_interactions
        assert first.normal_bytes_total == second.normal_bytes_total
        assert first.nonindexed_queries == second.nonindexed_queries

    def test_interactions_at_least_two(self, tiny_corpus):
        """Every lookup needs at least index + file interactions."""
        result = run(TINY, tiny_corpus)
        assert result.avg_interactions >= 2.0

    def test_hotspot_percentages(self, tiny_corpus):
        result = run(TINY, tiny_corpus)
        assert result.node_query_percentages
        assert result.node_query_percentages[0] >= result.node_query_percentages[-1]
        # Fan-out: percentages sum to more than 100% (Fig 15 note).
        assert sum(result.node_query_percentages) > 100.0

    def test_shared_corpus_must_match(self, tiny_corpus):
        with pytest.raises(ValueError):
            Experiment(replace(TINY, num_articles=50), corpus=tiny_corpus)

    def test_index_storage_accounted(self, tiny_corpus):
        result = run(TINY, tiny_corpus)
        assert result.index_storage_bytes > 0
        assert result.article_bytes > result.index_storage_bytes


class TestCachePolicies:
    def test_single_cache_improves_over_none(self, tiny_corpus):
        none = run(TINY, tiny_corpus)
        single = run(replace(TINY, cache="single"), tiny_corpus)
        assert single.avg_interactions < none.avg_interactions
        assert single.hit_ratio > 0
        assert single.nonindexed_queries <= none.nonindexed_queries

    def test_lru_bounded_by_capacity(self, tiny_corpus):
        result = run(replace(TINY, cache="lru10"), tiny_corpus)
        assert result.max_cached_keys <= 10

    def test_lru_hit_ratio_grows_with_capacity(self, tiny_corpus):
        small = run(replace(TINY, cache="lru10"), tiny_corpus)
        large = run(replace(TINY, cache="lru30"), tiny_corpus)
        assert large.hit_ratio >= small.hit_ratio

    def test_multi_creates_more_cache_traffic(self, tiny_corpus):
        multi = run(replace(TINY, cache="multi"), tiny_corpus)
        single = run(replace(TINY, cache="single"), tiny_corpus)
        assert multi.cache_bytes_total >= single.cache_bytes_total
        assert multi.avg_cached_keys_per_node >= single.avg_cached_keys_per_node


class TestSchemes:
    def test_flat_fewest_interactions(self, tiny_corpus):
        results = {
            scheme: run(replace(TINY, scheme=scheme), tiny_corpus)
            for scheme in ("simple", "flat", "complex")
        }
        assert results["flat"].avg_interactions < results["simple"].avg_interactions
        assert (
            results["simple"].avg_interactions
            < results["complex"].avg_interactions
        )

    def test_flat_generates_most_traffic(self, tiny_corpus):
        results = {
            scheme: run(replace(TINY, scheme=scheme), tiny_corpus)
            for scheme in ("simple", "flat", "complex")
        }
        assert (
            results["flat"].normal_bytes_per_query
            > results["simple"].normal_bytes_per_query
        )

    def test_flat_costs_most_index_storage(self, tiny_corpus):
        simple = run(TINY, tiny_corpus)
        flat = run(replace(TINY, scheme="flat"), tiny_corpus)
        assert flat.index_storage_bytes > simple.index_storage_bytes


class TestSubstrates:
    def test_interactions_substrate_independent(self, tiny_corpus):
        """The layering claim: indexing behaviour does not depend on the
        substrate, only routing cost does."""
        config = replace(TINY, num_nodes=12, bits=32)
        results = {
            substrate: run(replace(config, substrate=substrate), tiny_corpus)
            for substrate in ("ideal", "chord", "kademlia", "pastry", "can")
        }
        interactions = {
            round(result.avg_interactions, 6) for result in results.values()
        }
        assert len(interactions) == 1
        assert results["chord"].avg_dht_hops > results["ideal"].avg_dht_hops

    def test_shortcut_top_n_reduces_interactions(self, tiny_corpus):
        base = run(TINY, tiny_corpus)
        boosted = run(replace(TINY, shortcut_top_n=20), tiny_corpus)
        assert boosted.avg_interactions < base.avg_interactions
