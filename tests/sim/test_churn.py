"""Unit tests for churn injection in the simulation."""

from dataclasses import replace


from repro.sim.experiment import Experiment, ExperimentConfig

TINY = ExperimentConfig(
    num_nodes=24,
    num_articles=120,
    num_queries=800,
    num_authors=60,
    cache="single",
)


class TestChurnEvents:
    def test_all_searches_survive_churn(self):
        experiment = Experiment(replace(TINY, churn_events=8))
        result = experiment.run()
        assert result.found == result.searches
        assert experiment.churn_keys_moved > 0

    def test_population_size_preserved(self):
        experiment = Experiment(replace(TINY, churn_events=5))
        experiment.run()
        assert len(experiment.protocol.node_ids) == TINY.num_nodes

    def test_departed_nodes_replaced_by_fresh_ids(self):
        experiment = Experiment(replace(TINY, churn_events=5))
        before = set(experiment.protocol.node_ids)
        experiment.run()
        after = set(experiment.protocol.node_ids)
        assert before != after
        assert len(after - before) == len(before - after)

    def test_new_nodes_get_endpoints_and_caches(self):
        experiment = Experiment(replace(TINY, churn_events=5))
        experiment.run()
        for node in experiment.protocol.node_ids:
            name = experiment.service.endpoint_name(node)
            assert experiment.transport.is_registered(name)
            assert node in experiment.service.caches

    def test_departed_nodes_fully_unregistered(self):
        experiment = Experiment(replace(TINY, churn_events=5))
        before = set(experiment.protocol.node_ids)
        experiment.run()
        departed = before - set(experiment.protocol.node_ids)
        assert departed
        for node in departed:
            assert not experiment.transport.is_registered(
                experiment.service.endpoint_name(node)
            )
            assert node not in experiment.service.caches

    def test_zero_churn_moves_nothing(self):
        experiment = Experiment(TINY)
        experiment.run()
        assert experiment.churn_keys_moved == 0

    def test_churn_deterministic_in_seed(self):
        first = Experiment(replace(TINY, churn_events=6)).run()
        second = Experiment(replace(TINY, churn_events=6)).run()
        assert first.avg_interactions == second.avg_interactions
        assert first.hit_ratio == second.hit_ratio

    def test_churn_over_chord(self):
        config = replace(
            TINY, churn_events=4, substrate="chord", bits=32, num_queries=400
        )
        result = Experiment(config).run()
        assert result.found == result.searches
