"""Restart/power-loss chaos in the simulator, and WAL-backed recovery.

Covers the restart axis of the chaos matrix end to end: the transport's
restart schedule, the experiment's restart events (kill -> downtime ->
recover-from-WAL -> repair), determinism of the whole pipeline, and the
durability comparison -- a WAL run recovers entries locally where a
``durability=none`` run must re-replicate everything over the network.
"""

from dataclasses import replace

import pytest

from repro.net.faults import (
    FaultPlan,
    FaultyTransport,
    RestartEvent,
)
from repro.net.message import Message, MessageKind
from repro.net.transport import DeliveryError, SimulatedTransport
from repro.sim.experiment import Experiment, ExperimentConfig
from repro.sim.presets import RESTART_CHAOS_SMOKE_CONFIG

TINY_RESTART = ExperimentConfig(
    num_nodes=24,
    num_articles=150,
    num_queries=900,
    num_authors=60,
    cache="single",
    replication=3,
    fault_drop_probability=0.02,
    restart_events=2,
    restart_downtime_queries=60,
    power_loss_events=1,
    durability="wal",
    fsync="never",  # every power loss is guaranteed to tear real bytes
)


def fingerprint(trace):
    return (
        trace.query.key(),
        trace.found,
        trace.interactions,
        trace.retries,
        trace.failed_sends,
        tuple(trace.visited),
    )


def run_with_traces(config):
    experiment = Experiment(config)
    traces = []
    experiment.trace_sink = lambda trace: traces.append(fingerprint(trace))
    result = experiment.run()
    return result, traces


class TestRestartEvents:
    @pytest.fixture(scope="class")
    def tiny_result(self):
        return run_with_traces(TINY_RESTART)

    def test_every_scheduled_restart_fires(self, tiny_result):
        result, _ = tiny_result
        assert result.restarts == 3
        assert result.power_losses == 1

    def test_recovery_replayed_from_the_wal(self, tiny_result):
        result, _ = tiny_result
        assert result.recovered_entries > 0
        assert result.wal_records_replayed > 0
        assert result.recovery_replay_ms > 0.0
        # fsync=never: nothing past the header was synced, so the one
        # power loss must have torn a real tail.
        assert result.wal_torn_bytes > 0

    def test_post_restart_lookups_succeed(self, tiny_result):
        result, _ = tiny_result
        assert result.post_restart_searches > 0
        assert result.post_restart_found <= result.post_restart_searches
        assert result.post_restart_success_rate >= 0.95

    def test_restart_rows_render(self, tiny_result):
        result, _ = tiny_result
        rows = dict(result.availability_rows())
        assert "restarts (of which power losses)" in rows
        assert rows["restarts (of which power losses)"] == "3 (1)"
        assert "post-restart lookup success" in rows

    def test_result_validates(self, tiny_result):
        result, _ = tiny_result
        result.validate()


class TestRestartDeterminism:
    def test_same_seed_identical_runs(self):
        """Two restart-chaos runs with one seed are identical in every
        observable except wall-clock time (replay_ms, runtime)."""
        first_result, first_traces = run_with_traces(TINY_RESTART)
        second_result, second_traces = run_with_traces(TINY_RESTART)
        assert first_traces == second_traces
        assert first_result.restarts == second_result.restarts
        assert first_result.power_losses == second_result.power_losses
        assert first_result.recovered_entries == second_result.recovered_entries
        assert (
            first_result.wal_records_replayed
            == second_result.wal_records_replayed
        )
        assert first_result.wal_torn_bytes == second_result.wal_torn_bytes
        assert (
            first_result.post_restart_found == second_result.post_restart_found
        )
        assert first_result.repair_bytes == second_result.repair_bytes

    def test_restart_free_runs_report_nothing(self):
        """A config without restart events must not touch any restart
        machinery: zero counters, no extra report rows."""
        result, _ = run_with_traces(
            replace(
                TINY_RESTART,
                restart_events=0,
                power_loss_events=0,
                durability="none",
            )
        )
        assert result.restarts == 0
        assert result.power_losses == 0
        assert result.recovered_entries == 0
        assert result.post_restart_searches == 0
        assert result.restart_rows() == []

    def test_restart_schedule_is_seeded(self):
        first = Experiment(TINY_RESTART)
        first._chaos_schedule()
        second = Experiment(TINY_RESTART)
        second._chaos_schedule()
        assert first._restart_positions == second._restart_positions
        assert len(first._restart_positions) == 3
        assert sum(first._restart_positions.values()) == 1  # one power loss
        first.close()
        second.close()


class TestDurabilityComparison:
    def test_wal_recovers_locally_where_none_repairs_remotely(self):
        """The point of the WAL: a recovered node replays its own state
        instead of pulling it all back over the network."""
        wal_result, _ = run_with_traces(TINY_RESTART)
        none_result, _ = run_with_traces(
            replace(TINY_RESTART, durability="none")
        )
        assert none_result.restarts == wal_result.restarts
        assert none_result.recovered_entries == 0
        assert wal_result.recovered_entries > 0
        # Same kills, but the none run re-replicates every lost entry.
        assert none_result.repair_bytes > wal_result.repair_bytes

    def test_invalid_durability_rejected(self):
        with pytest.raises(ValueError):
            replace(TINY_RESTART, durability="raid")
        with pytest.raises(ValueError):
            replace(TINY_RESTART, fsync="sometimes")
        with pytest.raises(ValueError):
            replace(TINY_RESTART, restart_events=-1)
        with pytest.raises(ValueError):
            replace(TINY_RESTART, restart_downtime_queries=0)


class TestSmokePreset:
    @pytest.fixture(scope="class")
    def smoke_result(self):
        return Experiment(RESTART_CHAOS_SMOKE_CONFIG).run()

    def test_acceptance_bar(self, smoke_result):
        # The restart-chaos acceptance bar: >= 99% lookup success after
        # recovery, with the kills actually happening.
        assert smoke_result.restarts == 3
        assert smoke_result.power_losses == 1
        assert smoke_result.post_restart_success_rate >= 0.99

    def test_recovery_happened_from_disk(self, smoke_result):
        assert smoke_result.recovered_entries > 0
        assert smoke_result.wal_records_replayed > 0


class TestTransportRestartSchedule:
    """The net-layer restart schedule: kill, downtime, rejoin hooks."""

    def request(self, destination="node:1"):
        return Message(MessageKind.QUERY_REQUEST, "user:t", destination, ("q",))

    def build(self, plan):
        inner = SimulatedTransport()
        inner.register(
            "node:1",
            lambda m: m.reply(MessageKind.QUERY_RESPONSE, ("ok",)),
        )
        return FaultyTransport(inner, plan)

    def test_validation(self):
        with pytest.raises(ValueError):
            RestartEvent(at_send=-1, downtime_sends=3)
        with pytest.raises(ValueError):
            RestartEvent(at_send=0, downtime_sends=0)
        assert FaultPlan(
            restart_schedule=(RestartEvent(0, 5),)
        ).is_zero is False

    def test_kill_downtime_rejoin(self):
        plan = FaultPlan(
            restart_schedule=(
                RestartEvent(at_send=2, downtime_sends=3, victim="node:1"),
            )
        )
        faulty = self.build(plan)
        outcomes = []
        for _ in range(8):
            try:
                faulty.send(self.request())
                outcomes.append("ok")
            except DeliveryError:
                outcomes.append("down")
        assert outcomes == ["ok", "ok", "down", "down", "down", "ok", "ok", "ok"]

    def test_hooks_fire_with_power_loss_flag(self):
        plan = FaultPlan(
            restart_schedule=(
                RestartEvent(
                    at_send=1, downtime_sends=2, victim="node:1", power_loss=True
                ),
            )
        )
        faulty = self.build(plan)
        events = []
        faulty.on_kill = lambda name, power: events.append(("kill", name, power))
        faulty.on_restart = lambda name, power: events.append(
            ("restart", name, power)
        )
        for _ in range(6):
            try:
                faulty.send(self.request())
            except DeliveryError:
                pass
        assert events == [
            ("kill", "node:1", True),
            ("restart", "node:1", True),
        ]

    def test_counters(self):
        from repro import perf

        plan = FaultPlan(
            restart_schedule=(
                RestartEvent(at_send=0, downtime_sends=1, victim="node:1"),
                RestartEvent(
                    at_send=3, downtime_sends=1, victim="node:1", power_loss=True
                ),
            )
        )
        faulty = self.build(plan)
        before = perf.snapshot()
        for _ in range(6):
            try:
                faulty.send(self.request())
            except DeliveryError:
                pass
        delta = perf.delta(before, perf.snapshot())
        assert delta["fault_restarts"] == 2
        assert delta["fault_power_losses"] == 1
