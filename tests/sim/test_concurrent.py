"""Concurrent kernel-mode experiments: determinism and latency accounting.

The tentpole invariants of the virtual-time refactor:

- same seed + same config => identical lookup completion order and an
  identical :class:`ExperimentResult` (including the response-time
  percentiles) across repeated runs, on the ideal ring and on Chord;
- a single user with zero added latency reproduces the sequential
  driver's results exactly (the kernel is pure plumbing);
- response times grow with the substrate's hop count (ideal < Chord).
"""

from dataclasses import asdict, replace

import pytest

from repro.sim.experiment import Experiment, ExperimentConfig
from repro.sim.presets import CHURN_SMOKE_CONFIG

TINY = ExperimentConfig(
    num_nodes=30,
    num_articles=200,
    num_queries=250,
    num_authors=80,
)

#: Result fields excluded from bit-identity comparisons: wall-clock
#: runtime, and the hot-path perf counters whose process-global memo
#: caches warm up across runs in one process.
_NONDETERMINISTIC_FIELDS = ("runtime_seconds", "perf_counters")


def trace_fingerprint(trace):
    return (
        trace.query.key(),
        trace.found,
        trace.interactions,
        trace.errors,
        trace.retries,
        trace.failed_sends,
        trace.gave_up,
        trace.cache_hit,
        tuple(trace.visited),
    )


def run_with_traces(config):
    experiment = Experiment(config)
    fingerprints = []
    experiment.trace_sink = lambda trace: fingerprints.append(
        trace_fingerprint(trace)
    )
    result = experiment.run()
    return result, fingerprints


def comparable(result):
    fields = asdict(result)
    for name in _NONDETERMINISTIC_FIELDS:
        fields.pop(name)
    return fields


class TestDeterminism:
    @pytest.mark.parametrize("substrate", ["ideal", "chord"])
    def test_same_seed_same_run(self, substrate):
        config = replace(
            TINY,
            substrate=substrate,
            concurrency=8,
            latency_model="uniform:10:100",
        )
        first, first_traces = run_with_traces(config)
        second, second_traces = run_with_traces(config)
        # Identical completion order (the event interleaving is a pure
        # function of the seeds) and identical measurements, including
        # the latency percentiles.
        assert first_traces == second_traces
        assert comparable(first) == comparable(second)
        assert first.response_time_ms_p99 == second.response_time_ms_p99

    def test_open_loop_arrivals_deterministic(self):
        config = replace(
            TINY,
            concurrency=4,
            latency_model="uniform:10:100",
            arrival_interval_ms=20.0,
        )
        first, first_traces = run_with_traces(config)
        second, second_traces = run_with_traces(config)
        assert first_traces == second_traces
        assert comparable(first) == comparable(second)
        assert first.searches == config.num_queries


class TestSequentialEquivalence:
    def test_single_user_zero_latency_matches_sequential_driver(self):
        # constant:0 forces the kernel path (uses_kernel is True) while
        # keeping delivery instantaneous and the user population at 1,
        # so every exchange happens in the sequential order.
        sequential = replace(TINY, cache="single")
        kernel = replace(sequential, latency_model="constant:0")
        assert not sequential.uses_kernel
        assert kernel.uses_kernel

        seq_result, seq_traces = run_with_traces(sequential)
        ker_result, ker_traces = run_with_traces(kernel)
        assert seq_traces == ker_traces
        seq_fields = comparable(seq_result)
        ker_fields = comparable(ker_result)
        # Only the mode labels may differ between the two drivers.
        for name in ("latency_model",):
            seq_fields.pop(name)
            ker_fields.pop(name)
        assert seq_fields == ker_fields

    def test_concurrent_reliable_run_matches_sequential_aggregates(self):
        # Without faults or caches, per-query interaction counts are
        # independent of the interleaving: overlap changes *when*
        # exchanges happen, never their outcome.
        sequential = Experiment(TINY).run()
        concurrent = Experiment(
            replace(TINY, concurrency=8, latency_model="uniform:10:100")
        ).run()
        assert concurrent.searches == sequential.searches
        assert concurrent.found == sequential.found
        assert concurrent.total_interactions == sequential.total_interactions
        assert concurrent.normal_bytes_total == sequential.normal_bytes_total
        assert (
            concurrent.node_query_percentages
            == sequential.node_query_percentages
        )


class TestLatencyAccounting:
    def test_response_time_grows_with_hop_count(self):
        times = {}
        for substrate in ("ideal", "chord"):
            config = replace(
                TINY,
                substrate=substrate,
                concurrency=8,
                latency_model="constant:50",
            )
            result = Experiment(config).run()
            assert result.avg_dht_hops >= 1.0
            times[substrate] = result.response_time_ms_p50
        # Chord resolves a key over multiple overlay hops; the ideal
        # ring routes in one.  Request legs scale with the hop count.
        assert times["ideal"] < times["chord"]

    def test_virtual_clock_only(self):
        config = replace(TINY, concurrency=8, latency_model="uniform:10:100")
        result = Experiment(config).run()
        assert result.virtual_time_ms > 0
        # The whole virtual run takes far less wall-clock time than its
        # simulated duration: nothing ever sleeps.
        assert result.runtime_seconds < result.virtual_time_ms / 1000.0


class TestChurnPresetConcurrent:
    def test_churn_feed_completes_with_nondegenerate_percentiles(self):
        config = replace(
            CHURN_SMOKE_CONFIG,
            num_queries=800,
            concurrency=16,
            latency_model="uniform:10:100",
        )
        first, first_traces = run_with_traces(config)
        second, second_traces = run_with_traces(config)
        assert first_traces == second_traces
        assert comparable(first) == comparable(second)
        assert first.searches == config.num_queries
        assert 0.0 < first.response_time_ms_p50
        assert (
            first.response_time_ms_p50
            <= first.response_time_ms_p95
            <= first.response_time_ms_p99
        )
        assert first.response_time_ms_p99 > first.response_time_ms_p50
        assert first.success_rate > 0.9
