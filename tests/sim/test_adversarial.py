"""Adversarial experiment cells: attack impact, defense, determinism.

Covers the "lookups under attack" axis end to end: the adversary
population recruits deterministically inside the simulator, an
undefended run delivers poisoned results and loses lookups, switching
verification on catches every forgery (poisoned results drop to zero,
success recovers through trusted-replica failover), and both cells are
bit-reproducible under the fixed chaos seed.
"""

from dataclasses import replace

import pytest

from repro.sim.experiment import Experiment, ExperimentConfig
from repro.sim.presets import ADVERSARIAL_SMOKE_CONFIG

#: A cell small enough for unit tests but adversarial enough that the
#: attack measurably hurts and the defense measurably recovers.
TINY_ATTACK = ExperimentConfig(
    cache="single",
    replication=3,
    num_nodes=40,
    num_articles=300,
    num_queries=800,
    num_authors=120,
    fault_drop_probability=0.01,
    churn_seed=11,
    adversary_poisoners=5,
    adversary_liars=2,
    adversary_sybil_joins=3,
    adversary_eclipse_victims=1,
)


def run(config):
    result = Experiment(config).run()
    # Normalize the two fields that vary run to run within one process:
    # wall clock, and perf counters whose process-global parse caches
    # warm up across runs.  Everything else must compare bit-for-bit.
    return replace(result, runtime_seconds=0.0, perf_counters={})


@pytest.fixture(scope="module")
def undefended():
    return run(TINY_ATTACK)


@pytest.fixture(scope="module")
def defended():
    return run(replace(TINY_ATTACK, verify_signatures=True))


class TestConfig:
    def test_adversary_fields_validated(self):
        with pytest.raises(ValueError):
            ExperimentConfig(adversary_poisoners=-1)
        with pytest.raises(ValueError):
            ExperimentConfig(adversary_eclipse_drop=2.0)

    def test_benign_config_has_no_adversary(self):
        config = ExperimentConfig()
        assert not config.has_adversary
        assert config.adversary_plan().is_zero

    def test_verify_alone_still_builds(self):
        """verify_signatures without attackers is a valid (boring) cell."""
        config = replace(
            TINY_ATTACK,
            adversary_poisoners=0, adversary_liars=0,
            adversary_sybil_joins=0, adversary_eclipse_victims=0,
            verify_signatures=True,
        )
        result = run(config)
        assert result.poisoned_results == 0
        assert result.verify_failures == 0


class TestUndefendedRun(object):
    def test_attack_degrades_success(self, undefended):
        assert undefended.success_rate < 0.95

    def test_poisoned_results_delivered(self, undefended):
        assert undefended.poisoned_results > 0
        assert undefended.poisoned_result_rate > 0.0
        assert undefended.forged_answers > 0

    def test_population_accounting(self, undefended):
        plan = TINY_ATTACK
        assert undefended.sybil_joins == plan.adversary_sybil_joins
        assert undefended.adversarial_nodes == (
            plan.adversary_poisoners
            + plan.adversary_liars
            + plan.adversary_sybil_joins
        )
        assert undefended.eclipsed_nodes == plan.adversary_eclipse_victims

    def test_no_verification_machinery_ran(self, undefended):
        assert undefended.verify_failures == 0
        assert undefended.low_trust_peers == 0

    def test_result_validates(self, undefended):
        undefended.validate()


class TestDefendedRun:
    def test_success_recovers(self, undefended, defended):
        assert defended.success_rate > undefended.success_rate
        assert defended.success_rate >= 0.95

    def test_no_poisoned_results_survive(self, defended):
        assert defended.poisoned_results == 0
        assert defended.poisoned_result_rate == 0.0

    def test_forgeries_are_caught_and_failed_over(self, defended):
        assert defended.verify_failures > 0
        assert defended.service_failovers > 0

    def test_forgers_lose_trust(self, defended):
        assert defended.low_trust_peers > 0

    def test_result_validates(self, defended):
        defended.validate()


class TestDeterminism:
    def test_undefended_cell_reproduces(self, undefended):
        again = run(TINY_ATTACK)
        assert again == undefended

    def test_defended_cell_reproduces(self, defended):
        again = run(replace(TINY_ATTACK, verify_signatures=True))
        assert again == defended

    def test_seed_changes_the_population(self):
        a = run(replace(TINY_ATTACK, num_queries=200, churn_seed=11))
        b = run(replace(TINY_ATTACK, num_queries=200, churn_seed=12))
        assert a != b


class TestBenignTransparency:
    def test_zero_adversary_matches_plain_chaos_run(self):
        """Dropping the adversary fields reproduces the pre-adversary
        pipeline bit for bit (same transport class, same draws)."""
        benign = replace(
            TINY_ATTACK,
            adversary_poisoners=0, adversary_liars=0,
            adversary_sybil_joins=0, adversary_eclipse_victims=0,
        )
        result = run(benign)
        assert result.adversarial_nodes == 0
        assert result.poisoned_results == 0
        assert result.eclipse_drops == 0
        assert result.success_rate > 0.95
        assert result == run(benign)


class TestSmokePreset:
    def test_smoke_preset_shows_the_gap(self):
        """The CI cell: measurable attack, measurable recovery."""
        off = run(ADVERSARIAL_SMOKE_CONFIG)
        on = run(replace(ADVERSARIAL_SMOKE_CONFIG, verify_signatures=True))
        assert off.poisoned_results > 0
        assert on.poisoned_results == 0
        assert on.success_rate > off.success_rate
