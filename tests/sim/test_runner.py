"""Unit tests for the memoizing runner."""

from dataclasses import replace

import pytest

from repro.sim.experiment import ExperimentConfig
from repro.sim.runner import cached_cells, clear_cache, run_cached

TINY = ExperimentConfig(
    num_nodes=10, num_articles=60, num_queries=200, num_authors=30
)


@pytest.fixture(autouse=True)
def isolated_cache():
    clear_cache()
    yield
    clear_cache()


class TestMemoization:
    def test_same_config_returns_same_object(self):
        first = run_cached(TINY)
        second = run_cached(TINY)
        assert first is second

    def test_different_cells_computed_separately(self):
        simple = run_cached(TINY)
        flat = run_cached(replace(TINY, scheme="flat"))
        assert simple is not flat
        assert len(cached_cells()) == 2

    def test_corpus_shared_across_cells(self):
        run_cached(TINY)
        run_cached(replace(TINY, cache="single"))
        from repro.sim import runner

        assert len(runner._corpora) == 1

    def test_clear_cache(self):
        run_cached(TINY)
        clear_cache()
        assert cached_cells() == []
