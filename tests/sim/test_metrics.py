"""Unit tests for the experiment result record."""

import pytest

from repro.sim.metrics import ExperimentResult


def make(**overrides):
    base = dict(
        scheme="simple",
        cache="none",
        substrate="ideal",
        num_nodes=10,
        num_articles=100,
        num_queries=1000,
    )
    result = ExperimentResult(**base)
    for key, value in overrides.items():
        setattr(result, key, value)
    return result


class TestDerived:
    def test_busiest_node_share(self):
        result = make(node_query_percentages=[9.5, 4.0, 1.0])
        assert result.busiest_node_share == pytest.approx(0.095)

    def test_busiest_empty(self):
        assert make().busiest_node_share == 0.0

    def test_total_bytes(self):
        result = make(normal_bytes_per_query=100.0, cache_bytes_per_query=20.0)
        assert result.total_bytes_per_query == 120.0

    def test_label(self):
        assert make().label() == "simple/none/ideal"

    def test_summary_row_matches_headers(self):
        assert len(make().summary_row()) == len(ExperimentResult.SUMMARY_HEADERS)


class TestResponseTimeRows:
    def test_rows_report_kernel_fields(self):
        result = make(
            concurrency=16,
            latency_model="uniform:10:100",
            response_time_ms_p50=120.0,
            response_time_ms_p95=340.5,
            response_time_ms_p99=510.0,
            response_time_ms_mean=150.25,
            virtual_time_ms=9_876.0,
        )
        rows = dict((label, value) for label, value in result.response_time_rows())
        assert rows["concurrency"] == 16
        assert rows["latency model"] == "uniform:10:100"
        assert rows["response time p50"] == "120.0 ms"
        assert rows["response time p95"] == "340.5 ms"
        assert rows["response time p99"] == "510.0 ms"
        assert rows["virtual makespan"] == "9,876.0 ms"

    def test_sequential_defaults(self):
        result = make()
        assert result.concurrency == 1
        assert result.latency_model == "zero"
        assert result.response_time_ms_p99 == 0.0
        assert result.virtual_time_ms == 0.0


class TestValidation:
    def test_valid(self):
        make(searches=10, found=10).validate()

    def test_found_exceeds_searches(self):
        with pytest.raises(ValueError):
            make(searches=1, found=2).validate()

    def test_cache_activity_without_policy(self):
        with pytest.raises(ValueError):
            make(cache_hits=1).validate()

    def test_hit_ratio_bounds(self):
        with pytest.raises(ValueError):
            make(cache="single", hit_ratio=1.5).validate()
