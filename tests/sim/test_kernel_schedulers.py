"""Scheduler equivalence and internals: heap vs. timing wheel.

The two schedulers behind :class:`repro.sim.kernel.EventKernel` must be
observationally identical -- same callback order, same clock, same event
count -- for every interleaving of schedule/post/cancel/step/run.  A
Hypothesis property drives random programs through both and compares the
full firing transcript; targeted tests pin the scheduler-specific
guarantees (O(1) ``pending``, heap compaction under cancel churn, wheel
resize/side-heap/scan behaviour) and the end-to-end promise that an
experiment's measured numbers do not depend on the scheduler.
"""

import random
from dataclasses import asdict, replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.experiment import Experiment
from repro.sim.kernel import EventKernel
from repro.sim.presets import CONCURRENT_CONFIG

# -- the random-program interpreter -----------------------------------------

# Delays mix small integers (forcing timestamp ties, the FIFO-order
# stress) with arbitrary floats (forcing bucket-boundary variety).
_DELAYS = st.one_of(
    st.integers(min_value=0, max_value=6).map(float),
    st.floats(min_value=0.0, max_value=64.0,
              allow_nan=False, allow_infinity=False),
)

# A booked callback may itself book children when it fires -- zero-delay
# children land at or behind the bucket being drained, which is exactly
# the side-heap path the wheel must merge in exact order.
_NESTED = st.lists(_DELAYS, max_size=3)

_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("schedule"), _DELAYS, _NESTED),
        st.tuples(st.just("post"), _DELAYS, _NESTED),
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=999)),
        st.tuples(st.just("step")),
    ),
    max_size=60,
)


def _drive(scheduler: str, program) -> tuple:
    """Interpret one program against one scheduler; return the transcript."""
    kernel = EventKernel(scheduler=scheduler)
    order: list[tuple[float, int]] = []
    handles = []
    labels = iter(range(10**9))

    def make_callback(nested):
        label = next(labels)

        def callback():
            order.append((kernel.now, label))
            for delay in nested:
                kernel.post(delay, make_callback(()))

        return callback

    for op in program:
        kind = op[0]
        if kind == "schedule":
            handles.append(kernel.schedule(op[1], make_callback(op[2])))
        elif kind == "post":
            kernel.post(op[1], make_callback(op[2]))
        elif kind == "cancel":
            if handles:
                handles[op[1] % len(handles)].cancel()
        else:  # step
            kernel.step()
    kernel.run()
    return tuple(order), kernel.now, kernel.events_run, kernel.pending


class TestSchedulerEquivalence:
    @settings(max_examples=300, deadline=None)
    @given(program=_OPS)
    def test_identical_transcripts(self, program):
        assert _drive("heap", program) == _drive("wheel", program)

    def test_dense_fuzz_many_seeds(self):
        """Seeded volume fuzz: thousands of events per run, both ways."""
        for seed in range(20):
            rng = random.Random(seed)
            program = []
            for _ in range(400):
                roll = rng.random()
                if roll < 0.45:
                    program.append(
                        ("post", rng.random() * 20,
                         [rng.random() * 4 for _ in range(rng.randrange(3))])
                    )
                elif roll < 0.85:
                    program.append(("schedule", rng.random() * 20, []))
                elif roll < 0.95:
                    program.append(("cancel", rng.randrange(1000)))
                else:
                    program.append(("step",))
            assert _drive("heap", program) == _drive("wheel", program)


# -- heap-specific guarantees ------------------------------------------------


class _TraversalTrap(list):
    """A heap stand-in that fails the test if anything iterates it."""

    def __iter__(self):
        raise AssertionError("pending must not traverse the event queue")

    def __len__(self):
        raise AssertionError("pending must not take the queue length")


class TestHeapPending:
    def test_pending_does_not_traverse_the_heap(self):
        kernel = EventKernel(scheduler="heap")
        for index in range(100):
            kernel.schedule(float(index), lambda: None)
        real_heap = kernel._heap
        kernel._heap = _TraversalTrap()
        try:
            assert kernel.pending == 100
        finally:
            kernel._heap = real_heap

    def test_pending_tracks_cancels_and_fires(self):
        kernel = EventKernel(scheduler="heap")
        handles = [kernel.schedule(1.0, lambda: None) for _ in range(10)]
        handles[3].cancel()
        handles[3].cancel()  # double-cancel must not double-count
        assert kernel.pending == 9
        kernel.run()
        assert kernel.pending == 0


class TestHeapCompaction:
    def test_cancel_churn_keeps_heap_bounded(self):
        """A schedule/cancel loop must not grow the heap without bound."""
        kernel = EventKernel(scheduler="heap")
        live = [kernel.schedule(1000.0, lambda: None) for _ in range(500)]
        peak = 0
        for index in range(20_000):
            kernel.schedule(float(index % 100), lambda: None).cancel()
            peak = max(peak, len(kernel._heap))
        # Compaction fires when cancelled entries outnumber live ones, so
        # the heap peaks near 2x the live population, never near 20,000.
        assert peak <= 2 * len(live) + kernel._COMPACT_MIN + 2
        assert kernel.stats()["compactions"] > 0
        kernel.run()
        assert kernel.events_run == len(live)

    def test_compaction_preserves_order(self):
        kernel = EventKernel(scheduler="heap")
        fired = []
        rng = random.Random(3)
        handles = []
        for index in range(2_000):
            delay = rng.random() * 50
            handles.append(
                kernel.schedule(delay, lambda delay=delay: fired.append(delay))
            )
        for handle in handles[::2]:
            handle.cancel()
        kernel.run()
        assert fired == sorted(fired)
        assert len(fired) == 1_000


# -- wheel-specific guarantees ----------------------------------------------


class TestWheelInternals:
    def test_dense_load_triggers_resize_and_keeps_order(self):
        kernel = EventKernel(scheduler="wheel")
        fired = []
        rng = random.Random(7)
        for _ in range(20_000):
            at = rng.random() * 100.0  # ~200 events per 1ms bucket
            kernel.post(at, lambda at=at: fired.append(at))
        kernel.run()
        assert fired == sorted(fired)
        assert len(fired) == 20_000
        assert kernel.stats()["rebuilds"] >= 1

    def test_sparse_horizon_uses_fallback_and_keeps_order(self):
        kernel = EventKernel(scheduler="wheel")
        fired = []
        for index in range(300):
            at = index * 1e7  # far beyond any forward-scan budget
            kernel.post(at, lambda at=at: fired.append(at))
        kernel.run()
        assert fired == sorted(fired)
        assert kernel.stats()["scan_fallbacks"] >= 1

    def test_zero_delay_booking_inside_callback_is_fifo(self):
        """Events booked into the draining bucket take the side heap."""
        kernel = EventKernel(scheduler="wheel")
        fired = []

        def parent(label):
            fired.append(label)
            if label < 3:
                kernel.post(0.0, lambda: parent(label + 10))
                kernel.schedule(0.0, lambda: parent(label + 100))

        kernel.post(5.0, lambda: parent(1))
        kernel.post(5.0, lambda: parent(2))
        kernel.post(5.0, lambda: parent(3))
        kernel.run()
        assert fired == [1, 2, 3, 11, 101, 12, 102]
        assert kernel.stats()["side_pushes"] >= 4

    def test_bad_parameters_rejected(self):
        from repro.sim.kernel import KernelError

        with pytest.raises(KernelError):
            EventKernel(scheduler="wheel", width_ms=0.0)
        with pytest.raises(KernelError):
            EventKernel(scheduler="wheel", target_occupancy=0)


# -- end-to-end: the scheduler never changes a measured number ---------------


def _comparable(result) -> dict:
    payload = asdict(result)
    payload.pop("runtime_seconds", None)  # wall-clock, legitimately varies
    payload.pop("perf_counters", None)  # includes scheduler-internal stats
    return payload


class TestExperimentIdentity:
    def test_concurrent_smoke_bit_identical_across_schedulers(self):
        base = CONCURRENT_CONFIG.scaled(0.02)
        heap_result, wheel_result = (
            _comparable(Experiment(replace(base, scheduler=scheduler)).run())
            for scheduler in ("heap", "wheel")
        )
        assert heap_result == wheel_result

    def test_sketch_metrics_stay_within_error_bound(self):
        base = CONCURRENT_CONFIG.scaled(0.02)
        exact = Experiment(replace(base, metrics="exact")).run()
        sketch = Experiment(replace(base, metrics="sketch")).run()
        bound = 0.01  # the default-gamma sketch guarantees <1%
        for field in (
            "response_time_ms_p50",
            "response_time_ms_p95",
            "response_time_ms_p99",
        ):
            exact_value = getattr(exact, field)
            sketch_value = getattr(sketch, field)
            assert abs(sketch_value - exact_value) <= bound * exact_value
        # The mean is tracked exactly in both modes.
        assert sketch.response_time_ms_mean == pytest.approx(
            exact.response_time_ms_mean
        )
