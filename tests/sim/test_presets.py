"""Unit tests for the experiment presets, the registry, and grids."""

import pytest

from repro.sim.experiment import ExperimentConfig
from repro.sim.presets import (
    ADVERSARIAL_CONFIG,
    CACHE_POLICIES_CACHED,
    CACHE_POLICIES_FIG11,
    CACHE_POLICIES_FIG12,
    PAPER_CONFIG,
    PRESETS,
    SCHEMES,
    SMOKE_CONFIG,
    get_preset,
    paper_grid,
    preset_names,
    register_preset,
)


class TestPresets:
    def test_paper_setup(self):
        assert PAPER_CONFIG.num_nodes == 500
        assert PAPER_CONFIG.num_articles == 10_000
        assert PAPER_CONFIG.num_queries == 50_000
        assert PAPER_CONFIG.substrate == "ideal"

    def test_schemes_order_matches_paper(self):
        assert SCHEMES == ("simple", "flat", "complex")

    def test_fig11_omits_multi_cache(self):
        """The paper omits multi-cache from Figure 11."""
        assert "multi" not in CACHE_POLICIES_FIG11
        assert "multi" in CACHE_POLICIES_FIG12

    def test_cached_policies_exclude_none(self):
        assert "none" not in CACHE_POLICIES_CACHED

    def test_lru_capacities_are_the_papers(self):
        for policies in (CACHE_POLICIES_FIG11, CACHE_POLICIES_FIG12):
            assert {"lru10", "lru20", "lru30"} <= set(policies)

    def test_smoke_config_is_small(self):
        assert SMOKE_CONFIG.num_queries < PAPER_CONFIG.num_queries
        assert SMOKE_CONFIG.num_nodes < PAPER_CONFIG.num_nodes


class TestRegistry:
    def test_every_registered_preset_constructs(self):
        """The registry smoke test: each named cell validates and its
        derived plans (faults, chaos, adversary) build."""
        for name in preset_names():
            config = get_preset(name)
            assert isinstance(config, ExperimentConfig), name
            config.fault_plan()
            config.adversary_plan()

    def test_known_names_are_registered(self):
        expected = {
            "paper", "smoke", "churn", "churn-smoke", "concurrent",
            "web-scale", "web-scale-smoke", "restart-chaos",
            "restart-chaos-smoke", "range-queries", "range-queries-smoke",
            "adversarial", "adversarial-smoke",
        }
        assert expected <= set(preset_names())

    def test_aliases_point_into_the_registry(self):
        assert get_preset("paper") is PAPER_CONFIG
        assert get_preset("adversarial") is ADVERSARIAL_CONFIG

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ValueError, match="paper"):
            get_preset("no-such-cell")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            register_preset("paper", ExperimentConfig())

    def test_names_are_sorted(self):
        assert preset_names() == sorted(PRESETS)

    def test_smoke_cells_shrink_their_parents(self):
        for name in preset_names():
            if not name.endswith("-smoke"):
                continue
            parent = get_preset(name.removesuffix("-smoke"))
            assert get_preset(name).num_queries < parent.num_queries, name


class TestAdversarialPreset:
    def test_attack_mix(self):
        assert ADVERSARIAL_CONFIG.adversary_poisoners == 30
        assert ADVERSARIAL_CONFIG.adversary_liars == 15
        assert ADVERSARIAL_CONFIG.adversary_sybil_joins == 20
        assert ADVERSARIAL_CONFIG.adversary_eclipse_victims == 6
        assert ADVERSARIAL_CONFIG.replication == 3

    def test_verification_defaults_off(self):
        """The driver flips verify_signatures per cell; the preset is
        the undefended baseline."""
        assert ADVERSARIAL_CONFIG.verify_signatures is False

    def test_plan_seed_follows_churn_seed(self):
        plan = ADVERSARIAL_CONFIG.adversary_plan()
        assert plan.seed == ADVERSARIAL_CONFIG.churn_seed
        assert not plan.is_zero


class TestGrid:
    def test_full_grid_size(self):
        grid = paper_grid()
        assert len(grid) == len(SCHEMES) * len(CACHE_POLICIES_FIG12)

    def test_grid_cells_unique(self):
        grid = paper_grid()
        assert len(set(grid)) == len(grid)

    def test_grid_respects_base(self):
        grid = paper_grid(base=SMOKE_CONFIG)
        assert all(cell.num_queries == SMOKE_CONFIG.num_queries for cell in grid)

    def test_grid_subsets(self):
        grid = paper_grid(schemes=("flat",), caches=("none", "single"))
        assert len(grid) == 2
        assert all(cell.scheme == "flat" for cell in grid)
