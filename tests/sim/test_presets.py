"""Unit tests for the experiment presets and grids."""

from repro.sim.presets import (
    CACHE_POLICIES_CACHED,
    CACHE_POLICIES_FIG11,
    CACHE_POLICIES_FIG12,
    PAPER_CONFIG,
    SCHEMES,
    SMOKE_CONFIG,
    paper_grid,
)


class TestPresets:
    def test_paper_setup(self):
        assert PAPER_CONFIG.num_nodes == 500
        assert PAPER_CONFIG.num_articles == 10_000
        assert PAPER_CONFIG.num_queries == 50_000
        assert PAPER_CONFIG.substrate == "ideal"

    def test_schemes_order_matches_paper(self):
        assert SCHEMES == ("simple", "flat", "complex")

    def test_fig11_omits_multi_cache(self):
        """The paper omits multi-cache from Figure 11."""
        assert "multi" not in CACHE_POLICIES_FIG11
        assert "multi" in CACHE_POLICIES_FIG12

    def test_cached_policies_exclude_none(self):
        assert "none" not in CACHE_POLICIES_CACHED

    def test_lru_capacities_are_the_papers(self):
        for policies in (CACHE_POLICIES_FIG11, CACHE_POLICIES_FIG12):
            assert {"lru10", "lru20", "lru30"} <= set(policies)

    def test_smoke_config_is_small(self):
        assert SMOKE_CONFIG.num_queries < PAPER_CONFIG.num_queries
        assert SMOKE_CONFIG.num_nodes < PAPER_CONFIG.num_nodes


class TestGrid:
    def test_full_grid_size(self):
        grid = paper_grid()
        assert len(grid) == len(SCHEMES) * len(CACHE_POLICIES_FIG12)

    def test_grid_cells_unique(self):
        grid = paper_grid()
        assert len(set(grid)) == len(grid)

    def test_grid_respects_base(self):
        grid = paper_grid(base=SMOKE_CONFIG)
        assert all(cell.num_queries == SMOKE_CONFIG.num_queries for cell in grid)

    def test_grid_subsets(self):
        grid = paper_grid(schemes=("flat",), caches=("none", "single"))
        assert len(grid) == 2
        assert all(cell.scheme == "flat" for cell in grid)
