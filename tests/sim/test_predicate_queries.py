"""Simulation-level tests for predicate workloads and exact-only identity.

Two acceptance criteria of the algebra refactor live here:

- **bit-identity**: exact-only configurations produce results identical
  to the pre-refactor simulator, pinned against golden numbers captured
  on the seed (any drift in interactions, traffic, cache behaviour, or
  index storage fails loudly);
- **range-queries cells**: both index structures resolve a 50% predicate
  workload completely; the trie cell walks tries (no specialization
  fallback), the chains cell specializes (no trie walks), and the trie
  eliminates the predicate queries' recoverable errors.
"""

from dataclasses import replace

import pytest

from repro.sim.experiment import Experiment
from repro.sim.presets import RANGE_QUERIES_SMOKE_CONFIG, SMOKE_CONFIG

#: ExperimentResult numbers captured on the pre-predicate-algebra seed
#: (SMOKE preset).  The refactor must not move any of them.
GOLDEN_SMOKE = {
    ("simple", "none"): dict(
        avg_interactions=2.998,
        total_interactions=5996,
        found=2000,
        nonindexed_queries=97,
        total_error_interactions=97,
        normal_bytes_total=4385371,
        cache_bytes_total=0,
        cache_hits=0,
        first_contact_hits=0,
        index_storage_bytes=336497,
    ),
    ("simple", "single"): dict(
        avg_interactions=2.538,
        total_interactions=5076,
        found=2000,
        nonindexed_queries=67,
        normal_bytes_total=4677864,
        cache_bytes_total=377791,
        cache_hits=1024,
        first_contact_hits=905,
        index_storage_bytes=336497,
    ),
    ("complex", "lru10"): dict(
        avg_interactions=2.9305,
        total_interactions=5861,
        found=2000,
        nonindexed_queries=70,
        normal_bytes_total=2585221,
        cache_bytes_total=377791,
        cache_hits=871,
        first_contact_hits=830,
        index_storage_bytes=449856,
    ),
}


class TestExactOnlyBitIdentity:
    @pytest.mark.parametrize("scheme,cache", sorted(GOLDEN_SMOKE))
    def test_smoke_results_unchanged(self, scheme, cache):
        config = replace(SMOKE_CONFIG, scheme=scheme, cache=cache)
        result = Experiment(config).run()
        golden = GOLDEN_SMOKE[(scheme, cache)]
        for field_name, expected in golden.items():
            actual = getattr(result, field_name)
            if isinstance(expected, float):
                actual = round(actual, 4)
            assert actual == expected, (
                f"{scheme}/{cache}: {field_name} drifted "
                f"({actual} != golden {expected})"
            )
        # An exact-only run must never touch the predicate machinery.
        assert result.predicate_queries == 0
        assert result.perf_counters.get("trie_walks", 0) == 0
        assert result.perf_counters.get("engine_specializations", 0) == 0


@pytest.fixture(scope="module")
def range_cells():
    results = {}
    for structure in ("trie", "chains"):
        config = replace(RANGE_QUERIES_SMOKE_CONFIG, index_structure=structure)
        results[structure] = Experiment(config).run()
    return results


class TestRangeQueriesCells:
    def test_both_cells_resolve_everything(self, range_cells):
        for result in range_cells.values():
            assert result.found == result.searches
            assert result.predicate_queries > 0

    def test_same_workload_in_both_cells(self, range_cells):
        assert (
            range_cells["trie"].predicate_queries
            == range_cells["chains"].predicate_queries
        )

    def test_trie_walks_replace_specializations(self, range_cells):
        trie, chains = range_cells["trie"], range_cells["chains"]
        predicate_queries = trie.predicate_queries
        assert trie.perf_counters["trie_walks"] == predicate_queries
        assert trie.perf_counters.get("engine_specializations", 0) == 0
        assert chains.perf_counters["engine_specializations"] == predicate_queries
        assert chains.perf_counters.get("trie_walks", 0) == 0

    def test_trie_eliminates_predicate_errors(self, range_cells):
        trie, chains = range_cells["trie"], range_cells["chains"]
        # Every predicate query in the chains cell pays >= 1 recoverable
        # error before specializing; the trie resolves them error-free,
        # so only the workload's ordinary non-indexed exact shapes remain.
        assert chains.nonindexed_queries > trie.nonindexed_queries
        assert trie.nonindexed_queries < trie.predicate_queries // 10

    def test_trie_costs_more_index_storage(self, range_cells):
        assert (
            range_cells["trie"].index_storage_bytes
            > range_cells["chains"].index_storage_bytes
        )

    def test_deterministic(self):
        config = replace(
            RANGE_QUERIES_SMOKE_CONFIG,
            num_queries=300,
            num_articles=200,
            num_nodes=20,
            num_authors=80,
        )
        first = Experiment(config).run()
        second = Experiment(config).run()
        assert first.avg_interactions == second.avg_interactions
        assert first.normal_bytes_total == second.normal_bytes_total
        assert first.predicate_queries == second.predicate_queries
