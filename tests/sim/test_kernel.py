"""Unit tests for the discrete-event kernel (repro.sim.kernel).

Every test runs against both schedulers (binary heap and timing wheel):
the ordering contract -- (time, seq), FIFO within a timestamp -- is the
kernel's public behaviour, so the two implementations must be
indistinguishable through it.
"""

import pytest

from repro.sim.kernel import SCHEDULERS, EventKernel, KernelError


@pytest.fixture(params=SCHEDULERS)
def make_kernel(request):
    """Factory building a kernel on the parametrized scheduler."""
    scheduler = request.param
    return lambda: EventKernel(scheduler=scheduler)


class TestScheduling:
    def test_clock_starts_at_zero(self, make_kernel):
        assert make_kernel().now == 0.0

    def test_events_fire_in_time_order(self, make_kernel):
        kernel = make_kernel()
        fired = []
        kernel.schedule(30.0, lambda: fired.append("c"))
        kernel.schedule(10.0, lambda: fired.append("a"))
        kernel.schedule(20.0, lambda: fired.append("b"))
        kernel.run()
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_scheduling_order(self, make_kernel):
        kernel = make_kernel()
        fired = []
        for label in ("first", "second", "third"):
            kernel.schedule(5.0, lambda label=label: fired.append(label))
        kernel.run()
        assert fired == ["first", "second", "third"]

    def test_now_advances_to_event_time(self, make_kernel):
        kernel = make_kernel()
        seen = []
        kernel.schedule(12.5, lambda: seen.append(kernel.now))
        kernel.schedule(40.0, lambda: seen.append(kernel.now))
        final = kernel.run()
        assert seen == [12.5, 40.0]
        assert final == kernel.now == 40.0

    def test_delays_are_relative_to_now(self, make_kernel):
        kernel = make_kernel()
        times = []

        def chained():
            times.append(kernel.now)
            if len(times) < 3:
                kernel.schedule(10.0, chained)

        kernel.schedule(10.0, chained)
        kernel.run()
        assert times == [10.0, 20.0, 30.0]

    def test_zero_delay_runs_after_current_bookings(self, make_kernel):
        kernel = make_kernel()
        fired = []
        kernel.schedule(0.0, lambda: fired.append("booked-first"))
        kernel.schedule(0.0, lambda: fired.append("booked-second"))
        kernel.run()
        assert fired == ["booked-first", "booked-second"]
        assert kernel.now == 0.0

    def test_negative_delay_rejected(self, make_kernel):
        with pytest.raises(KernelError):
            make_kernel().schedule(-0.1, lambda: None)

    def test_post_interleaves_with_schedule(self, make_kernel):
        kernel = make_kernel()
        fired = []
        kernel.schedule(5.0, lambda: fired.append("scheduled"))
        kernel.post(5.0, lambda: fired.append("posted"))
        kernel.schedule(5.0, lambda: fired.append("scheduled-late"))
        kernel.run()
        assert fired == ["scheduled", "posted", "scheduled-late"]

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(KernelError):
            EventKernel(scheduler="fifo")


class TestCancellation:
    def test_cancelled_event_never_fires(self, make_kernel):
        kernel = make_kernel()
        fired = []
        handle = kernel.schedule(5.0, lambda: fired.append("cancelled"))
        kernel.schedule(10.0, lambda: fired.append("kept"))
        handle.cancel()
        kernel.run()
        assert fired == ["kept"]

    def test_cancel_after_fire_is_noop(self, make_kernel):
        kernel = make_kernel()
        handle = kernel.schedule(1.0, lambda: None)
        kernel.run()
        handle.cancel()  # must not raise

    def test_pending_counts_live_events_only(self, make_kernel):
        kernel = make_kernel()
        kernel.schedule(1.0, lambda: None)
        drop = kernel.schedule(2.0, lambda: None)
        assert kernel.pending == 2
        drop.cancel()
        assert kernel.pending == 1


class TestRun:
    def test_step_on_empty_queue_returns_false(self, make_kernel):
        assert make_kernel().step() is False

    def test_events_run_counts_fired_callbacks(self, make_kernel):
        kernel = make_kernel()
        for _ in range(4):
            kernel.schedule(1.0, lambda: None)
        kernel.schedule(2.0, lambda: None).cancel()
        kernel.run()
        assert kernel.events_run == 4

    def test_run_until_stops_early_with_queue_intact(self, make_kernel):
        kernel = make_kernel()
        fired = []
        for delay in (1.0, 2.0, 3.0):
            kernel.schedule(delay, lambda delay=delay: fired.append(delay))
        kernel.run(until=lambda: len(fired) >= 2)
        assert fired == [1.0, 2.0]
        assert kernel.pending == 1

    def test_deterministic_across_instances(self, make_kernel):
        def drive():
            kernel = make_kernel()
            fired = []

            def fan_out():
                for delay in (7.0, 3.0, 3.0):
                    kernel.schedule(
                        delay, lambda delay=delay: fired.append((kernel.now, delay))
                    )

            kernel.schedule(1.0, fan_out)
            kernel.schedule(2.0, lambda: fired.append((kernel.now, "fixed")))
            kernel.run()
            return fired, kernel.events_run, kernel.now

        assert drive() == drive()


class TestDispatch:
    def test_default_is_heap(self):
        assert EventKernel().stats()["scheduler"] == 0

    def test_requested_scheduler_is_served(self):
        assert EventKernel(scheduler="heap").stats()["scheduler"] == 0
        assert EventKernel(scheduler="wheel").stats()["scheduler"] == 1

    def test_both_are_event_kernels(self):
        for scheduler in SCHEDULERS:
            assert isinstance(EventKernel(scheduler=scheduler), EventKernel)
