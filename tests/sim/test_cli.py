"""Unit tests for the command-line experiment runner."""

import pytest

from repro.sim.__main__ import build_parser, config_from_args, main


def parse(argv):
    return config_from_args(build_parser().parse_args(argv))


class TestArgumentParsing:
    def test_defaults_are_paper_setup(self):
        config = parse([])
        assert config.scheme == "simple"
        assert config.cache == "none"
        assert config.num_nodes == 500

    def test_scheme_and_cache(self):
        config = parse(["--scheme", "flat", "--cache", "lru20"])
        assert config.scheme == "flat"
        assert config.cache == "lru20"

    def test_scale(self):
        config = parse(["--scale", "0.1"])
        assert config.num_nodes == 50
        assert config.num_articles == 1_000
        assert config.num_queries == 5_000

    def test_overrides_after_scale(self):
        config = parse(["--scale", "0.1", "--queries", "123"])
        assert config.num_queries == 123
        assert config.num_nodes == 50

    def test_substrate(self):
        assert parse(["--substrate", "pastry"]).substrate == "pastry"

    def test_invalid_cache_rejected(self):
        with pytest.raises(ValueError):
            parse(["--cache", "bogus"])

    def test_invalid_scale_rejected(self):
        with pytest.raises(SystemExit):
            parse(["--scale", "-1"])

    def test_invalid_scheme_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--scheme", "bogus"])

    def test_shortcut_top_n(self):
        assert parse(["--shortcut-top-n", "25"]).shortcut_top_n == 25


class TestMain:
    def test_runs_tiny_experiment(self, capsys):
        code = main(
            [
                "--scale", "0.01",
                "--cache", "single",
                "--queries", "300",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "interactions / query" in output
        assert "cache hit ratio" in output

    def test_bad_cache_exits_nonzero(self, capsys):
        code = main(["--cache", "bogus", "--scale", "0.01"])
        assert code == 2
        assert "error" in capsys.readouterr().err
