"""Unit tests for the command-line experiment runner."""

import pytest

from repro.sim.__main__ import build_parser, config_from_args, main


def parse(argv):
    return config_from_args(build_parser().parse_args(argv))


class TestArgumentParsing:
    def test_defaults_are_paper_setup(self):
        config = parse([])
        assert config.scheme == "simple"
        assert config.cache == "none"
        assert config.num_nodes == 500

    def test_scheme_and_cache(self):
        config = parse(["--scheme", "flat", "--cache", "lru20"])
        assert config.scheme == "flat"
        assert config.cache == "lru20"

    def test_scale(self):
        config = parse(["--scale", "0.1"])
        assert config.num_nodes == 50
        assert config.num_articles == 1_000
        assert config.num_queries == 5_000

    def test_overrides_after_scale(self):
        config = parse(["--scale", "0.1", "--queries", "123"])
        assert config.num_queries == 123
        assert config.num_nodes == 50

    def test_substrate(self):
        assert parse(["--substrate", "pastry"]).substrate == "pastry"

    def test_invalid_cache_rejected(self):
        with pytest.raises(ValueError):
            parse(["--cache", "bogus"])

    def test_invalid_scale_rejected(self):
        with pytest.raises(SystemExit):
            parse(["--scale", "-1"])

    def test_invalid_scheme_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--scheme", "bogus"])

    def test_shortcut_top_n(self):
        assert parse(["--shortcut-top-n", "25"]).shortcut_top_n == 25


class TestPresetAndChaosFlags:
    def test_churn_preset_loads(self):
        from repro.sim.presets import CHURN_CONFIG

        assert parse(["--preset", "churn"]) == CHURN_CONFIG

    def test_preset_fields_survive_unrelated_flags(self):
        # Flags left at their defaults must not clobber preset values.
        config = parse(["--preset", "churn", "--queries", "1000"])
        assert config.cache == "single"          # from the preset
        assert config.replication == 3           # from the preset
        assert config.churn_mode == "poisson"    # from the preset
        assert config.num_queries == 1000        # the explicit override

    def test_preset_scales(self):
        config = parse(["--preset", "churn", "--scale", "0.1"])
        assert config.num_nodes == 50
        assert config.fault_drop_probability == 0.05

    def test_chaos_flags(self):
        config = parse(
            [
                "--drop-probability", "0.1",
                "--duplicate-probability", "0.02",
                "--latency-ticks", "3",
                "--churn-events", "7",
                "--churn-mode", "poisson",
                "--crash-events", "2",
                "--crash-downtime", "150",
                "--churn-seed", "11",
            ]
        )
        assert config.fault_drop_probability == 0.1
        assert config.fault_duplicate_probability == 0.02
        assert config.fault_latency_ticks == 3
        assert config.churn_events == 7
        assert config.churn_mode == "poisson"
        assert config.crash_events == 2
        assert config.crash_downtime_queries == 150
        assert config.churn_seed == 11
        assert config.has_chaos

    def test_no_chaos_by_default(self):
        assert not parse([]).has_chaos

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            parse(["--drop-probability", "1.5"])


class TestMain:
    def test_runs_tiny_experiment(self, capsys):
        code = main(
            [
                "--scale", "0.01",
                "--cache", "single",
                "--queries", "300",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "interactions / query" in output
        assert "cache hit ratio" in output

    def test_bad_cache_exits_nonzero(self, capsys):
        code = main(["--cache", "bogus", "--scale", "0.01"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_chaos_run_prints_availability_table(self, capsys):
        code = main(
            [
                "--scale", "0.01",
                "--queries", "300",
                "--replication", "3",
                "--drop-probability", "0.05",
                "--churn-events", "2",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "availability under faults" in output
        assert "lookup success rate" in output

    def test_reliable_run_omits_availability_table(self, capsys):
        code = main(["--scale", "0.01", "--queries", "200"])
        assert code == 0
        assert "availability under faults" not in capsys.readouterr().out
