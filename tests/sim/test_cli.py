"""Unit tests for the command-line experiment runner."""

import pytest

from repro.sim.__main__ import build_parser, config_from_args, main


def parse(argv):
    return config_from_args(build_parser().parse_args(argv))


class TestArgumentParsing:
    def test_defaults_are_paper_setup(self):
        config = parse([])
        assert config.scheme == "simple"
        assert config.cache == "none"
        assert config.num_nodes == 500

    def test_scheme_and_cache(self):
        config = parse(["--scheme", "flat", "--cache", "lru20"])
        assert config.scheme == "flat"
        assert config.cache == "lru20"

    def test_scale(self):
        config = parse(["--scale", "0.1"])
        assert config.num_nodes == 50
        assert config.num_articles == 1_000
        assert config.num_queries == 5_000

    def test_overrides_after_scale(self):
        config = parse(["--scale", "0.1", "--queries", "123"])
        assert config.num_queries == 123
        assert config.num_nodes == 50

    def test_substrate(self):
        assert parse(["--substrate", "pastry"]).substrate == "pastry"

    def test_invalid_cache_rejected(self):
        with pytest.raises(ValueError):
            parse(["--cache", "bogus"])

    def test_invalid_scale_rejected(self):
        with pytest.raises(SystemExit):
            parse(["--scale", "-1"])

    def test_invalid_scheme_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--scheme", "bogus"])

    def test_shortcut_top_n(self):
        assert parse(["--shortcut-top-n", "25"]).shortcut_top_n == 25


class TestPresetAndChaosFlags:
    def test_churn_preset_loads(self):
        from repro.sim.presets import CHURN_CONFIG

        assert parse(["--preset", "churn"]) == CHURN_CONFIG

    def test_preset_fields_survive_unrelated_flags(self):
        # Flags left at their defaults must not clobber preset values.
        config = parse(["--preset", "churn", "--queries", "1000"])
        assert config.cache == "single"          # from the preset
        assert config.replication == 3           # from the preset
        assert config.churn_mode == "poisson"    # from the preset
        assert config.num_queries == 1000        # the explicit override

    def test_preset_scales(self):
        config = parse(["--preset", "churn", "--scale", "0.1"])
        assert config.num_nodes == 50
        assert config.fault_drop_probability == 0.05

    def test_chaos_flags(self):
        config = parse(
            [
                "--drop-probability", "0.1",
                "--duplicate-probability", "0.02",
                "--latency-ms", "3",
                "--churn-events", "7",
                "--churn-mode", "poisson",
                "--crash-events", "2",
                "--crash-downtime", "150",
                "--churn-seed", "11",
            ]
        )
        assert config.fault_drop_probability == 0.1
        assert config.fault_duplicate_probability == 0.02
        assert config.fault_latency_ms == 3.0
        assert config.churn_events == 7
        assert config.churn_mode == "poisson"
        assert config.crash_events == 2
        assert config.crash_downtime_queries == 150
        assert config.churn_seed == 11
        assert config.has_chaos

    def test_deprecated_latency_ticks_still_converts(self):
        from repro.net.faults import MS_PER_TICK

        with pytest.warns(DeprecationWarning):
            config = parse(["--latency-ticks", "3"])
        assert config.fault_latency_ticks == 3
        assert config.effective_fault_latency_ms == 3 * MS_PER_TICK
        assert config.fault_plan().max_latency_ms == 3 * MS_PER_TICK

    def test_latency_ms_and_ticks_together_rejected(self):
        with pytest.raises(ValueError):
            parse(["--latency-ms", "2", "--latency-ticks", "3"])

    def test_no_chaos_by_default(self):
        assert not parse([]).has_chaos

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            parse(["--drop-probability", "1.5"])


class TestKernelFlags:
    def test_kernel_flags(self):
        config = parse(
            [
                "--concurrency", "16",
                "--latency-model", "uniform:10:100",
                "--arrival-interval-ms", "5",
            ]
        )
        assert config.concurrency == 16
        assert config.latency_model == "uniform:10:100"
        assert config.arrival_interval_ms == 5.0
        assert config.uses_kernel

    def test_sequential_by_default(self):
        config = parse([])
        assert config.concurrency == 1
        assert config.latency_model == "zero"
        assert not config.uses_kernel

    def test_concurrent_preset_loads(self):
        from repro.sim.presets import CONCURRENT_CONFIG

        config = parse(["--preset", "concurrent"])
        assert config == CONCURRENT_CONFIG
        assert config.concurrency == 16
        assert config.uses_kernel

    def test_invalid_latency_model_rejected(self):
        with pytest.raises(ValueError):
            parse(["--latency-model", "bogus"])

    def test_invalid_concurrency_rejected(self):
        with pytest.raises(ValueError):
            parse(["--concurrency", "0"])


class TestMain:
    def test_runs_tiny_experiment(self, capsys):
        code = main(
            [
                "--scale", "0.01",
                "--cache", "single",
                "--queries", "300",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "interactions / query" in output
        assert "cache hit ratio" in output

    def test_bad_cache_exits_nonzero(self, capsys):
        code = main(["--cache", "bogus", "--scale", "0.01"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_chaos_run_prints_availability_table(self, capsys):
        code = main(
            [
                "--scale", "0.01",
                "--queries", "300",
                "--replication", "3",
                "--drop-probability", "0.05",
                "--churn-events", "2",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "availability under faults" in output
        assert "lookup success rate" in output

    def test_reliable_run_omits_availability_table(self, capsys):
        code = main(["--scale", "0.01", "--queries", "200"])
        assert code == 0
        assert "availability under faults" not in capsys.readouterr().out

    def test_concurrent_run_prints_response_times(self, capsys):
        code = main(
            [
                "--scale", "0.01",
                "--queries", "200",
                "--concurrency", "4",
                "--latency-model", "constant:20",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "response time p50 / p95 / p99" in output
        assert "virtual-time kernel" in output
        assert "virtual makespan" in output

    def test_sequential_run_omits_response_times(self, capsys):
        code = main(["--scale", "0.01", "--queries", "200"])
        assert code == 0
        output = capsys.readouterr().out
        assert "response time" not in output
        assert "virtual-time kernel" not in output


class TestTraceFlag:
    def test_trace_out_enables_tracing(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        assert parse(["--trace-out", str(path)]).trace is True

    def test_tracing_off_by_default(self):
        assert parse([]).trace is False

    def test_preset_trace_survives_without_flag(self):
        # --trace-out absent must leave a preset's trace field alone.
        assert parse(["--preset", "churn"]).trace is False

    def test_main_writes_trace_file(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        code = main(
            [
                "--scale", "0.01",
                "--cache", "single",
                "--queries", "200",
                "--trace-out", str(path),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "events written to" in output
        assert path.exists()
        lines = path.read_text(encoding="utf-8").splitlines()
        assert '"kind":"trace_header"' in lines[0]
        assert sum('"kind":"lookup_end"' in line for line in lines) == 200

    def test_cli_round_trip_through_summarize(self, tmp_path, capsys):
        """python -m repro.sim --trace-out then python -m repro.obs
        summarize: the acceptance round trip of the trace format."""
        from repro.obs.__main__ import main as obs_main

        path = tmp_path / "round.jsonl"
        assert main(
            [
                "--scale", "0.01",
                "--queries", "200",
                "--concurrency", "4",
                "--latency-model", "constant:20",
                "--trace-out", str(path),
            ]
        ) == 0
        capsys.readouterr()
        assert obs_main(["summarize", str(path)]) == 0
        report = capsys.readouterr().out
        assert "lookup outcomes" in report
        assert "200 lookups" in report


class TestAdversarialFlags:
    def test_adversarial_preset_loads(self):
        from repro.sim.presets import ADVERSARIAL_CONFIG

        assert parse(["--preset", "adversarial"]) == ADVERSARIAL_CONFIG

    def test_adversary_flags_build_a_cell(self):
        config = parse(
            [
                "--poisoners", "3",
                "--liars", "2",
                "--sybil-joins", "4",
                "--eclipse-victims", "1",
                "--eclipse-drop", "0.8",
                "--verify-signatures",
            ]
        )
        assert config.adversary_poisoners == 3
        assert config.adversary_liars == 2
        assert config.adversary_sybil_joins == 4
        assert config.adversary_eclipse_victims == 1
        assert config.adversary_eclipse_drop == 0.8
        assert config.verify_signatures is True
        assert config.has_adversary

    def test_preset_adversary_survives_overrides(self):
        config = parse(["--preset", "adversarial-smoke", "--queries", "500"])
        assert config.adversary_poisoners == 6
        assert config.num_queries == 500

    def test_benign_by_default(self):
        config = parse([])
        assert not config.has_adversary
        assert config.verify_signatures is False

    def test_sec_comparison_runs_and_appends_bench(self, tmp_path, capsys):
        import json

        bench = tmp_path / "BENCH_sec.json"
        code = main(
            [
                "--preset", "adversarial-smoke",
                "--nodes", "30",
                "--articles", "200",
                "--queries", "400",
                "--authors", "80",
                "--bench-out", str(bench),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "verification off" in output
        assert "verification on" in output
        trajectory = json.loads(bench.read_text())
        record = trajectory[-1]
        assert record["preset"] == "adversarial-smoke"
        off = record["cells"]["verify-off"]
        on = record["cells"]["verify-on"]
        assert off["poisoned_results"] > 0
        assert on["poisoned_results"] == 0
        assert on["success_rate"] > off["success_rate"]
