"""Availability under chaos: determinism, zero-fault identity, churn preset."""

from dataclasses import replace

import pytest

from repro.sim.experiment import Experiment, ExperimentConfig
from repro.sim.presets import CHURN_SMOKE_CONFIG

TINY = ExperimentConfig(
    num_nodes=24,
    num_articles=120,
    num_queries=600,
    num_authors=60,
    cache="single",
    replication=3,
)

CHAOS = replace(
    TINY,
    fault_drop_probability=0.05,
    churn_events=4,
    churn_mode="poisson",
    crash_events=2,
    crash_downtime_queries=80,
)


def trace_fingerprint(trace):
    """Every observable field of a SearchTrace, as a comparable tuple."""
    return (
        trace.query.key(),
        trace.found,
        trace.interactions,
        trace.errors,
        trace.retries,
        trace.failed_sends,
        trace.gave_up,
        trace.generalized,
        trace.cache_hit,
        trace.hit_interaction,
        tuple(trace.visited),
        trace.result_msd,
    )


def run_with_traces(config, bare_transport=False):
    experiment = Experiment(config)
    if bare_transport:
        # Strip the fault wrapper: handlers were registered through it,
        # but live on the inner transport, so the stack keeps working.
        experiment.service.transport = experiment.transport.inner
        experiment.transport = experiment.transport.inner
    traces = []
    experiment.trace_sink = lambda trace: traces.append(
        trace_fingerprint(trace)
    )
    result = experiment.run()
    return result, traces


class TestSeededDeterminism:
    def test_same_seed_identical_trace_streams(self):
        """Two chaos runs with one seed are bit-identical, trace by trace."""
        first_result, first_traces = run_with_traces(CHAOS)
        second_result, second_traces = run_with_traces(CHAOS)
        assert first_traces == second_traces
        assert first_result.success_rate == second_result.success_rate
        assert first_result.total_retries == second_result.total_retries
        assert first_result.fault_drops == second_result.fault_drops
        assert first_result.normal_bytes_total == second_result.normal_bytes_total

    def test_different_seed_different_chaos(self):
        _, first_traces = run_with_traces(CHAOS)
        _, second_traces = run_with_traces(replace(CHAOS, churn_seed=99))
        assert first_traces != second_traces


class TestZeroFaultIdentity:
    def test_zero_plan_matches_bare_transport_bit_for_bit(self):
        """The always-on FaultyTransport wrapper must be invisible when
        the plan is zero: same traces, same bytes as no wrapper at all."""
        wrapped_result, wrapped_traces = run_with_traces(TINY)
        bare_result, bare_traces = run_with_traces(TINY, bare_transport=True)
        assert wrapped_traces == bare_traces
        assert wrapped_result.normal_bytes_total == bare_result.normal_bytes_total
        assert wrapped_result.cache_bytes_total == bare_result.cache_bytes_total
        assert wrapped_result.avg_interactions == bare_result.avg_interactions

    def test_zero_plan_ignores_chaos_seed(self):
        """With no faults configured, the chaos seed must not leak into
        the run at all -- no draw ever consumes it."""
        _, first_traces = run_with_traces(TINY)
        _, second_traces = run_with_traces(replace(TINY, churn_seed=12345))
        assert first_traces == second_traces

    def test_zero_plan_run_reports_no_faults(self):
        result, _ = run_with_traces(TINY)
        assert result.success_rate == 1.0
        assert result.total_retries == 0
        assert result.total_failed_sends == 0
        assert result.lookups_gave_up == 0
        assert result.fault_drops == 0
        assert result.fault_crashed_sends == 0


class TestChurnPreset:
    @pytest.fixture(scope="class")
    def smoke_result(self):
        return Experiment(CHURN_SMOKE_CONFIG).run()

    def test_availability_meets_bar(self, smoke_result):
        # The acceptance bar: >= 95% lookup success under 5% message
        # loss, Poisson churn, and transient crashes.
        assert smoke_result.success_rate >= 0.95

    def test_failures_actually_happened(self, smoke_result):
        # The bar must be met *because of* retries and failover, not
        # because the chaos knobs silently did nothing.
        assert smoke_result.fault_drops > 0
        assert smoke_result.total_retries > 0
        assert smoke_result.fault_crashed_sends > 0
        assert smoke_result.service_failovers > 0

    def test_repair_traffic_measured(self, smoke_result):
        assert smoke_result.repair_keys > 0
        assert smoke_result.repair_bytes > 0

    def test_result_validates(self, smoke_result):
        smoke_result.validate()

    def test_availability_rows_render(self, smoke_result):
        rows = {label: value for label, value in smoke_result.availability_rows()}
        assert rows["lookup success rate"].endswith("%")
        assert rows["injected drops / duplicates"] == (
            f"{smoke_result.fault_drops} / {smoke_result.fault_duplicates}"
        )


class TestPoissonChurn:
    def test_poisson_schedule_seeded(self):
        first = Experiment(CHAOS)._chaos_schedule()
        second = Experiment(CHAOS)._chaos_schedule()
        assert first == second

    def test_poisson_schedule_varies_with_seed(self):
        first, _ = Experiment(CHAOS)._chaos_schedule()
        second, _ = Experiment(
            replace(CHAOS, churn_seed=4242)
        )._chaos_schedule()
        assert first != second

    def test_poisson_event_count_near_rate(self):
        config = replace(
            CHAOS, num_queries=5_000, churn_events=50, crash_events=0
        )
        churn_positions, _ = Experiment(config)._chaos_schedule()
        # Binomial(5000, 0.01): within 5 sigma of the mean of 50.
        assert 15 <= len(churn_positions) <= 90

    def test_invalid_churn_mode_rejected(self):
        with pytest.raises(ValueError):
            replace(TINY, churn_mode="burst")
