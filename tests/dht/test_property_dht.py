"""Property-based tests for the DHT substrates.

Invariant: all substrates agree with consistent hashing on their own
distance metric -- Chord resolves every key to the key's clockwise
successor (the ideal ring's answer), Kademlia to the XOR-closest node --
under arbitrary membership sets and churn sequences.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dht.chord import ChordNetwork
from repro.dht.kademlia import KademliaNetwork
from repro.dht.ring import IdealRing

BITS = 10
SPACE = 1 << BITS

node_sets = st.sets(st.integers(0, SPACE - 1), min_size=1, max_size=24)
keys = st.lists(st.integers(0, SPACE - 1), min_size=1, max_size=24)


@given(node_sets, keys)
@settings(max_examples=80, deadline=None)
def test_chord_agrees_with_ideal_ring(nodes, lookups):
    chord = ChordNetwork.bulk_build(sorted(nodes), bits=BITS)
    ring = IdealRing(bits=BITS)
    for node in nodes:
        ring.add_node(node)
    for key in lookups:
        assert chord.lookup(key).node == ring.lookup(key).node


@given(node_sets, keys)
@settings(max_examples=80, deadline=None)
def test_kademlia_finds_xor_closest(nodes, lookups):
    network = KademliaNetwork.bulk_build(sorted(nodes), bits=BITS, k=4)
    for key in lookups:
        assert network.lookup(key).node == min(nodes, key=lambda n: n ^ key)


@given(node_sets, st.sets(st.integers(0, SPACE - 1), max_size=10), keys)
@settings(max_examples=40, deadline=None)
def test_chord_correct_after_churn(initial, extra, lookups):
    chord = ChordNetwork(bits=BITS)
    ring = IdealRing(bits=BITS)
    for node in sorted(initial):
        chord.add_node(node)
        ring.add_node(node)
    for node in sorted(extra - initial):
        chord.add_node(node)
        ring.add_node(node)
    # Remove half of the original population (keep at least one node).
    victims = sorted(initial)[: len(initial) // 2]
    for node in victims:
        if len(chord) > 1:
            chord.remove_node(node)
            ring.remove_node(node)
    assert chord.ring_is_consistent()
    for key in lookups:
        assert chord.lookup(key).node == ring.lookup(key).node


@given(node_sets)
@settings(max_examples=60, deadline=None)
def test_chord_ring_tour_visits_every_node(nodes):
    chord = ChordNetwork.bulk_build(sorted(nodes), bits=BITS)
    assert chord.ring_is_consistent()


@given(node_sets, keys)
@settings(max_examples=60, deadline=None)
def test_lookup_deterministic(nodes, lookups):
    chord = ChordNetwork.bulk_build(sorted(nodes), bits=BITS)
    for key in lookups:
        first = chord.lookup(key)
        second = chord.lookup(key)
        assert first.node == second.node
        assert first.path == second.path
