"""Unit tests for the identifier space and interval arithmetic."""

import pytest

from repro.dht.idspace import DEFAULT_BITS, IdSpace, hash_key, in_interval


class TestHashKey:
    def test_deterministic(self):
        assert hash_key("abc") == hash_key("abc")

    def test_distinct_inputs_differ(self):
        assert hash_key("abc") != hash_key("abd")

    def test_range_default_bits(self):
        value = hash_key("anything")
        assert 0 <= value < (1 << DEFAULT_BITS)

    @pytest.mark.parametrize("bits", [8, 16, 32, 64, 159])
    def test_truncation_respects_bits(self, bits):
        for text in ("a", "b", "hello", "node-42"):
            assert 0 <= hash_key(text, bits) < (1 << bits)

    def test_truncation_keeps_high_bits(self):
        full = hash_key("x", 160)
        assert hash_key("x", 32) == full >> 128

    def test_unicode_input(self):
        assert hash_key("héllo-wörld") == hash_key("héllo-wörld")


class TestInInterval:
    def test_plain_interval(self):
        assert in_interval(5, 3, 8)
        assert not in_interval(3, 3, 8)
        assert not in_interval(8, 3, 8)

    def test_closed_endpoints(self):
        assert in_interval(3, 3, 8, left_closed=True)
        assert in_interval(8, 3, 8, right_closed=True)

    def test_wrapping_interval(self):
        # Interval (250, 5) on a 8-bit ring: 251..255, 0..4.
        assert in_interval(255, 250, 5)
        assert in_interval(2, 250, 5)
        assert not in_interval(100, 250, 5)

    def test_degenerate_whole_ring(self):
        # left == right denotes the whole ring minus the endpoint.
        assert in_interval(7, 3, 3)
        assert not in_interval(3, 3, 3)
        assert in_interval(3, 3, 3, left_closed=True, right_closed=True)


class TestIdSpace:
    def test_size(self):
        assert IdSpace(8).size == 256

    @pytest.mark.parametrize("bits", [0, -1, 300])
    def test_invalid_bits(self, bits):
        with pytest.raises(ValueError):
            IdSpace(bits)

    def test_contains(self):
        space = IdSpace(8)
        assert space.contains(0) and space.contains(255)
        assert not space.contains(256) and not space.contains(-1)

    def test_add_wraps(self):
        space = IdSpace(8)
        assert space.add(250, 10) == 4

    def test_finger_start(self):
        space = IdSpace(8)
        assert space.finger_start(0, 0) == 1
        assert space.finger_start(0, 7) == 128
        assert space.finger_start(200, 7) == (200 + 128) % 256

    def test_distance_clockwise(self):
        space = IdSpace(8)
        assert space.distance_clockwise(10, 20) == 10
        assert space.distance_clockwise(20, 10) == 246
        assert space.distance_clockwise(5, 5) == 0

    def test_distance_xor_symmetric(self):
        space = IdSpace(8)
        assert space.distance_xor(12, 200) == space.distance_xor(200, 12)
        assert space.distance_xor(7, 7) == 0

    def test_hash_respects_bits(self):
        assert 0 <= IdSpace(16).hash("key") < (1 << 16)
