"""Protocol-compliance suite: one contract, five substrates.

The index layer depends only on the :class:`repro.dht.base.DHTProtocol`
contract; this suite pins that contract uniformly across the ideal ring,
Chord, Kademlia, Pastry, and CAN, so any future substrate can be dropped
in and validated by parametrization alone.
"""

import random

import pytest

from repro.dht.base import DHTProtocol, LookupResult
from repro.dht.can import CANNetwork
from repro.dht.chord import ChordNetwork
from repro.dht.kademlia import KademliaNetwork
from repro.dht.pastry import PastryNetwork
from repro.dht.ring import IdealRing

BITS = 16
SPACE = 1 << BITS


def build(name: str, node_ids: list[int]) -> DHTProtocol:
    if name == "ideal":
        ring = IdealRing(BITS)
        for node in node_ids:
            ring.add_node(node)
        return ring
    if name == "chord":
        return ChordNetwork.bulk_build(node_ids, bits=BITS)
    if name == "kademlia":
        return KademliaNetwork.bulk_build(node_ids, bits=BITS, k=6)
    if name == "pastry":
        return PastryNetwork.bulk_build(node_ids, bits=BITS, leaf_size=6)
    return CANNetwork.bulk_build(node_ids, bits=BITS, dimensions=2, seed=1)


SUBSTRATES = ("ideal", "chord", "kademlia", "pastry", "can")


@pytest.fixture(params=SUBSTRATES)
def substrate(request):
    rng = random.Random(17)
    node_ids = sorted(rng.sample(range(SPACE), 32))
    return build(request.param, node_ids), node_ids


class TestContract:
    def test_node_ids_sorted_and_complete(self, substrate):
        network, node_ids = substrate
        assert network.node_ids == node_ids
        assert len(network) == len(node_ids)

    def test_membership_operator(self, substrate):
        network, node_ids = substrate
        assert node_ids[0] in network
        missing = next(i for i in range(SPACE) if i not in set(node_ids))
        assert missing not in network

    def test_lookup_returns_live_node(self, substrate):
        network, node_ids = substrate
        rng = random.Random(18)
        live = set(node_ids)
        for _ in range(100):
            result = network.lookup(rng.randrange(SPACE))
            assert isinstance(result, LookupResult)
            assert result.node in live

    def test_lookup_deterministic(self, substrate):
        network, _ = substrate
        rng = random.Random(19)
        for _ in range(30):
            key = rng.randrange(SPACE)
            assert network.lookup(key).node == network.lookup(key).node

    def test_every_key_has_exactly_one_owner(self, substrate):
        """Key ownership is a function: repeated resolution from any
        entry point of the protocol structure yields the same node."""
        network, _ = substrate
        rng = random.Random(20)
        for _ in range(25):
            key = rng.randrange(SPACE)
            owners = {network.lookup(key).node for _ in range(3)}
            assert len(owners) == 1

    def test_hops_and_path_reported(self, substrate):
        network, _ = substrate
        result = network.lookup(12345)
        assert result.hops >= 1
        assert len(result.path) >= 1
        assert result.path[-1] == result.node or result.node in result.path

    def test_out_of_space_key_rejected(self, substrate):
        network, _ = substrate
        with pytest.raises(ValueError):
            network.lookup(SPACE)

    def test_duplicate_add_rejected(self, substrate):
        network, node_ids = substrate
        with pytest.raises(ValueError):
            network.add_node(node_ids[0])

    def test_remove_missing_rejected(self, substrate):
        network, node_ids = substrate
        missing = next(i for i in range(SPACE) if i not in set(node_ids))
        with pytest.raises(KeyError):
            network.remove_node(missing)

    def test_join_then_leave_is_consistent(self, substrate):
        network, node_ids = substrate
        rng = random.Random(21)
        fresh = next(
            candidate
            for candidate in iter(lambda: rng.randrange(SPACE), None)
            if candidate not in set(node_ids)
        )
        network.add_node(fresh)
        assert fresh in network
        # All lookups resolve to live nodes with the newcomer present.
        for _ in range(30):
            assert network.lookup(rng.randrange(SPACE)).node in set(
                network.node_ids
            )
        network.remove_node(fresh)
        assert fresh not in network
        for _ in range(30):
            result = network.lookup(rng.randrange(SPACE))
            assert result.node in set(network.node_ids)
            assert result.node != fresh

    def test_lookup_many_matches_single_lookups(self, substrate):
        network, _ = substrate
        keys = [7, 99, 12345, SPACE - 1]
        batched = network.lookup_many(keys)
        assert [r.node for r in batched] == [
            network.lookup(key).node for key in keys
        ]

    def test_crash_state_contract(self, substrate):
        """fail/recover mark transient crashes without leaving the overlay."""
        network, node_ids = substrate
        victim = node_ids[3]
        assert network.is_alive(victim)
        assert network.failed_nodes == set()
        network.fail_node(victim)
        assert not network.is_alive(victim)
        assert victim in network  # crashed, but still a member
        assert network.failed_nodes == {victim}
        # Routing still resolves keys (possibly to the crashed node --
        # callers check is_alive); the structure itself is untouched.
        assert network.lookup(12345).node in set(network.node_ids)
        network.recover_node(victim)
        assert network.is_alive(victim)
        assert network.failed_nodes == set()

    def test_fail_unknown_node_rejected(self, substrate):
        network, node_ids = substrate
        missing = next(i for i in range(SPACE) if i not in set(node_ids))
        with pytest.raises(KeyError):
            network.fail_node(missing)

    def test_recover_is_idempotent(self, substrate):
        network, node_ids = substrate
        network.recover_node(node_ids[0])  # never crashed: a no-op
        network.fail_node(node_ids[0])
        network.recover_node(node_ids[0])
        network.recover_node(node_ids[0])
        assert network.is_alive(node_ids[0])

    def test_departed_node_not_alive(self, substrate):
        network, node_ids = substrate
        rng = random.Random(23)
        fresh = next(
            candidate
            for candidate in iter(lambda: rng.randrange(SPACE), None)
            if candidate not in set(node_ids)
        )
        network.add_node(fresh)
        network.fail_node(fresh)
        network.remove_node(fresh)
        # Departure trumps crash state: the node is simply not a member.
        assert not network.is_alive(fresh)
        assert fresh not in network.failed_nodes

    def test_single_node_network_owns_everything(self, substrate):
        network, _ = substrate
        # Build a one-node instance of the same class.
        one = build(
            type(network).__name__.replace("Network", "").lower()
            if not isinstance(network, IdealRing)
            else "ideal",
            [42],
        )
        for key in (0, 1, SPACE // 2, SPACE - 1):
            assert one.lookup(key).node == 42
