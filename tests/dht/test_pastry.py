"""Unit tests for the Pastry substrate."""

import random

import pytest

from repro.dht.pastry import PastryNetwork, PastryNode


class TestNodeState:
    def test_digits(self):
        node = PastryNode(0xA3, bits=8, digit_bits=4, leaf_size=4)
        assert node.digit(0xA3, 0) == 0xA
        assert node.digit(0xA3, 1) == 0x3

    def test_shared_prefix_length(self):
        node = PastryNode(0xA3, bits=8, digit_bits=4, leaf_size=4)
        assert node.shared_prefix_length(0xA7) == 1
        assert node.shared_prefix_length(0xB3) == 0
        assert node.shared_prefix_length(0xA3) == 2

    def test_observe_fills_routing_table(self):
        node = PastryNode(0xA3, bits=8, digit_bits=4, leaf_size=4)
        node.observe(0xB1)
        assert node.routing_table[0][0xB] == 0xB1
        node.observe(0xB9)  # same cell already taken: first-come
        assert node.routing_table[0][0xB] == 0xB1

    def test_observe_self_noop(self):
        node = PastryNode(0xA3, bits=8, digit_bits=4, leaf_size=4)
        node.observe(0xA3)
        assert all(entry is None for row in node.routing_table for entry in row)

    def test_forget(self):
        node = PastryNode(0xA3, bits=8, digit_bits=4, leaf_size=4)
        node.observe(0xB1)
        node.forget(0xB1)
        assert node.routing_table[0][0xB] is None


class TestNetwork:
    @pytest.fixture
    def network(self):
        rng = random.Random(2)
        ids = sorted(rng.sample(range(1 << 16), 48))
        return PastryNetwork.bulk_build(ids, bits=16, digit_bits=4, leaf_size=8)

    def test_lookup_finds_numerically_closest(self, network):
        rng = random.Random(3)
        for _ in range(300):
            key = rng.randrange(1 << 16)
            result = network.lookup(key, start=rng.choice(network.node_ids))
            assert result.node == network.responsible_node(key)

    def test_prefix_routing_is_logarithmic(self, network):
        rng = random.Random(4)
        hops = [
            network.lookup(rng.randrange(1 << 16)).hops for _ in range(200)
        ]
        # log_16(48) < 2 digits + leaf delivery: small and bounded.
        assert sum(hops) / len(hops) < 6
        assert max(hops) < 12

    def test_join_keeps_correctness(self, network):
        rng = random.Random(5)
        for fresh in rng.sample(range(1 << 16), 8):
            if fresh not in network:
                network.add_node(fresh)
        for _ in range(150):
            key = rng.randrange(1 << 16)
            assert network.lookup(key).node == network.responsible_node(key)

    def test_leave_keeps_correctness(self, network):
        rng = random.Random(6)
        for victim in rng.sample(network.node_ids, 16):
            network.remove_node(victim)
        for _ in range(150):
            key = rng.randrange(1 << 16)
            assert network.lookup(key).node == network.responsible_node(key)

    def test_single_node(self):
        network = PastryNetwork(bits=8, digit_bits=4, leaf_size=4)
        network.add_node(9)
        assert network.lookup(200).node == 9

    def test_duplicate_rejected(self, network):
        with pytest.raises(ValueError):
            network.add_node(network.node_ids[0])

    def test_remove_missing(self, network):
        with pytest.raises(KeyError):
            network.remove_node(-1 & 0xFFFF if (-1 & 0xFFFF) not in network else 0)

    def test_bits_digit_alignment(self):
        with pytest.raises(ValueError):
            PastryNetwork(bits=10, digit_bits=4)

    def test_leaf_sets_bracket_neighbours(self, network):
        ordered = network.node_ids
        for position, node_id in enumerate(ordered):
            peer = network.node(node_id)
            expected_below = ordered[max(0, position - 4) : position]
            assert peer.leaf_below == expected_below
