"""Unit tests for the Chord substrate."""

import random

import pytest

from repro.dht.chord import ChordNetwork
from repro.dht.ring import IdealRing


def reference_successor(node_ids, key, size):
    ordered = sorted(node_ids)
    for node in ordered:
        if node >= key:
            return node
    return ordered[0]


@pytest.fixture
def network():
    network = ChordNetwork(bits=10)
    for node in (5, 100, 300, 600, 900):
        network.add_node(node)
    return network


class TestIncrementalMembership:
    def test_single_node_self_loops(self):
        network = ChordNetwork(bits=8)
        network.add_node(42)
        peer = network.node(42)
        assert peer.successor == 42
        assert peer.predecessor == 42
        assert network.lookup(7).node == 42

    def test_ring_consistent_after_joins(self, network):
        assert network.ring_is_consistent()

    def test_successor_chain_ordered(self, network):
        assert network.node(5).successor == 100
        assert network.node(900).successor == 5

    def test_predecessors(self, network):
        assert network.node(100).predecessor == 5
        assert network.node(5).predecessor == 900

    def test_duplicate_join_rejected(self, network):
        with pytest.raises(ValueError):
            network.add_node(100)

    def test_out_of_space_rejected(self):
        with pytest.raises(ValueError):
            ChordNetwork(bits=4).add_node(16)

    def test_leave_keeps_ring(self, network):
        network.remove_node(300)
        assert network.ring_is_consistent()
        assert network.node(100).successor == 600

    def test_remove_missing(self, network):
        with pytest.raises(KeyError):
            network.remove_node(4242)


class TestLookup:
    def test_matches_consistent_hashing(self, network):
        for key in range(0, 1024, 7):
            expected = reference_successor(network.node_ids, key, 1024)
            assert network.lookup(key).node == expected

    def test_lookup_from_any_start(self, network):
        for start in network.node_ids:
            assert network.lookup(450, start=start).node == 600

    def test_path_starts_at_initiator(self, network):
        result = network.lookup(450, start=5)
        assert result.path[0] == 5

    def test_key_owner_lookup(self, network):
        assert network.lookup(100).node == 100

    def test_empty_network(self):
        with pytest.raises(RuntimeError):
            ChordNetwork(bits=8).lookup(1)

    def test_logarithmic_hops(self):
        rng = random.Random(7)
        network = ChordNetwork.bulk_build(
            sorted(rng.sample(range(1 << 16), 128)), bits=16
        )
        hops = [
            network.lookup(rng.randrange(1 << 16)).hops for _ in range(200)
        ]
        # O(log N): with 128 nodes, lookups should stay well under 128/2
        # and average around log2(128) = 7.
        assert max(hops) <= 20
        assert sum(hops) / len(hops) < 10


class TestBulkBuild:
    def test_equivalent_to_incremental(self):
        ids = [5, 100, 300, 600, 900]
        incremental = ChordNetwork(bits=10)
        for node in ids:
            incremental.add_node(node)
        bulk = ChordNetwork.bulk_build(ids, bits=10)
        for key in range(0, 1024, 13):
            assert bulk.lookup(key).node == incremental.lookup(key).node

    def test_matches_ideal_ring(self):
        rng = random.Random(3)
        ids = sorted(rng.sample(range(1 << 12), 40))
        chord = ChordNetwork.bulk_build(ids, bits=12)
        ring = IdealRing(bits=12)
        for node in ids:
            ring.add_node(node)
        for _ in range(300):
            key = rng.randrange(1 << 12)
            assert chord.lookup(key).node == ring.lookup(key).node

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            ChordNetwork.bulk_build([1, 1, 2], bits=8)

    def test_fingers_fully_populated(self):
        network = ChordNetwork.bulk_build([10, 50, 200], bits=8)
        for node_id in network.node_ids:
            assert None not in network.node(node_id).fingers


class TestChurn:
    def test_lookups_correct_under_churn(self):
        rng = random.Random(11)
        ids = rng.sample(range(1 << 12), 30)
        network = ChordNetwork(bits=12)
        ring = IdealRing(bits=12)
        for node in ids:
            network.add_node(node)
            ring.add_node(node)
        # Interleave joins and leaves.
        for node in rng.sample(ids, 10):
            network.remove_node(node)
            ring.remove_node(node)
        for fresh in rng.sample(range(1 << 12), 10):
            if fresh not in network:
                network.add_node(fresh)
                ring.add_node(fresh)
        assert network.ring_is_consistent()
        for _ in range(200):
            key = rng.randrange(1 << 12)
            assert network.lookup(key).node == ring.lookup(key).node

    def test_stabilize_converges_and_reports_rounds(self, network):
        rounds = network.stabilize_until_quiescent()
        assert rounds >= 1
