"""Property tests for ring-interval arithmetic.

``in_interval`` underpins every Chord routing decision; it is checked
against a brute-force reference that literally walks the ring clockwise.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dht.idspace import IdSpace, in_interval

BITS = 6
SIZE = 1 << BITS

ids = st.integers(0, SIZE - 1)


def brute_force_in_interval(value, left, right, left_closed, right_closed):
    """Walk clockwise from left to right, collecting members."""
    members = set()
    if left_closed:
        members.add(left)
    cursor = (left + 1) % SIZE
    if left == right:
        # Walking clockwise from just after `left` all the way around:
        # every id except `left` is traversed, and `left` itself is a
        # member iff either endpoint is closed (Chord's single-node ring:
        # (n, n] spans everything including n).
        members = set(range(SIZE)) - {left}
        if left_closed or right_closed:
            members.add(left)
        return value in members
    while cursor != right:
        members.add(cursor)
        cursor = (cursor + 1) % SIZE
    if right_closed:
        members.add(right)
    return value in members


@given(ids, ids, ids, st.booleans(), st.booleans())
@settings(max_examples=600, deadline=None)
def test_in_interval_matches_brute_force(value, left, right, lc, rc):
    assert in_interval(value, left, right, lc, rc) == brute_force_in_interval(
        value, left, right, lc, rc
    )


@given(ids, ids)
@settings(max_examples=200, deadline=None)
def test_interval_complement(value, boundary_a):
    """(a, b) and [b, a] partition the ring for distinct a, b."""
    boundary_b = (boundary_a + 7) % SIZE
    inside = in_interval(value, boundary_a, boundary_b)
    outside = in_interval(
        value, boundary_b, boundary_a, left_closed=True, right_closed=True
    )
    assert inside != outside


@given(ids, st.integers(0, BITS - 1))
@settings(max_examples=200, deadline=None)
def test_finger_start_distance(node, index):
    """finger i starts exactly 2^i clockwise from the node."""
    space = IdSpace(BITS)
    start = space.finger_start(node, index)
    assert space.distance_clockwise(node, start) == (1 << index)


@given(ids, ids)
@settings(max_examples=200, deadline=None)
def test_clockwise_distance_antisymmetry(a, b):
    space = IdSpace(BITS)
    forward = space.distance_clockwise(a, b)
    backward = space.distance_clockwise(b, a)
    if a == b:
        assert forward == backward == 0
    else:
        assert forward + backward == SIZE
