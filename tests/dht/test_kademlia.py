"""Unit tests for the Kademlia substrate."""

import random

import pytest

from repro.dht.kademlia import KademliaNetwork, KademliaNode


class TestNodeBuckets:
    def test_bucket_index_is_distance_bit_length(self):
        node = KademliaNode(0b1000, bits=8, k=4)
        assert node.bucket_index(0b1001) == 0   # distance 1
        assert node.bucket_index(0b1100) == 2   # distance 4
        assert node.bucket_index(0b0000) == 3   # distance 8

    def test_self_bucket_rejected(self):
        node = KademliaNode(5, bits=8, k=4)
        with pytest.raises(ValueError):
            node.bucket_index(5)

    def test_observe_and_capacity(self):
        node = KademliaNode(0, bits=8, k=2)
        # ids 128..255 all land in the top bucket of node 0.
        node.observe(130)
        node.observe(140)
        node.observe(150)  # bucket full: dropped
        bucket = node.buckets[7]
        assert bucket == [130, 140]

    def test_reobservation_moves_to_tail(self):
        node = KademliaNode(0, bits=8, k=3)
        node.observe(130)
        node.observe(140)
        node.observe(130)
        assert node.buckets[7] == [140, 130]

    def test_observe_self_is_noop(self):
        node = KademliaNode(0, bits=8, k=2)
        node.observe(0)
        assert all(not bucket for bucket in node.buckets)

    def test_forget(self):
        node = KademliaNode(0, bits=8, k=2)
        node.observe(130)
        node.forget(130)
        assert not node.buckets[7]

    def test_closest_contacts_sorted_by_xor(self):
        node = KademliaNode(0, bits=8, k=8)
        for other in (3, 12, 130, 60):
            node.observe(other)
        contacts = node.closest_contacts(2, count=3)
        assert contacts == [3, 0, 12][:3] or contacts[0] == 3


class TestNetworkLookup:
    @pytest.fixture
    def network(self):
        rng = random.Random(5)
        network = KademliaNetwork(bits=12, k=4)
        for node in rng.sample(range(1 << 12), 40):
            network.add_node(node)
        return network

    def test_lookup_finds_globally_closest(self, network):
        rng = random.Random(6)
        for _ in range(200):
            key = rng.randrange(1 << 12)
            result = network.lookup(key)
            assert result.node == network.responsible_node(key)

    def test_lookup_from_any_start(self, network):
        rng = random.Random(7)
        key = rng.randrange(1 << 12)
        expected = network.responsible_node(key)
        for start in network.node_ids[:10]:
            assert network.lookup(key, start=start).node == expected

    def test_hops_reported(self, network):
        result = network.lookup(123)
        assert result.hops == len(result.path)
        assert result.hops >= 0

    def test_single_node(self):
        network = KademliaNetwork(bits=8)
        network.add_node(9)
        assert network.lookup(200).node == 9

    def test_empty_network(self):
        with pytest.raises(RuntimeError):
            KademliaNetwork(bits=8).lookup(1)

    def test_duplicate_rejected(self, network):
        with pytest.raises(ValueError):
            network.add_node(network.node_ids[0])

    def test_churn_preserves_correctness(self, network):
        rng = random.Random(8)
        victims = rng.sample(network.node_ids, 15)
        for node in victims:
            network.remove_node(node)
        for _ in range(150):
            key = rng.randrange(1 << 12)
            assert network.lookup(key).node == network.responsible_node(key)

    def test_remove_missing(self, network):
        with pytest.raises(KeyError):
            network.remove_node(1 << 11 | 1 if (1 << 11 | 1) not in network else 7)


class TestBulkBuild:
    def test_matches_incremental_responsibility(self):
        rng = random.Random(9)
        ids = rng.sample(range(1 << 12), 50)
        bulk = KademliaNetwork.bulk_build(ids, bits=12, k=4)
        for _ in range(300):
            key = rng.randrange(1 << 12)
            assert bulk.lookup(key).node == bulk.responsible_node(key)

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            KademliaNetwork.bulk_build([3, 3], bits=8)

    def test_bucket_capacity_respected(self):
        ids = list(range(64))
        network = KademliaNetwork.bulk_build(ids, bits=8, k=3)
        for node_id in ids:
            for bucket in network.node(node_id).buckets:
                assert len(bucket) <= 3
