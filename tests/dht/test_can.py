"""Unit tests for the CAN substrate."""

import random

import pytest

from repro.dht.can import CANNetwork, Zone


class TestZone:
    def test_contains_half_open(self):
        zone = Zone((0.0, 0.0), (0.5, 0.5))
        assert zone.contains((0.0, 0.0))
        assert zone.contains((0.49, 0.49))
        assert not zone.contains((0.5, 0.25))

    def test_split(self):
        zone = Zone((0.0, 0.0), (1.0, 1.0))
        first, second = zone.split(0)
        assert first.high[0] == 0.5 and second.low[0] == 0.5
        assert first.contains((0.25, 0.7)) and second.contains((0.75, 0.7))

    def test_touches_shared_face(self):
        left = Zone((0.0, 0.0), (0.5, 1.0))
        right = Zone((0.5, 0.0), (1.0, 1.0))
        assert left.touches(right) and right.touches(left)

    def test_touches_torus_wrap(self):
        left = Zone((0.0, 0.0), (0.25, 1.0))
        right = Zone((0.75, 0.0), (1.0, 1.0))
        assert left.touches(right)

    def test_corner_contact_is_not_adjacency(self):
        a = Zone((0.0, 0.0), (0.5, 0.5))
        b = Zone((0.5, 0.5), (1.0, 1.0))
        assert not a.touches(b)

    def test_center(self):
        assert Zone((0.0, 0.5), (0.5, 1.0)).center() == (0.25, 0.75)


class TestNetwork:
    @pytest.fixture
    def network(self):
        rng = random.Random(8)
        ids = sorted(rng.sample(range(1 << 16), 40))
        return CANNetwork.bulk_build(ids, bits=16, dimensions=2, seed=3)

    def test_partition_tiles_the_torus(self, network):
        assert network.partition_is_valid()

    def test_every_point_has_one_owner(self, network):
        rng = random.Random(9)
        for _ in range(200):
            point = (rng.random(), rng.random())
            owners = [
                node
                for node in network.node_ids
                if network.zone_of(node).contains(point)
            ]
            assert len(owners) == 1

    def test_lookup_delivers_to_zone_owner(self, network):
        rng = random.Random(10)
        for _ in range(300):
            key = rng.randrange(1 << 16)
            result = network.lookup(key, start=rng.choice(network.node_ids))
            assert result.node == network.responsible_node(key)

    def test_hops_scale_like_sqrt_n(self, network):
        rng = random.Random(11)
        hops = [
            network.lookup(rng.randrange(1 << 16)).hops for _ in range(200)
        ]
        # O(d * N^(1/d)) = O(2 * sqrt(40)) ~ 12; average well below.
        assert sum(hops) / len(hops) < 12

    def test_key_point_deterministic_and_in_torus(self, network):
        for key in (0, 1, 12345, (1 << 16) - 1):
            point = network.key_point(key)
            assert point == network.key_point(key)
            assert all(0.0 <= coordinate < 1.0 for coordinate in point)

    def test_join_splits_a_zone(self):
        network = CANNetwork(bits=16, dimensions=2, seed=4)
        network.add_node(1)
        assert network.zone_of(1) == Zone((0.0, 0.0), (1.0, 1.0))
        network.add_node(2)
        assert network.partition_is_valid()
        assert network.neighbors_of(1) == {2}

    def test_leave_restores_valid_partition(self, network):
        rng = random.Random(12)
        for victim in rng.sample(network.node_ids, 15):
            network.remove_node(victim)
            assert network.partition_is_valid()
        for _ in range(100):
            key = rng.randrange(1 << 16)
            assert network.lookup(key).node == network.responsible_node(key)

    def test_remove_last_node(self):
        network = CANNetwork(bits=8, dimensions=2)
        network.add_node(5)
        network.remove_node(5)
        assert network.node_ids == []

    def test_neighbors_symmetric(self, network):
        for node in network.node_ids:
            for neighbor in network.neighbors_of(node):
                assert node in network.neighbors_of(neighbor)

    def test_duplicate_rejected(self, network):
        with pytest.raises(ValueError):
            network.add_node(network.node_ids[0])

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            CANNetwork(dimensions=0)

    def test_higher_dimension_routing(self):
        rng = random.Random(13)
        ids = sorted(rng.sample(range(1 << 24), 30))
        network = CANNetwork.bulk_build(ids, bits=24, dimensions=3, seed=5)
        assert network.partition_is_valid()
        for _ in range(150):
            key = rng.randrange(1 << 24)
            assert network.lookup(key).node == network.responsible_node(key)
