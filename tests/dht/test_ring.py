"""Unit tests for the ideal consistent-hashing ring."""

import pytest

from repro.dht.ring import IdealRing


@pytest.fixture
def ring():
    ring = IdealRing(bits=8)
    for node in (10, 100, 200):
        ring.add_node(node)
    return ring


class TestMembership:
    def test_nodes_sorted(self, ring):
        assert ring.node_ids == [10, 100, 200]

    def test_len_and_contains(self, ring):
        assert len(ring) == 3
        assert 100 in ring
        assert 50 not in ring

    def test_duplicate_rejected(self, ring):
        with pytest.raises(ValueError):
            ring.add_node(100)

    def test_out_of_space_rejected(self, ring):
        with pytest.raises(ValueError):
            ring.add_node(256)

    def test_remove(self, ring):
        ring.remove_node(100)
        assert ring.node_ids == [10, 200]

    def test_remove_missing(self, ring):
        with pytest.raises(KeyError):
            ring.remove_node(42)


class TestLookup:
    def test_key_maps_to_clockwise_successor(self, ring):
        assert ring.lookup(50).node == 100
        assert ring.lookup(100).node == 100
        assert ring.lookup(150).node == 200

    def test_wraparound(self, ring):
        assert ring.lookup(250).node == 10
        assert ring.lookup(0).node == 10

    def test_single_hop(self, ring):
        result = ring.lookup(50)
        assert result.hops == 1
        assert result.path == (100,)

    def test_key_out_of_space(self, ring):
        with pytest.raises(ValueError):
            ring.lookup(256)

    def test_empty_ring(self):
        with pytest.raises(RuntimeError):
            IdealRing(bits=8).lookup(5)

    def test_lookup_many(self, ring):
        results = ring.lookup_many([50, 150, 250])
        assert [r.node for r in results] == [100, 200, 10]

    def test_consistent_hashing_stability(self, ring):
        """Adding a node only moves keys into the new node's arc."""
        before = {key: ring.lookup(key).node for key in range(256)}
        ring.add_node(150)
        after = {key: ring.lookup(key).node for key in range(256)}
        for key in range(256):
            if after[key] != before[key]:
                assert after[key] == 150
