"""Unit tests for the INS/Twine-style replication baseline."""

import pytest

from repro.baselines.twine import TwineResolver
from repro.core.fields import ARTICLE_SCHEMA
from repro.core.query import FieldQuery
from repro.dht.idspace import hash_key
from repro.dht.ring import IdealRing
from repro.net.transport import SimulatedTransport
from repro.storage.store import DHTStorage


def build(max_strand_fields=2, num_nodes=12):
    ring = IdealRing(64)
    for index in range(num_nodes):
        ring.add_node(hash_key(f"peer-{index}", 64))
    transport = SimulatedTransport()
    resolver = TwineResolver(
        ARTICLE_SCHEMA,
        DHTStorage(ring),
        DHTStorage(ring),
        transport,
        max_strand_fields=max_strand_fields,
    )
    return resolver


class TestStrands:
    def test_strand_keysets_singles_and_pairs(self):
        resolver = build(max_strand_fields=2)
        keysets = resolver.strand_keysets()
        assert ("author",) in keysets
        assert ("author", "year") in keysets
        # 4 singles + C(4,2)=6 pairs.
        assert len(keysets) == 10
        assert resolver.copies_per_record() == 10

    def test_strand_size_one(self):
        resolver = build(max_strand_fields=1)
        assert len(resolver.strand_keysets()) == 4

    def test_invalid_strand_size(self):
        with pytest.raises(ValueError):
            build(max_strand_fields=0)

    def test_strands_for_record(self, paper_records):
        resolver = build()
        strands = resolver.strands_for(paper_records[0])
        assert all(
            strand.covers_record(paper_records[0]) for strand in strands
        )


class TestReplication:
    def test_full_description_on_every_strand(self, paper_records):
        resolver = build()
        resolver.insert_record(paper_records[0])
        msd_key = FieldQuery.msd_of(paper_records[0]).key()
        for strand in resolver.strands_for(paper_records[0]):
            assert msd_key in resolver.description_store.values(strand.key())

    def test_storage_grows_with_strand_size(self, paper_records):
        small = build(max_strand_fields=1)
        large = build(max_strand_fields=2)
        for record in paper_records:
            small.insert_record(record)
            large.insert_record(record)
        assert large.storage_bytes() > small.storage_bytes()

    def test_replication_heavier_than_key_to_key_indexes(self, paper_records):
        """The paper's core claim against Twine, on identical data."""
        from repro.core.scheme import simple_scheme
        from repro.core.service import IndexService

        resolver = build()
        for record in paper_records:
            resolver.insert_record(record)

        ring = IdealRing(64)
        for index in range(12):
            ring.add_node(hash_key(f"peer-{index}", 64))
        service = IndexService(
            ARTICLE_SCHEMA,
            simple_scheme(),
            DHTStorage(ring),
            DHTStorage(ring),
            SimulatedTransport(),
        )
        for record in paper_records:
            service.insert_record(record)
        assert resolver.storage_bytes() > service.index_storage_bytes()


class TestLookup:
    def test_two_interaction_lookup(self, paper_records):
        resolver = build()
        for record in paper_records:
            resolver.insert_record(record)
        query = FieldQuery(ARTICLE_SCHEMA, {"author": "John_Smith"})
        found, interactions = resolver.lookup(
            query, paper_records[0], user="user:tw"
        )
        assert found and interactions == 2

    def test_pair_strand_answers_author_year(self, paper_records):
        """author+year fails on every paper scheme but is a Twine strand."""
        resolver = build()
        for record in paper_records:
            resolver.insert_record(record)
        query = FieldQuery.of_record(paper_records[1], ["author", "year"])
        found, interactions = resolver.lookup(
            query, paper_records[1], user="user:tw"
        )
        assert found and interactions == 2

    def test_missing_target_not_found(self, paper_records):
        resolver = build()
        resolver.insert_record(paper_records[0])
        query = FieldQuery(ARTICLE_SCHEMA, {"author": "Alan_Doe"})
        found, _ = resolver.lookup(query, paper_records[2], user="user:tw")
        assert not found

    def test_workload_run(self, paper_records):
        from repro.workload.corpus import CorpusConfig, SyntheticCorpus
        from repro.workload.querygen import QueryGenerator

        corpus = SyntheticCorpus(
            CorpusConfig(num_articles=100, num_authors=40, seed=1)
        )
        resolver = build(num_nodes=16)
        for record in corpus.records:
            resolver.insert_record(record)
        generator = QueryGenerator(corpus, seed=2)
        result = resolver.run_workload(generator.generate(500))
        assert result.searches == 500
        assert result.found == 500
        assert result.avg_interactions == 2.0
        assert result.normal_bytes_per_query > 0
