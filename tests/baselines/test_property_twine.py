"""Property tests for the Twine baseline's invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.twine import TwineResolver
from repro.core.fields import ARTICLE_SCHEMA, Record
from repro.core.query import FieldQuery
from repro.dht.idspace import hash_key
from repro.dht.ring import IdealRing
from repro.net.transport import SimulatedTransport
from repro.storage.store import DHTStorage

records = st.builds(
    lambda a, t, c, y: Record(
        ARTICLE_SCHEMA,
        {"author": f"A{a}", "title": f"T{t}", "conf": f"C{c}", "year": str(y)},
    ),
    st.integers(0, 5),
    st.integers(0, 30),
    st.integers(0, 3),
    st.integers(1990, 1999),
)


def build(max_strand_fields=2):
    ring = IdealRing(32)
    for index in range(8):
        ring.add_node(hash_key(f"peer-{index}", 32))
    return TwineResolver(
        ARTICLE_SCHEMA,
        DHTStorage(ring),
        DHTStorage(ring),
        SimulatedTransport(),
        max_strand_fields=max_strand_fields,
    )


@given(records)
@settings(max_examples=100, deadline=None)
def test_every_strand_covers_its_record(record):
    resolver = build()
    for strand in resolver.strands_for(record):
        assert strand.covers_record(record)


@given(st.lists(records, min_size=1, max_size=10, unique_by=lambda r: r.values["title"]))
@settings(max_examples=60, deadline=None)
def test_replication_count_is_exact(record_list):
    resolver = build()
    for record in record_list:
        resolver.insert_record(record)
    copies = resolver.copies_per_record()
    total_entries = resolver.description_store.total_entries()
    # Records sharing a strand value (same author etc.) share that
    # strand's entry only if the full description is identical -- it is
    # not (titles are unique) -- so each record holds exactly `copies`
    # entries.
    assert total_entries == copies * len(record_list)


@given(
    st.lists(records, min_size=1, max_size=8, unique_by=lambda r: r.values["title"]),
    st.integers(0, 7),
    st.sets(st.sampled_from(["author", "title", "conf", "year"]), min_size=1, max_size=2),
)
@settings(max_examples=60, deadline=None)
def test_any_strand_query_finds_any_stored_record(record_list, index, fields):
    resolver = build()
    for record in record_list:
        resolver.insert_record(record)
    target = record_list[index % len(record_list)]
    query = FieldQuery.of_record(target, fields)
    found, interactions = resolver.lookup(query, target, user="user:ptw")
    assert found
    assert interactions == 2
