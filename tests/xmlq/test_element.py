"""Unit tests for the descriptor element tree."""

import pytest

from repro.xmlq.element import Element, element, text_element


class TestConstruction:
    def test_leaf_with_text(self):
        leaf = text_element("title", "TCP")
        assert leaf.tag == "title"
        assert leaf.text == "TCP"
        assert leaf.is_leaf

    def test_internal_node(self):
        author = element("author", text_element("first", "John"))
        assert author.tag == "author"
        assert author.text is None
        assert not author.is_leaf
        assert len(author.children) == 1

    def test_text_coerced_to_string(self):
        leaf = text_element("year", 1989)
        assert leaf.text == "1989"

    def test_empty_tag_rejected(self):
        with pytest.raises(ValueError):
            Element("")

    def test_non_string_tag_rejected(self):
        with pytest.raises(ValueError):
            Element(42)  # type: ignore[arg-type]

    def test_mixed_content_rejected(self):
        with pytest.raises(ValueError):
            Element("a", children=[Element("b")], text="x")

    def test_non_element_child_rejected(self):
        with pytest.raises(TypeError):
            Element("a", children=["not an element"])  # type: ignore[list-item]

    def test_empty_element_allowed(self):
        empty = Element("note")
        assert empty.is_leaf
        assert empty.text is None


class TestNavigation:
    @pytest.fixture
    def article(self):
        return element(
            "article",
            element(
                "author", text_element("first", "John"), text_element("last", "Smith")
            ),
            text_element("title", "TCP"),
            text_element("year", "1989"),
        )

    def test_child(self, article):
        assert article.child("title").text == "TCP"
        assert article.child("nope") is None

    def test_children_named(self, article):
        multi = element("a", text_element("x", "1"), text_element("x", "2"))
        assert [c.text for c in multi.children_named("x")] == ["1", "2"]
        assert article.children_named("missing") == []

    def test_find_nested(self, article):
        assert article.find("author/last").text == "Smith"
        assert article.find("author/middle") is None
        assert article.find("nope/deeper") is None

    def test_findtext(self, article):
        assert article.findtext("author/first") == "John"
        assert article.findtext("author/missing") is None

    def test_iter_preorder(self, article):
        tags = [node.tag for node in article.iter()]
        assert tags == ["article", "author", "first", "last", "title", "year"]

    def test_descendants_excludes_self(self, article):
        tags = [node.tag for node in article.descendants()]
        assert "article" not in tags
        assert len(tags) == article.size() - 1

    def test_size_and_depth(self, article):
        assert article.size() == 6
        assert article.depth() == 3
        assert text_element("x", "v").depth() == 1


class TestValueSemantics:
    def test_equality_by_value(self):
        a = element("p", text_element("q", "v"))
        b = element("p", text_element("q", "v"))
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality_on_text(self):
        assert text_element("q", "v") != text_element("q", "w")

    def test_inequality_on_child_order(self):
        a = element("p", Element("x"), Element("y"))
        b = element("p", Element("y"), Element("x"))
        assert a != b

    def test_not_equal_to_other_types(self):
        assert text_element("q", "v") != "q"

    def test_usable_as_dict_key(self):
        mapping = {element("p", text_element("q", "v")): 1}
        assert mapping[element("p", text_element("q", "v"))] == 1
