"""Property-based tests for the xmlq layer.

The central invariant of the whole system is soundness of the covering
relation: whenever ``covers(q', q)`` holds, every descriptor matching
``q`` must match ``q'`` (Section III-B).  These tests check it against
the evaluator on randomly generated descriptors and queries, plus
round-trip and idempotence properties of the parsers and normalizer.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmlq.element import Element
from repro.xmlq.evaluator import matches
from repro.xmlq.normalize import normalize_xpath
from repro.xmlq.pattern import covers, descriptor_to_pattern
from repro.xmlq.xmlparse import parse_xml, serialize_xml

TAGS = ["article", "author", "first", "last", "title", "conf", "year", "note"]
VALUES = ["John", "Smith", "TCP", "IPv6", "SIGCOMM", "INFOCOM", "1989", "1996"]


@st.composite
def descriptors(draw, max_depth: int = 3) -> Element:
    """Small random descriptor trees over a fixed vocabulary."""
    tag = draw(st.sampled_from(TAGS))
    if max_depth <= 1 or draw(st.booleans()):
        if draw(st.booleans()):
            return Element(tag, text=draw(st.sampled_from(VALUES)))
        return Element(tag)
    children = draw(
        st.lists(descriptors(max_depth=max_depth - 1), min_size=1, max_size=3)
    )
    return Element(tag, children=children)


@st.composite
def queries_for(draw, descriptor: Element) -> str:
    """Random queries biased to sometimes match the descriptor.

    Builds a query by walking the descriptor and randomly generalizing
    (dropping constraints, substituting ``//`` or ``*``), or occasionally
    mutating a value so mismatches are exercised too.
    """
    rng = random.Random(draw(st.integers(0, 2**31)))

    def project(node: Element) -> str:
        name = node.tag if rng.random() > 0.15 else "*"
        predicates = []
        children = list(node.children)
        rng.shuffle(children)
        for child in children[:2]:
            if rng.random() < 0.55:
                predicates.append(f"[{project(child)}]")
        if node.text is not None and rng.random() < 0.6:
            value = node.text if rng.random() > 0.1 else rng.choice(VALUES)
            predicates.append(f"[{value}]")
        return name + "".join(predicates)

    separator = "//" if rng.random() < 0.2 else "/"
    return separator + project(descriptor)


class TestCoveringSoundness:
    @given(st.data())
    @settings(max_examples=300, deadline=None)
    def test_covers_implies_matching(self, data):
        """covers(q', q) and d matches q  =>  d matches q'."""
        descriptor = data.draw(descriptors())
        general = data.draw(queries_for(descriptor))
        specific = data.draw(queries_for(descriptor))
        if covers(general, specific):
            if matches(descriptor, specific):
                assert matches(descriptor, general), (
                    f"covering unsound: {general!r} ⊒ {specific!r} but "
                    f"descriptor matches only the specific query"
                )

    @given(st.data())
    @settings(max_examples=300, deadline=None)
    def test_descriptor_pattern_covering_agrees_with_matching(self, data):
        """covers(q, descriptor) must equal matches(descriptor, q)...

        ... whenever covers says True (homomorphism soundness).  The
        reverse direction (completeness) holds for //-free, *-free
        queries and is exercised by the core-layer property tests.
        """
        descriptor = data.draw(descriptors())
        query = data.draw(queries_for(descriptor))
        if covers(query, descriptor_to_pattern(descriptor)):
            assert matches(descriptor, query)

    @given(st.data())
    @settings(max_examples=150, deadline=None)
    def test_covering_reflexive(self, data):
        descriptor = data.draw(descriptors())
        query = data.draw(queries_for(descriptor))
        assert covers(query, query)

    @given(st.data())
    @settings(max_examples=150, deadline=None)
    def test_covering_transitive_on_triples(self, data):
        descriptor = data.draw(descriptors())
        a = data.draw(queries_for(descriptor))
        b = data.draw(queries_for(descriptor))
        c = data.draw(queries_for(descriptor))
        if covers(a, b) and covers(b, c):
            assert covers(a, c)


class TestRoundTrips:
    @given(descriptors())
    @settings(max_examples=200, deadline=None)
    def test_xml_serialize_parse_roundtrip(self, descriptor):
        assert parse_xml(serialize_xml(descriptor)) == descriptor

    @given(descriptors())
    @settings(max_examples=100, deadline=None)
    def test_xml_pretty_roundtrip(self, descriptor):
        assert parse_xml(serialize_xml(descriptor, indent=4)) == descriptor

    @given(st.data())
    @settings(max_examples=200, deadline=None)
    def test_normalize_idempotent(self, data):
        descriptor = data.draw(descriptors())
        query = data.draw(queries_for(descriptor))
        once = normalize_xpath(query)
        assert normalize_xpath(once) == once

    @given(st.data())
    @settings(max_examples=200, deadline=None)
    def test_normalize_preserves_matching(self, data):
        descriptor = data.draw(descriptors())
        query = data.draw(queries_for(descriptor))
        assert matches(descriptor, query) == matches(
            descriptor, normalize_xpath(query)
        )

    @given(st.data())
    @settings(max_examples=200, deadline=None)
    def test_parser_str_roundtrip(self, data):
        from repro.xmlq.xpparser import parse_xpath

        descriptor = data.draw(descriptors())
        query = data.draw(queries_for(descriptor))
        parsed = parse_xpath(query)
        assert parse_xpath(str(parsed)) == parsed
