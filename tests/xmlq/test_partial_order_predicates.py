"""Partial-order-graph invariants over mixed-predicate query sets.

The POG organizes canonical query texts by the homomorphism covering
relation; predicate keys (prefix tags, wildcard comparisons, range bound
pairs) are canonical texts like any other, so the graph must keep its
structural invariants when they are mixed in:

- the incrementally maintained Hasse diagram equals the from-scratch
  transitive reduction (``_recompute_hasse_edges``);
- the Hasse diagram is acyclic (covering is a partial order on the
  equality/range fragment the oracle decides);
- every maximal chain is actually maximal: it starts at a root and each
  link is a strict covering step with nothing in between.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fields import ARTICLE_SCHEMA
from repro.core.predicates import Exact, Prefix, Range, Wildcard
from repro.core.query import FieldQuery
from repro.xmlq.partial_order import PartialOrderGraph

AUTHORS = ["John_Smith", "Alan_Doe", "Wei_Chen"]
YEARS = [1989, 1996]

#: A small universe of canonical predicate keys to draw query sets from.
_PREDICATE_KEYS = [
    FieldQuery(ARTICLE_SCHEMA, constraints).key()
    for constraints in (
        [{"author": Exact(a)} for a in AUTHORS]
        + [{"author": Prefix(a[:n])} for a in AUTHORS for n in (1, 2, 4)]
        + [{"author": Wildcard("*")}, {"author": Wildcard("A*e")}]
        + [{"year": Exact(str(y))} for y in YEARS]
        + [
            {"year": Range(y - spread, y + spread)}
            for y in YEARS
            for spread in (0, 3, 10)
        ]
        + [{"author": Exact(a), "year": Range(y - 5, y + 5)}
           for a in AUTHORS[:2] for y in YEARS]
        + [{"author": Prefix(a[:2]), "year": Exact(str(y))}
           for a in AUTHORS[:2] for y in YEARS]
    )
]

key_sets = st.sets(st.sampled_from(_PREDICATE_KEYS), min_size=2, max_size=12)


class TestInvariants:
    @given(key_sets)
    @settings(max_examples=100, deadline=None)
    def test_incremental_hasse_matches_recomputed(self, keys):
        graph = PartialOrderGraph(keys)
        assert graph.hasse_edges() == graph._recompute_hasse_edges()

    @given(key_sets)
    @settings(max_examples=100, deadline=None)
    def test_hasse_is_acyclic(self, keys):
        graph = PartialOrderGraph(keys)
        successors: dict[str, set[str]] = {}
        for specific, general in graph.hasse_edges():
            successors.setdefault(specific, set()).add(general)
        state: dict[str, int] = {}

        def visit(node: str) -> None:
            state[node] = 1
            for nxt in successors.get(node, ()):
                assert state.get(nxt) != 1, "cycle through Hasse edges"
                if nxt not in state:
                    visit(nxt)
            state[node] = 2

        for node in list(successors):
            if node not in state:
                visit(node)

    @given(key_sets)
    @settings(max_examples=60, deadline=None)
    def test_chains_are_maximal(self, keys):
        graph = PartialOrderGraph(keys)
        roots = set(graph.roots())
        for leaf in graph.leaves():
            for chain in graph.chains_to(leaf):
                assert chain[0] in roots
                assert chain[-1] == leaf
                for specific, general in zip(chain[1:], chain):
                    # Each link is one strict covering step...
                    assert graph.covers_query(general, specific)
                    # ...with no member strictly in between (that is
                    # exactly the Hasse-edge condition).
                    assert (specific, general) in graph.hasse_edges()
