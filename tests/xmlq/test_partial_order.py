"""Unit tests for the partial-order graph (Figure 3)."""

import pytest

from repro.xmlq.partial_order import PartialOrderGraph


@pytest.fixture
def figure3(paper_queries):
    return PartialOrderGraph(paper_queries)


class TestGraphStructure:
    def test_all_queries_present(self, figure3, paper_queries):
        assert len(figure3) == 6
        for query in paper_queries:
            assert query in figure3

    def test_roots_are_most_general(self, figure3, paper_queries):
        from repro.xmlq.normalize import normalize_xpath

        q4, q5, q6 = paper_queries[3], paper_queries[4], paper_queries[5]
        assert set(figure3.roots()) == {
            normalize_xpath(q4),
            normalize_xpath(q5),
            normalize_xpath(q6),
        }

    def test_leaves_are_most_specific(self, figure3, paper_queries):
        from repro.xmlq.normalize import normalize_xpath

        q1, q2 = paper_queries[0], paper_queries[1]
        assert set(figure3.leaves()) == {
            normalize_xpath(q1),
            normalize_xpath(q2),
        }

    def test_hasse_edge_count_matches_figure(self, figure3):
        # Figure 3 draws: q1->q3, q1->q4, q2->q3, q2->q5, q3->q6.
        assert len(figure3.hasse_edges()) == 5

    def test_hasse_omits_transitive_edge(self, figure3, paper_queries):
        from repro.xmlq.normalize import normalize_xpath

        q1 = normalize_xpath(paper_queries[0])
        q6 = normalize_xpath(paper_queries[5])
        assert (q1, q6) not in figure3.hasse_edges()

    def test_more_general_and_specific(self, figure3, paper_queries):
        from repro.xmlq.normalize import normalize_xpath

        q1, q2, q3 = (normalize_xpath(q) for q in paper_queries[:3])
        q6 = normalize_xpath(paper_queries[5])
        assert q6 in figure3.more_general(q3)
        assert q1 in figure3.more_specific(q3)
        assert q2 in figure3.more_specific(q3)

    def test_duplicate_add_is_stable(self, figure3, paper_queries):
        size_before = len(figure3)
        figure3.add(paper_queries[0])
        assert len(figure3) == size_before

    def test_equivalent_spellings_collapse(self):
        graph = PartialOrderGraph()
        a = graph.add("/article/author/last/Smith")
        b = graph.add("/article[author[last/Smith]]")
        assert a == b
        assert len(graph) == 1


class TestChains:
    def test_chains_to_d1_msd(self, figure3, paper_queries):
        chains = figure3.chains_to(paper_queries[0])
        # q1 is reachable from roots q6 (via q3) and q4.
        assert sorted(len(chain) for chain in chains) == [2, 3]
        for chain in chains:
            assert chain[-1] == figure3.add(paper_queries[0])

    def test_chain_ordering_respects_covering(self, figure3, paper_queries):
        for chain in figure3.chains_to(paper_queries[0]):
            for general, specific in zip(chain, chain[1:]):
                assert figure3.covers_query(general, specific)

    def test_chains_to_unknown_query_raises(self, figure3):
        with pytest.raises(KeyError):
            figure3.chains_to("/article/title/Unknown")

    def test_covers_query_uses_cached_patterns(self, figure3, paper_queries):
        assert figure3.covers_query(paper_queries[5], paper_queries[0])
        assert not figure3.covers_query(paper_queries[0], paper_queries[5])


class TestIteration:
    def test_iteration_and_queries_property(self, figure3):
        assert set(iter(figure3)) == set(figure3.queries)

    def test_empty_graph(self):
        graph = PartialOrderGraph()
        assert len(graph) == 0
        assert graph.roots() == []
        assert graph.hasse_edges() == []
