"""Unit tests for the XPath-subset lexer."""

import pytest

from repro.xmlq.lexer import Token, TokenType, XPathLexError, tokenize


def kinds(expression):
    return [token.type for token in tokenize(expression)]


class TestTokenKinds:
    def test_simple_path(self):
        assert kinds("/article/title") == [
            TokenType.SLASH,
            TokenType.NAME,
            TokenType.SLASH,
            TokenType.NAME,
            TokenType.EOF,
        ]

    def test_double_slash(self):
        assert kinds("//last")[:2] == [TokenType.DSLASH, TokenType.NAME]

    def test_slash_pair_vs_double_slash(self):
        # '//' must lex as one DSLASH token, not two SLASH tokens.
        tokens = tokenize("/a//b")
        assert [t.type for t in tokens[:4]] == [
            TokenType.SLASH,
            TokenType.NAME,
            TokenType.DSLASH,
            TokenType.NAME,
        ]

    def test_predicates_and_star(self):
        assert kinds("/a[*]") == [
            TokenType.SLASH,
            TokenType.NAME,
            TokenType.LBRACKET,
            TokenType.STAR,
            TokenType.RBRACKET,
            TokenType.EOF,
        ]

    @pytest.mark.parametrize("op", ["=", "!=", "<", "<=", ">", ">="])
    def test_operators(self, op):
        tokens = tokenize(f"/a[b{op}1]")
        ops = [t for t in tokens if t.type is TokenType.OP]
        assert len(ops) == 1 and ops[0].value == op

    def test_two_char_ops_not_split(self):
        tokens = [t for t in tokenize("/a[b<=1]") if t.type is TokenType.OP]
        assert tokens[0].value == "<="

    def test_quoted_literals(self):
        tokens = tokenize('/a[b="hello world"]')
        literals = [t for t in tokens if t.type is TokenType.LITERAL]
        assert literals[0].value == "hello world"

    def test_single_quoted_literal(self):
        tokens = tokenize("/a[b='x y']")
        literals = [t for t in tokens if t.type is TokenType.LITERAL]
        assert literals[0].value == "x y"

    def test_names_with_punctuation(self):
        tokens = tokenize("/a/Fault-Tolerant_Routing.v2:x+y")
        names = [t.value for t in tokens if t.type is TokenType.NAME]
        assert names == ["a", "Fault-Tolerant_Routing.v2:x+y"]

    def test_whitespace_ignored(self):
        assert kinds("/ a [ b ]") == kinds("/a[b]")

    def test_eof_always_present(self):
        assert tokenize("")[-1].type is TokenType.EOF


class TestPositionsAndErrors:
    def test_positions_recorded(self):
        tokens = tokenize("/abc/def")
        assert tokens[1].position == 1
        assert tokens[3].position == 5

    def test_unterminated_string(self):
        with pytest.raises(XPathLexError):
            tokenize('/a[b="unterminated]')

    def test_unexpected_character(self):
        with pytest.raises(XPathLexError) as excinfo:
            tokenize("/a{b}")
        assert excinfo.value.position == 2

    def test_token_repr(self):
        token = Token(TokenType.NAME, "abc", 3)
        assert "abc" in repr(token)
