"""Unit tests for the miniature XML parser and serializer."""

import pytest

from repro.xmlq.element import element, text_element
from repro.xmlq.xmlparse import XMLParseError, parse_xml, serialize_xml


class TestParsing:
    def test_simple_leaf(self):
        assert parse_xml("<title>TCP</title>") == text_element("title", "TCP")

    def test_nested_structure(self):
        parsed = parse_xml(
            "<article><author><last>Smith</last></author><year>1989</year></article>"
        )
        assert parsed.findtext("author/last") == "Smith"
        assert parsed.findtext("year") == "1989"

    def test_whitespace_between_elements_ignored(self):
        parsed = parse_xml(
            """
            <article>
                <title>TCP</title>
            </article>
            """
        )
        assert parsed == element("article", text_element("title", "TCP"))

    def test_text_is_stripped(self):
        assert parse_xml("<t>  TCP  </t>").text == "TCP"

    def test_self_closing_tag(self):
        parsed = parse_xml("<article><note/></article>")
        assert parsed.child("note").is_leaf

    def test_empty_element_pair(self):
        assert parse_xml("<note></note>").text is None

    def test_entities_decoded(self):
        assert parse_xml("<t>a &amp; b &lt;c&gt;</t>").text == "a & b <c>"

    def test_numeric_character_references(self):
        assert parse_xml("<t>&#65;&#x42;</t>").text == "AB"

    def test_comments_skipped(self):
        parsed = parse_xml("<!-- header --><a><!-- inner --><b>x</b></a>")
        assert parsed.findtext("b") == "x"

    def test_xml_declaration_skipped(self):
        parsed = parse_xml('<?xml version="1.0"?><a><b>x</b></a>')
        assert parsed.findtext("b") == "x"

    def test_doctype_skipped(self):
        parsed = parse_xml("<!DOCTYPE article><article><t>x</t></article>")
        assert parsed.findtext("t") == "x"


class TestParseErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "<a><b>x</a>",          # mismatched closing tag
            "<a>",                  # unterminated
            "<a><b>x</b>",          # missing outer close
            "<a>text<b>x</b></a>",  # mixed content
            "<a b='1'>x</a>",       # attributes unsupported
            "<a>&unknown;</a>",     # unknown entity
            "<a>x</a><b>y</b>",     # two roots
            "",                     # empty document
            "just text",            # no element
            "<!-- unterminated",    # unterminated comment
        ],
    )
    def test_rejected(self, source):
        with pytest.raises(XMLParseError):
            parse_xml(source)

    def test_error_carries_position(self):
        with pytest.raises(XMLParseError) as excinfo:
            parse_xml("<a><b>x</a>")
        assert excinfo.value.position > 0


class TestSerialization:
    def test_roundtrip_compact(self, paper_descriptors):
        for descriptor in paper_descriptors:
            assert parse_xml(serialize_xml(descriptor)) == descriptor

    def test_roundtrip_pretty(self, paper_descriptors):
        for descriptor in paper_descriptors:
            assert parse_xml(serialize_xml(descriptor, indent=2)) == descriptor

    def test_entities_encoded(self):
        tree = text_element("t", "a & b <c>")
        assert parse_xml(serialize_xml(tree)) == tree

    def test_self_closing_for_empty(self):
        from repro.xmlq.element import Element

        assert serialize_xml(Element("note")) == "<note/>"

    def test_pretty_print_indents(self):
        tree = element("a", text_element("b", "x"))
        text = serialize_xml(tree, indent=2)
        assert "  <b>x</b>" in text
