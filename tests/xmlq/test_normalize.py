"""Unit tests for query normalization (footnote 1 of the paper)."""

import pytest

from repro.xmlq.evaluator import matches
from repro.xmlq.normalize import normalize_xpath


class TestCanonicalForm:
    def test_path_folds_into_predicates(self):
        assert (
            normalize_xpath("/article/author/last/Smith")
            == "/article[author[last[Smith]]]"
        )

    def test_already_canonical_unchanged(self):
        canonical = "/article[author[last[Smith]]]"
        assert normalize_xpath(canonical) == canonical

    def test_equivalent_spellings_collapse(self):
        spellings = [
            "/article/author[last/Smith]",
            "/article[author/last/Smith]",
            "/article[author[last/Smith]]",
            "/article[author[last[Smith]]]",
            "/article/author/last/Smith",
        ]
        forms = {normalize_xpath(s) for s in spellings}
        assert len(forms) == 1

    def test_predicates_sorted(self):
        a = normalize_xpath("/article[year/1989][title/TCP]")
        b = normalize_xpath("/article[title/TCP][year/1989]")
        assert a == b

    def test_duplicate_predicates_removed(self):
        assert (
            normalize_xpath("/article[title/TCP][title/TCP]")
            == normalize_xpath("/article[title/TCP]")
        )

    def test_equality_comparison_rewritten(self):
        assert normalize_xpath("/article[year=1989]") == normalize_xpath(
            "/article/year/1989"
        )

    def test_non_bare_equality_kept_as_comparison(self):
        normalized = normalize_xpath('/article[title="a b"]')
        assert '"a b"' in normalized or "'a b'" in normalized

    def test_inequality_comparisons_preserved(self):
        normalized = normalize_xpath("/article[year>=1990]")
        assert ">=1990" in normalized

    def test_idempotent(self, paper_queries):
        for query in paper_queries:
            once = normalize_xpath(query)
            assert normalize_xpath(once) == once

    def test_descendant_blocks_folding(self):
        normalized = normalize_xpath("/article//last/Smith")
        assert normalized == "/article//last[Smith]"

    def test_leading_descendant_preserved(self):
        assert normalize_xpath("//last/Smith") == "//last[Smith]"


class TestSemanticsPreserved:
    """Normalization must not change which descriptors match."""

    def test_match_equivalence_on_paper_data(
        self, paper_descriptors, paper_queries
    ):
        for descriptor in paper_descriptors:
            for query in paper_queries:
                assert matches(descriptor, query) == matches(
                    descriptor, normalize_xpath(query)
                )

    @pytest.mark.parametrize(
        "query",
        [
            "/article/title/TCP",
            "/article[year>1988]",
            "/article//last/Smith",
            "/article[author[first/John]]/year/1989",
        ],
    )
    def test_match_equivalence_various(self, paper_descriptors, query):
        for descriptor in paper_descriptors:
            assert matches(descriptor, query) == matches(
                descriptor, normalize_xpath(query)
            )


class TestLiteralAndComparisonEdges:
    def test_quoted_value_with_space_stays_comparison(self):
        normalized = normalize_xpath('/article[title="a b c"]')
        # The value cannot be a bare word; the comparison form survives
        # and round-trips through the parser.
        from repro.xmlq.xpparser import parse_xpath

        assert parse_xpath(normalized) is not None

    def test_comparison_inside_nested_predicate(self):
        a = normalize_xpath("/article[author[name[size>3]]]")
        assert normalize_xpath(a) == a

    def test_mixed_fold_and_comparison(self):
        a = normalize_xpath("/article/author[year>=1990]/last/Smith")
        b = normalize_xpath("/article[author[last[Smith]][year>=1990]]")
        assert a == b

    def test_many_equivalent_deep_spellings(self):
        spellings = [
            "/a/b/c/d/e",
            "/a[b[c[d[e]]]]",
            "/a/b[c/d/e]",
            "/a[b/c[d/e]]",
            "/a/b/c[d[e]]",
        ]
        assert len({normalize_xpath(s) for s in spellings}) == 1

    def test_wildcard_steps_fold(self):
        assert normalize_xpath("/a/*/c") == "/a[*[c]]"
