"""Unit tests for tree patterns and the covering relation (Figure 3)."""

import pytest

from repro.xmlq.pattern import (
    TreePattern,
    covers,
    descriptor_to_pattern,
    pattern_from_xpath,
)


class TestFigure3:
    """The exact partial order the paper draws in Figure 3."""

    def test_hasse_arrows(self, paper_queries):
        q1, q2, q3, q4, q5, q6 = paper_queries
        # Arrows read q_specific -> q_general (q_general covers q_specific).
        assert covers(q3, q1)
        assert covers(q4, q1)
        assert covers(q3, q2)
        assert covers(q5, q2)
        assert covers(q6, q3)

    def test_transitive_covering(self, paper_queries):
        q1, _, _, _, _, q6 = paper_queries
        assert covers(q6, q1)

    def test_non_covering_pairs(self, paper_queries):
        q1, q2, q3, q4, q5, q6 = paper_queries
        assert not covers(q4, q2)
        assert not covers(q5, q1)
        assert not covers(q1, q3)  # more specific never covers more general
        assert not covers(q2, q1)  # different conferences
        assert not covers(q4, q6)
        assert not covers(q6, q4)

    def test_self_covering(self, paper_queries):
        for query in paper_queries:
            assert covers(query, query)

    def test_descriptor_as_specific_side(self, paper_descriptors, paper_queries):
        d1, d2, d3 = paper_descriptors
        q1, q2, q3, q4, q5, q6 = paper_queries
        assert covers(q1, d1) and not covers(q1, d2)
        assert covers(q2, d2) and not covers(q2, d1) and not covers(q2, d3)
        assert covers(q3, d1) and covers(q3, d2) and not covers(q3, d3)
        assert covers(q5, d2) and covers(q5, d3) and not covers(q5, d1)
        assert covers(q6, d1) and covers(q6, d2) and not covers(q6, d3)


class TestWildcardsAndDescendants:
    def test_wildcard_covers_named_element(self):
        assert covers("/article/*", "/article/author")

    def test_named_does_not_cover_wildcard(self):
        assert not covers("/article/author", "/article/*")

    def test_wildcard_must_not_swallow_value_nodes(self, paper_descriptors):
        # /article/title/* requires a child *element* under title, which a
        # text value is not; covering must agree with the evaluator.
        assert not covers("/article/title/*", descriptor_to_pattern(paper_descriptors[0]))

    def test_descendant_covers_child_chain(self):
        assert covers("/article//last", "/article/author/last")
        assert covers("//Smith", "/article/author/last/Smith")

    def test_child_does_not_cover_descendant(self):
        assert not covers("/article/last", "/article//last")

    def test_descendant_depth_flexibility(self):
        assert covers("//x", "/a/b/c/x")
        assert not covers("/a/x", "/a/b/x")


class TestComparisons:
    def test_range_covers_value(self):
        assert covers("/article[year>=1980]", "/article[year/1989]")
        assert not covers("/article[year>=1990]", "/article[year/1989]")

    def test_range_implication(self):
        assert covers("/article[year>1980]", "/article[year>1985]")
        assert covers("/article[year>=1985]", "/article[year>1985]")
        assert covers("/article[year>1984]", "/article[year>=1985]")
        assert not covers("/article[year>1990]", "/article[year>1985]")
        assert not covers("/article[year<1990]", "/article[year>1985]")

    def test_upper_bounds(self):
        assert covers("/article[year<=2000]", "/article[year<2000]")
        assert not covers("/article[year<2000]", "/article[year<=2000]")

    def test_not_equal(self):
        assert covers("/article[year!=1980]", "/article[year/1989]")
        assert not covers("/article[year!=1989]", "/article[year/1989]")
        assert covers("/article[year!=1980]", "/article[year>1985]")

    def test_equality_and_value_step_interchangeable(self):
        assert covers("/article[year=1989]", "/article[year/1989]")
        assert covers("/article[year/1989]", "/article[year=1989]")

    def test_identical_string_comparisons(self):
        assert covers("/article[title=TCP]", "/article[title=TCP]")
        assert not covers("/article[title<TCP]", "/article[title<TCQ]")


class TestPatternStructure:
    def test_descriptor_pattern_marks_values(self, paper_descriptors):
        pattern = descriptor_to_pattern(paper_descriptors[0])
        value_labels = {
            node.label for node in pattern.nodes if node.is_value is True
        }
        assert {"John", "Smith", "TCP", "SIGCOMM", "1989", "315635"} == value_labels

    def test_pattern_size(self):
        pattern = pattern_from_xpath("/article[author[last/Smith]]")
        assert pattern.size() == 4  # article, author, last, Smith

    def test_strict_descendants(self):
        pattern = pattern_from_xpath("/a[b[c]][d]")
        root_children = [edge.child for edge in pattern.children(pattern.root)]
        assert len(root_children) == 1
        assert len(pattern.strict_descendants(root_children[0])) == 3

    def test_relative_path_rejected(self):
        from repro.xmlq.astnodes import LocationPath, LocationStep, Axis

        relative = LocationPath((LocationStep(Axis.CHILD, "a"),), absolute=False)
        with pytest.raises(ValueError):
            pattern_from_xpath(relative)

    def test_repr(self):
        assert "TreePattern" in repr(pattern_from_xpath("/a"))
        assert TreePattern().size() == 0
