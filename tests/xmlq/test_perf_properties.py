"""Property tests pinning the optimized query algebra to the seed.

The hot-path overhaul (interned patterns, memoized covering, incremental
Hasse maintenance) must be *behaviorally invisible*: these tests compare
the optimized implementations against the seed algorithms, which survive
as ``covers_uncached`` and ``PartialOrderGraph._recompute_hasse_edges``,
on randomized inputs.  They also enforce the perf-counter invariants
(monotonicity, ``hits + misses == calls``).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import perf
from repro.perf import CACHE_TRIPLES
from repro.xmlq.element import Element
from repro.xmlq.normalize import normalize_xpath
from repro.xmlq.partial_order import PartialOrderGraph, QuerySetView
from repro.xmlq.pattern import (
    covers,
    covers_uncached,
    descriptor_to_pattern,
    pattern_from_xpath,
)

TAGS = ["article", "author", "first", "last", "title", "conf", "year", "note"]
VALUES = ["John", "Smith", "TCP", "IPv6", "SIGCOMM", "INFOCOM", "1989", "1996"]


@st.composite
def descriptors(draw, max_depth: int = 3) -> Element:
    """Small random descriptor trees over a fixed vocabulary."""
    tag = draw(st.sampled_from(TAGS))
    if max_depth <= 1 or draw(st.booleans()):
        if draw(st.booleans()):
            return Element(tag, text=draw(st.sampled_from(VALUES)))
        return Element(tag)
    children = draw(
        st.lists(descriptors(max_depth=max_depth - 1), min_size=1, max_size=3)
    )
    return Element(tag, children=children)


@st.composite
def queries_for(draw, descriptor: Element) -> str:
    """Random queries biased to sometimes match the descriptor."""
    rng = random.Random(draw(st.integers(0, 2**31)))

    def project(node: Element) -> str:
        name = node.tag if rng.random() > 0.15 else "*"
        predicates = []
        children = list(node.children)
        rng.shuffle(children)
        for child in children[:2]:
            if rng.random() < 0.55:
                predicates.append(f"[{project(child)}]")
        if node.text is not None and rng.random() < 0.6:
            value = node.text if rng.random() > 0.1 else rng.choice(VALUES)
            predicates.append(f"[{value}]")
        return name + "".join(predicates)

    separator = "//" if rng.random() < 0.2 else "/"
    return separator + project(descriptor)


class TestMemoizedCoveringMatchesSeed:
    @given(st.data())
    @settings(max_examples=300, deadline=None)
    def test_covers_equals_uncached_on_query_pairs(self, data):
        """Interned + memoized covers == fresh uncached evaluation."""
        descriptor = data.draw(descriptors())
        general = data.draw(queries_for(descriptor))
        specific = data.draw(queries_for(descriptor))
        expected = covers_uncached(general, specific)
        # Twice: the first call misses the memo, the second hits it; both
        # must agree with the seed implementation.
        assert covers(general, specific) == expected
        assert covers(general, specific) == expected

    @given(st.data())
    @settings(max_examples=200, deadline=None)
    def test_covers_equals_uncached_on_descriptors(self, data):
        """Memoized covers agrees with the seed on descriptor MSDs too."""
        descriptor = data.draw(descriptors())
        query = data.draw(queries_for(descriptor))
        assert covers(query, descriptor) == covers_uncached(query, descriptor)

    @given(st.data())
    @settings(max_examples=200, deadline=None)
    def test_interned_pattern_is_shared_and_equivalent(self, data):
        """Repeated pattern construction returns one sealed object whose
        covering behavior matches a freshly built pattern."""
        descriptor = data.draw(descriptors())
        query = data.draw(queries_for(descriptor))
        first = pattern_from_xpath(query)
        second = pattern_from_xpath(query)
        assert first is second
        assert covers(first, descriptor_to_pattern(descriptor)) == (
            covers_uncached(query, descriptor)
        )

    def test_interned_patterns_are_sealed(self):
        from repro.xmlq.astnodes import Axis

        pattern = pattern_from_xpath("/article[title[TCP]]")
        with pytest.raises(ValueError, match="interned"):
            pattern.add_node(pattern.root, Axis.CHILD, "extra")

    @given(st.data())
    @settings(max_examples=150, deadline=None)
    def test_fingerprint_prefilter_is_sound(self, data):
        """Whenever the label-subset filter would reject, the
        homomorphism search agrees (no false negatives)."""
        descriptor = data.draw(descriptors())
        general = data.draw(queries_for(descriptor))
        specific = data.draw(queries_for(descriptor))
        general_pattern = pattern_from_xpath(general)
        specific_pattern = pattern_from_xpath(specific)
        required, _ = general_pattern.fingerprint
        _, available = specific_pattern.fingerprint
        if not required <= available:
            assert not covers_uncached(general, specific)


def _random_field_queries(rng: random.Random, count: int) -> list[str]:
    """Query texts in the bibliographic family, with deliberate overlap
    so covering relations (and equivalent respellings) actually occur."""
    fields = {
        "author": ["name/A1", "name/A2"],
        "title": ["T1", "T2"],
        "conf": ["SIGCOMM", "ICDCS"],
        "year": ["1996", "2001"],
    }
    queries = []
    for _ in range(count):
        chosen = rng.sample(sorted(fields), rng.randint(1, len(fields)))
        predicates = []
        for name in chosen:
            path = f"{name}/{rng.choice(fields[name])}"
            if rng.random() < 0.3:
                # Equivalent respelling: nested-predicate notation.
                parts = path.split("/")
                nested = parts[-1]
                for tag in reversed(parts[:-1]):
                    nested = f"{tag}[{nested}]"
                predicates.append(f"[{nested}]")
            else:
                predicates.append(f"[{path}]")
        rng.shuffle(predicates)
        queries.append("/article" + "".join(predicates))
    return queries


class TestIncrementalHasseMatchesSeed:
    @given(st.integers(0, 2**31), st.integers(2, 28))
    @settings(max_examples=60, deadline=None)
    def test_hasse_equals_recompute(self, seed, count):
        """Incrementally maintained edges == seed's from-scratch reduction."""
        rng = random.Random(seed)
        graph = PartialOrderGraph(_random_field_queries(rng, count))
        assert graph.hasse_edges() == graph._recompute_hasse_edges()

    @given(st.integers(0, 2**31), st.integers(2, 20))
    @settings(max_examples=40, deadline=None)
    def test_relations_match_bruteforce_covering(self, seed, count):
        """more_general/more_specific agree with pairwise seed covers."""
        rng = random.Random(seed)
        graph = PartialOrderGraph(_random_field_queries(rng, count))
        queries = graph.queries
        for q in queries:
            expected_general = {
                other
                for other in queries
                if other != q and covers_uncached(other, q)
            }
            expected_specific = {
                other
                for other in queries
                if other != q and covers_uncached(q, other)
            }
            assert set(graph.more_general(q)) == expected_general
            assert set(graph.more_specific(q)) == expected_specific

    @given(st.integers(0, 2**31))
    @settings(max_examples=20, deadline=None)
    def test_chains_reuse_maintained_reduction(self, seed):
        """chains_to walks exactly the maintained Hasse edges."""
        rng = random.Random(seed)
        graph = PartialOrderGraph(_random_field_queries(rng, 12))
        edges = set(graph.hasse_edges())
        for leaf in graph.leaves():
            for chain in graph.chains_to(leaf):
                for general, specific in zip(chain, chain[1:]):
                    assert (specific, general) in edges


class TestPartialOrderApi:
    def test_unknown_query_raises_clear_keyerror(self):
        graph = PartialOrderGraph(["/article[title[TCP]]"])
        with pytest.raises(KeyError, match="query not in graph"):
            graph.more_general("/article[title[Missing]]")
        with pytest.raises(KeyError, match="canonical form"):
            graph.more_specific("/article/title/Missing")

    def test_relation_views_are_frozen(self):
        graph = PartialOrderGraph(
            ["/article[title[TCP]]", "/article[title[TCP]][year[1996]]"]
        )
        view = graph.more_general("/article[title[TCP]][year[1996]]")
        assert isinstance(view, QuerySetView)
        assert len(view) == 1
        assert not hasattr(view, "add")
        detached = view.copy()
        assert isinstance(detached, set)
        detached.clear()  # mutating the copy must not touch the graph
        assert len(graph.more_general("/article[title[TCP]][year[1996]]")) == 1

    def test_views_support_set_algebra(self):
        broad = "/article[title[TCP]]"
        narrow = "/article[title[TCP]][year[1996]]"
        graph = PartialOrderGraph([broad, narrow])
        view = graph.more_specific(broad)
        assert view == {narrow}
        assert (view | {"extra"}) == {narrow, "extra"}
        assert normalize_xpath(narrow) in view

    def test_canonical_input_skips_normalization(self):
        graph = PartialOrderGraph()
        canonical = graph.add("/article/title/TCP")
        before = perf.snapshot()
        assert canonical in graph
        graph.more_general(canonical)
        after = perf.snapshot()
        assert after["normalize_calls"] == before["normalize_calls"]


class TestCounterInvariants:
    def _exercise_hot_path(self) -> None:
        queries = _random_field_queries(random.Random(99), 10)
        graph = PartialOrderGraph(queries)
        for q in queries:
            normalize_xpath(q)
            covers(q, queries[0])
        graph.hasse_edges()

    def test_counters_are_monotone(self):
        before = perf.snapshot()
        self._exercise_hot_path()
        middle = perf.snapshot()
        self._exercise_hot_path()
        after = perf.snapshot()
        for name in before:
            assert before[name] <= middle[name] <= after[name]

    def test_cache_hits_plus_misses_equal_calls(self):
        self._exercise_hot_path()
        snap = perf.snapshot()
        for calls_name, hits_name, misses_name in CACHE_TRIPLES:
            assert snap[hits_name] + snap[misses_name] == snap[calls_name], (
                f"{calls_name}: {snap[hits_name]} hits + "
                f"{snap[misses_name]} misses != {snap[calls_name]} calls"
            )

    def test_delta_and_reset(self):
        before = perf.snapshot()
        self._exercise_hot_path()
        increments = perf.delta(before, perf.snapshot())
        assert increments["covers_calls"] > 0
        assert all(value >= 0 for value in increments.values())
        fresh = perf.PerfCounters()
        assert set(fresh.snapshot()) == set(before)
        assert not any(fresh.snapshot().values())
