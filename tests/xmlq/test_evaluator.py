"""Unit tests for XPath evaluation against descriptors.

The matrix of Figure 1 descriptors x Figure 2 queries is the ground truth
the paper's Figure 3 partial order is drawn from.
"""

import pytest

from repro.xmlq.evaluator import ValueNode, evaluate, matches
from repro.xmlq.xmlparse import parse_xml


class TestPaperMatrix:
    """Every (descriptor, query) matching decision implied by Figures 1-3."""

    EXPECTED = {
        # (descriptor index, query index): matches?
        (0, 0): True,  (0, 1): False, (0, 2): True,
        (0, 3): True,  (0, 4): False, (0, 5): True,
        (1, 0): False, (1, 1): True,  (1, 2): True,
        (1, 3): False, (1, 4): True,  (1, 5): True,
        (2, 0): False, (2, 1): False, (2, 2): False,
        (2, 3): False, (2, 4): True,  (2, 5): False,
    }

    def test_matrix(self, paper_descriptors, paper_queries):
        for (d_index, q_index), expected in self.EXPECTED.items():
            descriptor = paper_descriptors[d_index]
            query = paper_queries[q_index]
            assert matches(descriptor, query) == expected, (
                f"d{d_index + 1} vs q{q_index + 1}"
            )


class TestStepSemantics:
    @pytest.fixture
    def d1(self, paper_descriptors):
        return paper_descriptors[0]

    def test_root_name_must_match(self, d1):
        assert not matches(d1, "/paper")

    def test_value_as_trailing_step(self, d1):
        assert matches(d1, "/article/title/TCP")
        assert not matches(d1, "/article/title/UDP")

    def test_value_step_returns_value_node(self, d1):
        result = evaluate("/article/title/TCP", d1)
        assert len(result) == 1
        assert isinstance(result[0], ValueNode)
        assert result[0].value == "TCP"

    def test_element_step_returns_element(self, d1):
        result = evaluate("/article/title", d1)
        assert len(result) == 1
        assert result[0].tag == "title"

    def test_wildcard_matches_any_element(self, d1):
        result = evaluate("/article/*", d1)
        assert {node.tag for node in result} == {
            "author", "title", "conf", "year", "size",
        }

    def test_wildcard_does_not_match_values(self, d1):
        assert not evaluate("/article/title/*", d1)

    def test_descendant_axis(self, d1):
        assert matches(d1, "/article//last")
        assert matches(d1, "/article//last/Smith")
        assert matches(d1, "//Smith")

    def test_descendant_finds_deep_values(self, d1):
        result = evaluate("//Smith", d1)
        assert len(result) == 1
        assert isinstance(result[0], ValueNode)

    def test_no_duplicates_in_node_set(self):
        doc = parse_xml("<a><b><c>x</c></b><b><c>x</c></b></a>")
        assert len(evaluate("/a/b", doc)) == 2
        assert len(evaluate("/a//c", doc)) == 2


class TestPredicates:
    @pytest.fixture
    def d1(self, paper_descriptors):
        return paper_descriptors[0]

    def test_structural(self, d1):
        assert matches(d1, "/article[author]")
        assert not matches(d1, "/article[editor]")

    def test_value_inside_predicate(self, d1):
        assert matches(d1, "/article[author/last/Smith]")
        assert not matches(d1, "/article[author/last/Doe]")

    def test_equality_comparison(self, d1):
        assert matches(d1, "/article[year=1989]")
        assert not matches(d1, "/article[year=1996]")

    @pytest.mark.parametrize(
        "query,expected",
        [
            ("/article[year>1988]", True),
            ("/article[year>1989]", False),
            ("/article[year>=1989]", True),
            ("/article[year<1990]", True),
            ("/article[year<=1988]", False),
            ("/article[year!=1989]", False),
            ("/article[year!=1990]", True),
            ("/article[size<400000]", True),
        ],
    )
    def test_numeric_comparisons(self, d1, query, expected):
        assert matches(d1, query) == expected

    def test_string_comparison_fallback(self, d1):
        assert matches(d1, "/article[title=TCP]")
        assert not matches(d1, "/article[title<TAA]")

    def test_predicate_on_missing_path(self, d1):
        assert not matches(d1, "/article[author/middle]")

    def test_multiple_predicates_conjunctive(self, d1):
        assert matches(d1, "/article[title/TCP][year/1989]")
        assert not matches(d1, "/article[title/TCP][year/1996]")

    def test_comparison_against_element_string_value(self, d1):
        # An element's string value concatenates descendant text.
        assert matches(d1, "/article[author/last=Smith]")


class TestTopLevel:
    def test_relative_path_rejected_at_top_level(self, paper_descriptors):
        from repro.xmlq.xpparser import parse_xpath

        relative = parse_xpath("/a").steps
        from repro.xmlq.astnodes import LocationPath

        with pytest.raises(ValueError):
            evaluate(LocationPath(relative, absolute=False), paper_descriptors[0])

    def test_accepts_preparsed_path(self, paper_descriptors):
        from repro.xmlq.xpparser import parse_xpath

        path = parse_xpath("/article/title/TCP")
        assert evaluate(path, paper_descriptors[0])
