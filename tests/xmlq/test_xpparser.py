"""Unit tests for the XPath-subset parser."""

import pytest

from repro.xmlq.astnodes import Axis
from repro.xmlq.xpparser import XPathParseError, parse_xpath


class TestPaths:
    def test_absolute_single_step(self):
        path = parse_xpath("/article")
        assert path.absolute
        assert path.length == 1
        assert path.steps[0].name == "article"
        assert path.steps[0].axis is Axis.CHILD

    def test_multi_step(self):
        path = parse_xpath("/article/author/last")
        assert [step.name for step in path.steps] == ["article", "author", "last"]

    def test_descendant_axis(self):
        path = parse_xpath("/article//last")
        assert path.steps[1].axis is Axis.DESCENDANT

    def test_leading_descendant(self):
        path = parse_xpath("//last")
        assert path.absolute
        assert path.steps[0].axis is Axis.DESCENDANT

    def test_wildcard_step(self):
        path = parse_xpath("/article/*")
        assert path.steps[1].is_wildcard

    def test_all_paper_queries_parse(self, paper_queries):
        for query in paper_queries:
            path = parse_xpath(query)
            assert path.absolute


class TestPredicates:
    def test_structural_predicate(self):
        path = parse_xpath("/article[author]")
        predicates = path.steps[0].predicates
        assert len(predicates) == 1
        assert predicates[0].comparison is None
        assert predicates[0].path.steps[0].name == "author"
        assert not predicates[0].path.absolute

    def test_nested_predicates(self):
        path = parse_xpath("/article[author[first/John][last/Smith]]")
        author_predicate = path.steps[0].predicates[0]
        inner = author_predicate.path.steps[0].predicates
        assert len(inner) == 2

    def test_multiple_predicates_on_step(self):
        path = parse_xpath("/article[title/TCP][year/1989]")
        assert len(path.steps[0].predicates) == 2

    def test_comparison_predicate(self):
        path = parse_xpath("/article[year>=1990]")
        comparison = path.steps[0].predicates[0].comparison
        assert comparison is not None
        assert comparison.op == ">=" and comparison.value == "1990"

    def test_comparison_with_literal(self):
        path = parse_xpath('/article[title="a b c"]')
        assert path.steps[0].predicates[0].comparison.value == "a b c"

    def test_descendant_inside_predicate(self):
        path = parse_xpath("/article[author//last]")
        inner_steps = path.steps[0].predicates[0].path.steps
        assert inner_steps[1].axis is Axis.DESCENDANT


class TestSerialization:
    @pytest.mark.parametrize(
        "expression",
        [
            "/article",
            "/article/title/TCP",
            "/article//last/Smith",
            "/article[author[first/John][last/Smith]][conf/INFOCOM]",
            "/article[year>=1990]",
            "/article/*",
            "//last",
        ],
    )
    def test_parse_str_roundtrip(self, expression):
        path = parse_xpath(expression)
        assert parse_xpath(str(path)) == path

    def test_str_form_matches_input(self):
        source = "/article[title/TCP][year/1989]"
        assert str(parse_xpath(source)) == source


class TestErrors:
    @pytest.mark.parametrize(
        "expression",
        [
            "",             # empty
            "/",            # missing step
            "/a[",          # unterminated predicate
            "/a[]",         # empty predicate
            "/a[/b]",       # absolute path inside predicate
            "/a]b",         # trailing garbage
            "/a[b=]",       # missing comparison value
            "/a b",         # two expressions
            "[a]",          # predicate without a step
        ],
    )
    def test_rejected(self, expression):
        with pytest.raises((XPathParseError, ValueError)):
            parse_xpath(expression)

    def test_error_message_has_context(self):
        with pytest.raises(XPathParseError) as excinfo:
            parse_xpath("/a[b=]")
        assert "offset" in str(excinfo.value)
