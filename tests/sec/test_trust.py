"""Unit tests for the per-peer trust ledger."""

import pytest

from repro.sec import TrustLedger
from repro.sec.trust import (
    CONTRADICTION_FACTOR,
    SUCCESS_RECOVERY,
    TIMEOUT_FACTOR,
    VERIFY_FAILURE_FACTOR,
)


class TestScores:
    def test_unknown_peers_are_fully_trusted(self):
        ledger = TrustLedger()
        assert ledger.score("node:1") == 1.0
        assert ledger.is_trusted("node:1")
        assert len(ledger) == 0

    def test_verify_failure_drops_hardest(self):
        ledger = TrustLedger()
        assert ledger.record_verify_failure("p") == VERIFY_FAILURE_FACTOR
        # A second forgery pins the peer below any recovery horizon.
        assert ledger.record_verify_failure("p") == pytest.approx(
            VERIFY_FAILURE_FACTOR**2
        )
        assert not ledger.is_trusted("p")

    def test_failure_severity_ordering(self):
        """verify failure < contradiction < timeout in surviving trust."""
        assert VERIFY_FAILURE_FACTOR < CONTRADICTION_FACTOR < TIMEOUT_FACTOR

    def test_timeouts_alone_take_a_while_to_flag(self):
        ledger = TrustLedger()
        for _ in range(6):
            ledger.record_timeout("slow")
        assert ledger.is_trusted("slow")  # 0.9^6 ~ 0.53
        ledger.record_timeout("slow")
        assert not ledger.is_trusted("slow")

    def test_success_recovers_additively(self):
        ledger = TrustLedger()
        ledger.record_contradiction("p")  # 0.5
        rounds = 0
        while not ledger.is_trusted("p") or ledger.score("p") < 1.0:
            ledger.record_success("p")
            rounds += 1
            assert rounds < 100, "recovery never converged"
        assert ledger.score("p") == 1.0

    def test_success_on_full_trust_is_free(self):
        ledger = TrustLedger()
        ledger.record_success("p")
        assert ledger.score("p") == 1.0
        assert ledger.updates == 0
        assert len(ledger) == 0

    def test_recovery_is_capped_at_one(self):
        ledger = TrustLedger()
        ledger.record_timeout("p")
        for _ in range(20):
            ledger.record_success("p")
        assert ledger.score("p") == 1.0

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            TrustLedger(threshold=1.5)


class TestPrioritize:
    def test_empty_ledger_returns_input_order(self):
        ledger = TrustLedger()
        peers = ["node:3", "node:1", "node:2"]
        assert ledger.prioritize(peers) == peers

    def test_stable_partition(self):
        ledger = TrustLedger()
        ledger.record_verify_failure("node:2")
        ledger.record_verify_failure("node:4")
        ordered = ledger.prioritize(["node:1", "node:2", "node:3", "node:4"])
        assert ordered == ["node:1", "node:3", "node:2", "node:4"]

    def test_all_trusted_population_is_order_identical(self):
        ledger = TrustLedger()
        ledger.record_timeout("node:9")  # known but still trusted
        peers = ["node:2", "node:9", "node:1"]
        assert ledger.prioritize(peers) == peers

    def test_flagged_is_sorted(self):
        ledger = TrustLedger()
        ledger.record_verify_failure("node:b")
        ledger.record_verify_failure("node:a")
        ledger.record_timeout("node:c")
        assert ledger.flagged() == ["node:a", "node:b"]

    def test_update_counter_counts_changes(self):
        ledger = TrustLedger()
        ledger.record_timeout("p")
        ledger.record_success("p")
        assert ledger.updates == 2
