"""Unit tests for publisher-signed index entries (repro.sec.entries)."""

import pytest

from repro import perf
from repro.sec import (
    ATTEST_SEP,
    NodeIdentity,
    attest_entry,
    is_attested,
    split_attested,
    verify_entry,
)

PUBLISHER = NodeIdentity("publisher-1")
OTHER = NodeIdentity("publisher-2")
TRUSTED = frozenset({PUBLISHER.public_key})


def failures():
    return perf.counters.sec_entry_verify_failures


class TestAttest:
    def test_round_trip(self):
        value = attest_entry("science:k", "desc-1", PUBLISHER)
        assert is_attested(value)
        assert verify_entry("science:k", value, TRUSTED) == "desc-1"

    def test_deterministic(self):
        """ed25519 is deterministic, so deletion can recompute the
        stored value byte-for-byte."""
        a = attest_entry("science:k", "desc-1", PUBLISHER)
        b = attest_entry("science:k", "desc-1", PUBLISHER)
        assert a == b

    def test_separator_rejected_in_inputs(self):
        with pytest.raises(ValueError):
            attest_entry("bad" + ATTEST_SEP, "desc", PUBLISHER)
        with pytest.raises(ValueError):
            attest_entry("key", "bad" + ATTEST_SEP + "entry", PUBLISHER)

    def test_split_round_trip(self):
        value = attest_entry("k", "entry", PUBLISHER)
        entry, public_key, signature = split_attested(value)
        assert entry == "entry"
        assert public_key == PUBLISHER.public_key
        assert signature == PUBLISHER.sign(b"repro.sec.entry\x00k\x00entry")


class TestRejection:
    def test_unattested_value_rejected(self):
        before = failures()
        assert verify_entry("k", "bare-entry", TRUSTED) is None
        assert failures() == before + 1

    def test_malformed_values_rejected(self):
        for bad in (
            ATTEST_SEP.join(["a", "b"]),                 # too few fields
            ATTEST_SEP.join(["a", "b", "c", "d"]),        # too many
            ATTEST_SEP.join(["a", "zz-not-hex", "00"]),   # non-hex
            ATTEST_SEP.join(["a", "00" * 4, "00" * 64]),  # short pubkey
        ):
            assert split_attested(bad) is None
            assert verify_entry("k", bad, TRUSTED) is None

    def test_untrusted_publisher_rejected(self):
        """Self-signed garbage from an attacker's own fresh key must
        not verify: trust is membership-based, never self-referential."""
        forged = attest_entry("k", "forged-entry", OTHER)
        before = failures()
        assert verify_entry("k", forged, TRUSTED) is None
        assert failures() == before + 1

    def test_wrong_key_binding_rejected(self):
        """A real attested entry replayed under a different index key
        fails: the index key is inside the signed span."""
        value = attest_entry("science:k1", "desc-1", PUBLISHER)
        assert verify_entry("science:k2", value, TRUSTED) is None

    def test_tampered_entry_rejected(self):
        value = attest_entry("k", "desc-1", PUBLISHER)
        tampered = value.replace("desc-1", "desc-2", 1)
        assert verify_entry("k", tampered, TRUSTED) is None

    def test_swapped_signature_rejected(self):
        """Signature from one mapping pasted onto another fails even
        when the publisher is trusted."""
        both = frozenset({PUBLISHER.public_key, OTHER.public_key})
        a = attest_entry("k", "desc-1", PUBLISHER)
        b = attest_entry("k", "desc-2", PUBLISHER)
        _, _, sig_b = split_attested(b)
        entry_a, pub_a, _ = split_attested(a)
        frankenstein = ATTEST_SEP.join(
            [entry_a, pub_a.hex(), sig_b.hex()]
        )
        assert verify_entry("k", frankenstein, both) is None
