"""Unit tests for node identities: keys, signatures, ids, persistence."""

import os

import pytest

from repro.sec import (
    PUBLIC_KEY_BYTES,
    SEED_BYTES,
    SIGNATURE_BYTES,
    NodeIdentity,
    verify_signature,
)
from repro.sec.identity import _HAVE_CRYPTOGRAPHY


class TestKeys:
    def test_same_seed_same_keypair(self):
        a = NodeIdentity("node-7")
        b = NodeIdentity("node-7")
        assert a.public_key == b.public_key
        assert a.seed == b.seed

    def test_different_seeds_different_keys(self):
        assert NodeIdentity("a").public_key != NodeIdentity("b").public_key

    def test_seed_kinds(self):
        """bytes, int, and str seeds all work; None is random."""
        raw = os.urandom(SEED_BYTES)
        assert NodeIdentity(raw).seed == raw
        assert NodeIdentity(7).public_key == NodeIdentity(7).public_key
        assert NodeIdentity(None).public_key != NodeIdentity(None).public_key

    def test_bad_seed_rejected(self):
        with pytest.raises(ValueError):
            NodeIdentity(b"short")
        with pytest.raises(TypeError):
            NodeIdentity(3.14)

    def test_key_sizes(self):
        identity = NodeIdentity("sized")
        assert len(identity.public_key) == PUBLIC_KEY_BYTES
        assert len(identity.sign(b"payload")) == SIGNATURE_BYTES


class TestSignatures:
    def test_sign_verify_round_trip(self):
        identity = NodeIdentity("signer")
        data = b"the signed span"
        assert verify_signature(identity.public_key, data, identity.sign(data))

    def test_tampered_data_fails(self):
        identity = NodeIdentity("signer")
        signature = identity.sign(b"original")
        assert not verify_signature(identity.public_key, b"tampered", signature)

    def test_wrong_key_fails(self):
        data = b"span"
        signature = NodeIdentity("signer").sign(data)
        other = NodeIdentity("other")
        assert not verify_signature(other.public_key, data, signature)

    def test_bad_lengths_fail_without_raising(self):
        identity = NodeIdentity("signer")
        signature = identity.sign(b"span")
        assert not verify_signature(identity.public_key[:-1], b"span", signature)
        assert not verify_signature(identity.public_key, b"span", signature[:-1])
        assert not verify_signature(b"", b"span", b"")

    def test_garbage_signature_fails(self):
        identity = NodeIdentity("signer")
        assert not verify_signature(
            identity.public_key, b"span", bytes(SIGNATURE_BYTES)
        )


@pytest.mark.skipif(
    not _HAVE_CRYPTOGRAPHY, reason="cryptography package not installed"
)
class TestBackendParity:
    """The pure RFC 8032 fallback interoperates with cryptography."""

    def test_same_public_key(self):
        seed = b"\x11" * SEED_BYTES
        fast = NodeIdentity(seed, backend="cryptography")
        pure = NodeIdentity(seed, backend="pure")
        assert fast.public_key == pure.public_key

    def test_same_signature_bytes(self):
        """ed25519 is deterministic: both backends emit identical bytes."""
        seed = b"\x22" * SEED_BYTES
        data = b"cross-backend span"
        fast = NodeIdentity(seed, backend="cryptography")
        pure = NodeIdentity(seed, backend="pure")
        assert fast.sign(data) == pure.sign(data)

    def test_cross_verification(self):
        seed = b"\x33" * SEED_BYTES
        data = b"span"
        signature = NodeIdentity(seed, backend="pure").sign(data)
        public = NodeIdentity(seed, backend="cryptography").public_key
        assert verify_signature(public, data, signature)


class TestNodeIds:
    def test_id_is_pubkey_derived_and_stable(self):
        a = NodeIdentity("node-3")
        assert a.node_id(64) == NodeIdentity("node-3").node_id(64)

    def test_id_respects_bits(self):
        identity = NodeIdentity("node-3")
        assert identity.node_id(16) < 2**16
        assert identity.node_id(160) < 2**160
        # The shorter id is the prefix of the longer one.
        assert identity.node_id(160) >> (160 - 16) == identity.node_id(16)

    def test_bits_range_checked(self):
        with pytest.raises(ValueError):
            NodeIdentity("x").node_id(0)
        with pytest.raises(ValueError):
            NodeIdentity("x").node_id(257)


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        identity = NodeIdentity("persisted")
        key_path = identity.save(tmp_path)
        assert key_path.name == "identity.key"
        loaded = NodeIdentity.load(tmp_path)
        assert loaded.public_key == identity.public_key
        assert loaded.seed == identity.seed

    def test_key_file_is_private(self, tmp_path):
        key_path = NodeIdentity("private").save(tmp_path)
        assert (key_path.stat().st_mode & 0o777) == 0o600

    def test_load_or_create_creates_then_reuses(self, tmp_path):
        first = NodeIdentity.load_or_create(tmp_path / "node")
        second = NodeIdentity.load_or_create(tmp_path / "node")
        assert first.public_key == second.public_key

    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            NodeIdentity.load(tmp_path / "nowhere")
