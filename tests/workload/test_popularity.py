"""Unit tests for popularity models (Figures 9 and 10)."""

import random

import pytest

from repro.workload.popularity import (
    PAPER_CCDF_EXPONENT,
    PowerLawPopularity,
    ZipfPopularity,
    empirical_rank_probabilities,
    fitted_ccdf,
)


class TestPowerLaw:
    def test_paper_constants_at_ten_thousand(self):
        """The published c=0.063 is the n=10,000 normalization."""
        model = PowerLawPopularity.for_population(10_000)
        assert model.coefficient == pytest.approx(0.0631, abs=0.0005)
        assert model.exponent == PAPER_CCDF_EXPONENT

    def test_cdf_monotone_and_normalized(self):
        model = PowerLawPopularity.for_population(1_000)
        previous = 0.0
        for rank in range(1, 1_001, 37):
            value = model.cdf(rank)
            assert value >= previous
            previous = value
        assert model.cdf(1_000) == 1.0

    def test_ccdf_complementary(self):
        model = PowerLawPopularity.for_population(500)
        for rank in (1, 10, 100, 500):
            assert model.ccdf(rank) == pytest.approx(1 - model.cdf(rank))

    def test_probability_sums_to_one(self):
        model = PowerLawPopularity.for_population(200)
        total = sum(model.probability(rank) for rank in range(1, 201))
        assert total == pytest.approx(1.0)

    def test_head_is_heavy(self):
        model = PowerLawPopularity.for_population(10_000)
        # "A few articles appear in many queries": rank 1 carries ~6% mass.
        assert model.probability(1) == pytest.approx(0.063, abs=0.001)
        assert model.probability(1) > 100 * model.probability(5_000)

    def test_sampling_matches_distribution(self):
        model = PowerLawPopularity.for_population(100)
        rng = random.Random(42)
        samples = [model.sample(rng) for _ in range(50_000)]
        assert all(1 <= rank <= 100 for rank in samples)
        empirical_p1 = samples.count(1) / len(samples)
        assert empirical_p1 == pytest.approx(model.probability(1), rel=0.1)

    def test_sampling_deterministic_in_seed(self):
        model = PowerLawPopularity.for_population(100)
        first = [model.sample(random.Random(7)) for _ in range(10)]
        second = [model.sample(random.Random(7)) for _ in range(10)]
        assert first == second

    def test_rank_validation(self):
        model = PowerLawPopularity.for_population(10)
        with pytest.raises(ValueError):
            model.cdf(0)
        with pytest.raises(ValueError):
            model.probability(11)

    def test_rejects_non_normalizable(self):
        with pytest.raises(ValueError):
            PowerLawPopularity(100, coefficient=0.001, exponent=0.3)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            PowerLawPopularity(0)
        with pytest.raises(ValueError):
            PowerLawPopularity(10, coefficient=-1)

    def test_population_one(self):
        model = PowerLawPopularity.for_population(1)
        assert model.sample(random.Random(0)) == 1
        assert model.probability(1) == pytest.approx(1.0)


class TestZipf:
    def test_probabilities_decrease(self):
        model = ZipfPopularity(100, s=1.0)
        assert model.probability(1) > model.probability(2) > model.probability(50)

    def test_normalized(self):
        model = ZipfPopularity(50, s=0.7)
        assert sum(model.probability(rank) for rank in range(1, 51)) == pytest.approx(1.0)

    def test_cdf_reaches_one(self):
        assert ZipfPopularity(10).cdf(10) == pytest.approx(1.0)

    def test_sampling_range(self):
        model = ZipfPopularity(20, s=1.2)
        rng = random.Random(3)
        assert all(1 <= model.sample(rng) <= 20 for _ in range(1_000))

    def test_exponent_controls_skew(self):
        flat = ZipfPopularity(100, s=0.3)
        steep = ZipfPopularity(100, s=1.5)
        assert steep.probability(1) > flat.probability(1)

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfPopularity(0)
        with pytest.raises(ValueError):
            ZipfPopularity(5, s=0)


class TestHelpers:
    def test_fitted_ccdf_series(self):
        series = fitted_ccdf(100, coefficient=100**-0.3)
        assert series[0][0] == 1
        assert series[-1] == (100, 0.0)
        values = [value for _, value in series]
        assert values == sorted(values, reverse=True)

    def test_empirical_rank_probabilities(self):
        probs = empirical_rank_probabilities([1, 1, 2, 4], population=5)
        assert probs == [0.5, 0.25, 0.0, 0.25, 0.0]

    def test_empirical_validation(self):
        with pytest.raises(ValueError):
            empirical_rank_probabilities([])
        with pytest.raises(ValueError):
            empirical_rank_probabilities([7], population=5)
