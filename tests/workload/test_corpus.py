"""Unit tests for the synthetic bibliographic corpus."""

import pytest

from repro.workload.corpus import CorpusConfig, SyntheticCorpus


@pytest.fixture(scope="module")
def corpus():
    return SyntheticCorpus(
        CorpusConfig(num_articles=1_000, num_authors=400, seed=11)
    )


class TestGeneration:
    def test_size(self, corpus):
        assert len(corpus) == 1_000

    def test_deterministic_in_seed(self):
        config = CorpusConfig(num_articles=50, num_authors=20, seed=5)
        a = SyntheticCorpus(config)
        b = SyntheticCorpus(config)
        assert a.records == b.records

    def test_different_seeds_differ(self):
        a = SyntheticCorpus(CorpusConfig(num_articles=50, num_authors=20, seed=1))
        b = SyntheticCorpus(CorpusConfig(num_articles=50, num_authors=20, seed=2))
        assert a.records != b.records

    def test_titles_unique(self, corpus):
        titles = [record["title"] for record in corpus.records]
        assert len(titles) == len(set(titles))

    def test_authors_shared_across_articles(self, corpus):
        """Authors must sign several articles (drives result-set sizes)."""
        cardinalities = corpus.field_cardinalities()
        assert cardinalities["author"] < len(corpus)

    def test_author_productivity_skewed(self, corpus):
        from collections import Counter

        counts = Counter(record["author"] for record in corpus.records)
        most = counts.most_common(1)[0][1]
        assert most >= 5  # a prolific head exists
        assert most < len(corpus) // 2  # but no single author dominates

    def test_venues_recur(self, corpus):
        assert corpus.field_cardinalities()["conf"] <= 30

    def test_values_are_bare_words(self, corpus):
        """Every field value must be usable verbatim in query text."""
        import re

        bare = re.compile(r"[\w.\-:+]+")
        for record in corpus.records[:200]:
            for _, value in record.items():
                assert bare.fullmatch(value), value

    def test_sizes_plausible(self, corpus):
        sizes = [int(record["size"]) for record in corpus.records]
        assert all(size >= 10_000 for size in sizes)
        mean = sum(sizes) / len(sizes)
        assert 150_000 < mean < 350_000  # around the paper's 250 KB

    def test_total_article_bytes(self, corpus):
        assert corpus.total_article_bytes() == sum(
            int(record["size"]) for record in corpus.records
        )


class TestAccess:
    def test_rank_access(self, corpus):
        assert corpus.record_at_rank(1) == corpus.records[0]
        assert corpus.record_at_rank(len(corpus)) == corpus.records[-1]

    def test_rank_bounds(self, corpus):
        with pytest.raises(IndexError):
            corpus.record_at_rank(0)
        with pytest.raises(IndexError):
            corpus.record_at_rank(len(corpus) + 1)

    def test_getitem(self, corpus):
        assert corpus[0] == corpus.records[0]

    def test_records_are_copies(self, corpus):
        listing = corpus.records
        listing.clear()
        assert len(corpus) == 1_000


class TestConfig:
    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            CorpusConfig(num_articles=0)
        with pytest.raises(ValueError):
            CorpusConfig(num_authors=0)

    def test_more_authors_than_name_combos(self):
        corpus = SyntheticCorpus(
            CorpusConfig(num_articles=100, num_authors=5_000, seed=3)
        )
        assert len(corpus) == 100
