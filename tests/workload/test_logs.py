"""Unit tests for the query-log pipeline (the Section V-C methodology)."""

import pytest

from repro.workload.corpus import CorpusConfig, SyntheticCorpus
from repro.workload.logs import (
    LogEntry,
    derive_models,
    generate_query_log,
    parse_query_log,
    summarize_log,
)


@pytest.fixture(scope="module")
def corpus():
    return SyntheticCorpus(CorpusConfig(num_articles=800, num_authors=300, seed=6))


@pytest.fixture(scope="module")
def log_lines(corpus):
    return generate_query_log(corpus, volume=9_108, seed=13)  # BibFinder size


class TestLogEntry:
    def test_line_roundtrip(self):
        entry = LogEntry((("author", "John_Smith"), ("year", "1996")))
        assert LogEntry.from_line(entry.to_line()) == entry

    def test_structure_and_value(self):
        entry = LogEntry((("author", "A"), ("title", "T")))
        assert entry.structure == ("author", "title")
        assert entry.value("title") == "T"
        assert entry.value("year") is None

    @pytest.mark.parametrize("line", ["", "author", "=x", "author=", "a=1&=2"])
    def test_malformed_rejected(self, line):
        with pytest.raises(ValueError):
            LogEntry.from_line(line)


class TestPipeline:
    def test_log_volume(self, log_lines):
        assert len(log_lines) == 9_108

    def test_parse_roundtrip(self, log_lines):
        entries = list(parse_query_log(log_lines))
        assert len(entries) == len(log_lines)
        assert [e.to_line() for e in entries] == log_lines

    def test_parse_skips_blank_lines(self):
        entries = list(parse_query_log(["author=A", "", "  ", "title=T"]))
        assert len(entries) == 2

    def test_summary_structure_matches_source_model(self, log_lines):
        summary = summarize_log(parse_query_log(log_lines))
        distribution = summary.structure_distribution()
        assert distribution[("author",)] == pytest.approx(0.60, abs=0.03)
        assert distribution[("title",)] == pytest.approx(0.20, abs=0.03)

    def test_summary_popularity_counts(self, log_lines):
        summary = summarize_log(parse_query_log(log_lines))
        # ~70% of queries carry an author field (60% + 5% + 5%).
        assert sum(summary.author_counts.values()) == pytest.approx(
            0.70 * summary.total, rel=0.07
        )
        series = summary.popularity_series("author")
        assert series == sorted(series, reverse=True)
        assert sum(series) == pytest.approx(1.0)

    def test_empty_summary_rejected(self):
        summary = summarize_log([])
        with pytest.raises(ValueError):
            summary.structure_distribution()
        with pytest.raises(ValueError):
            summary.popularity_series("author")

    def test_unknown_series_rejected(self, log_lines):
        summary = summarize_log(parse_query_log(log_lines))
        with pytest.raises(ValueError):
            summary.popularity_series("conf")


class TestDerivedModels:
    def test_recovers_power_law(self, log_lines):
        summary = summarize_log(parse_query_log(log_lines))
        models = derive_models(summary)
        assert models.popularity_fit.is_power_law

    def test_derived_models_drive_generator(self, corpus, log_lines):
        """The full loop: log -> models -> new workload."""
        from repro.workload.querygen import QueryGenerator

        summary = summarize_log(parse_query_log(log_lines))
        models = derive_models(summary)
        popularity = models.popularity_for_population(len(corpus))
        generator = QueryGenerator(
            corpus, popularity, structure=models.structure, seed=99
        )
        items = list(generator.generate(2_000))
        assert len(items) == 2_000
        author_share = sum(
            1 for item in items if item.structure == ("author",)
        ) / len(items)
        assert author_share == pytest.approx(0.60, abs=0.05)

    def test_popularity_adaptation_bounds_exponent(self, log_lines):
        summary = summarize_log(parse_query_log(log_lines))
        models = derive_models(summary)
        adapted = models.popularity_for_population(1_000)
        assert 0.05 <= adapted.exponent <= 0.95
        assert adapted.cdf(1_000) == 1.0
