"""Unit tests for the query generator (Section V-C)."""

import pytest

from repro.workload.corpus import CorpusConfig, SyntheticCorpus
from repro.workload.popularity import PowerLawPopularity
from repro.workload.querygen import (
    QueryGenerator,
    QueryStructureModel,
)


@pytest.fixture(scope="module")
def corpus():
    return SyntheticCorpus(CorpusConfig(num_articles=500, num_authors=200, seed=9))


class TestStructureModel:
    def test_bibfinder_probabilities(self):
        model = QueryStructureModel()
        assert model.probability(("author",)) == pytest.approx(0.60)
        assert model.probability(("title",)) == pytest.approx(0.20)
        assert model.probability(("year",)) == pytest.approx(0.10)
        assert model.probability(("author", "title")) == pytest.approx(0.05)
        assert model.probability(("author", "year")) == pytest.approx(0.05)

    def test_unknown_shape_probability_zero(self):
        assert QueryStructureModel().probability(("conf",)) == 0.0

    def test_sampling_frequencies(self):
        import random
        from collections import Counter

        model = QueryStructureModel()
        rng = random.Random(1)
        counts = Counter(model.sample(rng) for _ in range(20_000))
        assert counts[("author",)] / 20_000 == pytest.approx(0.60, abs=0.02)
        assert counts[("title",)] / 20_000 == pytest.approx(0.20, abs=0.02)

    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ValueError):
            QueryStructureModel({("author",): 0.5})

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            QueryStructureModel({("author",): 1.5, ("title",): -0.5})

    def test_zero_probability_shapes_dropped(self):
        model = QueryStructureModel({("author",): 1.0, ("title",): 0.0})
        assert model.shapes == [("author",)]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            QueryStructureModel({})


class TestGenerator:
    def test_deterministic(self, corpus):
        first = list(QueryGenerator(corpus, seed=4).generate(50))
        second = list(QueryGenerator(corpus, seed=4).generate(50))
        assert first == second

    def test_different_seeds(self, corpus):
        a = list(QueryGenerator(corpus, seed=1).generate(50))
        b = list(QueryGenerator(corpus, seed=2).generate(50))
        assert a != b

    def test_query_covers_target(self, corpus):
        for item in QueryGenerator(corpus, seed=5).generate(200):
            assert item.query.covers_record(item.target)

    def test_structure_fields_match_query(self, corpus):
        for item in QueryGenerator(corpus, seed=6).generate(100):
            assert item.query.fields == set(item.structure)

    def test_target_rank_consistent(self, corpus):
        for item in QueryGenerator(corpus, seed=7).generate(100):
            assert corpus.record_at_rank(item.target_rank) == item.target

    def test_popular_articles_dominate(self, corpus):
        from collections import Counter

        ranks = Counter(
            item.target_rank
            for item in QueryGenerator(corpus, seed=8).generate(5_000)
        )
        top_mass = sum(count for rank, count in ranks.items() if rank <= 50) / 5_000
        tail_mass = sum(count for rank, count in ranks.items() if rank > 250) / 5_000
        assert top_mass > tail_mass

    def test_population_mismatch_rejected(self, corpus):
        wrong = PowerLawPopularity.for_population(10)
        with pytest.raises(ValueError):
            QueryGenerator(corpus, popularity=wrong)

    def test_generate_zero(self, corpus):
        assert list(QueryGenerator(corpus).generate(0)) == []
