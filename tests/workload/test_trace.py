"""Unit tests for query traces and the Figure 7 summary."""

import pytest

from repro.workload.corpus import CorpusConfig, SyntheticCorpus
from repro.workload.querygen import QueryGenerator
from repro.workload.trace import (
    QueryTrace,
    format_structure_label,
    read_trace,
    structure_distribution,
    write_trace,
)


@pytest.fixture(scope="module")
def traces():
    corpus = SyntheticCorpus(CorpusConfig(num_articles=300, num_authors=100, seed=2))
    generator = QueryGenerator(corpus, seed=3)
    return [QueryTrace.from_workload(item) for item in generator.generate(2_000)]


class TestTraceRecord:
    def test_from_workload(self, traces):
        trace = traces[0]
        assert len(trace.structure) == len(trace.values)
        assert trace.target_rank >= 1

    def test_line_roundtrip(self, traces):
        for trace in traces[:50]:
            assert QueryTrace.from_line(trace.to_line()) == trace

    def test_text_roundtrip(self, traces):
        text = write_trace(traces[:20])
        assert list(read_trace(text)) == traces[:20]

    def test_malformed_lines_rejected(self):
        for line in ("", "justrank", "1|no-equals", "1|=value", "1|field="):
            with pytest.raises(ValueError):
                QueryTrace.from_line(line)

    def test_read_skips_blank_lines(self):
        text = "1|author=X\n\n2|title=Y\n"
        assert len(list(read_trace(text))) == 2


class TestFigure7Summary:
    def test_distribution_sums_to_one(self, traces):
        distribution = structure_distribution(traces)
        assert sum(distribution.values()) == pytest.approx(1.0)

    def test_author_dominates(self, traces):
        distribution = structure_distribution(traces)
        assert distribution[("author",)] == pytest.approx(0.60, abs=0.04)
        ordered = sorted(distribution.items(), key=lambda kv: -kv[1])
        assert ordered[0][0] == ("author",)
        assert ordered[1][0] == ("title",)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            structure_distribution([])

    def test_labels(self):
        assert format_structure_label(("author",)) == "/author"
        assert format_structure_label(("author", "title")) == "/author/title"
