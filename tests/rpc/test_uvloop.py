"""Unit tests for optional uvloop activation (repro.rpc.loop).

The container intentionally does not ship uvloop, so the real-absence
path is exercised directly and the presence path through a stub module
injected into ``sys.modules``.
"""

import asyncio
import sys
import types

import pytest

from repro.rpc.loop import install_uvloop, uvloop_available, uvloop_module

UVLOOP_INSTALLED = uvloop_available()


class FakeUvloop(types.ModuleType):
    def __init__(self):
        super().__init__("uvloop")
        self.installed = 0

    def install(self):
        self.installed += 1


@pytest.fixture
def fake_uvloop(monkeypatch):
    module = FakeUvloop()
    monkeypatch.setitem(sys.modules, "uvloop", module)
    return module


@pytest.mark.skipif(UVLOOP_INSTALLED, reason="uvloop actually installed here")
class TestAbsent:
    def test_not_available(self):
        assert uvloop_module() is None
        assert not uvloop_available()

    def test_install_falls_back(self):
        assert install_uvloop() is False
        # The stock policy still hands out working loops.
        loop = asyncio.new_event_loop()
        try:
            assert loop.run_until_complete(asyncio.sleep(0, result=7)) == 7
        finally:
            loop.close()

    def test_require_raises(self):
        with pytest.raises(RuntimeError, match="uvloop"):
            install_uvloop(require=True)


class TestPresent:
    def test_available_through_the_stub(self, fake_uvloop):
        assert uvloop_available()
        assert uvloop_module() is fake_uvloop

    def test_install_activates(self, fake_uvloop):
        assert install_uvloop() is True
        assert fake_uvloop.installed == 1

    def test_require_is_satisfied(self, fake_uvloop):
        assert install_uvloop(require=True) is True
