"""The server-side dedupe cache is bounded: LRU capacity + TTL expiry.

Regression tests for the ``(addr, request id)`` reply cache in
:class:`repro.rpc.transport.AsyncioTransport`.  The seed version grew
without bound (one entry per request, forever); these pin the bounds --
capacity eviction in LRU order, TTL expiry on both read and write paths,
replay refreshing recency -- and that a retransmission within the bounds
still gets the remembered reply without re-running the handler.

The cache is exercised through ``_serve_request`` with a controllable
clock; no sockets are involved, so the tests are deterministic.
"""

import pytest

from repro.net.message import Message, MessageKind
from repro.rpc.codec import FRAME_RESPONSE, decode_frame, encode_message
from repro.rpc.transport import AsyncioTransport

ADDR = ("127.0.0.1", 54321)
OTHER_ADDR = ("127.0.0.1", 54322)


class ManualClock:
    """A clock the test advances by hand (milliseconds)."""

    def __init__(self) -> None:
        self.now = 0.0

    def advance_s(self, seconds: float) -> None:
        self.now += seconds * 1000.0


def request_body(payload=("hello",)):
    return encode_message(
        Message(
            kind=MessageKind.QUERY_REQUEST,
            source="user:0",
            destination="node:1",
            payload=payload,
        )
    )


@pytest.fixture
def harness():
    clock = ManualClock()
    transport = AsyncioTransport(
        clock=clock, dedupe_cap=4, dedupe_ttl_s=60.0
    )
    calls = []

    def handler(message):
        calls.append(message.payload)
        return message.reply(MessageKind.QUERY_RESPONSE, message.payload)

    transport.register("node:1", handler)
    return transport, clock, calls


def serve(transport, request_id, addr=ADDR, payload=("hello",)):
    return transport._serve_request(
        request_id, request_body(payload), addr, via_udp=True
    )


def test_retransmission_replays_without_rerunning_handler(harness):
    transport, _, calls = harness
    first = serve(transport, request_id=7)
    again = serve(transport, request_id=7)
    assert first == again
    assert len(calls) == 1
    frame_type, request_id, _ = decode_frame(first)
    assert frame_type == FRAME_RESPONSE and request_id == 7


def test_capacity_evicts_least_recently_used(harness):
    transport, _, calls = harness
    for request_id in range(1, 5):  # fill the cap-4 cache
        serve(transport, request_id)
    serve(transport, 1)  # refresh id 1: id 2 is now the LRU entry
    serve(transport, 5)  # overflow evicts id 2
    assert len(transport._served) == 4
    assert (ADDR, 2) not in transport._served
    assert (ADDR, 1) in transport._served
    calls.clear()
    serve(transport, 1)  # still remembered: replayed, not re-run
    serve(transport, 2)  # evicted: the handler runs again
    assert calls == [("hello",)]


def test_ttl_expires_stale_replies(harness):
    transport, clock, calls = harness
    serve(transport, request_id=9)
    clock.advance_s(59.0)
    serve(transport, request_id=9)  # fresh: replayed
    assert len(calls) == 1
    clock.advance_s(61.0)  # past the (refreshed) 60 s deadline
    serve(transport, request_id=9)  # expired: handler runs again
    assert len(calls) == 2


def test_replay_refreshes_the_ttl(harness):
    transport, clock, calls = harness
    serve(transport, request_id=3)
    for _ in range(4):  # keep retrying every 50 s for 200 s total
        clock.advance_s(50.0)
        serve(transport, request_id=3)
    assert len(calls) == 1  # every retry hit the refreshed entry


def test_expired_entries_drain_on_insert(harness):
    transport, clock, _ = harness
    for request_id in range(1, 4):
        serve(transport, request_id)
    clock.advance_s(120.0)  # all three entries are now stale
    serve(transport, request_id=10)
    assert set(transport._served) == {(ADDR, 10)}


def test_same_request_id_from_different_peers_is_distinct(harness):
    transport, _, calls = harness
    serve(transport, request_id=7, addr=ADDR, payload=("a",))
    serve(transport, request_id=7, addr=OTHER_ADDR, payload=("b",))
    assert calls == [("a",), ("b",)]
    assert len(transport._served) == 2


def test_bounds_are_validated():
    with pytest.raises(ValueError):
        AsyncioTransport(dedupe_cap=0)
    with pytest.raises(ValueError):
        AsyncioTransport(dedupe_ttl_s=0.0)


class TestSpoofedRejectionNotCached:
    """A require_signed rejection must not occupy the reply cache.

    The source address of an unsigned datagram is attacker-chosen, so a
    cached rejection under ``(victim addr, request id)`` would let a
    spoofer pre-poison the reply slot of the victim's next (guessably
    sequential) request.
    """

    @pytest.fixture
    def signed_harness(self):
        from repro.rpc.codec import (
            FRAME_REQUEST,
            decode_frame_signed,
            sign_frame,
        )
        from repro.sec import NodeIdentity

        clock = ManualClock()
        transport = AsyncioTransport(
            clock=clock,
            identity=NodeIdentity("dedupe-server"),
            require_signed=True,
        )
        calls = []

        def handler(message):
            calls.append(message.payload)
            return message.reply(MessageKind.QUERY_RESPONSE, message.payload)

        transport.register("node:1", handler)

        def serve_signed(request_id, identity, payload=("hello",)):
            message = Message(
                kind=MessageKind.QUERY_REQUEST,
                source="user:0",
                destination="node:1",
                payload=payload,
            )
            frame = sign_frame(
                FRAME_REQUEST,
                request_id,
                encode_message(message, signed=True),
                identity,
            )
            _, _, body, envelope = decode_frame_signed(frame)
            return transport._serve_request(
                request_id, bytes(body), ADDR, via_udp=True, envelope=envelope
            )

        return transport, calls, serve_signed

    def test_unsigned_rejection_not_remembered(self, signed_harness):
        transport, calls, _ = signed_harness
        transport._serve_request(7, request_body(), ADDR, via_udp=True)
        assert (ADDR, 7) not in transport._served
        assert calls == []

    def test_victim_request_survives_spoofed_prepoisoning(
        self, signed_harness
    ):
        """A spoofed unsigned datagram under the victim's next id must
        not mask the victim's authentic signed request."""
        from repro.sec import NodeIdentity

        transport, calls, serve_signed = signed_harness
        # Attacker spoofs the victim's address and guesses id 7.
        transport._serve_request(7, request_body(), ADDR, via_udp=True)
        # The victim's authentic request still reaches the handler.
        serve_signed(7, NodeIdentity("dedupe-victim"))
        assert calls == [("hello",)]
        assert (ADDR, 7) in transport._served  # the real reply is cached
