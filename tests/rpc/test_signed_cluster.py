"""Integration: a require-signed loopback cluster over real sockets.

Every exchange -- join gossip, inserts, covering-chain lookups --
travels as a version-2 signed frame; an unsigned client is refused at
the door with a bounded error instead of a hang.
"""

import time

import pytest

from repro.core.query import FieldQuery
from repro.net.transport import DeliveryError, TransportError
from repro.perf import counters
from repro.rpc.cluster import LocalCluster
from repro.sec import NodeIdentity
from repro.workload.corpus import CorpusConfig, SyntheticCorpus

NUM_NODES = 3
NUM_RECORDS = 8
SEED = 4242


@pytest.fixture(scope="module")
def cluster():
    with LocalCluster(NUM_NODES, signed=True, cache="single") as booted:
        yield booted


@pytest.fixture(scope="module")
def corpus():
    return SyntheticCorpus(
        CorpusConfig(num_articles=NUM_RECORDS, num_authors=4, seed=SEED)
    )


@pytest.fixture(scope="module")
def populated_client(cluster, corpus):
    client = cluster.client()
    for record in corpus.records:
        client.insert_record(record)
    time.sleep(0.2)  # pipelined inserts: let the fan-out land
    yield client
    client.close()


def test_signed_node_ids_match_unsigned_layout(cluster):
    """Identities sign; they do not re-place the ring."""
    assert cluster.node_ids == LocalCluster(NUM_NODES).node_ids


def test_lookups_succeed_and_frames_verify(cluster, corpus, populated_client):
    verify_before = counters.sec_verify_calls
    failures_before = counters.sec_verify_failures
    found = 0
    for record in corpus.records:
        keyset = populated_client.scheme.entry_classes()[0]
        query = FieldQuery.msd_of(record).restrict(sorted(keyset))
        trace = populated_client.search(query, record)
        found += trace.found
        assert not trace.gave_up
    assert found == NUM_RECORDS
    assert counters.sec_verify_calls > verify_before
    assert counters.sec_verify_failures == failures_before


def test_unsigned_client_is_refused(cluster):
    """require_signed daemons answer unsigned requests with verify_failed."""
    with pytest.raises(TransportError):
        cluster.client(
            identity=None, require_signed=False, discover_timeout_ms=300.0,
            discover_retries=0,
        )


def test_signing_client_without_requirement_still_works(cluster, corpus):
    """A client may sign without demanding signed replies."""
    client = cluster.client(
        identity=NodeIdentity("lenient-client"), require_signed=False
    )
    try:
        assert client.ping(cluster.node_ids[0])
    finally:
        client.close()


def test_require_signed_needs_identity():
    with pytest.raises(ValueError):
        from repro.rpc.transport import AsyncioTransport

        AsyncioTransport(require_signed=True)


def test_verify_failed_is_a_typed_reason():
    error = DeliveryError(DeliveryError.VERIFY_FAILED, "node:1")
    assert error.reason == "verify_failed"
    assert error.retry_elsewhere  # forged replicas trigger failover


class TestPeerKeyPinning:
    """A valid signature from the *wrong* keypair must not be accepted."""

    def test_verify_reply_binds_envelope_key_to_pin(self):
        from repro.rpc.codec import (
            FRAME_RESPONSE,
            decode_frame_signed,
            encode_message,
            sign_frame,
        )
        from repro.net.message import Message, MessageKind
        from repro.rpc.transport import AsyncioTransport

        honest = NodeIdentity("pin-honest")
        impostor = NodeIdentity("pin-impostor")
        transport = AsyncioTransport(
            identity=NodeIdentity("pin-client"),
            require_signed=True,
            peer_keys={"node:7": honest.public_key},
        )

        def envelope_from(identity):
            body = encode_message(
                Message(
                    kind=MessageKind.QUERY_RESPONSE,
                    source="node:7",
                    destination="user:0",
                    payload=(),
                ),
                signed=True,
            )
            frame = sign_frame(FRAME_RESPONSE, 3, body, identity)
            return decode_frame_signed(frame)[3]

        # The pinned key passes; the impostor's internally valid
        # signature is rejected with the typed verify reason.
        transport._verify_reply(envelope_from(honest), "node:7")
        before = counters.sec_verify_failures
        with pytest.raises(DeliveryError) as excinfo:
            transport._verify_reply(envelope_from(impostor), "node:7")
        assert excinfo.value.reason == DeliveryError.VERIFY_FAILED
        assert counters.sec_verify_failures == before + 1

        # An unpinned peer is learned on first use, then held to it.
        transport._verify_reply(envelope_from(impostor), "node:8")
        assert transport.pinned_key("node:8") == impostor.public_key
        with pytest.raises(DeliveryError):
            transport._verify_reply(envelope_from(honest), "node:8")

    def test_conflicting_pin_refused(self):
        from repro.rpc.transport import AsyncioTransport

        transport = AsyncioTransport()
        transport.pin_peer("node:1", NodeIdentity("pin-a").public_key)
        transport.pin_peer("node:1", NodeIdentity("pin-a").public_key)  # noop
        with pytest.raises(TransportError):
            transport.pin_peer("node:1", NodeIdentity("pin-b").public_key)
        with pytest.raises(ValueError):
            transport.pin_peer("node:2", b"short-key")

    def test_cluster_client_pins_the_membership_roster(self, cluster):
        client = cluster.client()
        try:
            for daemon in cluster.daemons:
                name = f"node:{daemon.node_id:x}"
                assert (
                    client.transport.pinned_key(name)
                    == daemon.identity.public_key
                )
        finally:
            client.close()
