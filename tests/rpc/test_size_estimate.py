"""Estimated vs measured message sizes (Figure 12 cross-check).

``Message.size_bytes`` is the payload-derived *estimate* the traffic
accounting uses; ``repro.rpc.codec.measured_size_bytes`` is what the
wire actually carries.  These tests pin the exact documented relation
between the two, so the estimate stays an honest lower bound and any
codec change that silently grows the frame breaks loudly.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.message import (
    HEADER_BYTES,
    PER_ENTRY_BYTES,
    Message,
    MessageKind,
)
from repro.rpc.codec import (
    ENVELOPE_BYTES,
    MESSAGE_FIXED_BYTES,
    WIRE_PER_ENTRY_BYTES,
    estimate_delta,
    measured_size_bytes,
)


def payload_message(kind, source="user:0", destination="node:2a"):
    return Message(
        kind=kind,
        source=source,
        destination=destination,
        payload=("author=knuth", "title=taocp"),
    )


class TestDocumentedRelation:
    @pytest.mark.parametrize("kind", list(MessageKind))
    def test_measured_equals_estimate_plus_delta(self, kind):
        message = payload_message(kind)
        assert measured_size_bytes(message) == message.size_bytes + (
            estimate_delta(message)
        )

    def test_delta_is_framing_plus_names(self):
        message = payload_message(MessageKind.QUERY_REQUEST)
        names = len(message.source.encode()) + len(
            message.destination.encode()
        )
        fixed = ENVELOPE_BYTES + MESSAGE_FIXED_BYTES - HEADER_BYTES
        assert estimate_delta(message) == fixed + names

    def test_estimate_is_a_lower_bound(self):
        message = payload_message(MessageKind.QUERY_RESPONSE)
        assert measured_size_bytes(message) > message.size_bytes

    def test_per_entry_overheads_agree(self):
        # The wire's u32 length prefix costs exactly what the estimate
        # charges per entry, so payload growth cancels in the delta.
        assert WIRE_PER_ENTRY_BYTES == PER_ENTRY_BYTES

    def test_delta_is_payload_independent(self):
        small = payload_message(MessageKind.QUERY_REQUEST)
        big = Message(
            kind=MessageKind.QUERY_REQUEST,
            source=small.source,
            destination=small.destination,
            payload=tuple(f"entry-{i}" * 50 for i in range(30)),
        )
        assert estimate_delta(small) == estimate_delta(big)
        assert measured_size_bytes(big) == big.size_bytes + estimate_delta(big)


names = st.text(min_size=1, max_size=40)


@given(
    kind=st.sampled_from(list(MessageKind)),
    source=names,
    destination=names,
    payload=st.lists(st.text(max_size=50), max_size=6).map(tuple),
)
def test_relation_holds_across_the_message_space(
    kind, source, destination, payload
):
    message = Message(
        kind=kind, source=source, destination=destination, payload=payload
    )
    assert measured_size_bytes(message) == message.size_bytes + (
        estimate_delta(message)
    )


def test_explicit_size_is_not_bound_by_the_relation():
    """A file transfer's size_bytes is the article size, not the frame's.

    The wire still moves only the descriptor, so the measured size is
    unrelated to (and typically far below) the explicit figure; the
    cross-check deliberately binds the payload-derived case only.
    """
    message = Message(
        kind=MessageKind.FILE_RESPONSE,
        source="node:1",
        destination="user:0",
        payload=("author=x/title=y",),
        explicit_size=10_000_000,
    )
    assert message.size_bytes == 10_000_000
    assert measured_size_bytes(message) < message.size_bytes
