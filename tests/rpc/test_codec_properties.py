"""Property tests: the wire codec round-trips arbitrary messages.

Hypothesis drives the codec across the full message space -- every
kind, every category, unicode payloads and endpoint names, the
route_hops wire range, optional explicit sizes, and large frames -- and
asserts the round trip is the identity and the measured size matches
the frame actually produced.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.message import Message, MessageKind, TrafficCategory
from repro.rpc.codec import (
    ENVELOPE_BYTES,
    FRAME_REQUEST,
    CodecError,
    decode_frame,
    decode_message,
    encode_frame,
    encode_message,
    measured_size_bytes,
)

text = st.text(max_size=64)
names = st.text(min_size=1, max_size=48)

messages = st.builds(
    Message,
    kind=st.sampled_from(list(MessageKind)),
    source=names,
    destination=names,
    payload=st.tuples() | st.lists(text, max_size=8).map(tuple),
    explicit_size=st.none() | st.integers(min_value=0, max_value=2**64 - 1),
    route_hops=st.integers(min_value=1, max_value=0xFFFF),
    category=st.sampled_from(list(TrafficCategory)),
)


@given(messages)
def test_round_trip_is_identity(message):
    assert decode_message(encode_message(message)) == message


@given(messages)
def test_encoding_is_deterministic(message):
    assert encode_message(message) == encode_message(message)


@given(messages)
def test_measured_size_matches_frame(message):
    body = encode_message(message)
    assert measured_size_bytes(message) == ENVELOPE_BYTES + len(body)
    frame = encode_frame(FRAME_REQUEST, 1, body)
    assert len(frame) == measured_size_bytes(message)


@given(messages, st.integers(min_value=0, max_value=2**64 - 1))
def test_frame_envelope_round_trips(message, request_id):
    body = encode_message(message)
    frame = encode_frame(FRAME_REQUEST, request_id, body)
    assert decode_frame(frame) == (FRAME_REQUEST, request_id, body)


@settings(max_examples=20)
@given(
    st.lists(
        st.text(min_size=5, max_size=20), min_size=4, max_size=8
    ),
    st.integers(min_value=200, max_value=500),
)
def test_large_frames_round_trip(entries, repeat):
    """Frames far beyond the UDP cutoff still encode and decode exactly."""
    message = Message(
        kind=MessageKind.QUERY_RESPONSE,
        source="node:1",
        destination="user:0",
        payload=tuple(entry * repeat for entry in entries),
    )
    body = encode_message(message)
    assert len(body) > 4000
    assert decode_message(body) == message


@given(messages, st.integers(min_value=1))
def test_truncation_never_passes(message, cut):
    """No strict prefix of a valid body decodes cleanly."""
    body = encode_message(message)
    if cut > len(body):
        return
    truncated = body[:-cut]
    try:
        decoded = decode_message(truncated)
    except CodecError:
        return
    # Extremely unlikely, but if a prefix parses it must not silently
    # impersonate the original message.
    assert decoded != message
