"""Unit tests for AsyncioTransport over real loopback sockets."""

import asyncio
import socket
import threading

import pytest

from repro.net.message import Message, MessageKind
from repro.net.transport import DeliveryError, TransportError
from repro.perf import counters, snapshot
from repro.rpc.transport import (
    AsyncioTransport,
    WallClock,
    daemon_endpoint_name,
    parse_daemon_name,
)


@pytest.fixture
def loop():
    event_loop = asyncio.new_event_loop()
    thread = threading.Thread(target=event_loop.run_forever, daemon=True)
    thread.start()
    yield event_loop
    event_loop.call_soon_threadsafe(event_loop.stop)
    thread.join(timeout=5)
    event_loop.close()


def run(loop, coroutine):
    return asyncio.run_coroutine_threadsafe(coroutine, loop).result(timeout=10)


@pytest.fixture
def server(loop):
    transport = AsyncioTransport(request_timeout_ms=200.0, max_retries=2)
    run(loop, transport.start("127.0.0.1", 0))
    yield transport
    run(loop, transport.close())


@pytest.fixture
def client(loop):
    transport = AsyncioTransport(request_timeout_ms=200.0, max_retries=2)
    run(loop, transport.start())
    yield transport
    run(loop, transport.close())


def echo_handler(message):
    return message.reply(MessageKind.QUERY_RESPONSE, message.payload)


def request_to(name, payload=("hello",)):
    return Message(
        kind=MessageKind.QUERY_REQUEST,
        source="user:0",
        destination=name,
        payload=payload,
    )


class TestRequestResponse:
    def test_round_trip_over_udp(self, server, client):
        server.register("node:1", echo_handler)
        client.add_route("node:1", server.listen_address)
        before = snapshot()
        response = client.send(request_to("node:1", ("author=knuth",)))
        assert response is not None
        assert response.kind is MessageKind.QUERY_RESPONSE
        assert response.payload == ("author=knuth",)
        after = snapshot()
        assert after["rpc_requests"] == before["rpc_requests"] + 1
        assert after["rpc_responses"] == before["rpc_responses"] + 1
        assert after["rpc_udp_frames"] > before["rpc_udp_frames"]
        assert after["rpc_bytes_sent"] > before["rpc_bytes_sent"]

    def test_none_handler_result_is_acked(self, server, client):
        server.register("node:1", lambda message: None)
        client.add_route("node:1", server.listen_address)
        assert client.send(request_to("node:1")) is None

    def test_send_async_delivers_on_loop_thread(self, server, client, loop):
        server.register("node:1", echo_handler)
        client.add_route("node:1", server.listen_address)
        done = threading.Event()
        results = []
        client.send_async(
            request_to("node:1"),
            lambda response: (results.append(response), done.set()),
            lambda error: (results.append(error), done.set()),
        )
        assert done.wait(timeout=5)
        assert isinstance(results[0], Message)

    def test_daemon_names_self_resolve(self, server, client):
        host, port = server.listen_address
        name = daemon_endpoint_name(host, port)
        server.register(name, echo_handler)
        # No add_route on the client: the name carries the address.
        assert parse_daemon_name(name) == (host, port)
        assert client.send(request_to(name)) is not None

    def test_local_endpoint_served_without_routing(self, client):
        client.register("node:5", echo_handler)
        response = client.send(request_to("node:5", ("x",)))
        assert response is not None and response.payload == ("x",)


class TestFailureMapping:
    def test_unroutable_name_is_misuse(self, client):
        with pytest.raises(TransportError):
            client.send(request_to("node:nowhere"))

    def test_unknown_remote_endpoint_maps_to_unregistered(
        self, server, client
    ):
        client.add_route("node:9", server.listen_address)
        with pytest.raises(DeliveryError) as excinfo:
            client.send(request_to("node:9"))
        assert excinfo.value.reason == DeliveryError.UNREGISTERED
        assert excinfo.value.retry_elsewhere

    def test_silence_maps_to_timeout_after_retries(self, loop, client):
        # A bound socket that never answers: every attempt times out.
        sink = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        sink.bind(("127.0.0.1", 0))
        try:
            client.add_route("node:3", sink.getsockname())
            client.request_timeout_ms = 50.0
            before = snapshot()
            with pytest.raises(DeliveryError) as excinfo:
                client.send(request_to("node:3"))
            assert excinfo.value.reason == DeliveryError.TIMEOUT
            # Timeouts are transient, exactly like dropped messages: the
            # caller retries the same node, it does not fail over.
            assert not excinfo.value.retry_elsewhere
            after = snapshot()
            assert after["rpc_retries"] == before["rpc_retries"] + 2
            assert after["rpc_timeouts"] == before["rpc_timeouts"] + 3
        finally:
            sink.close()

    def test_blocking_send_refused_on_loop_thread(self, loop, server, client):
        server.register("node:1", echo_handler)
        client.add_route("node:1", server.listen_address)

        async def misuse():
            client.send(request_to("node:1"))

        with pytest.raises(TransportError, match="event-loop thread"):
            run(loop, misuse())

    def test_duplicate_registration_refused(self, server):
        server.register("node:1", echo_handler)
        with pytest.raises(TransportError):
            server.register("node:1", echo_handler)


class TestTcpFallback:
    def test_oversized_request_travels_over_tcp(self, server, client):
        server.register("node:1", lambda m: m.reply(
            MessageKind.QUERY_RESPONSE, (str(len(m.payload[0])),)
        ))
        client.add_route("node:1", server.listen_address)
        before = snapshot()
        big = "x" * (client.udp_max_bytes * 3)
        response = client.send(request_to("node:1", (big,)))
        assert response is not None and response.payload == (str(len(big)),)
        after = snapshot()
        assert after["rpc_tcp_frames"] > before["rpc_tcp_frames"]

    def test_oversized_response_falls_back_to_tcp(self, server, client):
        big = "y" * 5000
        server.register("node:1", lambda m: m.reply(
            MessageKind.QUERY_RESPONSE, (big,)
        ))
        client.add_route("node:1", server.listen_address)
        before = snapshot()
        response = client.send(request_to("node:1"))
        assert response is not None and response.payload == (big,)
        after = snapshot()
        assert (
            after["rpc_oversized_fallbacks"]
            == before["rpc_oversized_fallbacks"] + 1
        )
        assert after["rpc_tcp_frames"] > before["rpc_tcp_frames"]

    def test_retransmit_dedupe_serves_cached_reply(self, server, client):
        calls = []

        def counting_handler(message):
            calls.append(message)
            return message.reply(MessageKind.QUERY_RESPONSE, ("once",))

        server.register("node:1", counting_handler)
        # Replay one request id by hand: the daemon must answer the
        # second copy from its reply cache without re-running the
        # handler (UDP retransmits must not double-apply requests).
        from repro.rpc.codec import (
            FRAME_REQUEST,
            decode_frame,
            encode_frame,
            encode_message,
        )

        frame = encode_frame(
            FRAME_REQUEST, 1, encode_message(request_to("node:1"))
        )
        probe = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        probe.settimeout(2.0)
        try:
            probe.sendto(frame, server.listen_address)
            first, _ = probe.recvfrom(65536)
            probe.sendto(frame, server.listen_address)
            second, _ = probe.recvfrom(65536)
        finally:
            probe.close()
        assert decode_frame(first) == decode_frame(second)
        assert len(calls) == 1


class TestWallClock:
    def test_now_is_monotonic_milliseconds(self):
        clock = WallClock()
        first = clock.now
        second = clock.now
        assert 0 <= first <= second

    def test_counters_include_rpc_slots(self):
        # The perf layer carries the transport's counters; spot-check
        # the slots exist so snapshots and regression tooling see them.
        for name in (
            "rpc_requests", "rpc_responses", "rpc_retries", "rpc_timeouts",
            "rpc_udp_frames", "rpc_tcp_frames", "rpc_oversized_fallbacks",
            "rpc_codec_errors", "rpc_bytes_sent", "rpc_bytes_received",
        ):
            assert isinstance(getattr(counters, name), int)
