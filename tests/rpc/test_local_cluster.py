"""Integration: a 5-daemon loopback cluster serves real lookups.

The acceptance bar for the rpc subsystem: boot five node daemons on
loopback sockets, publish a seeded corpus through the wire client, and
resolve at least 50 covering-chain lookups with 100% success -- every
exchange travelling through the UDP/TCP codec path.
"""

import random
import time

import pytest

from repro.core.query import FieldQuery
from repro.obs.reader import load_trace
from repro.obs.tracer import Tracer
from repro.rpc.cluster import LocalCluster
from repro.workload.corpus import CorpusConfig, SyntheticCorpus

NUM_NODES = 5
NUM_RECORDS = 20
NUM_LOOKUPS = 50
SEED = 1234


@pytest.fixture(scope="module")
def cluster():
    with LocalCluster(NUM_NODES, substrate="chord", cache="multi") as booted:
        yield booted


@pytest.fixture(scope="module")
def corpus():
    return SyntheticCorpus(
        CorpusConfig(num_articles=NUM_RECORDS, num_authors=7, seed=SEED)
    )


@pytest.fixture(scope="module")
def populated_client(cluster, corpus):
    tracer = Tracer(meta={"harness": "test_local_cluster"})
    client = cluster.client(tracer=tracer)
    for record in corpus.records:
        client.insert_record(record)
    yield client, tracer
    client.close()


def test_membership_converged(cluster):
    assert len(cluster.daemons) == NUM_NODES
    for daemon in cluster.daemons:
        assert set(daemon.peers) == set(cluster.node_ids)


def test_node_ids_are_deterministic(cluster):
    assert cluster.node_ids == LocalCluster(NUM_NODES).node_ids


def test_every_daemon_answers_ping(cluster, populated_client):
    client, _ = populated_client
    for node_id in cluster.node_ids:
        assert client.ping(node_id)


def test_records_are_spread_across_daemons(cluster, populated_client):
    holders = [
        daemon
        for daemon in cluster.daemons
        if daemon.index_store.entries_on_node(daemon.node_id) > 0
    ]
    assert len(holders) >= 2, "all index entries landed on one daemon"


def test_fifty_lookups_all_succeed_over_the_wire(
    cluster, corpus, populated_client, tmp_path
):
    client, tracer = populated_client
    entry_classes = client.scheme.entry_classes()
    rng = random.Random(SEED)
    started = time.monotonic()
    found = 0
    for _ in range(NUM_LOOKUPS):
        record = rng.choice(corpus.records)
        keyset = rng.choice(entry_classes)
        query = FieldQuery.msd_of(record).restrict(sorted(keyset))
        trace = client.search(query, record)
        found += trace.found
        assert not trace.gave_up
    elapsed = time.monotonic() - started
    assert found == NUM_LOOKUPS, f"only {found}/{NUM_LOOKUPS} lookups found"
    assert elapsed < 60.0, f"lookups took {elapsed:.1f}s on loopback"

    # The observability trace survives the wire path end to end.
    trace_path = tmp_path / "cluster_trace.jsonl"
    events = tracer.write_jsonl(str(trace_path))
    assert events > 0
    trace_file = load_trace(str(trace_path))
    finished = [span for span in trace_file.lookups if span.end is not None]
    assert len(finished) >= NUM_LOOKUPS
    assert all(span.found for span in finished)


def test_search_is_reproducible_across_clients(cluster, corpus):
    """Same seed, fresh client: identical results and targets.

    Interaction counts may differ (earlier lookups seed the daemons'
    shortcut caches), but what is found must not.
    """
    outcomes = []
    for _ in range(2):
        client = cluster.client()
        rng = random.Random(99)
        run = []
        for _ in range(10):
            record = rng.choice(corpus.records)
            query = FieldQuery.msd_of(record).restrict(["author"])
            trace = client.search(query, record)
            run.append((trace.found, trace.result_msd))
        client.close()
        outcomes.append(run)
    assert outcomes[0] == outcomes[1]
