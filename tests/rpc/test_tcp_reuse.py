"""TCP connection reuse and batched (pipelined) request tests.

The transports here are built with a tiny ``udp_max_bytes`` so every
exchange takes the TCP fallback path -- the one connection pooling
accelerates -- without needing megabyte payloads.
"""

import asyncio
import socket
import threading

import pytest

from repro.net.message import Message, MessageKind
from repro.net.transport import DeliveryError, TransportError
from repro.perf import snapshot
from repro.rpc.transport import AsyncioTransport


@pytest.fixture
def loop():
    event_loop = asyncio.new_event_loop()
    thread = threading.Thread(target=event_loop.run_forever, daemon=True)
    thread.start()
    yield event_loop
    event_loop.call_soon_threadsafe(event_loop.stop)
    thread.join(timeout=5)
    event_loop.close()


def run(loop, coroutine):
    return asyncio.run_coroutine_threadsafe(coroutine, loop).result(timeout=10)


def make_server(loop, **options):
    transport = AsyncioTransport(
        request_timeout_ms=300.0, max_retries=1, udp_max_bytes=64, **options
    )
    run(loop, transport.start("127.0.0.1", 0))
    return transport


def make_client(loop, **options):
    transport = AsyncioTransport(
        request_timeout_ms=300.0, max_retries=1, udp_max_bytes=64, **options
    )
    run(loop, transport.start())
    return transport


def echo_handler(message):
    return message.reply(MessageKind.QUERY_RESPONSE, message.payload)


def request_to(name, payload=("x" * 100,)):
    return Message(
        kind=MessageKind.QUERY_REQUEST,
        source="user:0",
        destination=name,
        payload=payload,
    )


def dead_address():
    """An address nothing will ever listen on."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    address = probe.getsockname()
    probe.close()
    return address


class TestConnectionReuse:
    def test_sequential_requests_share_one_connection(self, loop):
        server, client = make_server(loop), make_client(loop)
        try:
            server.register("node:1", echo_handler)
            client.add_route("node:1", server.listen_address)
            before = snapshot()
            for _ in range(5):
                response = client.send(request_to("node:1"))
                assert response is not None
            after = snapshot()
            assert after["rpc_tcp_connects"] == before["rpc_tcp_connects"] + 1
            assert after["rpc_tcp_reuses"] == before["rpc_tcp_reuses"] + 4
        finally:
            run(loop, client.close())
            run(loop, server.close())

    def test_pool_cap_zero_disables_reuse(self, loop):
        server = make_server(loop)
        client = make_client(loop, tcp_pool_cap=0)
        try:
            server.register("node:1", echo_handler)
            client.add_route("node:1", server.listen_address)
            before = snapshot()
            for _ in range(3):
                assert client.send(request_to("node:1")) is not None
            after = snapshot()
            assert after["rpc_tcp_connects"] == before["rpc_tcp_connects"] + 3
            assert after["rpc_tcp_reuses"] == before["rpc_tcp_reuses"]
        finally:
            run(loop, client.close())
            run(loop, server.close())

    def test_stale_pooled_connection_retried_on_fresh_one(self, loop):
        server, client = make_server(loop), make_client(loop)
        try:
            server.register("node:1", echo_handler)
            client.add_route("node:1", server.listen_address)
            assert client.send(request_to("node:1")) is not None

            # The server drops the idle connection the client pooled.
            def drop_server_conns():
                for writer in list(server._server_conns):
                    writer.close()

            run(loop, asyncio.sleep(0))
            loop.call_soon_threadsafe(drop_server_conns)
            run(loop, asyncio.sleep(0.05))

            before = snapshot()
            payload = ("after-stale-" + "y" * 100,)
            response = client.send(request_to("node:1", payload))
            assert response is not None
            assert response.payload == payload
            after = snapshot()
            # The stale checkout burned one fresh connect; no double retry.
            assert after["rpc_tcp_connects"] == before["rpc_tcp_connects"] + 1
        finally:
            run(loop, client.close())
            run(loop, server.close())

    def test_pool_stays_bounded_under_concurrency(self, loop):
        server = make_server(loop)
        client = make_client(loop, tcp_pool_cap=2)
        try:
            server.register("node:1", echo_handler)
            client.add_route("node:1", server.listen_address)
            messages = [request_to("node:1", (f"m{i}",)) for i in range(8)]
            results = client.send_many(messages)
            assert len(results) == 8
            pooled = sum(len(pool) for pool in client._tcp_pool.values())
            assert pooled <= 2
        finally:
            run(loop, client.close())
            run(loop, server.close())


class TestBatchedRequests:
    def test_send_many_returns_aligned_responses(self, loop):
        server, client = make_server(loop), make_client(loop)
        try:
            server.register("node:1", echo_handler)
            client.add_route("node:1", server.listen_address)
            before = snapshot()
            messages = [request_to("node:1", (f"req-{i}",)) for i in range(6)]
            results = client.send_many(messages)
            assert [r.payload for r in results] == [m.payload for m in messages]
            after = snapshot()
            assert after["rpc_batches"] == before["rpc_batches"] + 1
            assert (
                after["rpc_batched_messages"]
                == before["rpc_batched_messages"] + 6
            )
        finally:
            run(loop, client.close())
            run(loop, server.close())

    def test_request_many_reports_failures_per_item(self, loop):
        server, client = make_server(loop), make_client(loop)
        try:
            server.register("node:1", echo_handler)
            client.add_route("node:1", server.listen_address)
            client.add_route("node:dead", dead_address())
            messages = [
                request_to("node:1", ("ok-1",)),
                request_to("node:dead", ("doomed",)),
                request_to("node:1", ("ok-2",)),
            ]
            results = run(loop, client.request_many(messages))
            assert results[0].payload == ("ok-1",)
            assert isinstance(results[1], DeliveryError)
            assert results[2].payload == ("ok-2",)
        finally:
            run(loop, client.close())
            run(loop, server.close())

    def test_send_many_raises_first_failure_after_all_settle(self, loop):
        server, client = make_server(loop), make_client(loop)
        try:
            server.register("node:1", echo_handler)
            client.add_route("node:1", server.listen_address)
            client.add_route("node:dead", dead_address())
            with pytest.raises(DeliveryError):
                client.send_many(
                    [request_to("node:dead"), request_to("node:1")]
                )
        finally:
            run(loop, client.close())
            run(loop, server.close())

    def test_send_many_refuses_loop_thread(self, loop):
        client = make_client(loop)
        try:
            failure = []

            def on_loop():
                try:
                    client.send_many([request_to("node:1")])
                except TransportError as error:
                    failure.append(error)

            run(loop, asyncio.sleep(0))
            done = threading.Event()
            loop.call_soon_threadsafe(lambda: (on_loop(), done.set()))
            assert done.wait(timeout=5)
            assert failure and "event-loop thread" in str(failure[0])
        finally:
            run(loop, client.close())

    def test_send_many_empty_batch_is_noop(self, loop):
        client = make_client(loop)
        try:
            assert client.send_many([]) == []
        finally:
            run(loop, client.close())
