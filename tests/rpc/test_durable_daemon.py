"""Durable daemons: kill/restart cycles, power loss, and SIGTERM flush.

Two harnesses cover the restart matrix:

- :class:`LocalCluster` with a ``data_root`` runs in-process daemons
  whose ``kill_node`` drops the WAL handle without flushing (SIGKILL
  semantics) and optionally tears the unsynced tail (power loss);
- ``python -m repro.node --data-dir`` as a real subprocess gets actual
  SIGKILL/SIGTERM, proving the recovery path against a process the
  kernel really killed.
"""

import os
import random
import signal
import subprocess
import sys
import time

import pytest

from repro.core.query import FieldQuery
from repro.rpc.cluster import LocalCluster
from repro.storage.durable import replay_wal
from repro.workload.corpus import CorpusConfig, SyntheticCorpus

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "src",
)
NUM_NODES = 3
NUM_RECORDS = 12
SEED = 77


@pytest.fixture(scope="module")
def corpus():
    return SyntheticCorpus(
        CorpusConfig(num_articles=NUM_RECORDS, num_authors=5, seed=SEED)
    )


def durable_cluster(tmp_path, fsync="interval:8"):
    return LocalCluster(
        NUM_NODES,
        substrate="chord",
        cache="single",
        replication=2,
        data_root=str(tmp_path / "cluster"),
        fsync=fsync,
    )


def populate(cluster, corpus):
    client = cluster.client()
    for record in corpus.records:
        client.insert_record(record)
    return client


def assert_all_found(client, corpus, lookups=10, seed=SEED):
    rng = random.Random(seed)
    for _ in range(lookups):
        record = rng.choice(corpus.records)
        query = FieldQuery.msd_of(record).restrict(["author"])
        trace = client.search(query, record)
        assert trace.found, f"lost {query.key()} after restart"


def test_kill_restart_recovers_entries_and_identity(tmp_path, corpus):
    with durable_cluster(tmp_path) as cluster:
        client = populate(cluster, corpus)
        assert_all_found(client, corpus)
        victim = cluster.daemons[1]
        victim_node = victim.node_id
        held_before = victim.index_store.entries_on_node(victim_node)
        assert held_before > 0, "victim held nothing; test is vacuous"

        cluster.kill_node(1)
        restarted = cluster.restart_node(1)

        assert restarted.node_id == victim_node  # identity from the WAL
        assert restarted.recovery is not None
        assert restarted.recovery.recovered
        assert restarted.recovery.index_entries > 0
        # Every live daemon agrees on the membership again.
        for daemon in cluster.daemons:
            assert set(daemon.peers) == set(cluster.node_ids)
        # Zero lost acknowledged entries: the recovered daemon holds at
        # least what it held at the kill (repair may add more).
        held_after = restarted.index_store.entries_on_node(victim_node)
        assert held_after >= held_before
        client.refresh_members(cluster.daemons[0].address)
        assert_all_found(client, corpus)
        client.close()


def test_power_loss_tears_the_tail_but_lookups_survive(tmp_path, corpus):
    # fsync=never maximizes the unsynced tail: the power loss is
    # guaranteed to tear real bytes, and replication must cover them.
    with durable_cluster(tmp_path, fsync="never") as cluster:
        client = populate(cluster, corpus)
        cluster.kill_node(1, power_loss=True)
        restarted = cluster.restart_node(1)
        assert restarted.recovery is not None
        assert restarted.recovery.truncated_bytes > 0  # the torn record
        client.refresh_members(cluster.daemons[0].address)
        assert_all_found(client, corpus)
        client.close()


def test_double_restart_is_idempotent(tmp_path, corpus):
    """Kill/restart the same daemon twice: replaying the journal twice
    must not duplicate entries or change what the node holds."""
    with durable_cluster(tmp_path) as cluster:
        client = populate(cluster, corpus)
        victim_node = cluster.daemons[2].node_id
        cluster.kill_node(2)
        first = cluster.restart_node(2)
        held_first = sorted(first.index_store.items_at(victim_node))
        cluster.kill_node(2)
        second = cluster.restart_node(2)
        assert sorted(second.index_store.items_at(victim_node)) == held_first
        client.refresh_members(cluster.daemons[0].address)
        assert_all_found(client, corpus)
        client.close()


# -- real subprocess: actual SIGKILL / SIGTERM ------------------------------


def spawn_daemon(data_dir, fsync="never"):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.node",
            "--listen", "127.0.0.1:0",
            "--substrate", "chord",
            "--scheme", "simple",
            "--data-dir", data_dir,
            "--fsync", fsync,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    ready = process.stdout.readline().strip()
    # READY keeps its exact 3-token protocol; durability facts go on a
    # separate RECOVERY line so existing wrappers keep working.
    parts = ready.split(" ")
    assert len(parts) == 3 and parts[0] == "READY", repr(ready)
    recovery = process.stdout.readline().strip()
    assert recovery.startswith("RECOVERY "), repr(recovery)
    host, _, port = parts[1].rpartition(":")
    fields = dict(
        pair.split("=") for pair in recovery.removeprefix("RECOVERY ").split(" ")
    )
    return process, (host, int(port)), fields


def wire_insert(loop_address, corpus):
    # Imported here: the module monkeypatches nothing, but ClusterClient
    # needs a private loop thread per call site.
    import asyncio
    import threading

    from repro.rpc.cluster import ClusterClient

    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    client = ClusterClient(loop, loop_address, substrate="chord", scheme="simple")
    try:
        for record in corpus.records[:3]:
            client.insert_record(record)
        record = corpus.records[0]
        query = FieldQuery.msd_of(record).restrict(["author"])
        trace = client.search(query, record)
        return trace.found
    finally:
        client.close()
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=5)
        loop.close()


def test_sigkilled_subprocess_recovers_on_restart(tmp_path, corpus):
    data_dir = str(tmp_path / "node0")
    process, address, fields = spawn_daemon(data_dir)
    try:
        assert fields["entries"] == "0"  # fresh dir: nothing to recover
        assert wire_insert(address, corpus)
        process.send_signal(signal.SIGKILL)
        process.wait(timeout=10)
        assert process.returncode != 0  # killed, not graceful

        restarted, address2, fields2 = spawn_daemon(data_dir)
        try:
            # Zero lost acknowledged entries: unbuffered appends survive
            # SIGKILL under every fsync policy, even "never".
            assert int(fields2["entries"]) > 0
            assert int(fields2["wal_records"]) > 0
            record = corpus.records[0]
            query = FieldQuery.msd_of(record).restrict(["author"])
            import asyncio
            import threading

            from repro.rpc.cluster import ClusterClient

            loop = asyncio.new_event_loop()
            thread = threading.Thread(target=loop.run_forever, daemon=True)
            thread.start()
            client = ClusterClient(
                loop, address2, substrate="chord", scheme="simple"
            )
            try:
                assert client.search(query, record).found
            finally:
                client.close()
                loop.call_soon_threadsafe(loop.stop)
                thread.join(timeout=5)
                loop.close()
        finally:
            restarted.send_signal(signal.SIGKILL)
            restarted.wait(timeout=10)
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)


def test_sigterm_flushes_before_shutdown_line(tmp_path, corpus):
    data_dir = str(tmp_path / "node0")
    process, address, _ = spawn_daemon(data_dir, fsync="never")
    try:
        assert wire_insert(address, corpus)
        started = time.monotonic()
        process.send_signal(signal.SIGTERM)
        out, err = process.communicate(timeout=10)
        assert process.returncode == 0, err
        # SHUTDOWN is the last line, printed only after the WAL was
        # flushed and fsynced -- so by the time a supervisor sees it,
        # the data dir is durable even under fsync=never.
        assert out.strip().split("\n")[-1] == "SHUTDOWN"
        assert time.monotonic() - started < 10
        ops, report = replay_wal(os.path.join(data_dir, "wal.log"))
        assert ops and not report.repaired  # clean, complete log on disk
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)
