"""End-to-end test of ``python -m repro.node`` as a real subprocess.

Starts one daemon process on an ephemeral loopback port, talks to it
from this process over the wire (publish a record, resolve it), then
shuts it down over the wire and checks the clean exit.
"""

import asyncio
import os
import subprocess
import sys
import threading

import pytest

from repro.core.fields import ARTICLE_SCHEMA, Record
from repro.core.query import FieldQuery
from repro.rpc.cluster import ClusterClient

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "src",
)


@pytest.fixture
def loop():
    event_loop = asyncio.new_event_loop()
    thread = threading.Thread(target=event_loop.run_forever, daemon=True)
    thread.start()
    yield event_loop
    event_loop.call_soon_threadsafe(event_loop.stop)
    thread.join(timeout=5)
    event_loop.close()


@pytest.fixture
def daemon_process():
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.node",
            "--listen", "127.0.0.1:0",
            "--substrate", "chord",
            "--scheme", "simple",
            "--cache", "multi",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        ready = process.stdout.readline().strip()
        yield process, ready
    finally:
        if process.poll() is None:
            process.kill()
        process.wait(timeout=10)


def parse_ready(line):
    # "READY host:port node=<hex>"
    assert line.startswith("READY "), f"unexpected first line: {line!r}"
    _, location, node_part = line.split(" ")
    host, _, port = location.rpartition(":")
    return (host, int(port)), int(node_part.removeprefix("node="), 16)


def test_daemon_serves_a_lookup_from_another_process(loop, daemon_process):
    process, ready = daemon_process
    address, node_id = parse_ready(ready)

    client = ClusterClient(
        loop, address, substrate="chord", scheme="simple", cache="multi"
    )
    assert set(client.members) == {node_id}
    assert client.ping(node_id)

    record = Record(
        ARTICLE_SCHEMA,
        {
            "author": "stoica",
            "title": "chord",
            "conf": "sigcomm",
            "year": "2001",
            "size": "12",
        },
    )
    client.insert_record(record)
    query = FieldQuery.msd_of(record).restrict(["author"])
    trace = client.search(query, record)
    assert trace.found
    assert trace.result_msd == FieldQuery.msd_of(record).key()

    # Over-the-wire shutdown: the daemon acknowledges, exits 0, and
    # reports the clean SHUTDOWN line on stdout.
    client.shutdown_daemon(node_id)
    client.close()
    assert process.wait(timeout=10) == 0
    remaining = process.stdout.read()
    assert "SHUTDOWN" in remaining


def test_ready_line_reports_the_bound_port(daemon_process):
    _, ready = daemon_process
    (host, port), node_id = parse_ready(ready)
    assert host == "127.0.0.1"
    assert port > 0
    assert node_id > 0


def spawn_identity_daemon(identity_dir, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.node",
            "--listen", "127.0.0.1:0",
            "--identity-dir", str(identity_dir),
            *extra,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def read_identity_lines(process):
    ready = process.stdout.readline().strip()
    identity = process.stdout.readline().strip()
    assert identity.startswith("IDENTITY pub="), identity
    return ready, identity


def stop(process):
    if process.poll() is None:
        process.terminate()
    process.wait(timeout=10)


def test_identity_dir_pins_node_id_across_restarts(tmp_path):
    """--identity-dir persists the keypair; the pubkey-derived node id
    and the IDENTITY line survive a restart on a new port."""
    identity_dir = tmp_path / "node0"
    first = spawn_identity_daemon(identity_dir)
    try:
        ready_a, identity_a = read_identity_lines(first)
    finally:
        stop(first)
    second = spawn_identity_daemon(identity_dir)
    try:
        ready_b, identity_b = read_identity_lines(second)
    finally:
        stop(second)
    (_, port_a), node_a = parse_ready(ready_a)
    (_, port_b), node_b = parse_ready(ready_b)
    assert node_a == node_b, "identity-derived node id changed"
    assert identity_a == identity_b, "public key changed across restart"
    assert (identity_dir / "identity.key").exists()


def test_require_signed_daemon_serves_a_signing_client(loop, tmp_path):
    from repro.sec import NodeIdentity

    process = spawn_identity_daemon(tmp_path / "signed", "--require-signed")
    try:
        ready, _ = read_identity_lines(process)
        address, node_id = parse_ready(ready)
        client = ClusterClient(
            loop,
            address,
            identity=NodeIdentity("cli-test-client"),
            require_signed=True,
        )
        try:
            assert client.ping(node_id)
        finally:
            client.close()
    finally:
        stop(process)


def test_require_signed_without_identity_dir_is_a_usage_error():
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.run(
        [
            sys.executable, "-m", "repro.node",
            "--listen", "127.0.0.1:0",
            "--require-signed",
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=30,
    )
    assert process.returncode == 2
    assert "--identity-dir" in process.stderr
