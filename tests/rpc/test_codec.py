"""Unit tests for the versioned wire codec (repro.rpc.codec)."""

import pytest

from repro.net.message import Message, MessageKind, TrafficCategory
from repro.rpc.codec import (
    ENVELOPE_BYTES,
    FRAME_ACK,
    FRAME_ERROR,
    FRAME_REQUEST,
    FRAME_RESPONSE,
    MAGIC,
    WIRE_VERSION,
    CodecError,
    StreamUnframer,
    decode_error,
    decode_frame,
    decode_message,
    encode_error,
    encode_frame,
    encode_message,
    encode_stream,
)


def sample_message(**overrides):
    fields = dict(
        kind=MessageKind.QUERY_REQUEST,
        source="user:0",
        destination="node:2a",
        payload=("author=knuth",),
    )
    fields.update(overrides)
    return Message(**fields)


class TestMessageRoundTrip:
    @pytest.mark.parametrize("kind", list(MessageKind))
    def test_every_kind_round_trips(self, kind):
        message = sample_message(kind=kind)
        assert decode_message(encode_message(message)) == message

    def test_empty_payload(self):
        message = sample_message(payload=())
        assert decode_message(encode_message(message)) == message

    def test_unicode_payload_and_names(self):
        message = sample_message(
            source="user:héllo",
            destination="node:ünïcode",
            payload=("author=Бо́рхес", "title=文字", ""),
        )
        assert decode_message(encode_message(message)) == message

    def test_explicit_size_survives(self):
        message = sample_message(
            kind=MessageKind.FILE_RESPONSE, explicit_size=123456
        )
        decoded = decode_message(encode_message(message))
        assert decoded.explicit_size == 123456
        assert decoded == message

    def test_route_hops_survive(self):
        message = sample_message(route_hops=17)
        assert decode_message(encode_message(message)).route_hops == 17

    def test_category_override_survives(self):
        # CONTROL is maintenance by default; a forced category must win.
        message = sample_message(
            kind=MessageKind.CONTROL, category=TrafficCategory.NORMAL
        )
        assert (
            decode_message(encode_message(message)).category
            is TrafficCategory.NORMAL
        )

    def test_encoding_is_deterministic(self):
        assert encode_message(sample_message()) == encode_message(
            sample_message()
        )


class TestEncodeLimits:
    def test_route_hops_zero_rejected(self):
        # The dataclass allows it; the wire format does not.
        message = sample_message(route_hops=0)
        with pytest.raises(CodecError):
            encode_message(message)

    def test_route_hops_above_u16_rejected(self):
        with pytest.raises(CodecError):
            encode_message(sample_message(route_hops=70000))

    def test_oversized_endpoint_name_rejected(self):
        with pytest.raises(CodecError):
            encode_message(sample_message(source="s" * 70000))

    def test_negative_explicit_size_rejected(self):
        with pytest.raises(CodecError):
            encode_message(sample_message(explicit_size=-1))


class TestDecodeRejection:
    def test_truncated_body_rejected(self):
        body = encode_message(sample_message())
        for cut in (1, len(body) // 2, len(body) - 1):
            with pytest.raises(CodecError):
                decode_message(body[:cut])

    def test_trailing_bytes_rejected(self):
        body = encode_message(sample_message())
        with pytest.raises(CodecError):
            decode_message(body + b"\x00")

    def test_unknown_kind_code_rejected(self):
        body = bytearray(encode_message(sample_message()))
        body[0] = 0xEE
        with pytest.raises(CodecError):
            decode_message(bytes(body))

    def test_unknown_category_code_rejected(self):
        body = bytearray(encode_message(sample_message()))
        body[1] = 0xEE
        with pytest.raises(CodecError):
            decode_message(bytes(body))

    def test_unknown_flag_bits_rejected(self):
        body = bytearray(encode_message(sample_message()))
        body[2] |= 0x80
        with pytest.raises(CodecError):
            decode_message(bytes(body))

    def test_invalid_utf8_rejected(self):
        message = sample_message(payload=("abcd",))
        body = bytearray(encode_message(message))
        body[-2] = 0xFF  # corrupt a payload byte into invalid UTF-8
        with pytest.raises(CodecError):
            decode_message(bytes(body))

    def test_garbage_rejected(self):
        with pytest.raises(CodecError):
            decode_message(b"\x99" * 40)


class TestEnvelope:
    def test_frame_round_trips(self):
        body = encode_message(sample_message())
        frame = encode_frame(FRAME_REQUEST, 42, body)
        assert len(frame) == ENVELOPE_BYTES + len(body)
        assert decode_frame(frame) == (FRAME_REQUEST, 42, body)

    def test_ack_frame_has_empty_body(self):
        frame_type, request_id, body = decode_frame(encode_frame(FRAME_ACK, 7))
        assert (frame_type, request_id, body) == (FRAME_ACK, 7, b"")

    def test_error_frame_round_trips(self):
        frame = encode_frame(FRAME_ERROR, 9, encode_error("crashed"))
        frame_type, request_id, body = decode_frame(frame)
        assert frame_type == FRAME_ERROR
        assert decode_error(body) == "crashed"

    def test_bad_magic_rejected(self):
        frame = bytearray(encode_frame(FRAME_ACK, 1))
        frame[0:2] = b"XX"
        with pytest.raises(CodecError, match="magic"):
            decode_frame(bytes(frame))

    def test_wrong_version_rejected(self):
        # Version 2 is the signed envelope (tests/sec); 3 is from the future.
        frame = bytearray(encode_frame(FRAME_ACK, 1))
        frame[2] = WIRE_VERSION + 2
        with pytest.raises(CodecError, match="version"):
            decode_frame(bytes(frame))

    def test_unknown_frame_type_rejected(self):
        frame = bytearray(encode_frame(FRAME_ACK, 1))
        frame[3] = 0x7F
        with pytest.raises(CodecError):
            decode_frame(bytes(frame))

    def test_truncated_envelope_rejected(self):
        with pytest.raises(CodecError):
            decode_frame(MAGIC + bytes([WIRE_VERSION]))

    def test_magic_is_stable(self):
        assert encode_frame(FRAME_RESPONSE, 3)[:2] == MAGIC == b"RP"


class TestStreamFraming:
    def test_single_frame_round_trips(self):
        frame = encode_frame(FRAME_ACK, 5)
        unframer = StreamUnframer()
        assert unframer.feed(encode_stream(frame)) == [frame]
        assert unframer.pending_bytes == 0

    def test_fragmented_delivery_reassembles(self):
        frame = encode_frame(FRAME_REQUEST, 6, encode_message(sample_message()))
        stream = encode_stream(frame)
        unframer = StreamUnframer()
        collected = []
        for offset in range(len(stream)):
            collected += unframer.feed(stream[offset:offset + 1])
        assert collected == [frame]

    def test_coalesced_delivery_splits(self):
        frames = [encode_frame(FRAME_ACK, n) for n in range(3)]
        stream = b"".join(encode_stream(frame) for frame in frames)
        assert StreamUnframer().feed(stream) == frames

    def test_oversized_stream_frame_rejected(self):
        unframer = StreamUnframer(max_frame_bytes=16)
        with pytest.raises(CodecError):
            unframer.feed((1 << 20).to_bytes(4, "big"))
