"""Property tests for the version-2 signed frame extension.

Hypothesis drives sign_frame/decode_frame_signed across the message
space: the round trip preserves the body and the envelope verifies,
every named corruption is rejected (truncated signature, wrong public
key length marker, a signed flag with no trailer), and a strict
version-1 decode path never accepts version-2 bytes.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.message import Message, MessageKind, TrafficCategory
from repro.rpc.codec import (
    ENVELOPE_BYTES,
    FRAME_REQUEST,
    FRAME_RESPONSE,
    SIGNED_PUBKEY_BYTES,
    SIGNED_TRAILER_BYTES,
    WIRE_VERSION,
    WIRE_VERSION_SIGNED,
    CodecError,
    decode_frame_signed,
    decode_message,
    encode_frame,
    encode_message,
    sign_frame,
)
from repro.sec import NodeIdentity, verify_signature

import pytest

text = st.text(max_size=32)
names = st.text(min_size=1, max_size=24)

messages = st.builds(
    Message,
    kind=st.sampled_from(list(MessageKind)),
    source=names,
    destination=names,
    payload=st.tuples() | st.lists(text, max_size=6).map(tuple),
    explicit_size=st.none() | st.integers(min_value=0, max_value=2**64 - 1),
    route_hops=st.integers(min_value=1, max_value=0xFFFF),
    category=st.sampled_from(list(TrafficCategory)),
)

#: One deterministic signer for the whole module: key generation with
#: the pure-python backend is the slow part, not signing.
IDENTITY = NodeIdentity("property-signer")
OTHER = NodeIdentity("property-other")


def signed_frame(message, request_id=7, frame_type=FRAME_REQUEST):
    body = encode_message(message, signed=True)
    return sign_frame(frame_type, request_id, body, IDENTITY)


@given(messages, st.integers(min_value=0, max_value=2**64 - 1))
@settings(max_examples=40, deadline=None)
def test_signed_round_trip_preserves_everything(message, request_id):
    frame = signed_frame(message, request_id)
    frame_type, decoded_id, body, envelope = decode_frame_signed(frame)
    assert frame_type == FRAME_REQUEST
    assert decoded_id == request_id
    assert envelope is not None
    assert envelope.public_key == IDENTITY.public_key
    assert decode_message(body, signed=True) == message
    assert verify_signature(
        envelope.public_key, envelope.signed, envelope.signature
    )


@given(messages)
@settings(max_examples=40, deadline=None)
def test_signature_covers_all_but_itself(message):
    frame = signed_frame(message)
    _, _, _, envelope = decode_frame_signed(frame)
    assert envelope.signed == bytes(frame[:-64])
    assert envelope.signature == bytes(frame[-64:])


@given(messages)
@settings(max_examples=40, deadline=None)
def test_unsigned_frames_are_bit_identical_to_v1(message):
    """Signing stays opt-in: the unsigned encoding never changes."""
    body = encode_message(message)
    frame = encode_frame(FRAME_REQUEST, 3, body)
    assert frame[2] == WIRE_VERSION
    frame_type, request_id, decoded, envelope = decode_frame_signed(frame)
    assert envelope is None
    assert decode_message(decoded) == message


@given(messages, st.integers(min_value=1, max_value=63))
@settings(max_examples=40, deadline=None)
def test_truncated_signature_rejected(message, cut):
    frame = signed_frame(message)
    with pytest.raises(CodecError):
        decode_frame_signed(frame[:-cut])


@given(messages)
@settings(max_examples=40, deadline=None)
def test_tampered_body_fails_verification(message):
    """Structure still parses, but the signature no longer matches."""
    frame = bytearray(signed_frame(message))
    frame[ENVELOPE_BYTES] ^= 0xFF  # flip bits in the body's first byte
    try:
        _, _, _, envelope = decode_frame_signed(bytes(frame))
    except CodecError:
        return  # corrupted into structural invalidity: also a rejection
    assert not verify_signature(
        envelope.public_key, envelope.signed, envelope.signature
    )


@given(messages)
@settings(max_examples=40, deadline=None)
def test_wrong_signer_fails_verification(message):
    frame = bytearray(signed_frame(message))
    # Swap in the other identity's public key, leaving the signature.
    key_at = len(frame) - SIGNED_TRAILER_BYTES + 1
    frame[key_at:key_at + SIGNED_PUBKEY_BYTES] = OTHER.public_key
    _, _, _, envelope = decode_frame_signed(bytes(frame))
    assert envelope.public_key == OTHER.public_key
    assert not verify_signature(
        envelope.public_key, envelope.signed, envelope.signature
    )


class TestNamedRejections:
    """The four corruption cases the wire format must name and refuse."""

    def frame(self):
        message = Message(
            kind=MessageKind.QUERY_REQUEST,
            source="user:1",
            destination="node:2",
            payload=("author=knuth",),
        )
        return signed_frame(message)

    def test_truncated_signature(self):
        frame = self.frame()
        with pytest.raises(CodecError, match="truncated"):
            decode_frame_signed(frame[:ENVELOPE_BYTES + 3])

    def test_wrong_pubkey_length_marker(self):
        frame = bytearray(self.frame())
        frame[len(frame) - SIGNED_TRAILER_BYTES] = 16  # claims a 16B key
        with pytest.raises(CodecError, match="public key length"):
            decode_frame_signed(bytes(frame))

    def test_signed_flag_with_no_envelope(self):
        """A v1 frame around a signed-flagged body is a stripping attack."""
        message = Message(
            kind=MessageKind.CONTROL,
            source="a",
            destination="b",
            payload=("ping",),
        )
        body = encode_message(message, signed=True)
        frame = encode_frame(FRAME_REQUEST, 9, body)
        _, _, decoded, envelope = decode_frame_signed(frame)
        assert envelope is None
        with pytest.raises(CodecError, match="flag"):
            decode_message(decoded, signed=False)

    def test_unsigned_body_inside_signed_frame(self):
        """The converse bolt-on: a trailer around an unflagged body."""
        message = Message(
            kind=MessageKind.CONTROL,
            source="a",
            destination="b",
            payload=("ping",),
        )
        body = encode_message(message)  # no signed flag
        frame = sign_frame(FRAME_RESPONSE, 9, body, IDENTITY)
        _, _, decoded, envelope = decode_frame_signed(frame)
        assert envelope is not None
        with pytest.raises(CodecError, match="signed"):
            decode_message(decoded, signed=True)

    def test_v1_decoder_rejects_v2_version_byte(self):
        """A deployment pinned to version 1 refuses signed frames whole."""
        frame = bytearray(self.frame())
        assert frame[2] == WIRE_VERSION_SIGNED
        # Strict v1 semantics: only WIRE_VERSION is acceptable.  The
        # shipped decoder speaks both, so emulate the pin by checking
        # the version byte the way the v1-era decoder did.
        assert frame[2] != WIRE_VERSION
        frame[2] = 3  # and a future version neither decoder knows
        with pytest.raises(CodecError, match="version"):
            decode_frame_signed(bytes(frame))

    def test_trailer_swallowing_whole_body(self):
        """A v2 frame too short for envelope + trailer cannot go negative."""
        frame = self.frame()
        short = frame[:ENVELOPE_BYTES + SIGNED_TRAILER_BYTES - 1]
        with pytest.raises(CodecError, match="trailer"):
            decode_frame_signed(
                bytes(short)
            )
