"""Regression tests: membership discovery is bounded, never unbounded.

A ``ClusterClient`` pointed at a dead bootstrap must fail with a clear
:class:`TransportError` within its explicit retry budget -- not stall
behind the transport's own retry ladder -- and ``refresh_members``
against a dead bootstrap must leave the existing membership view
intact.
"""

import socket
import time

import pytest

from repro.net.transport import TransportError
from repro.rpc.cluster import ClusterClient, LocalCluster


def dead_address():
    """An address that was never listening (bind, read, close)."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    address = probe.getsockname()
    probe.close()
    return address


class TestDiscoveryBudget:
    def test_dead_bootstrap_fails_within_budget(self, loop_factory):
        loop = loop_factory()
        started = time.monotonic()
        with pytest.raises(TransportError) as excinfo:
            ClusterClient(
                loop,
                dead_address(),
                discover_timeout_ms=150.0,
                discover_retries=1,
            )
        elapsed = time.monotonic() - started
        # 2 attempts x 150ms plus slack; the point is "well under the
        # transport's own multi-second retry ladder".
        assert elapsed < 2.0
        assert "did not answer discovery" in str(excinfo.value)
        assert "2 attempts" in str(excinfo.value)

    def test_constructor_validates_budget(self, loop_factory):
        loop = loop_factory()
        with pytest.raises(ValueError):
            ClusterClient(loop, dead_address(), discover_timeout_ms=0.0)
        with pytest.raises(ValueError):
            ClusterClient(loop, dead_address(), discover_retries=-1)

    def test_refresh_members_keeps_view_on_dead_bootstrap(self):
        with LocalCluster(2) as cluster:
            client = cluster.client(
                discover_timeout_ms=150.0, discover_retries=0
            )
            try:
                before = dict(client.members)
                with pytest.raises(TransportError):
                    client.refresh_members(dead_address())
                assert client.members == before
                # The surviving view still routes: a live daemon answers.
                assert client.ping(sorted(client.members)[0])
            finally:
                client.close()


@pytest.fixture
def loop_factory():
    """Background loops torn down after the test."""
    import asyncio
    import threading

    loops = []

    def make():
        event_loop = asyncio.new_event_loop()
        thread = threading.Thread(target=event_loop.run_forever, daemon=True)
        thread.start()
        loops.append((event_loop, thread))
        return event_loop

    yield make
    for event_loop, thread in loops:
        event_loop.call_soon_threadsafe(event_loop.stop)
        thread.join(timeout=5)
        event_loop.close()
