"""Unit tests for text table and bar-chart rendering."""

import pytest

from repro.analysis.tables import bar_chart, format_table


class TestFormatTable:
    def test_alignment(self):
        table = format_table(
            ["scheme", "value"], [["simple", 1], ["flat", 20]]
        )
        lines = table.splitlines()
        assert lines[0].startswith("scheme")
        assert len(lines) == 4  # header, separator, two rows
        assert lines[2].index("1") == lines[3].index("2")

    def test_title(self):
        table = format_table(["a"], [[1]], title="My Table")
        assert table.splitlines()[0] == "My Table"

    def test_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        table = format_table(["x"], [[0.12345], [12.345], [12345.6]])
        assert "0.1234" in table or "0.1235" in table
        assert "12.35" in table or "12.34" in table
        assert "12,346" in table

    def test_int_thousands(self):
        assert "1,000" in format_table(["x"], [[1000]])


class TestBarChart:
    def test_bars_proportional(self):
        chart = bar_chart({"a": 10.0, "b": 5.0}, width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_title_and_unit(self):
        chart = bar_chart({"a": 1.0}, title="T", unit="%")
        assert chart.splitlines()[0] == "T"
        assert "%" in chart

    def test_zero_peak(self):
        chart = bar_chart({"a": 0.0})
        assert "#" not in chart

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({})
