"""Unit tests for least-squares power-law fitting (Section V-C)."""

import math
import random

import pytest

from repro.analysis.powerlaw import fit_power_law


class TestExactFits:
    def test_perfect_power_law_recovered(self):
        ranks = list(range(1, 101))
        probabilities = [0.2 / rank**0.8 for rank in ranks]
        fit = fit_power_law(ranks, probabilities)
        assert fit.k == pytest.approx(0.2, rel=1e-6)
        assert fit.alpha == pytest.approx(0.8, rel=1e-6)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        fit = fit_power_law([1, 2, 4, 8], [1.0, 0.5, 0.25, 0.125])
        assert fit.alpha == pytest.approx(1.0)
        assert fit.predict(16) == pytest.approx(1 / 16)

    def test_noisy_data_still_power_law(self):
        rng = random.Random(5)
        ranks = list(range(1, 201))
        probabilities = [
            (0.1 / rank**0.6) * math.exp(rng.gauss(0, 0.1)) for rank in ranks
        ]
        fit = fit_power_law(ranks, probabilities)
        assert fit.alpha == pytest.approx(0.6, abs=0.05)
        assert fit.is_power_law

    def test_non_power_law_flagged(self):
        ranks = list(range(1, 60))
        rng = random.Random(9)
        probabilities = [abs(rng.gauss(0.5, 0.3)) + 1e-6 for _ in ranks]
        fit = fit_power_law(ranks, probabilities)
        assert not fit.is_power_law

    def test_paper_distribution_fits(self):
        """Sampling the paper's popularity model and fitting recovers a
        power law (the Figure 9 observation)."""
        from repro.workload.popularity import PowerLawPopularity

        model = PowerLawPopularity.for_population(1_000)
        probabilities = [model.probability(rank) for rank in range(1, 1_001)]
        fit = fit_power_law(list(range(1, 1_001)), probabilities)
        assert fit.is_power_law
        # pmf of CDF c*i^a behaves like a power law of exponent 1-a = 0.7.
        assert fit.alpha == pytest.approx(0.7, abs=0.05)


class TestValidation:
    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [0.5])

    def test_zero_probabilities_skipped(self):
        fit = fit_power_law([1, 2, 3, 4], [0.5, 0.0, 0.25 * (2 / 3) ** 1, 0.125])
        assert fit.alpha > 0

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            fit_power_law([1], [0.5])
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [0.5, 0.0])

    def test_degenerate_x(self):
        with pytest.raises(ValueError):
            fit_power_law([3, 3], [0.5, 0.25])

    def test_predict_validates_rank(self):
        fit = fit_power_law([1, 2], [0.5, 0.25])
        with pytest.raises(ValueError):
            fit.predict(0)
