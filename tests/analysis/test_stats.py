"""Unit tests for distribution helpers and streaming quantile collectors."""

import random

import pytest

from repro.analysis.stats import (
    ExactQuantiles,
    LogBucketQuantiles,
    ccdf_points,
    lorenz_skew,
    percentile,
    rank_ordered,
    summarize,
)


class TestSummarize:
    def test_basic(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0])
        assert stats["mean"] == 2.5
        assert stats["min"] == 1.0 and stats["max"] == 4.0
        assert stats["median"] == 2.5
        assert stats["count"] == 4

    def test_odd_median(self):
        assert summarize([3.0, 1.0, 2.0])["median"] == 2.0

    def test_std(self):
        stats = summarize([2.0, 2.0, 2.0])
        assert stats["std"] == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


class TestPercentile:
    def test_nearest_rank(self):
        values = list(range(1, 101))  # 1..100
        assert percentile(values, 0.50) == 50
        assert percentile(values, 0.95) == 95
        assert percentile(values, 0.99) == 99

    def test_extremes(self):
        assert percentile([5.0, 1.0, 9.0], 0.0) == 1.0
        assert percentile([5.0, 1.0, 9.0], 1.0) == 9.0

    def test_unsorted_input(self):
        assert percentile([30.0, 10.0, 20.0], 0.5) == 20.0

    def test_single_value(self):
        assert percentile([7.0], 0.99) == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_fraction_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)


class TestCCDF:
    def test_points(self):
        points = ccdf_points([1, 2, 2, 3])
        assert points == [(1, 0.75), (2, 0.25), (3, 0.0)]

    def test_monotone_decreasing(self):
        points = ccdf_points([5, 1, 3, 3, 9, 2])
        values = [p for _, p in points]
        assert values == sorted(values, reverse=True)

    def test_single_value(self):
        assert ccdf_points([7]) == [(7, 0.0)]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ccdf_points([])


class TestExactQuantiles:
    def test_matches_batch_percentile_bit_for_bit(self):
        rng = random.Random(11)
        samples = [rng.expovariate(0.01) for _ in range(5_000)]
        collector = ExactQuantiles()
        for sample in samples:
            collector.add(sample)
        assert collector.mean == sum(samples) / len(samples)
        for fraction in (0.0, 0.25, 0.50, 0.95, 0.99, 1.0):
            assert collector.percentile(fraction) == percentile(
                samples, fraction
            )

    def test_len_and_count(self):
        collector = ExactQuantiles()
        assert len(collector) == 0
        collector.add(1.0)
        collector.add(2.0)
        assert len(collector) == collector.count == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ExactQuantiles().percentile(0.5)
        with pytest.raises(ValueError):
            ExactQuantiles().mean


class TestLogBucketQuantiles:
    def test_percentiles_within_relative_error(self):
        rng = random.Random(23)
        samples = [rng.expovariate(0.005) for _ in range(50_000)]
        sketch = LogBucketQuantiles()
        for sample in samples:
            sketch.add(sample)
        bound = sketch.relative_error
        assert bound < 0.01  # just under 1% at the default gamma
        for fraction in (0.25, 0.50, 0.90, 0.95, 0.99):
            exact = percentile(samples, fraction)
            estimate = sketch.percentile(fraction)
            assert abs(estimate - exact) <= bound * exact

    def test_mean_is_exact(self):
        samples = [1.5, 2.5, 100.0, 0.25]
        sketch = LogBucketQuantiles()
        for sample in samples:
            sketch.add(sample)
        assert sketch.mean == sum(samples) / len(samples)

    def test_extremes_are_exact(self):
        sketch = LogBucketQuantiles()
        for sample in (3.0, 7.0, 19.0):
            sketch.add(sample)
        assert sketch.percentile(0.0) == 3.0
        assert sketch.percentile(1.0) == 19.0

    def test_memory_is_sample_count_independent(self):
        rng = random.Random(5)
        sketch = LogBucketQuantiles()
        for _ in range(200_000):
            sketch.add(rng.uniform(0.1, 10_000.0))
        # Nine decades fit in ~1,200 buckets; five decades in far fewer.
        assert sketch.bucket_count < 1_000
        assert len(sketch) == 200_000

    def test_zero_samples_counted(self):
        sketch = LogBucketQuantiles()
        for sample in (0.0, 0.0, 0.0, 5.0):
            sketch.add(sample)
        assert sketch.percentile(0.5) == 0.0
        assert sketch.percentile(1.0) == 5.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LogBucketQuantiles().add(-1.0)

    def test_bad_gamma_rejected(self):
        with pytest.raises(ValueError):
            LogBucketQuantiles(gamma=1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            LogBucketQuantiles().percentile(0.5)


class TestRankOrderedAndSkew:
    def test_rank_ordered(self):
        assert rank_ordered([1, 3, 2]) == [3, 2, 1]

    def test_lorenz_skew_uniform(self):
        assert lorenz_skew([1.0] * 100) == pytest.approx(0.1)

    def test_lorenz_skew_concentrated(self):
        values = [100.0] + [0.0] * 99
        assert lorenz_skew(values) == pytest.approx(1.0)

    def test_lorenz_skew_zero_mass(self):
        assert lorenz_skew([0.0, 0.0]) == 0.0

    def test_lorenz_empty_rejected(self):
        with pytest.raises(ValueError):
            lorenz_skew([])
