"""Unit tests for distribution helpers."""

import pytest

from repro.analysis.stats import (
    ccdf_points,
    lorenz_skew,
    percentile,
    rank_ordered,
    summarize,
)


class TestSummarize:
    def test_basic(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0])
        assert stats["mean"] == 2.5
        assert stats["min"] == 1.0 and stats["max"] == 4.0
        assert stats["median"] == 2.5
        assert stats["count"] == 4

    def test_odd_median(self):
        assert summarize([3.0, 1.0, 2.0])["median"] == 2.0

    def test_std(self):
        stats = summarize([2.0, 2.0, 2.0])
        assert stats["std"] == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


class TestPercentile:
    def test_nearest_rank(self):
        values = list(range(1, 101))  # 1..100
        assert percentile(values, 0.50) == 50
        assert percentile(values, 0.95) == 95
        assert percentile(values, 0.99) == 99

    def test_extremes(self):
        assert percentile([5.0, 1.0, 9.0], 0.0) == 1.0
        assert percentile([5.0, 1.0, 9.0], 1.0) == 9.0

    def test_unsorted_input(self):
        assert percentile([30.0, 10.0, 20.0], 0.5) == 20.0

    def test_single_value(self):
        assert percentile([7.0], 0.99) == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_fraction_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)


class TestCCDF:
    def test_points(self):
        points = ccdf_points([1, 2, 2, 3])
        assert points == [(1, 0.75), (2, 0.25), (3, 0.0)]

    def test_monotone_decreasing(self):
        points = ccdf_points([5, 1, 3, 3, 9, 2])
        values = [p for _, p in points]
        assert values == sorted(values, reverse=True)

    def test_single_value(self):
        assert ccdf_points([7]) == [(7, 0.0)]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ccdf_points([])


class TestRankOrderedAndSkew:
    def test_rank_ordered(self):
        assert rank_ordered([1, 3, 2]) == [3, 2, 1]

    def test_lorenz_skew_uniform(self):
        assert lorenz_skew([1.0] * 100) == pytest.approx(0.1)

    def test_lorenz_skew_concentrated(self):
        values = [100.0] + [0.0] * 99
        assert lorenz_skew(values) == pytest.approx(1.0)

    def test_lorenz_skew_zero_mass(self):
        assert lorenz_skew([0.0, 0.0]) == 0.0

    def test_lorenz_empty_rejected(self):
        with pytest.raises(ValueError):
            lorenz_skew([])
