"""Unit tests for the reproduction-report assembler."""


import pytest

from repro.analysis.report import assemble_report, default_results_dir, main


@pytest.fixture
def results_dir(tmp_path):
    directory = tmp_path / "results"
    directory.mkdir()
    (directory / "fig11_interactions.txt").write_text("FIG11 TABLE\n")
    (directory / "tableI_nonindexed.txt").write_text("TABLE I\n")
    (directory / "custom_extra.txt").write_text("EXTRA\n")
    return directory


class TestAssemble:
    def test_sections_in_paper_order(self, results_dir):
        report = assemble_report(results_dir)
        fig11 = report.index("Figure 11")
        table1 = report.index("Table I")
        assert fig11 < table1
        assert "FIG11 TABLE" in report
        assert "TABLE I" in report

    def test_unknown_files_appended(self, results_dir):
        report = assemble_report(results_dir)
        assert "custom_extra" in report
        assert "EXTRA" in report

    def test_missing_sections_listed(self, results_dir):
        report = assemble_report(results_dir)
        assert "Missing sections" in report
        assert "Figure 12" in report

    def test_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            assemble_report(tmp_path / "nope")

    def test_default_results_dir_found(self):
        # The repository ships the directory once benches have run; at
        # minimum the helper returns a benchmarks/results path.
        assert default_results_dir().parts[-2:] == ("benchmarks", "results")


class TestMain:
    def test_stdout(self, results_dir, capsys):
        assert main([str(results_dir)]) == 0
        assert "FIG11 TABLE" in capsys.readouterr().out

    def test_output_file(self, results_dir, tmp_path, capsys):
        target = tmp_path / "report.md"
        assert main([str(results_dir), "-o", str(target)]) == 0
        assert "FIG11 TABLE" in target.read_text()
        assert "wrote" in capsys.readouterr().out

    def test_bad_directory_exit_code(self, tmp_path, capsys):
        assert main([str(tmp_path / "missing")]) == 2
        assert "error" in capsys.readouterr().err
