"""API-surface tests: every public export is importable and documented.

A downstream user navigates the library through ``repro.<package>``
namespaces; these tests pin the advertised surface so refactors cannot
silently drop exports or documentation.
"""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.xmlq",
    "repro.net",
    "repro.dht",
    "repro.storage",
    "repro.core",
    "repro.workload",
    "repro.sim",
    "repro.analysis",
    "repro.baselines",
    "repro.rpc",
    "repro.loadgen",
]


@pytest.mark.parametrize("package_name", PACKAGES)
class TestPackageSurface:
    def test_package_has_docstring(self, package_name):
        package = importlib.import_module(package_name)
        assert package.__doc__ and len(package.__doc__.strip()) > 40

    def test_all_exports_resolve(self, package_name):
        package = importlib.import_module(package_name)
        assert hasattr(package, "__all__") and package.__all__
        for name in package.__all__:
            assert hasattr(package, name), f"{package_name}.{name} missing"

    def test_exported_objects_documented(self, package_name):
        package = importlib.import_module(package_name)
        for name in package.__all__:
            obj = getattr(package, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__, f"{package_name}.{name} lacks a docstring"

    def test_no_duplicate_exports(self, package_name):
        package = importlib.import_module(package_name)
        assert len(package.__all__) == len(set(package.__all__))


class TestPublicClassesDocumented:
    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_public_methods_documented(self, package_name):
        """Every public method of every exported class has a docstring."""
        package = importlib.import_module(package_name)
        for name in package.__all__:
            obj = getattr(package, name)
            if not inspect.isclass(obj):
                continue
            for method_name, method in inspect.getmembers(
                obj, predicate=inspect.isfunction
            ):
                if method_name.startswith("_"):
                    continue
                if method.__qualname__.split(".")[0] != obj.__name__:
                    continue  # inherited from elsewhere
                assert method.__doc__, (
                    f"{package_name}.{name}.{method_name} lacks a docstring"
                )


def test_version_is_exposed():
    import repro

    assert repro.__version__.count(".") == 2
