"""Replica failover, incremental repair, and departed-node hygiene."""


from repro.dht.idspace import hash_key
from repro.dht.ring import IdealRing
from repro.storage.store import DHTStorage, RepairReport

BITS = 32


def build_store(num_nodes=10, replication=3):
    ring = IdealRing(BITS)
    for index in range(num_nodes):
        ring.add_node(hash_key(f"node-{index}", BITS))
    return ring, DHTStorage(ring, replication=replication)


def populate(store, count=40):
    keys = [f"key-{index}" for index in range(count)]
    for key in keys:
        store.put(key, f"value-of-{key}")
    return keys


class TestGetFailover:
    def test_read_survives_crashed_primary(self):
        ring, store = build_store()
        store.put("k", "v")
        primary, *replicas = store.responsible_nodes("k")
        ring.fail_node(primary)
        result = store.get("k")
        assert result.found
        assert result.node in replicas
        assert result.node != primary

    def test_failover_costs_an_extra_hop(self):
        ring, store = build_store()
        store.put("k", "v")
        baseline = store.get("k").hops
        primary = store.responsible_nodes("k")[0]
        ring.fail_node(primary)
        assert store.get("k").hops == baseline + 1

    def test_all_replicas_crashed_not_found(self):
        ring, store = build_store()
        store.put("k", "v")
        for node in store.responsible_nodes("k"):
            ring.fail_node(node)
        result = store.get("k")
        assert not result.found
        assert result.node is None

    def test_recovered_primary_serves_again(self):
        ring, store = build_store()
        store.put("k", "v")
        primary = store.responsible_nodes("k")[0]
        ring.fail_node(primary)
        ring.recover_node(primary)
        assert store.get("k").node == primary


class TestRepair:
    def test_repair_restores_replication_after_departure(self):
        ring, store = build_store()
        keys = populate(store)
        victim = store.responsible_nodes(keys[0])[0]
        ring.remove_node(victim)
        store.drop_node(victim)
        assert store.under_replicated_keys()  # the departure left holes
        report = store.repair()
        assert report.copies_created > 0
        assert report.bytes_copied > 0
        assert store.under_replicated_keys() == []
        for key in keys:
            assert store.get(key).values == (f"value-of-{key}",)

    def test_repair_prunes_stale_copies_after_join(self):
        ring, store = build_store()
        keys = populate(store)
        joiner = hash_key("late-joiner", BITS)
        ring.add_node(joiner)
        report = store.repair()
        # Responsibility shifted toward the joiner: it received copies
        # and the nodes it displaced dropped theirs.
        if report.copies_created:
            assert store.keys_on_node(joiner) > 0
        total_copies = sum(
            store.keys_on_node(node) for node in ring.node_ids
        )
        assert total_copies == store.replication * len(keys)

    def test_repair_skips_crashed_nodes_until_recovery(self):
        ring, store = build_store()
        keys = populate(store)
        victim = store.responsible_nodes(keys[0])[0]
        ring.fail_node(victim)
        store.drop_node(victim)  # its copies are lost with the crash
        store.repair()
        # The crashed node cannot receive repair traffic yet.
        assert store.keys_on_node(victim) == 0
        ring.recover_node(victim)
        report = store.repair()
        assert report.copies_created > 0
        assert store.under_replicated_keys() == []

    def test_repair_on_stable_network_is_a_no_op(self):
        _, store = build_store()
        populate(store)
        store.repair()  # settle any initial placement drift
        report = store.repair()
        assert report == RepairReport()

    def test_repair_report_addition(self):
        first = RepairReport(1, 2, 30, 4)
        second = RepairReport(5, 6, 70, 8)
        assert first + second == RepairReport(6, 8, 100, 12)

    def test_drop_node_returns_key_count(self):
        _, store = build_store(replication=1)
        populate(store, count=20)
        node = max(store.keys_per_node(), key=store.keys_on_node)
        held = store.keys_on_node(node)
        assert store.drop_node(node) == held
        assert store.keys_on_node(node) == 0


class TestNoOrphanedReplicas:
    """Regression (satellite): churn must never leave a key being served
    from a node that already left the overlay."""

    def assert_no_departed_holders(self, ring, store, keys):
        live = set(ring.node_ids)
        for node, count in store.keys_per_node().items():
            assert node in live, (
                f"departed node {node} still physically holds {count} keys"
            )
        for key in keys:
            result = store.get(key)
            assert result.found
            assert result.node in live

    def test_rebalance_leaves_no_orphans(self):
        ring, store = build_store()
        keys = populate(store)
        for name in ("node-1", "node-4"):
            ring.remove_node(hash_key(name, BITS))
        ring.add_node(hash_key("fresh-a", BITS))
        store.rebalance()
        self.assert_no_departed_holders(ring, store, keys)

    def test_repair_purges_departed_holders(self):
        ring, store = build_store()
        keys = populate(store)
        # Leave without the courtesy drop_node: repair must purge it.
        departed = hash_key("node-2", BITS)
        ring.remove_node(departed)
        report = store.repair()
        assert report.keys_pruned > 0
        self.assert_no_departed_holders(ring, store, keys)

    def test_churn_sequence_never_serves_from_departed(self):
        ring, store = build_store()
        keys = populate(store)
        for round_ in range(6):
            ring.add_node(hash_key(f"joiner-{round_}", BITS))
            oldest = sorted(ring.node_ids)[round_ % len(ring.node_ids)]
            ring.remove_node(oldest)
            store.drop_node(oldest)
            store.repair()
            self.assert_no_departed_holders(ring, store, keys)
