"""The durable layer: WAL framing, snapshots, and crash-recovery edges.

Covers the degradation matrix recovery promises: torn tails truncate,
corrupt-CRC records are skipped with a warning (valid prefix kept), an
empty data dir recovers to nothing, a snapshot newer than the log
replays nothing, and repeated kill/recover/repair cycles are idempotent.
"""

import os
import struct

import pytest

from repro.dht.ring import IdealRing
from repro.storage.durable import (
    OP_CACHE_INSERT,
    OP_IDENTITY,
    OP_MEMBER,
    OP_PUT,
    OP_REMOVE_KEY,
    OP_REMOVE_VALUE,
    RECORD_PREFIX_BYTES,
    WAL_HEADER_BYTES,
    DurableNodeState,
    FsyncPolicy,
    NodeWalSet,
    SnapshotState,
    WalError,
    WriteAheadLog,
    decode_record_body,
    encode_record_body,
    frame_record,
    load_snapshot,
    replay_wal,
    tear_wal,
    write_snapshot,
)
from repro.storage.store import DHTStorage

BITS = 32


# -- fsync policy -----------------------------------------------------------


def test_fsync_policy_parses_all_modes():
    assert FsyncPolicy.parse("always").mode == "always"
    assert FsyncPolicy.parse("never").mode == "never"
    assert FsyncPolicy.parse("interval") == FsyncPolicy("interval", 64)
    assert FsyncPolicy.parse("interval:8") == FsyncPolicy("interval", 8)


@pytest.mark.parametrize(
    "spec", ["sometimes", "interval:0", "interval:x", "always:3", ""]
)
def test_fsync_policy_rejects_bad_specs(spec):
    with pytest.raises(WalError):
        FsyncPolicy.parse(spec)


# -- record encoding --------------------------------------------------------


BIG_ID = (1 << 159) + 12345  # a realistic 160-bit node id


@pytest.mark.parametrize(
    "op, fields",
    [
        (OP_PUT, ("index", "author=kaashoek", "msd:42")),
        (OP_REMOVE_VALUE, ("file", "msd:42", "article-bytes")),
        (OP_REMOVE_KEY, ("index", "title=chord")),
        (OP_CACHE_INSERT, ("author=stoica", "msd:7")),
        (OP_MEMBER, (BIG_ID, "127.0.0.1", 7001)),
        (OP_IDENTITY, (BIG_ID,)),
    ],
)
def test_record_roundtrip(op, fields):
    record = decode_record_body(encode_record_body(17, op, fields))
    assert record.seq == 17
    assert record.op == op
    assert record.fields == fields


def test_unknown_op_raises():
    with pytest.raises(WalError):
        encode_record_body(1, 99, ())
    body = struct.pack(">QB", 1, 99)
    with pytest.raises(WalError):
        decode_record_body(body)


def test_trailing_bytes_rejected():
    body = encode_record_body(1, OP_IDENTITY, (5,)) + b"junk"
    with pytest.raises(WalError):
        decode_record_body(body)


# -- WAL append / replay ----------------------------------------------------


def wal_with_records(path, count=5, fsync=FsyncPolicy("never")):
    wal = WriteAheadLog(path, fsync)
    for index in range(count):
        wal.append(OP_PUT, ("index", f"key-{index}", f"value-{index}"))
    return wal


def test_wal_appends_replay_in_order(tmp_path):
    path = str(tmp_path / "wal.log")
    wal_with_records(path, count=5).close()
    ops, report = replay_wal(path)
    assert [op.seq for op in ops] == [1, 2, 3, 4, 5]
    assert [op.fields[1] for op in ops] == [f"key-{i}" for i in range(5)]
    assert report.records == 5
    assert not report.repaired


def test_wal_survives_abandon_without_flush(tmp_path):
    # SIGKILL semantics: unbuffered appends are in the OS regardless of
    # the fsync policy, so nothing acknowledged is lost.
    path = str(tmp_path / "wal.log")
    wal_with_records(path, count=3, fsync=FsyncPolicy("never")).abandon()
    ops, report = replay_wal(path)
    assert report.records == 3 and not report.repaired


def test_torn_tail_is_truncated(tmp_path):
    path = str(tmp_path / "wal.log")
    wal_with_records(path, count=4).close()
    size = os.path.getsize(path)
    with open(path, "r+b") as handle:
        handle.truncate(size - 7)  # cut the last record in half
    ops, report = replay_wal(path)  # a clean torn tail truncates silently
    assert report.records == 3
    assert report.repaired and report.truncated_bytes > 0
    # The file was repaired in place: a second replay is clean.
    ops, report = replay_wal(path)
    assert report.records == 3 and not report.repaired


def test_corrupt_crc_keeps_valid_prefix(tmp_path):
    path = str(tmp_path / "wal.log")
    wal = WriteAheadLog(path, FsyncPolicy("never"))
    offsets = [wal.size]
    for index in range(4):
        wal.append(OP_PUT, ("index", f"key-{index}", f"value-{index}"))
        offsets.append(wal.size)
    wal.close()
    # Flip one body byte of the third record: its CRC no longer matches.
    with open(path, "r+b") as handle:
        handle.seek(offsets[2] + RECORD_PREFIX_BYTES + 2)
        byte = handle.read(1)
        handle.seek(-1, os.SEEK_CUR)
        handle.write(bytes((byte[0] ^ 0xFF,)))
    with pytest.warns(RuntimeWarning, match="CRC mismatch"):
        ops, report = replay_wal(path)
    assert [op.fields[1] for op in ops] == ["key-0", "key-1"]
    assert report.corrupt_records == 1
    assert report.repaired  # the corrupt suffix was cut off
    ops, report = replay_wal(path)  # prefix remains readable
    assert report.records == 2 and not report.repaired


def test_absurd_length_prefix_is_corruption_not_allocation(tmp_path):
    path = str(tmp_path / "wal.log")
    wal = wal_with_records(path, count=2)
    wal.close()
    with open(path, "ab") as handle:
        handle.write(struct.pack(">II", 0x7FFFFFFF, 0) + b"x" * 8)
    with pytest.warns(RuntimeWarning, match="absurd record length"):
        ops, report = replay_wal(path)
    assert report.records == 2 and report.corrupt_records == 1


def test_bad_header_starts_empty(tmp_path):
    path = str(tmp_path / "wal.log")
    with open(path, "wb") as handle:
        handle.write(b"NOPE" + b"\x00" * 20)
    with pytest.warns(RuntimeWarning, match="bad or torn header"):
        ops, report = replay_wal(path)
    assert ops == [] and report.repaired
    assert os.path.getsize(path) == 0
    # A fresh log can be started over the repaired file.
    WriteAheadLog(path, FsyncPolicy("never")).close()
    assert os.path.getsize(path) == WAL_HEADER_BYTES


def test_missing_file_replays_nothing(tmp_path):
    ops, report = replay_wal(str(tmp_path / "absent.log"))
    assert ops == [] and report.records == 0 and not report.repaired


def test_tear_wal_respects_the_fsync_line(tmp_path):
    path = str(tmp_path / "wal.log")
    wal = WriteAheadLog(path, FsyncPolicy("never"))
    wal.append(OP_PUT, ("index", "synced", "v"))
    wal.flush()
    synced = wal.synced_size
    wal.append(OP_PUT, ("index", "unsynced", "v"))
    wal.abandon()
    torn = tear_wal(path, synced)
    assert torn > 0
    assert os.path.getsize(path) >= synced
    ops, report = replay_wal(path)
    assert [op.fields[1] for op in ops] == ["synced"]
    assert report.repaired  # the half-kept unsynced record was torn


# -- snapshots --------------------------------------------------------------


def sample_state():
    state = SnapshotState(node_id=BIG_ID, wal_seq=9)
    state.peers = {BIG_ID: ("127.0.0.1", 7000), 3: ("::1", 7001)}
    state.stores["index"]["author=liben-nowell"] = ["msd:1", "msd:2"]
    state.stores["file"]["msd:1"] = ["article"]
    state.cache["author=karger"] = ["msd:2"]
    return state


def test_snapshot_roundtrip(tmp_path):
    path = str(tmp_path / "snapshot.bin")
    write_snapshot(path, sample_state())
    loaded = load_snapshot(path)
    assert loaded == sample_state()
    assert not os.path.exists(path + ".tmp")


def test_corrupt_snapshot_is_ignored(tmp_path):
    path = str(tmp_path / "snapshot.bin")
    write_snapshot(path, sample_state())
    with open(path, "r+b") as handle:
        handle.seek(-3, os.SEEK_END)
        handle.write(b"\xff\xff\xff")
    with pytest.warns(RuntimeWarning, match="checksum"):
        assert load_snapshot(path) is None


def test_missing_snapshot_is_none(tmp_path):
    assert load_snapshot(str(tmp_path / "absent.bin")) is None


# -- DurableNodeState recovery edges ----------------------------------------


def test_empty_data_dir_recovers_to_nothing(tmp_path):
    durable = DurableNodeState(str(tmp_path / "node"))
    assert durable.report.recovered is False
    assert durable.report.index_entries == 0
    assert durable.state.total_entries() == 0
    durable.close()


def test_journal_then_recover(tmp_path):
    data_dir = str(tmp_path / "node")
    durable = DurableNodeState(data_dir, fsync="never", node_scope=7)
    durable.record_identity(7)
    durable.record_member(7, "127.0.0.1", 7000)
    durable.record_put(7, "index", "author=morris", "msd:5")
    durable.record_cache_insert(7, "title=dht", "msd:5")
    durable.record_put(99, "index", "other-node", "msd:9")  # out of scope
    durable.abandon()

    recovered = DurableNodeState(data_dir, node_scope=7)
    assert recovered.report.recovered
    assert recovered.state.node_id == 7
    assert recovered.state.peers[7] == ("127.0.0.1", 7000)
    assert recovered.state.entries("index") == [("author=morris", "msd:5")]
    assert recovered.state.cache == {"title=dht": ["msd:5"]}
    recovered.close()


def test_snapshot_newer_than_log_replays_nothing(tmp_path):
    # The crash-between-rename-and-truncate window: the snapshot already
    # folded the log's records in, so replay must skip every one of them.
    data_dir = str(tmp_path / "node")
    durable = DurableNodeState(data_dir, fsync="never")
    for index in range(6):
        durable.record_put(1, "index", f"key-{index}", "v")
    state_before = durable.state
    write_snapshot(durable.snapshot_path, state_before)  # log NOT reset
    durable.abandon()

    recovered = DurableNodeState(data_dir)
    assert recovered.report.snapshot_loaded
    assert recovered.report.wal_records == 0  # all skipped, none re-applied
    assert recovered.state.stores == state_before.stores
    # New appends continue past the watermark instead of reusing seqs.
    recovered.record_put(1, "index", "after", "v")
    assert recovered.state.wal_seq > state_before.wal_seq
    recovered.close()


def test_compaction_resets_the_log_and_survives_restart(tmp_path):
    data_dir = str(tmp_path / "node")
    durable = DurableNodeState(data_dir, fsync="never", snapshot_every=4)
    for index in range(10):
        durable.record_put(1, "index", f"key-{index}", "v")
    assert os.path.exists(durable.snapshot_path)
    assert os.path.getsize(durable.wal_path) < 200  # reset after compaction
    durable.abandon()

    recovered = DurableNodeState(data_dir)
    assert recovered.report.snapshot_loaded
    assert recovered.state.total_entries() == 10
    recovered.close()


def test_recovery_is_idempotent_across_repeated_restarts(tmp_path):
    data_dir = str(tmp_path / "node")
    durable = DurableNodeState(data_dir, fsync="never")
    for index in range(5):
        durable.record_put(1, "index", f"key-{index}", f"value-{index}")
    durable.record_remove_key(1, "index", "key-0")
    durable.abandon()
    snapshots = []
    for _ in range(3):  # crash again before ever compacting
        durable = DurableNodeState(data_dir, fsync="never")
        snapshots.append(durable.state.entries("index"))
        durable.abandon()
    assert snapshots[0] == snapshots[1] == snapshots[2]
    assert ("key-0", "value-0") not in snapshots[0]
    assert len(snapshots[0]) == 4


# -- storage integration: kill / recover / repair cycles --------------------


def build_store(walset):
    protocol = IdealRing.bulk_build([100, 200, 300, 400], bits=BITS)
    store = DHTStorage(protocol, replication=2)
    store.attach_journal(walset, "index")
    return protocol, store


def test_repair_after_replay_is_idempotent(tmp_path):
    """The repeated-restart loop: kill, recover, replay, repair -- twice.

    The second cycle must neither duplicate entries nor journal spurious
    records: recovered state re-applies cleanly every time.
    """
    walset = NodeWalSet(str(tmp_path), fsync="never")
    protocol, store = build_store(walset)
    for index in range(20):
        store.put(f"key-{index}", f"value-{index}")
    baseline = {
        node: sorted(store.items_at(node)) for node in protocol.node_ids
    }
    victim = 200
    for _ in range(2):
        walset.kill(victim)
        store.forget_node(victim)
        assert store.items_at(victim) == []
        durable = walset.recover(victim)
        replayed = store.replay_entries(
            victim, durable.state.entries("index")
        )
        assert replayed == len(baseline[victim])
        report = store.repair()
        assert report.keys_repaired == 0  # replay restored everything
        assert {
            node: sorted(store.items_at(node)) for node in protocol.node_ids
        } == baseline
    walset.close()


def test_power_loss_loses_only_the_unsynced_tail(tmp_path):
    walset = NodeWalSet(str(tmp_path), fsync=FsyncPolicy("interval", 4))
    protocol, store = build_store(walset)
    for index in range(30):
        store.put(f"key-{index}", f"value-{index}")
    victim = max(
        protocol.node_ids, key=lambda node: len(store.items_at(node))
    )
    before = len(store.items_at(victim))
    torn = walset.power_loss(victim)
    assert torn > 0
    store.forget_node(victim)
    durable = walset.recover(victim)
    survived = store.replay_entries(victim, durable.state.entries("index"))
    assert 0 < survived < before  # fsync interval bounds the loss
    report = store.repair()  # the replicas restore the lost tail
    assert report.keys_repaired > 0
    assert len(store.items_at(victim)) == before
    walset.close()
