"""Unit tests for the multi-entry replicated storage layer."""

import pytest

from repro.dht.idspace import hash_key
from repro.dht.ring import IdealRing
from repro.storage.store import DHTStorage, StorageError


def make_ring(count=8, bits=32):
    ring = IdealRing(bits)
    for index in range(count):
        ring.add_node(hash_key(f"node-{index}", bits))
    return ring


@pytest.fixture
def store():
    return DHTStorage(make_ring())


class TestPutGet:
    def test_roundtrip(self, store):
        store.put("key-a", "value-1")
        result = store.get("key-a")
        assert result.found
        assert result.values == ("value-1",)

    def test_multiple_entries_per_key(self, store):
        """The extension the paper's index model requires."""
        store.put("author", "msd-1")
        store.put("author", "msd-2")
        store.put("author", "msd-3")
        assert set(store.get("author").values) == {"msd-1", "msd-2", "msd-3"}

    def test_duplicate_value_deduplicated(self, store):
        store.put("k", "v")
        store.put("k", "v")
        assert store.get("k").values == ("v",)

    def test_duplicate_allowed_when_requested(self, store):
        store.put("k", "v")
        store.put("k", "v", allow_duplicate=True)
        assert store.get("k").values == ("v", "v")

    def test_missing_key(self, store):
        result = store.get("nothing")
        assert not result.found
        assert result.values == ()
        assert result.node is None

    def test_contains(self, store):
        store.put("k", "v")
        assert "k" in store
        assert "other" not in store

    def test_values_catalog_view(self, store):
        store.put("k", "a")
        store.put("k", "b")
        assert store.values("k") == ("a", "b")
        assert store.values("missing") == ()

    def test_put_reports_responsible_node(self, store):
        result = store.put("k", "v")
        assert result.nodes
        assert result.numeric_key == store.numeric_key("k")
        assert store.get("k").node == result.nodes[0]

    def test_placement_follows_hash(self, store):
        result = store.put("k", "v")
        expected = store.protocol.lookup(store.numeric_key("k")).node
        assert result.nodes[0] == expected


class TestRemoval:
    def test_remove_value(self, store):
        store.put("k", "a")
        store.put("k", "b")
        store.remove_value("k", "a")
        assert store.get("k").values == ("b",)

    def test_remove_last_value_drops_key(self, store):
        store.put("k", "a")
        store.remove_value("k", "a")
        assert "k" not in store
        assert not store.get("k").found

    def test_remove_missing_value(self, store):
        store.put("k", "a")
        with pytest.raises(StorageError):
            store.remove_value("k", "zzz")

    def test_remove_key(self, store):
        store.put("k", "a")
        store.put("k", "b")
        store.remove_key("k")
        assert "k" not in store

    def test_remove_missing_key(self, store):
        with pytest.raises(StorageError):
            store.remove_key("ghost")


class TestReplication:
    def test_replicas_on_distinct_nodes(self):
        store = DHTStorage(make_ring(8), replication=3)
        result = store.put("k", "v")
        assert len(set(result.nodes)) == 3

    def test_read_survives_primary_loss(self):
        ring = make_ring(8)
        store = DHTStorage(ring, replication=3)
        primary = store.put("k", "v").nodes[0]
        ring.remove_node(primary)
        assert store.get("k").found

    def test_replication_capped_by_population(self):
        store = DHTStorage(make_ring(2), replication=5)
        assert len(store.put("k", "v").nodes) == 2

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            DHTStorage(make_ring(), replication=0)


class TestRebalance:
    def test_rebalance_after_join(self):
        ring = make_ring(4)
        store = DHTStorage(ring)
        for index in range(50):
            store.put(f"key-{index}", "v")
        ring.add_node(hash_key("late-joiner", 32))
        moved = store.rebalance()
        assert moved > 0
        for index in range(50):
            result = store.get(f"key-{index}")
            assert result.found
            assert result.node == store.responsible_nodes(f"key-{index}")[0]

    def test_rebalance_after_leave(self):
        ring = make_ring(6)
        store = DHTStorage(ring)
        for index in range(50):
            store.put(f"key-{index}", "v")
        ring.remove_node(ring.node_ids[0])
        store.rebalance()
        for index in range(50):
            assert store.get(f"key-{index}").found

    def test_rebalance_idempotent(self, store):
        store.put("k", "v")
        store.rebalance()
        assert store.rebalance() == 0


class TestStatistics:
    def test_counts(self, store):
        store.put("k1", "a")
        store.put("k1", "b")
        store.put("k2", "c")
        assert store.total_keys() == 2
        assert store.total_entries() == 3

    def test_keys_per_node_sums_to_total(self, store):
        for index in range(40):
            store.put(f"key-{index}", "v")
        assert sum(store.keys_per_node().values()) == 40

    def test_entries_on_node(self, store):
        result = store.put("k", "v")
        node = result.nodes[0]
        assert store.entries_on_node(node) == 1
        assert store.keys_on_node(node) == 1

    def test_storage_bytes(self, store):
        store.put("ab", "cd")
        assert store.storage_bytes() == 4
        store.put("ab", "ef")
        assert store.storage_bytes() == 8

    def test_storage_bytes_counts_replicas(self):
        store = DHTStorage(make_ring(8), replication=2)
        store.put("ab", "cd")
        assert store.storage_bytes() == 8
