"""Property-based tests for the storage layer.

Invariants: the catalog view always equals the union of node-local
stores' authoritative copies; rebalance restores primary placement after
arbitrary churn; values are never lost while at least one replica node
survives between rebalances.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dht.ring import IdealRing
from repro.storage.store import DHTStorage

BITS = 16

keys = st.text(alphabet="abcdefgh", min_size=1, max_size=6)
operations = st.lists(
    st.tuples(st.sampled_from(["put", "remove"]), keys, st.integers(0, 3)),
    max_size=40,
)


def build(num_nodes):
    ring = IdealRing(BITS)
    step = (1 << BITS) // num_nodes
    for index in range(num_nodes):
        ring.add_node(index * step + 1)
    return ring


@given(st.integers(2, 12), operations)
@settings(max_examples=80, deadline=None)
def test_catalog_matches_get_results(num_nodes, ops):
    store = DHTStorage(build(num_nodes))
    for op, key, salt in ops:
        if op == "put":
            store.put(key, f"value-{salt}")
        elif key in store and f"value-{salt}" in store.values(key):
            store.remove_value(key, f"value-{salt}")
    for key in {k for _, k, _ in ops}:
        result = store.get(key)
        assert set(result.values) == set(store.values(key))
        assert result.found == (key in store)


@given(st.integers(3, 10), operations, st.integers(0, 5))
@settings(max_examples=60, deadline=None)
def test_rebalance_restores_placement_after_churn(num_nodes, ops, removals):
    ring = build(num_nodes)
    store = DHTStorage(ring)
    for op, key, salt in ops:
        if op == "put":
            store.put(key, f"value-{salt}")
    victims = ring.node_ids[: min(removals, len(ring.node_ids) - 1)]
    for node in victims:
        ring.remove_node(node)
    store.rebalance()
    for key in {k for _, k, _ in ops if k in store}:
        result = store.get(key)
        assert result.found
        assert result.node == store.responsible_nodes(key)[0]


@given(st.integers(2, 8), st.lists(keys, min_size=1, max_size=20))
@settings(max_examples=60, deadline=None)
def test_total_entries_consistent(num_nodes, key_list):
    store = DHTStorage(build(num_nodes))
    for index, key in enumerate(key_list):
        store.put(key, f"v{index}")
    assert store.total_entries() == sum(
        len(store.values(key)) for key in set(key_list)
    )
    assert store.total_keys() == len(set(key_list))
    # With replication=1 node stores partition the catalog.
    assert sum(store.keys_per_node().values()) == store.total_keys()
