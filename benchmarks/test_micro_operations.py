"""Micro-benchmarks of the hot operations.

Unlike the figure benches (one-shot reproductions), these time the core
primitives over many rounds: record insertion (index construction),
query resolution at a node, the end-to-end search, the covering check,
and substrate lookups.  They guard the simulator's performance envelope
-- the full evaluation feeds 50,000 queries through these paths.
"""

import itertools

from repro.core.cache import CachePolicy
from repro.core.engine import LookupEngine
from repro.core.fields import ARTICLE_SCHEMA
from repro.core.query import FieldQuery
from repro.core.scheme import simple_scheme
from repro.core.service import IndexService
from repro.dht.chord import ChordNetwork
from repro.dht.idspace import hash_key
from repro.dht.ring import IdealRing
from repro.net.transport import SimulatedTransport
from repro.storage.store import DHTStorage
from repro.workload.corpus import CorpusConfig, SyntheticCorpus
from repro.workload.querygen import QueryGenerator
from repro.xmlq.pattern import covers


def build_stack(num_nodes=64, populate=0):
    ring = IdealRing(64)
    for index in range(num_nodes):
        ring.add_node(hash_key(f"peer-{index}", 64))
    service = IndexService(
        ARTICLE_SCHEMA,
        simple_scheme(),
        DHTStorage(ring),
        DHTStorage(ring),
        SimulatedTransport(),
        cache_policy=CachePolicy.SINGLE,
    )
    corpus = SyntheticCorpus(
        CorpusConfig(num_articles=max(populate, 64), num_authors=64, seed=5)
    )
    for record in corpus.records[:populate]:
        service.insert_record(record)
    return service, corpus


def test_micro_insert_record(benchmark):
    service, corpus = build_stack()
    records = itertools.cycle(corpus.records)
    seen = set()

    def insert():
        record = next(records)
        if record in seen:
            service.delete_record(record)
        else:
            seen.add(record)
        service.insert_record(record)

    benchmark(insert)


def test_micro_query_resolution(benchmark):
    service, corpus = build_stack(populate=64)
    queries = itertools.cycle(
        [
            FieldQuery.of_record(record, ["author"])
            for record in corpus.records[:64]
        ]
    )
    benchmark(lambda: service.query(next(queries), user="user:micro"))


def test_micro_end_to_end_search(benchmark):
    service, corpus = build_stack(populate=64)
    engine = LookupEngine(service, user="user:micro2")
    generator = QueryGenerator(corpus, seed=8)
    items = itertools.cycle(list(generator.generate(256)))

    def search():
        item = next(items)
        trace = engine.search(item.query, item.target)
        service.transport.meter.end_query()
        assert trace.found

    benchmark(search)


def test_micro_covering_check(benchmark):
    general = "/article[author[name[John_Smith]]]"
    specific = (
        "/article[author[name[John_Smith]]][conf[SIGCOMM]]"
        "[size[315635]][title[TCP]][year[1989]]"
    )
    benchmark(lambda: covers(general, specific))


def test_micro_canonical_key(benchmark):
    constraints = {"author": "John_Smith", "title": "TCP", "year": "1989"}
    benchmark(lambda: ARTICLE_SCHEMA.xpath_for(constraints))


def test_micro_chord_lookup(benchmark):
    ids = sorted(hash_key(f"peer-{i}", 64) for i in range(256))
    network = ChordNetwork.bulk_build(ids, bits=64)
    keys = itertools.cycle([hash_key(f"key-{i}", 64) for i in range(512)])
    benchmark(lambda: network.lookup(next(keys)))
