"""Micro-benchmarks of the hot operations.

Unlike the figure benches (one-shot reproductions), these time the core
primitives over many rounds: record insertion (index construction),
query resolution at a node, the end-to-end search, the covering check,
partial-order-graph construction and navigation, and substrate lookups.
They guard the simulator's performance envelope -- the full evaluation
feeds 50,000 queries through these paths.

Each run also dumps ``benchmarks/results/micro_operations.json``: the
per-operation timings plus the :mod:`repro.perf` counter totals and
cache hit rates accumulated while benchmarking, so the perf trajectory
of the hot path is machine-readable from PR to PR.
"""

import itertools
import json
import pathlib

import pytest

from repro import perf
from repro.core.cache import CachePolicy
from repro.core.engine import LookupEngine
from repro.core.fields import ARTICLE_SCHEMA
from repro.core.query import FieldQuery
from repro.core.scheme import simple_scheme
from repro.core.service import IndexService
from repro.dht.chord import ChordNetwork
from repro.dht.idspace import hash_key
from repro.dht.ring import IdealRing
from repro.net.transport import SimulatedTransport
from repro.storage.store import DHTStorage
from repro.workload.corpus import CorpusConfig, SyntheticCorpus
from repro.workload.querygen import QueryGenerator
from repro.xmlq.partial_order import PartialOrderGraph
from repro.xmlq.pattern import covers

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Per-test timing summaries collected for the JSON dump.
_TIMINGS: dict[str, dict[str, float]] = {}


@pytest.fixture(autouse=True)
def _collect_timing(request, benchmark):
    """Record every bench's timing stats for the module's JSON dump."""
    yield
    stats = getattr(getattr(benchmark, "stats", None), "stats", None)
    if stats is not None and stats.data:
        _TIMINGS[request.node.name] = {
            "mean_us": stats.mean * 1e6,
            "min_us": stats.min * 1e6,
            "median_us": stats.median * 1e6,
            "rounds": len(stats.data),
        }


@pytest.fixture(scope="module", autouse=True)
def _dump_micro_json():
    """Emit timings + perf counters as JSON after the module runs."""
    perf_before = perf.snapshot()
    yield
    counters = perf.delta(perf_before, perf.snapshot())
    hits = {
        name: round(rate, 4)
        for name, rate in perf.counters.cache_hit_rates().items()
    }
    payload = {
        "benchmarks": _TIMINGS,
        "perf_counters": counters,
        "cache_hit_rates": hits,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "micro_operations.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )


def _pog_query_set(num_records=6):
    """Overlapping field-combination queries, as the index layer makes."""
    queries = []
    for i in range(num_records):
        record = {
            "author": f"Author_{i}",
            "title": f"Title_{i}",
            "conf": ("SIGCOMM", "INFOCOM", "ICDCS")[i % 3],
            "year": ("1989", "1996", "2001")[i % 3],
        }
        for keys in (
            ("author",),
            ("title",),
            ("conf",),
            ("year",),
            ("author", "title"),
            ("conf", "year"),
            ("author", "title", "conf", "year"),
        ):
            queries.append(
                ARTICLE_SCHEMA.xpath_for({k: record[k] for k in keys})
            )
    return list(dict.fromkeys(queries))


def build_stack(num_nodes=64, populate=0):
    ring = IdealRing(64)
    for index in range(num_nodes):
        ring.add_node(hash_key(f"peer-{index}", 64))
    service = IndexService(
        ARTICLE_SCHEMA,
        simple_scheme(),
        DHTStorage(ring),
        DHTStorage(ring),
        SimulatedTransport(),
        cache_policy=CachePolicy.SINGLE,
    )
    corpus = SyntheticCorpus(
        CorpusConfig(num_articles=max(populate, 64), num_authors=64, seed=5)
    )
    for record in corpus.records[:populate]:
        service.insert_record(record)
    return service, corpus


def test_micro_insert_record(benchmark):
    service, corpus = build_stack()
    records = itertools.cycle(corpus.records)
    seen = set()

    def insert():
        record = next(records)
        if record in seen:
            service.delete_record(record)
        else:
            seen.add(record)
        service.insert_record(record)

    benchmark(insert)


def test_micro_query_resolution(benchmark):
    service, corpus = build_stack(populate=64)
    queries = itertools.cycle(
        [
            FieldQuery.of_record(record, ["author"])
            for record in corpus.records[:64]
        ]
    )
    benchmark(lambda: service.query(next(queries), user="user:micro"))


def test_micro_end_to_end_search(benchmark):
    service, corpus = build_stack(populate=64)
    engine = LookupEngine(service, user="user:micro2")
    generator = QueryGenerator(corpus, seed=8)
    items = itertools.cycle(list(generator.generate(256)))

    def search():
        item = next(items)
        trace = engine.search(item.query, item.target)
        service.transport.meter.end_query()
        assert trace.found

    benchmark(search)


def test_micro_covering_check(benchmark):
    general = "/article[author[name[John_Smith]]]"
    specific = (
        "/article[author[name[John_Smith]]][conf[SIGCOMM]]"
        "[size[315635]][title[TCP]][year[1989]]"
    )
    benchmark(lambda: covers(general, specific))


def test_micro_partial_order_build(benchmark):
    """Construct the covering partial order of an overlapping query set
    (33 queries, ~1000 potential pairwise covering checks)."""
    queries = _pog_query_set()
    benchmark(lambda: PartialOrderGraph(queries))


def test_micro_partial_order_navigation(benchmark):
    """Hasse-diagram reads on a standing graph: the navigation mix an
    index node performs per query chain (edges + chains to one MSD)."""
    graph = PartialOrderGraph(_pog_query_set())
    leaf = graph.leaves()[0]

    def navigate():
        edges = graph.hasse_edges()
        chains = graph.chains_to(leaf)
        assert edges and chains

    benchmark(navigate)


def test_micro_partial_order_incremental_add(benchmark):
    """Grow a graph one query at a time (the index-build pattern):
    exercises fingerprint prefiltering and incremental Hasse splicing."""
    queries = _pog_query_set()

    def grow():
        graph = PartialOrderGraph()
        for query in queries:
            graph.add(query)
        return graph

    benchmark(grow)


def test_micro_canonical_key(benchmark):
    constraints = {"author": "John_Smith", "title": "TCP", "year": "1989"}
    benchmark(lambda: ARTICLE_SCHEMA.xpath_for(constraints))


def test_micro_chord_lookup(benchmark):
    ids = sorted(hash_key(f"peer-{i}", 64) for i in range(256))
    network = ChordNetwork.bulk_build(ids, bits=64)
    keys = itertools.cycle([hash_key(f"key-{i}", 64) for i in range(512)])
    benchmark(lambda: network.lookup(next(keys)))
