"""Shared infrastructure for the figure/table reproduction benches.

Every bench reproduces one artifact of the paper's evaluation at the
paper's scale (500 nodes, 10,000 articles, 50,000 queries).  Grid cells
are memoized process-wide (see :mod:`repro.sim.runner`), so the whole
harness pays for each (scheme, cache policy) combination exactly once.

Each bench renders the same rows/series the paper plots and stores the
text under ``benchmarks/results/`` for inclusion in EXPERIMENTS.md, then
asserts the paper's qualitative shape (who wins, roughly by how much,
where the crossovers are).
"""

from __future__ import annotations

import pathlib
from dataclasses import replace

import pytest

from repro.sim.experiment import ExperimentConfig
from repro.sim.runner import run_cached

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: The paper's simulation setup (Section V-E).
PAPER = ExperimentConfig()

#: Reduced setup for the ablations that sweep extra dimensions.
REDUCED = ExperimentConfig(
    num_nodes=200, num_articles=4_000, num_queries=20_000, num_authors=1_600
)


def cell(scheme: str, cache: str, base: ExperimentConfig = PAPER, **overrides):
    """Run (or recall) one grid cell at the paper's scale."""
    return run_cached(replace(base, scheme=scheme, cache=cache, **overrides))


def emit(name: str, text: str) -> str:
    """Print a rendered figure and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n===== {name} =====\n{text}\n")
    return text


@pytest.fixture
def paper_config():
    return PAPER


@pytest.fixture
def reduced_config():
    return REDUCED
