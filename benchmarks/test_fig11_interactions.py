"""Figure 11: average number of interactions required to find data.

Paper's observations: the *flat* scheme (shortest chains) needs the
fewest interactions; caching further reduces lookup steps, more so with
larger cache capacity; multi-cache behaves like single-cache (and is
omitted from the figure).
"""

from conftest import cell, emit
from repro.analysis.tables import format_table
from repro.sim.presets import CACHE_POLICIES_FIG11, SCHEMES


def run_grid():
    return {
        (scheme, cache): cell(scheme, cache)
        for scheme in SCHEMES
        for cache in CACHE_POLICIES_FIG11
    }


def test_fig11_interactions_per_query(benchmark):
    grid = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    rows = []
    for cache in CACHE_POLICIES_FIG11:
        rows.append(
            [cache]
            + [round(grid[(scheme, cache)].avg_interactions, 2) for scheme in SCHEMES]
        )
    emit(
        "fig11_interactions",
        format_table(
            ["cache policy", *SCHEMES],
            rows,
            title=(
                "Figure 11 -- avg interactions per query "
                "(paper: flat < simple < complex; caching reduces, "
                "larger caches reduce more)"
            ),
        ),
    )

    for cache in CACHE_POLICIES_FIG11:
        flat = grid[("flat", cache)].avg_interactions
        simple = grid[("simple", cache)].avg_interactions
        complex_ = grid[("complex", cache)].avg_interactions
        # Flat requires the fewest interactions; complex the most.
        assert flat < simple < complex_, cache

    for scheme in SCHEMES:
        none = grid[(scheme, "none")].avg_interactions
        single = grid[(scheme, "single")].avg_interactions
        lru10 = grid[(scheme, "lru10")].avg_interactions
        lru20 = grid[(scheme, "lru20")].avg_interactions
        lru30 = grid[(scheme, "lru30")].avg_interactions
        # Caching reduces interactions ...
        assert single <= none
        assert lru30 <= none
        # ... and the reduction grows with capacity, approaching the
        # unbounded single cache.
        assert lru30 <= lru20 <= lru10
        assert abs(single - lru30) <= abs(single - lru10) + 1e-9

    # Paper magnitudes: flat ~2, simple ~3, complex ~3.5-4 without cache.
    assert 1.9 <= grid[("flat", "none")].avg_interactions <= 2.3
    assert 2.7 <= grid[("simple", "none")].avg_interactions <= 3.3
    assert 3.2 <= grid[("complex", "none")].avg_interactions <= 4.2
