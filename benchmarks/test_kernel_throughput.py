"""Event-kernel scheduler micro-benchmark: heap vs. timing wheel.

Times the kernel primitives -- booking (push), draining (pop), and
cancellation -- for both schedulers at two horizon shapes:

- **dense**: millions of events packed into a short virtual horizon
  (the web-scale simulation shape: 10,000 concurrent lookups x a few
  hundred ms of hop latency), where heap pops pay O(log n) Python-level
  comparisons and the wheel pays amortized O(1);
- **sparse**: events spread over a horizon much wider than the event
  count, where the wheel's forward scan has to skip empty buckets.

Plus a steady-state churn phase (interleaved book/drain at a bounded
in-flight population), which is the shape the experiment driver
actually produces.

Results are dumped to ``benchmarks/results/kernel_throughput.json``
(events/sec per phase per scheduler plus the wheel/heap ratios); the
committed ``BENCH_kernel.json`` at the repo root records the measured
trajectory PR over PR.  The one hard assertion is the tentpole
acceptance: the wheel must beat the heap by a wide margin on the dense
drain phase (asserted at a CI-safe fraction of the locally measured
~15x).
"""

import json
import pathlib
import time

import pytest

from repro.sim.kernel import SCHEDULERS, EventKernel

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Events per timed phase.  Large enough that per-phase timing noise is
#: well under the asserted ratio margin, small enough for CI.
N_DENSE = 1_000_000
N_SPARSE = 100_000
N_STEADY = 200_000
#: Dense horizon in virtual ms (N_DENSE / 500 events per default bucket).
DENSE_HORIZON = 2_000.0
#: Sparse horizon: ~50 buckets per event at the default width.
SPARSE_HORIZON = 5_000_000.0

_RESULTS: dict[str, dict] = {}


def _synthetic_delays(count: int, horizon: float) -> list[float]:
    """Deterministic, well-spread delays (a seeded LCG, no RNG import)."""
    state = 0x2545F491
    delays = []
    scale = horizon / 0xFFFFFFFF
    for _ in range(count):
        state = (state * 1103515245 + 12345) & 0xFFFFFFFF
        delays.append(state * scale)
    return delays


def _bench_push(scheduler: str, delays: list[float]) -> tuple[float, EventKernel]:
    kernel = EventKernel(scheduler=scheduler)
    post = kernel.post
    noop = lambda: None  # noqa: E731
    started = time.perf_counter()
    for delay in delays:
        post(delay, noop)
    elapsed = time.perf_counter() - started
    return len(delays) / elapsed, kernel


def _bench_pop(kernel: EventKernel, count: int) -> float:
    started = time.perf_counter()
    kernel.run()
    elapsed = time.perf_counter() - started
    assert kernel.events_run == count
    return count / elapsed


def _bench_cancel(scheduler: str, delays: list[float]) -> float:
    kernel = EventKernel(scheduler=scheduler)
    noop = lambda: None  # noqa: E731
    handles = [kernel.schedule(delay, noop) for delay in delays]
    started = time.perf_counter()
    for handle in handles:
        handle.cancel()
    elapsed = time.perf_counter() - started
    kernel.run()
    assert kernel.events_run == 0
    return len(delays) / elapsed


def _bench_steady(scheduler: str, count: int) -> float:
    """Interleaved book/drain at a bounded in-flight population."""
    kernel = EventKernel(scheduler=scheduler)
    post = kernel.post
    remaining = [count]

    def rebook():
        if remaining[0] > 0:
            remaining[0] -= 1
            post(7.5, rebook)

    for _ in range(5_000):  # the standing population
        remaining[0] -= 1
        post(7.5, rebook)
    started = time.perf_counter()
    kernel.run()
    elapsed = time.perf_counter() - started
    assert kernel.events_run == count
    return count / elapsed


def _phase(name: str, scheduler: str, events_per_sec: float) -> None:
    _RESULTS.setdefault(name, {})[scheduler] = round(events_per_sec)


@pytest.fixture(scope="module", autouse=True)
def _dump_json():
    yield
    for phase, by_scheduler in _RESULTS.items():
        if "heap" in by_scheduler and "wheel" in by_scheduler:
            by_scheduler["wheel_over_heap"] = round(
                by_scheduler["wheel"] / by_scheduler["heap"], 2
            )
    payload = {
        "events_per_sec": _RESULTS,
        "n_dense": N_DENSE,
        "n_sparse": N_SPARSE,
        "n_steady": N_STEADY,
        "dense_horizon_ms": DENSE_HORIZON,
        "sparse_horizon_ms": SPARSE_HORIZON,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "kernel_throughput.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_kernel_dense(scheduler):
    delays = _synthetic_delays(N_DENSE, DENSE_HORIZON)
    push_rate, kernel = _bench_push(scheduler, delays)
    pop_rate = _bench_pop(kernel, N_DENSE)
    _phase("push_dense", scheduler, push_rate)
    _phase("pop_dense", scheduler, pop_rate)


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_kernel_sparse(scheduler):
    delays = _synthetic_delays(N_SPARSE, SPARSE_HORIZON)
    push_rate, kernel = _bench_push(scheduler, delays)
    pop_rate = _bench_pop(kernel, N_SPARSE)
    _phase("push_sparse", scheduler, push_rate)
    _phase("pop_sparse", scheduler, pop_rate)


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_kernel_cancel(scheduler):
    delays = _synthetic_delays(N_SPARSE, DENSE_HORIZON)
    _phase("cancel", scheduler, _bench_cancel(scheduler, delays))


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_kernel_steady_state(scheduler):
    _phase("steady_state", scheduler, _bench_steady(scheduler, N_STEADY))


def test_wheel_beats_heap_on_dense_pop():
    """The tentpole acceptance phase, asserted at a CI-safe margin.

    Locally the wheel drains dense horizons ~15-18x faster than the
    heap; 4x leaves room for noisy shared runners while still catching
    any regression that would sink the >=10x recorded trajectory.
    """
    delays = _synthetic_delays(N_DENSE, DENSE_HORIZON)
    _, heap_kernel = _bench_push("heap", delays)
    heap_rate = _bench_pop(heap_kernel, N_DENSE)
    _, wheel_kernel = _bench_push("wheel", delays)
    wheel_rate = _bench_pop(wheel_kernel, N_DENSE)
    assert wheel_rate >= 4 * heap_rate, (
        f"wheel {wheel_rate:,.0f}/s vs heap {heap_rate:,.0f}/s "
        f"({wheel_rate / heap_rate:.1f}x, expected >= 4x)"
    )
