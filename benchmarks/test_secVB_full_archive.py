"""Section V-B at full archive scale: the 115,879-article measurement.

The paper's storage numbers (simple: 152 MB; complex +25%; flat +37%;
worst case 0.5% of the 29.1 GB article data) are measured on the *full*
DBLP article collection, not the 10,000-article simulation subset.  This
bench builds the three schemes' complete distributed indexes over a
synthetic archive of the same size and reports the same quantities.

Schemes are built one at a time and discarded to bound memory.
"""

import pytest

from conftest import emit
from repro.analysis.tables import format_table
from repro.core.fields import ARTICLE_SCHEMA
from repro.core.scheme import complex_scheme, flat_scheme, simple_scheme
from repro.core.service import IndexService
from repro.dht.idspace import hash_key
from repro.dht.ring import IdealRing
from repro.net.transport import SimulatedTransport
from repro.storage.store import DHTStorage
from repro.workload.corpus import CorpusConfig, SyntheticCorpus

#: The DBLP snapshot of January 21st, 2003 held 115,879 article entries.
DBLP_ARTICLES = 115_879
#: DBLP-scale author population (roughly one author per 1.5 articles at
#: that era's archive composition).
DBLP_AUTHORS = 75_000
NUM_NODES = 500


def build_report():
    corpus = SyntheticCorpus(
        CorpusConfig(
            num_articles=DBLP_ARTICLES,
            num_authors=DBLP_AUTHORS,
            seed=2003,
        )
    )
    article_bytes = corpus.total_article_bytes()
    ring = IdealRing(64)
    for index in range(NUM_NODES):
        ring.add_node(hash_key(f"node-{index}", 64))
    sizes = {}
    for name, builder in (
        ("simple", simple_scheme),
        ("flat", flat_scheme),
        ("complex", complex_scheme),
    ):
        service = IndexService(
            ARTICLE_SCHEMA,
            builder(),
            DHTStorage(ring),
            DHTStorage(ring),
            SimulatedTransport(),
        )
        for record in corpus.records:
            service.insert_record(record)
        sizes[name] = service.index_storage_bytes()
        del service  # free ~hundreds of MB before the next scheme
    return sizes, article_bytes


def test_secVB_full_archive_storage(benchmark):
    sizes, article_bytes = benchmark.pedantic(build_report, rounds=1, iterations=1)
    rows = []
    for name in ("simple", "complex", "flat"):
        rows.append(
            [
                name,
                f"{sizes[name] / 1e6:.0f} MB",
                f"{100 * (sizes[name] / sizes['simple'] - 1):+.1f}%",
                f"{100 * sizes[name] / article_bytes:.3f}%",
            ]
        )
    emit(
        "secVB_full_archive",
        format_table(
            ["scheme", "index bytes", "vs simple", "of article data"],
            rows,
            title=(
                f"Section V-B at archive scale -- {DBLP_ARTICLES:,} articles "
                f"({article_bytes / 1e9:.1f} GB of article data; paper: "
                "simple 152 MB, complex +25%, flat +37%, <= 0.5% overhead)"
            ),
        ),
    )

    # Same magnitude as the paper's 152 MB for the simple scheme.
    assert 40e6 < sizes["simple"] < 400e6
    # Ordering and ratio shapes as in the 10k bench.
    assert sizes["simple"] < sizes["complex"] < sizes["flat"]
    assert 1.1 < sizes["flat"] / sizes["simple"] < 1.7
    # Article data lands near the paper's 29.1 GB (250 KB average).
    assert article_bytes == pytest.approx(29.1e9, rel=0.05)
    # The headline claim: indexes cost well under 1% extra storage.
    assert sizes["flat"] / article_bytes < 0.006
