"""Figure 10: CCDF of the article ranking.

The paper truncates the collection to 10,000 articles and adapts the
fitted power law, obtaining ``F̄(i) = 1 - 0.063 * i**0.3``.  This bench
regenerates the curve, prints the same series, and checks the paper's
justification for the truncation: the articles beyond the 10,000th would
carry negligible probability mass.
"""

import random

import pytest

from conftest import emit
from repro.analysis.tables import format_table
from repro.workload.popularity import (
    PAPER_CCDF_COEFFICIENT,
    PAPER_CCDF_EXPONENT,
    PowerLawPopularity,
)

POPULATION = 10_000


def build_curve():
    model = PowerLawPopularity.for_population(POPULATION)
    checkpoints = [1, 10, 100, 500, 1_000, 2_000, 4_000, 6_000, 8_000, 10_000]
    return model, [(rank, model.ccdf(rank)) for rank in checkpoints]


def test_fig10_article_ranking_ccdf(benchmark):
    model, curve = benchmark.pedantic(build_curve, rounds=1, iterations=1)
    rows = [
        [rank, round(ccdf, 4), round(1 - PAPER_CCDF_COEFFICIENT * rank**PAPER_CCDF_EXPONENT, 4)]
        for rank, ccdf in curve
    ]
    emit(
        "fig10_ccdf",
        format_table(
            ["rank i", "model CCDF", "paper 1-0.063*i^0.3"],
            rows,
            title="Figure 10 -- CCDF of the article ranking",
        ),
    )

    # The model's coefficient IS the paper's published constant.
    assert model.coefficient == pytest.approx(PAPER_CCDF_COEFFICIENT, abs=0.0005)
    # Curve agrees with the paper's closed form everywhere it is valid.
    for rank, ccdf in curve[:-1]:
        paper_value = 1 - PAPER_CCDF_COEFFICIENT * rank**PAPER_CCDF_EXPONENT
        assert ccdf == pytest.approx(paper_value, abs=0.005)
    # Monotone decreasing from ~0.94 to exactly 0.
    values = [ccdf for _, ccdf in curve]
    assert values == sorted(values, reverse=True)
    assert values[0] == pytest.approx(0.937, abs=0.005)
    assert values[-1] == 0.0

    # Truncation justification: sampling the model 50,000 times, the mass
    # near the tail is tiny ("requested so seldom that we can effectively
    # neglect their existence").
    rng = random.Random(7)
    samples = [model.sample(rng) for _ in range(50_000)]
    tail = sum(1 for rank in samples if rank > 9_000) / len(samples)
    assert tail < 0.05
