"""Ablation: indexing under membership churn.

Section III-A assumes a DHash/PAST-class storage layer underneath the
indexes, and Section IV-D argues the indexes "benefit from the
mechanisms implemented by the DHT substrate for increasing availability".
This ablation injects leave+join events (with storage rebalancing, the
repair such a layer performs) during the query feed and verifies the
paper-level behaviour is preserved: every search still succeeds, and the
only observable costs are moved keys and lost cache contents on departed
nodes.
"""

from dataclasses import replace

from conftest import REDUCED, emit
from repro.analysis.tables import format_table
from repro.sim.experiment import Experiment
from repro.sim.runner import _shared_corpus

CHURN_LEVELS = (0, 10, 50, 200)


def run_cells():
    results = {}
    corpus = _shared_corpus(REDUCED)
    for events in CHURN_LEVELS:
        config = replace(
            REDUCED, cache="single", churn_events=events, num_queries=10_000
        )
        experiment = Experiment(config, corpus=corpus)
        results[events] = (experiment.run(), experiment.churn_keys_moved)
    return results


def test_ablation_churn(benchmark):
    cells = benchmark.pedantic(run_cells, rounds=1, iterations=1)
    rows = []
    for events in CHURN_LEVELS:
        result, keys_moved = cells[events]
        rows.append(
            [
                events,
                f"{result.found}/{result.searches}",
                round(result.avg_interactions, 3),
                f"{100 * result.hit_ratio:.1f}%",
                keys_moved,
            ]
        )
    emit(
        "ablation_churn",
        format_table(
            ["churn events", "found", "interactions", "hit ratio",
             "keys moved"],
            rows,
            title=(
                "Churn ablation -- leave+join with storage rebalance "
                "during 10,000 queries (simple scheme, single-cache)"
            ),
        ),
    )

    stable, _ = cells[0]
    for events in CHURN_LEVELS:
        result, keys_moved = cells[events]
        # Availability: every search succeeds at every churn level.
        assert result.found == result.searches
        # Indexing cost is unaffected by churn (placement changes, the
        # partial-order walk does not).
        assert abs(result.avg_interactions - stable.avg_interactions) < 0.15
        if events:
            assert keys_moved > 0
    # Cache effectiveness degrades gracefully: departed nodes lose their
    # caches, so heavy churn can only lower the hit ratio, and even 200
    # events keep the cache useful.
    assert cells[200][0].hit_ratio <= cells[0][0].hit_ratio + 0.01
    assert cells[200][0].hit_ratio > 0.5 * cells[0][0].hit_ratio
