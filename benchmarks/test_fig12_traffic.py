"""Figure 12: average network traffic (bytes) generated per query.

Paper's observations: the *flat* scheme generates much more traffic than
any other (every query receives the descriptors of *all* matching
articles instead of a relevant set of more specific queries); cache usage
saves overall bandwidth; larger cache sizes yield more cache traffic and
less total traffic; multi-cache produces more cache traffic than
single-cache.
"""

from conftest import cell, emit
from repro.analysis.tables import format_table
from repro.sim.presets import CACHE_POLICIES_FIG12, SCHEMES


def run_grid():
    return {
        (scheme, cache): cell(scheme, cache)
        for scheme in SCHEMES
        for cache in CACHE_POLICIES_FIG12
    }


def test_fig12_traffic_per_query(benchmark):
    grid = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    rows = []
    for cache in CACHE_POLICIES_FIG12:
        row = [cache]
        for scheme in SCHEMES:
            result = grid[(scheme, cache)]
            row.append(
                f"{result.normal_bytes_per_query:,.0f}"
                f"+{result.cache_bytes_per_query:,.0f}"
            )
        rows.append(row)
    emit(
        "fig12_traffic",
        format_table(
            ["cache policy", *(f"{s} (normal+cache B)" for s in SCHEMES)],
            rows,
            title=(
                "Figure 12 -- avg traffic per query, normal+cache bytes "
                "(paper: flat much higher than simple/complex; caches add "
                "cache traffic but cut total)"
            ),
        ),
    )

    for cache in CACHE_POLICIES_FIG12:
        flat = grid[("flat", cache)].normal_bytes_per_query
        simple = grid[("simple", cache)].normal_bytes_per_query
        complex_ = grid[("complex", cache)].normal_bytes_per_query
        # Flat returns full descriptors for everything: much more traffic.
        assert flat > simple > complex_, cache

    for scheme in SCHEMES:
        none = grid[(scheme, "none")]
        multi = grid[(scheme, "multi")]
        single = grid[(scheme, "single")]
        # No cache traffic without a cache; with one, it is positive.
        assert none.cache_bytes_per_query == 0
        assert single.cache_bytes_per_query > 0
        # Multi-cache creates entries on every path node: more cache
        # traffic than single-cache.  Flat's index chains have length 1,
        # so the two are nearly equal there (the residue comes from
        # generalized author+year searches, whose paths have two index
        # nodes even under flat).
        if scheme == "flat":
            assert (
                single.cache_bytes_per_query
                <= multi.cache_bytes_per_query
                <= single.cache_bytes_per_query * 1.1
            )
        else:
            assert multi.cache_bytes_per_query > single.cache_bytes_per_query * 1.2
        # Caching must not increase normal traffic materially.  It cuts
        # interaction rounds, but our responses also carry the cached
        # shortcut MSDs explicitly; for the lean complex scheme that
        # overhead roughly cancels the savings (within ~10%), while the
        # result-set-heavy schemes stay flat or improve.  See the
        # Figure 12 deviation note in EXPERIMENTS.md.
        assert single.normal_bytes_per_query <= none.normal_bytes_per_query * 1.10

    # Larger LRU caches => more hits => normal traffic monotone down for
    # the hierarchical schemes.
    for scheme in ("simple", "complex"):
        lru10 = grid[(scheme, "lru10")].normal_bytes_per_query
        lru30 = grid[(scheme, "lru30")].normal_bytes_per_query
        assert lru30 <= lru10 * 1.02
