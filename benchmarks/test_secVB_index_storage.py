"""Section V-B: index storage requirements.

The paper reports, for the full DBLP article collection: *simple* needs
152 MB of extra storage, *complex* about 25% more, *flat* about 37% more
(the most space-consuming); and against 29.1 GB of article data (250 KB
average article), indexes cost at most ~0.5% extra.

We build the three schemes' full distributed indexes over the 10,000
article corpus and report absolute bytes, ratios relative to *simple*,
and the index-to-data overhead using the same 250 KB-average articles.
"""

from dataclasses import replace

import pytest
from conftest import PAPER, emit

from repro.analysis.tables import format_table
from repro.sim.experiment import Experiment
from repro.workload.corpus import CorpusConfig, SyntheticCorpus


def build_storage_report():
    corpus = SyntheticCorpus(
        CorpusConfig(
            num_articles=PAPER.num_articles,
            num_authors=PAPER.num_authors,
            seed=PAPER.corpus_seed,
        )
    )
    sizes = {}
    keys = {}
    for scheme in ("simple", "flat", "complex"):
        experiment = Experiment(replace(PAPER, scheme=scheme), corpus=corpus)
        experiment.populate()
        sizes[scheme] = experiment.service.index_storage_bytes()
        per_node = experiment.service.index_keys_per_node()
        keys[scheme] = sum(per_node.values()) / len(per_node)
    return sizes, keys, corpus.total_article_bytes()


def test_secVB_index_storage(benchmark):
    sizes, keys_per_node, article_bytes = benchmark.pedantic(
        build_storage_report, rounds=1, iterations=1
    )
    rows = []
    for scheme in ("simple", "complex", "flat"):
        rows.append(
            [
                scheme,
                f"{sizes[scheme] / 1e6:.1f} MB",
                f"{100 * (sizes[scheme] / sizes['simple'] - 1):+.1f}%",
                f"{100 * sizes[scheme] / article_bytes:.3f}%",
                round(keys_per_node[scheme], 1),
            ]
        )
    emit(
        "secVB_index_storage",
        format_table(
            [
                "scheme",
                "index bytes",
                "vs simple",
                "of article data",
                "keys/node",
            ],
            rows,
            title=(
                "Section V-B -- index storage (paper: simple baseline, "
                "complex +25%, flat +37%; indexes <= ~0.5% of 29.1 GB data)"
            ),
        ),
    )

    # Shape: simple < complex < flat.
    assert sizes["simple"] < sizes["complex"] < sizes["flat"]
    # Flat's overhead over simple lands near the paper's +37%.
    flat_overhead = sizes["flat"] / sizes["simple"] - 1
    assert 0.15 <= flat_overhead <= 0.60
    # Complex sits between simple and flat.
    complex_overhead = sizes["complex"] / sizes["simple"] - 1
    assert 0.0 < complex_overhead < flat_overhead
    # Indexes are a negligible fraction of the stored article data.
    assert sizes["flat"] / article_bytes < 0.01
    # Article data at 10,000 x ~250 KB ~ 2.5 GB (29.1 GB at DBLP scale).
    assert article_bytes == pytest.approx(2.5e9, rel=0.1)
