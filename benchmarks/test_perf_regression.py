"""Counter-based perf regression guard for the query-algebra hot path.

Wall-clock timings are noisy in CI, so this guard asserts on the
:mod:`repro.perf` counters instead: cache hit-rates must stay above a
floor and covering-check counts below a ceiling.  If a refactor silently
drops the pattern interning, the covering memo, or the partial-order
fingerprint prefilter, these tests fail deterministically on any
machine.

Run with the other benches::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_regression.py -q
"""

from __future__ import annotations

import itertools
import time
from dataclasses import replace

from repro import perf
from repro.core.cache import CachePolicy
from repro.core.engine import LookupEngine
from repro.core.fields import ARTICLE_SCHEMA
from repro.core.scheme import simple_scheme
from repro.core.service import IndexService
from repro.dht.idspace import hash_key
from repro.dht.ring import IdealRing
from repro.net.transport import SimulatedTransport
from repro.sim.experiment import Experiment, ExperimentConfig
from repro.sim.kernel import EventKernel
from repro.storage.store import DHTStorage
from repro.workload.corpus import CorpusConfig, SyntheticCorpus
from repro.workload.querygen import QueryGenerator
from repro.xmlq.partial_order import PartialOrderGraph
from repro.xmlq.pattern import clear_pattern_caches, covers


def _delta(action) -> dict[str, int]:
    """Run ``action`` and return the perf-counter increments it caused."""
    before = perf.snapshot()
    action()
    return perf.delta(before, perf.snapshot())


def _query_matrix(num_records: int = 8) -> list[str]:
    queries = []
    for i in range(num_records):
        record = {
            "author": f"Author_{i}",
            "title": f"Title_{i}",
            "conf": ("SIGCOMM", "INFOCOM", "ICDCS")[i % 3],
            "year": ("1989", "1996", "2001")[i % 3],
        }
        for keys in (
            ("author",),
            ("conf",),
            ("author", "title"),
            ("conf", "year"),
            ("author", "title", "conf", "year"),
        ):
            queries.append(
                ARTICLE_SCHEMA.xpath_for({k: record[k] for k in keys})
            )
    return list(dict.fromkeys(queries))


class TestCoveringMemo:
    def test_repeated_covering_checks_hit_the_memo(self):
        """Re-checking the same text pairs must be nearly free: at most
        one homomorphism run per distinct pair, >=95% memo hits."""
        queries = _query_matrix()
        pairs = list(itertools.product(queries[:10], queries[10:20]))

        def workload():
            for _ in range(50):
                for general, specific in pairs:
                    covers(general, specific)

        increments = _delta(workload)
        calls = increments["covers_calls"]
        assert calls == 50 * len(pairs)
        hit_rate = increments["covers_cache_hits"] / calls
        assert hit_rate >= 0.95, f"covers memo hit rate degraded: {hit_rate:.3f}"
        assert increments["homomorphism_runs"] <= len(pairs), (
            "each distinct pair should run the homomorphism search at most "
            f"once, saw {increments['homomorphism_runs']} runs for "
            f"{len(pairs)} pairs"
        )

    def test_pattern_interning_hit_rate(self):
        queries = _query_matrix()

        def workload():
            for _ in range(20):
                for query in queries:
                    covers(query, queries[0])

        increments = _delta(workload)
        calls = increments["pattern_calls"]
        assert calls > 0
        hit_rate = increments["pattern_cache_hits"] / calls
        assert hit_rate >= 0.95, f"pattern intern hit rate degraded: {hit_rate:.3f}"


class TestPartialOrderPrefilter:
    def test_prefilter_skips_most_covering_checks(self):
        """Building the partial order over a realistic query mix must
        skip the majority of the O(n^2) covers calls via fingerprints."""
        queries = _query_matrix()
        clear_pattern_caches()

        graphs: list[PartialOrderGraph] = []
        increments = _delta(lambda: graphs.append(PartialOrderGraph(queries)))
        graph = graphs[0]

        n = len(graph)
        potential = n * (n - 1)  # two directed checks per unordered pair
        performed = increments["pog_covers_checks"]
        skipped = increments["pog_prefilter_skips"]
        assert performed + skipped == potential, "prefilter accounting broken"
        assert performed <= 0.4 * potential, (
            f"fingerprint prefilter degraded: {performed}/{potential} "
            "covering checks performed"
        )

    def test_incremental_hasse_matches_recompute(self):
        graph = PartialOrderGraph(_query_matrix())
        assert graph.hasse_edges() == graph._recompute_hasse_edges()

    def test_navigation_runs_no_covering_checks(self):
        """hasse_edges/chains_to read the maintained reduction: zero
        covers calls, zero normalizations on canonical inputs."""
        graph = PartialOrderGraph(_query_matrix())
        leaf = graph.leaves()[0]

        def workload():
            for _ in range(100):
                graph.hasse_edges()
                graph.chains_to(leaf)

        increments = _delta(workload)
        assert increments["covers_calls"] == 0
        assert increments["normalize_cache_misses"] == 0


class TestEndToEndCounters:
    def test_search_workload_cache_floors(self):
        """A realistic search workload must keep the text-parse caches
        hot: repeated response entries parse once, not per interaction."""
        ring = IdealRing(64)
        for index in range(32):
            ring.add_node(hash_key(f"peer-{index}", 64))
        service = IndexService(
            ARTICLE_SCHEMA,
            simple_scheme(),
            DHTStorage(ring),
            DHTStorage(ring),
            SimulatedTransport(),
            cache_policy=CachePolicy.SINGLE,
        )
        corpus = SyntheticCorpus(
            CorpusConfig(num_articles=128, num_authors=48, seed=11)
        )
        for record in corpus.records:
            service.insert_record(record)
        engine = LookupEngine(service, user="user:guard")
        items = list(QueryGenerator(corpus, seed=13).generate(600))

        def workload():
            for item in items:
                trace = engine.search(item.query, item.target)
                service.transport.meter.end_query()
                assert trace.found

        increments = _delta(workload)
        calls = increments["field_parse_calls"]
        assert calls > 0
        hit_rate = increments["field_parse_cache_hits"] / calls
        assert hit_rate >= 0.80, (
            f"field-query parse cache hit rate degraded: {hit_rate:.3f}"
        )
        # The covering hot path must stay off the homomorphism search:
        # field queries decide covering by constraint subset, and any
        # text-level covers calls hit the memo.
        assert increments["homomorphism_node_visits"] <= 10_000
        # The predicate algebra must be pay-for-what-you-use: an
        # exact-only workload never walks a trie or specializes a
        # predicate query back down to its target.
        assert increments["trie_walks"] == 0
        assert increments["engine_specializations"] == 0


class TestKernelSchedulerCounters:
    """Counter-based guards on the event-kernel schedulers.

    The timing wheel's asymptotics live in three internal counters --
    entries moved by adaptive resizes (must stay O(n) amortized), empty
    buckets probed by the forward scan (must stay O(1) per pop), and
    min() fallbacks (must stay rare) -- and the heap's cancel-churn
    bound lives in its compaction counter.  These are deterministic on
    any machine, unlike wall-clock ratios.
    """

    @staticmethod
    def _lcg_delays(count: int, horizon: float) -> list[float]:
        state = 0x9E3779B9
        scale = horizon / 0xFFFFFFFF
        delays = []
        for _ in range(count):
            state = (state * 1103515245 + 12345) & 0xFFFFFFFF
            delays.append(state * scale)
        return delays

    def test_wheel_dense_counters_stay_amortized(self):
        n = 200_000
        kernel = EventKernel(scheduler="wheel")
        noop = lambda: None  # noqa: E731
        for delay in self._lcg_delays(n, 400.0):
            kernel.post(delay, noop)
        kernel.run()
        stats = kernel.stats()
        assert kernel.events_run == n
        assert stats["rebuilds"] >= 1, "dense load must trigger a resize"
        assert stats["entries_moved"] <= 2 * n, (
            f"resize churn regressed: {stats['entries_moved']} moves for "
            f"{n} events (amortized bound is ~4n/3)"
        )
        assert stats["scan_probes"] <= n, (
            f"forward scan regressed: {stats['scan_probes']} empty probes "
            f"for {n} events"
        )
        assert stats["scan_fallbacks"] <= 5

    def test_wheel_sparse_counters_stay_amortized(self):
        n = 50_000
        kernel = EventKernel(scheduler="wheel")
        noop = lambda: None  # noqa: E731
        for delay in self._lcg_delays(n, 2_500_000.0):
            kernel.post(delay, noop)
        kernel.run()
        stats = kernel.stats()
        assert kernel.events_run == n
        # Without the symmetric bucket widening, a 1ms-wide wheel pays
        # ~50 empty probes per pop here (2.5M indices / 50k events).
        assert stats["scan_probes"] <= 2 * n, (
            f"sparse scan regressed: {stats['scan_probes']} empty probes "
            f"for {n} events -- did adaptive widening break?"
        )
        assert stats["scan_fallbacks"] <= 50

    def test_heap_cancel_churn_compacts(self):
        kernel = EventKernel(scheduler="heap")
        noop = lambda: None  # noqa: E731
        for _ in range(200):
            kernel.schedule(500.0, noop)
        for index in range(50_000):
            kernel.schedule(float(index % 100), noop).cancel()
        stats = kernel.stats()
        assert stats["compactions"] >= 1
        assert stats["heap_len"] <= 2 * 200 + kernel._COMPACT_MIN + 2, (
            f"cancelled entries accumulating: heap_len={stats['heap_len']} "
            "for 200 live events"
        )


class TestTracingOverhead:
    """The observability layer must cost nothing when off, little when on.

    Every tracer call site is guarded by ``if tracer is not None``; an
    untraced run therefore performs zero tracing work beyond the None
    check.  The structural test pins that wiring; the wall-clock test
    bounds the traced/untraced ratio on a concurrent kernel run with a
    generous margin (locally ~1.17x) so genuine regressions -- an
    unguarded call site, eager serialization -- fail loudly without CI
    timing noise causing flakes.
    """

    CONFIG = ExperimentConfig(
        cache="single",
        num_nodes=20,
        num_articles=120,
        num_queries=400,
        num_authors=48,
        concurrency=8,
        latency_model="uniform:10:100",
    )

    def test_untraced_stack_holds_no_tracer(self):
        experiment = Experiment(self.CONFIG)
        assert experiment.tracer is None
        assert experiment.engine.tracer is None
        assert experiment.transport.tracer is None
        assert experiment.index_store.tracer is None
        assert experiment.file_store.tracer is None

    def test_traced_run_overhead_is_bounded(self):
        def best_of(config, repetitions=3):
            times = []
            for _ in range(repetitions):
                experiment = Experiment(config)
                start = time.perf_counter()
                experiment.run()
                times.append(time.perf_counter() - start)
            return min(times)

        best_of(self.CONFIG, repetitions=1)  # warm process-global caches
        untraced = best_of(self.CONFIG)
        traced = best_of(replace(self.CONFIG, trace=True))
        ratio = traced / untraced
        assert ratio < 1.75, (
            f"tracing overhead regressed: traced/untraced = {ratio:.2f} "
            f"({traced * 1000:.0f}ms vs {untraced * 1000:.0f}ms)"
        )
