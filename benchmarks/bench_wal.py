"""WAL micro-benchmark: append throughput per fsync policy, replay speed.

Times the two durability hot paths:

- **append**: records/sec written through :class:`WriteAheadLog` under
  each fsync policy (``always`` pays one fsync per record, ``interval``
  amortizes it, ``never`` leaves syncing to the OS) -- the cost a node
  pays per acknowledged insert;
- **replay**: records/sec decoded back by :func:`replay_wal` -- the cost
  of crash recovery, which bounds how fast a restarted node rejoins.

Results land in ``benchmarks/results/wal.json``.  The hard assertions
are conservative regression floors (an order of magnitude under local
measurements, CI-safe): replay must stay fast enough that recovering a
full node is milliseconds, and non-``always`` appends must not regress
to per-record-fsync cost.

Run standalone (``python benchmarks/bench_wal.py``) or as a bench
(``pytest benchmarks/bench_wal.py``); it is not part of the tier-1
suite.
"""

import json
import pathlib
import tempfile
import time

from repro.storage.durable import (
    OP_PUT,
    FsyncPolicy,
    WriteAheadLog,
    replay_wal,
)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Records per timed run: enough to swamp per-call noise, small enough
#: that the fsync-per-record policy finishes quickly on slow disks.
N_APPEND = 20_000
N_REPLAY = 100_000

POLICIES = ("always", "interval:64", "never")

#: Conservative CI-safe floors (records/sec); local runs measure well
#: over 10x these.
MIN_APPENDS_PER_SEC = 5_000
MIN_REPLAYS_PER_SEC = 20_000

_RESULTS: dict[str, dict] = {}


def sample_fields(i: int) -> tuple:
    # Realistic record shape: an index key and a bibliographic value.
    return ("index", f"author=name-{i % 997}", f"article-{i:06d}|title word")


def bench_append(policy_spec: str, count: int = N_APPEND) -> dict:
    with tempfile.TemporaryDirectory(prefix="bench-wal-") as tmp:
        path = f"{tmp}/wal.log"
        wal = WriteAheadLog(path, fsync=FsyncPolicy.parse(policy_spec))
        fields = [sample_fields(i) for i in range(count)]
        started = time.perf_counter()
        for record in fields:
            wal.append(OP_PUT, record)
        elapsed = time.perf_counter() - started
        size = wal.size
        wal.close()
        return {
            "records_per_sec": round(count / elapsed),
            "bytes_per_record": round(size / count, 1),
        }


def bench_replay(count: int = N_REPLAY) -> dict:
    with tempfile.TemporaryDirectory(prefix="bench-wal-") as tmp:
        path = f"{tmp}/wal.log"
        wal = WriteAheadLog(path, fsync=FsyncPolicy("never"))
        for i in range(count):
            wal.append(OP_PUT, sample_fields(i))
        wal.close()
        started = time.perf_counter()
        ops, report = replay_wal(path)
        elapsed = time.perf_counter() - started
        assert len(ops) == count and not report.repaired
        return {
            "records_per_sec": round(count / elapsed),
            "replay_ms": round(elapsed * 1000.0, 2),
        }


def dump_results() -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "n_append": N_APPEND,
        "n_replay": N_REPLAY,
        "append": {
            policy: _RESULTS[f"append:{policy}"]
            for policy in POLICIES
            if f"append:{policy}" in _RESULTS
        },
        "replay": _RESULTS.get("replay"),
    }
    (RESULTS_DIR / "wal.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )


def test_append_throughput():
    for policy in POLICIES:
        _RESULTS[f"append:{policy}"] = bench_append(policy)
    # Floor only the amortized policies: "always" is honest fsync cost
    # and legitimately disk-bound.
    for policy in ("interval:64", "never"):
        rate = _RESULTS[f"append:{policy}"]["records_per_sec"]
        assert rate >= MIN_APPENDS_PER_SEC, (
            f"{policy}: {rate:,}/s < floor {MIN_APPENDS_PER_SEC:,}/s"
        )


def test_replay_throughput():
    _RESULTS["replay"] = bench_replay()
    rate = _RESULTS["replay"]["records_per_sec"]
    assert rate >= MIN_REPLAYS_PER_SEC, (
        f"replay: {rate:,}/s < floor {MIN_REPLAYS_PER_SEC:,}/s"
    )
    dump_results()


def main() -> None:
    test_append_throughput()
    test_replay_throughput()
    print(json.dumps(_RESULTS, indent=2, sort_keys=True))


if __name__ == "__main__":
    main()
