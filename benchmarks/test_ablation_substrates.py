"""Ablation: substrate independence (the paper's layering claim).

Section V: "our indexing techniques do not depend on a specific lookup
and storage layer ... the number of nodes can affect the DHT lookup
latency, and the number of keys stored per node, but does not impact the
effectiveness of our indexing techniques."

We run the identical workload over the ideal one-hop ring, Chord, and
Kademlia and verify that every indexing-level metric is bit-identical
while the routing cost underneath differs.
"""

from conftest import REDUCED, cell, emit
from repro.analysis.tables import format_table

SUBSTRATES = ("ideal", "chord", "kademlia", "pastry", "can")


def run_cells():
    return {
        substrate: cell(
            "simple", "single", base=REDUCED, substrate=substrate, bits=32
        )
        for substrate in SUBSTRATES
    }


def test_ablation_substrate_independence(benchmark):
    cells = benchmark.pedantic(run_cells, rounds=1, iterations=1)
    rows = []
    for substrate in SUBSTRATES:
        result = cells[substrate]
        rows.append(
            [
                substrate,
                round(result.avg_interactions, 4),
                round(result.hit_ratio, 4),
                result.nonindexed_queries,
                int(result.normal_bytes_per_query),
                round(result.avg_dht_hops, 2),
            ]
        )
    emit(
        "ablation_substrates",
        format_table(
            [
                "substrate",
                "interactions",
                "hit ratio",
                "errors",
                "normal B/q",
                "DHT hops/lookup",
            ],
            rows,
            title=(
                "Substrate ablation -- identical indexing behaviour, "
                "differing routing cost (simple scheme, single-cache)"
            ),
        ),
    )

    ideal = cells["ideal"]
    for substrate in ("chord", "kademlia", "pastry", "can"):
        other = cells[substrate]
        # Indexing-level behaviour is identical across substrates.
        assert other.avg_interactions == ideal.avg_interactions
        assert other.hit_ratio == ideal.hit_ratio
        assert other.nonindexed_queries == ideal.nonindexed_queries
        assert other.normal_bytes_per_query == ideal.normal_bytes_per_query
        # Routing cost differs: the real protocols take multiple hops.
        assert other.avg_dht_hops > ideal.avg_dht_hops

    assert ideal.avg_dht_hops == 1.0
    # O(log N) routing: about log2(200) ~ 8 hops, certainly below 30;
    # CAN's O(d * N^(1/d)) at d=2 is ~ 2*sqrt(200) ~ 28.
    assert cells["chord"].avg_dht_hops < 30
    assert cells["kademlia"].avg_dht_hops < 30
    assert cells["pastry"].avg_dht_hops < 30
    assert cells["can"].avg_dht_hops < 45
