"""Ablation: scalability in the node population.

Section V-E: "Simulating P2P networks of different sizes is of no use
for our experiments.  The number of nodes can affect the DHT lookup
latency, and the number of keys stored per node, but does not impact the
effectiveness of our indexing techniques."

This ablation verifies that claim instead of assuming it: the identical
corpus and workload run over 125..1000 nodes.  Interactions, traffic,
and errors must be invariant; per-node key counts must scale as 1/N; and
the hot-spot skew persists at every size (it is a property of the query
distribution, not of the population).
"""

from dataclasses import replace

import pytest

from conftest import REDUCED, emit
from repro.analysis.tables import format_table
from repro.sim.experiment import Experiment
from repro.sim.runner import _shared_corpus

NODE_COUNTS = (125, 250, 500, 1_000)


def run_cells():
    corpus = _shared_corpus(REDUCED)
    results = {}
    for num_nodes in NODE_COUNTS:
        config = replace(
            REDUCED, num_nodes=num_nodes, num_queries=10_000, cache="none"
        )
        results[num_nodes] = Experiment(config, corpus=corpus).run()
    return results


def test_ablation_scalability(benchmark):
    cells = benchmark.pedantic(run_cells, rounds=1, iterations=1)
    rows = []
    for num_nodes in NODE_COUNTS:
        result = cells[num_nodes]
        rows.append(
            [
                num_nodes,
                round(result.avg_interactions, 3),
                int(result.normal_bytes_per_query),
                result.nonindexed_queries,
                round(result.avg_index_keys_per_node, 1),
                f"{100 * result.busiest_node_share:.2f}%",
            ]
        )
    emit(
        "ablation_scalability",
        format_table(
            ["nodes", "interactions", "normal B/q", "errors", "keys/node",
             "busiest node"],
            rows,
            title=(
                "Scalability ablation -- identical workload over growing "
                "populations (simple scheme, no cache)"
            ),
        ),
    )

    reference = cells[NODE_COUNTS[0]]
    for num_nodes in NODE_COUNTS:
        result = cells[num_nodes]
        # Indexing effectiveness is population-independent (the paper's
        # justification for fixing 500 nodes).
        assert result.avg_interactions == reference.avg_interactions
        assert result.normal_bytes_per_query == reference.normal_bytes_per_query
        assert result.nonindexed_queries == reference.nonindexed_queries
    # Storage per node scales down as the population grows.
    keys = [cells[n].avg_index_keys_per_node for n in NODE_COUNTS]
    assert all(a > b for a, b in zip(keys, keys[1:]))
    # Doubling nodes roughly halves per-node keys.
    assert keys[0] / keys[-1] == pytest.approx(
        NODE_COUNTS[-1] / NODE_COUNTS[0], rel=0.15
    )
    # The busiest node's absolute share shrinks with more nodes, but a
    # hot-spot always exists (well above the uniform 1/N share).
    for num_nodes in NODE_COUNTS:
        assert cells[num_nodes].busiest_node_share > 3.0 / num_nodes
