"""Figure 15: percentage of queries processed by each node (hot-spots).

Paper's observations (simple scheme): the busiest node is touched by
almost 1 in 10 queries; the per-node load is heavily skewed (log-log
plot); caching slightly relieves the most stressed nodes; totals sum to
more than 100% because one user query generates several index accesses.
"""

from conftest import cell, emit
from repro.analysis.stats import lorenz_skew
from repro.analysis.tables import format_table

POLICIES = ("none", "lru30", "single")


def run_cells():
    return {cache: cell("simple", cache) for cache in POLICIES}


def test_fig15_hotspots(benchmark):
    cells = benchmark.pedantic(run_cells, rounds=1, iterations=1)
    checkpoints = [1, 2, 3, 5, 10, 20, 50, 100, 200, 500]
    rows = []
    for rank in checkpoints:
        row = [rank]
        for cache in POLICIES:
            series = cells[cache].node_query_percentages
            row.append(round(series[rank - 1], 3) if rank <= len(series) else 0.0)
        rows.append(row)
    totals = ["sum (>100%)"] + [
        round(sum(cells[cache].node_query_percentages), 1) for cache in POLICIES
    ]
    skews = ["top-10% share"] + [
        round(lorenz_skew(cells[cache].node_query_percentages), 3)
        for cache in POLICIES
    ]
    emit(
        "fig15_hotspots",
        format_table(
            ["node rank", *POLICIES],
            rows + [totals, skews],
            title=(
                "Figure 15 -- % of 50,000 queries touching each node, by "
                "load rank, simple scheme (paper: busiest ~1 in 10; "
                "caching relieves the head)"
            ),
        ),
    )

    for cache in POLICIES:
        series = cells[cache].node_query_percentages
        # Skewed load: busiest node far above the median node.
        median = series[len(series) // 2]
        assert series[0] > 5 * median
        # Fan-out: percentages sum to more than 100%.
        assert sum(series) > 100.0

    # Busiest node handles on the order of 1 in 10 queries without cache.
    busiest = cells["none"].node_query_percentages[0]
    assert 4.0 <= busiest <= 15.0

    # Caching slightly relieves the busiest nodes.
    assert cells["single"].node_query_percentages[0] <= busiest
    assert cells["lru30"].node_query_percentages[0] <= busiest * 1.02
