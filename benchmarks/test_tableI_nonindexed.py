"""Table I: number of queries to non-indexed data (recoverable errors).

Paper's numbers: ~2,500 errors without cache for all three schemes (the
author+year queries, 5% of the 50,000-query workload, target a field
combination no scheme indexes); LRU30 cuts them to ~810-874; unbounded
single-cache to ~563-600 -- "an index entry is created automatically
after the first lookup; subsequent queries ... do not experience an
error".
"""

from conftest import cell, emit
from repro.analysis.tables import format_table
from repro.sim.presets import SCHEMES

POLICIES = ("none", "lru30", "single")


def run_cells():
    return {
        (scheme, cache): cell(scheme, cache)
        for scheme in SCHEMES
        for cache in POLICIES
    }


def test_tableI_queries_to_nonindexed_data(benchmark):
    grid = benchmark.pedantic(run_cells, rounds=1, iterations=1)
    rows = []
    for cache in POLICIES:
        rows.append(
            [cache]
            + [grid[(scheme, cache)].nonindexed_queries for scheme in SCHEMES]
        )
    emit(
        "tableI_nonindexed",
        format_table(
            ["cache policy", *SCHEMES],
            rows,
            title=(
                "Table I -- queries to non-indexed data "
                "(paper: ~2,502-2,507 no cache; 810-874 LRU30; 563-600 "
                "single-cache)"
            ),
        ),
    )

    for scheme in SCHEMES:
        none = grid[(scheme, "none")].nonindexed_queries
        lru30 = grid[(scheme, "lru30")].nonindexed_queries
        single = grid[(scheme, "single")].nonindexed_queries
        # ~5% of 50,000 queries use the non-indexed author+year shape.
        assert 2_200 <= none <= 2_800, (scheme, none)
        # The cache absorbs repeats: single < lru30 < none.
        assert single < lru30 < none, scheme
        # And the reduction is substantial (paper: 4.4x for single-cache;
        # our corpus yields a larger distinct-query tail, see
        # EXPERIMENTS.md -- require at least ~2x).
        assert single <= none * 0.6, (scheme, single, none)

    # The error count is scheme-independent to first order (the paper's
    # three columns are within a few percent of each other).
    for cache in POLICIES:
        values = [grid[(scheme, cache)].nonindexed_queries for scheme in SCHEMES]
        assert max(values) - min(values) <= 0.15 * max(values), (cache, values)
