"""Ablation: replica load-spreading for hot-spot relief.

Section V-g ends: "any optimization of the underlying P2P DHT substrate
for hot-spot avoidance (e.g., using replication) will apply to index
accesses as well."  We store each key on r nodes and rotate queries
across the replicas, then re-measure the Figure 15 hot-spot curve: the
busiest node's share should fall roughly with r, while the indexing
metrics (which count interactions, not destinations) stay unchanged.
"""

from dataclasses import replace

from conftest import REDUCED, emit
from repro.analysis.tables import format_table
from repro.sim.experiment import Experiment
from repro.sim.runner import _shared_corpus

FACTORS = (1, 2, 4)


def run_cells():
    corpus = _shared_corpus(REDUCED)
    results = {}
    for replication in FACTORS:
        config = replace(
            REDUCED, replication=replication, num_queries=10_000, cache="none"
        )
        results[replication] = Experiment(config, corpus=corpus).run()
    return results


def test_ablation_replication_spreads_hotspots(benchmark):
    cells = benchmark.pedantic(run_cells, rounds=1, iterations=1)
    rows = []
    for replication in FACTORS:
        result = cells[replication]
        top5 = sum(result.node_query_percentages[:5])
        rows.append(
            [
                replication,
                round(result.avg_interactions, 3),
                f"{100 * result.busiest_node_share:.2f}%",
                f"{top5:.1f}%",
                round(result.avg_index_keys_per_node, 1),
            ]
        )
    emit(
        "ablation_replication",
        format_table(
            ["replication", "interactions", "busiest node", "top-5 nodes",
             "keys/node"],
            rows,
            title=(
                "Replication ablation -- rotating queries across replicas "
                "(simple scheme, no cache, 10,000 queries)"
            ),
        ),
    )

    base = cells[1]
    for replication in FACTORS:
        result = cells[replication]
        # Indexing effectiveness unchanged by replication.
        assert result.avg_interactions == base.avg_interactions
        assert result.found == result.searches
    # The busiest node's load falls as replicas absorb the hot keys.
    shares = [cells[r].busiest_node_share for r in FACTORS]
    assert shares[0] > shares[1] > shares[2]
    # Roughly proportional relief: 4 replicas cut the peak by >= 2x.
    assert shares[0] / shares[2] >= 2.0
    # Extra copies cost storage: keys per node grows with r.
    keys = [cells[r].avg_index_keys_per_node for r in FACTORS]
    assert keys[0] < keys[1] < keys[2]
