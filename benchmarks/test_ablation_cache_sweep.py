"""Ablation: LRU capacity sweep beyond the paper's {10, 20, 30}.

The paper evaluates three LRU capacities; this sweep extends the axis to
find the knee where a bounded cache approaches the unbounded
single-cache policy, quantifying the "cache efficiency is still more
than half that of policies with unbounded cache size" observation.
"""

from conftest import REDUCED, cell, emit
from repro.analysis.tables import format_table

CAPACITIES = (5, 10, 20, 30, 50, 100)


def run_cells():
    cells = {
        capacity: cell("simple", f"lru{capacity}", base=REDUCED)
        for capacity in CAPACITIES
    }
    cells["single"] = cell("simple", "single", base=REDUCED)
    return cells


def test_ablation_lru_capacity_sweep(benchmark):
    cells = benchmark.pedantic(run_cells, rounds=1, iterations=1)
    unbounded = cells["single"]
    rows = []
    for capacity in CAPACITIES:
        result = cells[capacity]
        rows.append(
            [
                capacity,
                f"{100 * result.hit_ratio:.1f}%",
                f"{100 * result.hit_ratio / unbounded.hit_ratio:.0f}%",
                round(result.avg_interactions, 3),
                f"{100 * result.caches_full_fraction:.0f}%",
            ]
        )
    rows.append(
        [
            "unbounded",
            f"{100 * unbounded.hit_ratio:.1f}%",
            "100%",
            round(unbounded.avg_interactions, 3),
            "0%",
        ]
    )
    emit(
        "ablation_cache_sweep",
        format_table(
            ["LRU capacity", "hit ratio", "of unbounded", "interactions",
             "caches full"],
            rows,
            title="LRU capacity sweep, simple scheme",
        ),
    )

    ratios = [cells[c].hit_ratio for c in CAPACITIES]
    # Hit ratio monotone in capacity, approaching the unbounded policy.
    assert all(a <= b + 1e-9 for a, b in zip(ratios, ratios[1:]))
    assert cells[100].hit_ratio >= 0.9 * unbounded.hit_ratio
    # The paper's observation generalizes: even 10 keys/node retains more
    # than half of the unbounded efficiency.
    assert cells[10].hit_ratio >= 0.5 * unbounded.hit_ratio
    # Diminishing returns: the 10->30 gain exceeds the 50->100 gain.
    assert (cells[30].hit_ratio - cells[10].hit_ratio) >= (
        cells[100].hit_ratio - cells[50].hit_ratio
    ) - 1e-9
