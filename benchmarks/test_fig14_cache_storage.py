"""Figure 14: average number of cached keys per node (and Section V-f).

Paper's observations: single-cache is about twice as space-efficient as
multi-cache; *flat* is unaffected by multi vs single (its chains only
allow caching at the first node); LRU maxima equal the configured
capacities; with unbounded policies the maxima reach a few hundred keys
(simple 345 / flat 253 / complex 413 under multi; 253 under single); a
large fraction of LRU10 caches fill up (72%), fewer for LRU20 (51.2%)
and LRU30 (37.6%); regular keys per node: simple 155, flat 195, complex
180.
"""

from conftest import cell, emit
from repro.analysis.tables import format_table
from repro.sim.presets import CACHE_POLICIES_CACHED, SCHEMES


def run_grid():
    return {
        (scheme, cache): cell(scheme, cache)
        for scheme in SCHEMES
        for cache in CACHE_POLICIES_CACHED
    }


def test_fig14_cached_keys_per_node(benchmark):
    grid = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    rows = []
    for cache in CACHE_POLICIES_CACHED:
        row = [cache]
        for scheme in SCHEMES:
            result = grid[(scheme, cache)]
            row.append(
                f"{result.avg_cached_keys_per_node:.1f} (max {result.max_cached_keys})"
            )
        rows.append(row)
    regular = [
        ["regular keys/node"]
        + [
            round(grid[(scheme, "single")].avg_index_keys_per_node, 1)
            for scheme in SCHEMES
        ]
    ]
    occupancy = []
    for capacity in (10, 20, 30):
        result = grid[("simple", f"lru{capacity}")]
        occupancy.append(
            [
                f"lru{capacity}",
                f"{100 * result.caches_full_fraction:.1f}%",
                f"{100 * result.caches_empty_fraction:.1f}%",
            ]
        )
    text = "\n\n".join(
        [
            format_table(
                ["cache policy", *(f"{s} avg (max)" for s in SCHEMES)],
                rows,
                title=(
                    "Figure 14 -- cached keys per node "
                    "(paper: multi ~2x single; flat unaffected; LRU maxima = "
                    "capacity)"
                ),
            ),
            format_table(
                ["", *SCHEMES],
                regular,
                title=(
                    "Regular keys per node after 50,000 queries "
                    "(paper: simple 155 / flat 195 / complex 180)"
                ),
            ),
            format_table(
                ["policy", "caches full", "caches empty"],
                occupancy,
                title=(
                    "LRU occupancy, simple scheme "
                    "(paper: 72% / 51.2% / 37.6% full; ~4.4% empty overall)"
                ),
            ),
        ]
    )
    emit("fig14_cache_storage", text)

    for scheme in ("simple", "complex"):
        multi = grid[(scheme, "multi")]
        single = grid[(scheme, "single")]
        # Multi-cache stores roughly twice the keys of single-cache.
        ratio = multi.avg_cached_keys_per_node / single.avg_cached_keys_per_node
        assert 1.4 <= ratio <= 3.0, (scheme, ratio)
        assert multi.max_cached_keys > single.max_cached_keys

    # Flat (nearly) unaffected by multi vs single: one-node index chains.
    flat_ratio = (
        grid[("flat", "multi")].avg_cached_keys_per_node
        / grid[("flat", "single")].avg_cached_keys_per_node
    )
    assert 1.0 <= flat_ratio <= 1.1

    # LRU maxima are exactly the capacities.
    for capacity in (10, 20, 30):
        for scheme in SCHEMES:
            assert grid[(scheme, f"lru{capacity}")].max_cached_keys == capacity

    # Fuller caches at smaller capacities.
    full10 = grid[("simple", "lru10")].caches_full_fraction
    full20 = grid[("simple", "lru20")].caches_full_fraction
    full30 = grid[("simple", "lru30")].caches_full_fraction
    assert full10 > full20 > full30 > 0

    # Regular keys per node: flat stores the most entries, and magnitudes
    # sit in the paper's 100-200 band.
    keys = {
        scheme: grid[(scheme, "single")].avg_index_keys_per_node
        for scheme in SCHEMES
    }
    assert keys["flat"] > keys["simple"]
    assert keys["flat"] > keys["complex"] > keys["simple"] * 0.9
    for scheme in SCHEMES:
        assert 60 <= keys[scheme] <= 260
