"""Figure 7: distribution of query types.

The paper extracts the distribution from BibFinder's 9,108-query log:
author-only 57%, title-only 20%, then date and field combinations.  Our
workload generator is parameterized with the published probabilities
(author .60 / title .20 / year .10 / author+title .05 / author+year .05);
this bench regenerates the 50,000-query workload and reports the
realized distribution.
"""

from conftest import emit
from repro.analysis.tables import bar_chart
from repro.workload.corpus import CorpusConfig, SyntheticCorpus
from repro.workload.querygen import QueryGenerator
from repro.workload.trace import (
    QueryTrace,
    format_structure_label,
    structure_distribution,
)

NUM_QUERIES = 50_000


def generate_distribution():
    corpus = SyntheticCorpus(CorpusConfig(num_articles=10_000, num_authors=4_000))
    generator = QueryGenerator(corpus, seed=42)
    traces = [QueryTrace.from_workload(item) for item in generator.generate(NUM_QUERIES)]
    return structure_distribution(traces)


def test_fig07_query_type_distribution(benchmark):
    distribution = benchmark.pedantic(
        generate_distribution, rounds=1, iterations=1
    )
    ordered = dict(
        sorted(
            (
                (format_structure_label(shape), 100.0 * probability)
                for shape, probability in distribution.items()
            ),
            key=lambda kv: -kv[1],
        )
    )
    emit(
        "fig07_query_types",
        bar_chart(
            ordered,
            unit="%",
            title=(
                "Figure 7 -- query type distribution "
                f"({NUM_QUERIES:,} generated queries; "
                "paper: author 57-60%, title 20%, year ~10%)"
            ),
        ),
    )

    # Shape assertions: the ordering and rough magnitudes of the paper.
    assert 0.57 <= distribution[("author",)] <= 0.63
    assert 0.17 <= distribution[("title",)] <= 0.23
    assert 0.08 <= distribution[("year",)] <= 0.12
    assert 0.03 <= distribution[("author", "title")] <= 0.07
    assert 0.03 <= distribution[("author", "year")] <= 0.07
    labels = sorted(distribution, key=distribution.get, reverse=True)
    assert labels[0] == ("author",)
    assert labels[1] == ("title",)
    assert labels[2] == ("year",)
