"""Figure 9: popularity distributions follow power laws.

The paper plots request probability against popularity rank for BibFinder
authors, NetBib authors, BibFinder articles, and CiteSeer citations, and
observes that "all probabilities follow roughly a power-law".

Methodology is reproduced end to end for the BibFinder series: a
BibFinder-sized query log (9,108 entries) is *generated*, then *parsed
and summarized* (``repro.workload.logs``), and the per-author and
per-title request probabilities extracted from it are fitted with the
paper's own method -- least squares on log-log axes.  The NetBib and
CiteSeer series come from their corresponding synthetic models.
"""

import random

from conftest import emit
from repro.analysis.powerlaw import fit_power_law
from repro.analysis.tables import format_table
from repro.workload.corpus import CorpusConfig, SyntheticCorpus
from repro.workload.logs import generate_query_log, parse_query_log, summarize_log
from repro.workload.popularity import PowerLawPopularity, ZipfPopularity


def build_series():
    """Four (name, rank-ordered request probabilities) series."""
    series = {}

    # BibFinder: a 9,108-query log generated, parsed, and summarized --
    # the full pipeline the paper applied to the real log.
    corpus = SyntheticCorpus(
        CorpusConfig(num_articles=5_000, num_authors=2_000, seed=41)
    )
    log = generate_query_log(corpus, volume=9_108, seed=99)
    summary = summarize_log(parse_query_log(log))
    series["BibFinder authors (from log)"] = summary.popularity_series("author")
    series["BibFinder articles (from log)"] = summary.popularity_series("title")

    # NetBib authors: 5,924 queries drawn from a Zipf author model.
    netbib = ZipfPopularity(1_500, s=0.8)
    rng = random.Random(101)
    counts: dict[int, int] = {}
    for _ in range(5_924):
        rank = netbib.sample(rng)
        counts[rank] = counts.get(rank, 0) + 1
    ordered = sorted(counts.values(), reverse=True)
    series["NetBib authors"] = [count / 5_924 for count in ordered]

    # CiteSeer: citation counts of the top-10,000 articles.
    citeseer = PowerLawPopularity.for_population(10_000)
    rng = random.Random(102)
    counts = {}
    for _ in range(50_000):
        rank = citeseer.sample(rng)
        counts[rank] = counts.get(rank, 0) + 1
    ordered = sorted(counts.values(), reverse=True)
    series["CiteSeer articles"] = [count / 50_000 for count in ordered]
    return series


def test_fig09_popularity_distributions_are_power_laws(benchmark):
    series = benchmark.pedantic(build_series, rounds=1, iterations=1)
    rows = []
    fits = {}
    for name, probabilities in series.items():
        ranks = list(range(1, len(probabilities) + 1))
        fit = fit_power_law(ranks, probabilities)
        fits[name] = fit
        rows.append(
            [name, len(probabilities), round(fit.k, 4), round(fit.alpha, 3),
             round(fit.r_squared, 3)]
        )
    emit(
        "fig09_popularity",
        format_table(
            ["series", "distinct items", "k", "alpha", "R^2"],
            rows,
            title=(
                "Figure 9 -- popularity distributions (log-log least-squares "
                "fits of p_i = k / i^alpha; paper: all roughly power laws)"
            ),
        ),
    )
    for name, fit in fits.items():
        assert fit.is_power_law, f"{name} did not fit a power law: {fit}"
        assert 0.3 <= fit.alpha <= 2.5, f"implausible exponent for {name}: {fit}"
    # A few items dominate every log: head far above the median.
    for name, probabilities in series.items():
        median = probabilities[len(probabilities) // 2]
        assert probabilities[0] >= 20 * median, name
