"""Ablation: permanent deep-link index entries for popular content.

Section IV-C: "a very popular file can be linked to deep in the
hierarchy to short-circuit some indexes and speed up lookups" (the
``(q6; d1)`` example).  We add permanent shortcut entries for the top-N
most popular articles at every entry index class and measure the
interaction reduction, which should grow with N and concentrate on the
head of the popularity distribution.
"""

from conftest import REDUCED, cell, emit
from repro.analysis.tables import format_table

TOP_NS = (0, 50, 200, 1_000)


def run_cells():
    return {
        top_n: cell("complex", "none", base=REDUCED, shortcut_top_n=top_n)
        for top_n in TOP_NS
    }


def test_ablation_popular_content_shortcuts(benchmark):
    cells = benchmark.pedantic(run_cells, rounds=1, iterations=1)
    baseline = cells[0].avg_interactions
    rows = []
    for top_n in TOP_NS:
        result = cells[top_n]
        rows.append(
            [
                top_n,
                round(result.avg_interactions, 3),
                f"{100 * (1 - result.avg_interactions / baseline):.1f}%",
                int(result.index_storage_bytes / 1e3),
            ]
        )
    emit(
        "ablation_shortcuts",
        format_table(
            ["shortcut top-N", "interactions", "saved", "index KB"],
            rows,
            title=(
                "Shortcut ablation -- deep links for the N most popular "
                "articles (complex scheme, no cache)"
            ),
        ),
    )

    interactions = [cells[top_n].avg_interactions for top_n in TOP_NS]
    # Monotone improvement with coverage of the popularity head.
    assert all(a >= b for a, b in zip(interactions, interactions[1:]))
    # Even covering just the top 50 of 4,000 articles is visible (the
    # head of the power law carries a large share of all requests).
    assert cells[50].avg_interactions < baseline - 0.05
    # Extra index entries cost storage.
    assert cells[1_000].index_storage_bytes > cells[0].index_storage_bytes
