"""Figure 13: cache efficiency -- distributed hit ratio.

Paper's observations: multi-cache is only marginally more efficient than
single-cache when measured at the point of entry (most hits occur on the
first node of the chain: 86% simple / 99.9% flat / 84% complex); with
only 10 cached keys per node, efficiency is still more than half that of
the unbounded policies.

We report both the any-jump hit ratio and the first-contact hit ratio;
the latter is the multi~=single comparison the paper describes (see
EXPERIMENTS.md for the accounting discussion).
"""

from conftest import cell, emit
from repro.analysis.tables import format_table
from repro.sim.presets import CACHE_POLICIES_CACHED, SCHEMES


def run_grid():
    return {
        (scheme, cache): cell(scheme, cache)
        for scheme in SCHEMES
        for cache in CACHE_POLICIES_CACHED
    }


def test_fig13_cache_hit_ratio(benchmark):
    grid = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    rows = []
    for cache in CACHE_POLICIES_CACHED:
        row = [cache]
        for scheme in SCHEMES:
            result = grid[(scheme, cache)]
            first_contact = result.hit_ratio * result.first_contact_hit_share
            row.append(
                f"{100 * result.hit_ratio:.1f}% ({100 * first_contact:.1f}%)"
            )
        rows.append(row)
    emit(
        "fig13_hit_ratio",
        format_table(
            ["cache policy", *(f"{s} hit% (first-contact%)" for s in SCHEMES)],
            rows,
            title=(
                "Figure 13 -- distributed cache hit ratio "
                "(paper: multi marginally above single; LRU10 more than "
                "half of unbounded; most hits on the first node)"
            ),
        ),
    )

    for scheme in SCHEMES:
        multi = grid[(scheme, "multi")]
        single = grid[(scheme, "single")]
        lru = {c: grid[(scheme, f"lru{c}")] for c in (10, 20, 30)}
        # Multi >= single in every accounting.
        assert multi.hit_ratio >= single.hit_ratio
        # First-contact hit rates of multi and single are close (the
        # paper's "only marginally more efficient").
        multi_fc = multi.hit_ratio * multi.first_contact_hit_share
        single_fc = single.hit_ratio * single.first_contact_hit_share
        assert multi_fc >= single_fc * 0.95
        assert multi_fc <= single_fc * 1.35
        # LRU monotone in capacity and LRU10 more than half of single.
        assert lru[10].hit_ratio <= lru[20].hit_ratio <= lru[30].hit_ratio
        assert lru[10].hit_ratio >= 0.5 * single.hit_ratio
        # Hit ratios in a plausible band (paper: roughly 35-70%).
        assert 0.2 <= single.hit_ratio <= 0.8

    # Flat's chains have one index node: hits are (almost) all first
    # contact -- the paper's 99.9%.
    flat_single = grid[("flat", "single")]
    assert flat_single.first_contact_hit_share >= 0.95
    # Hierarchical schemes have genuinely lower first-contact shares.
    assert (
        grid[("simple", "multi")].first_contact_hit_share
        < flat_single.first_contact_hit_share
    )
