"""Baseline comparison: key-to-key indexing vs INS/Twine replication.

Section II of the paper argues the contrast qualitatively: "Unlike
Twine, we do not replicate data at multiple locations; we rather provide
a key-to-key service ... For improved scalability, index entries are
further organized hierarchically."  This bench quantifies it on an
identical corpus, substrate, and workload:

- Twine stores the complete description once per strand (10 copies per
  record with singles+pairs), so its storage dwarfs every index scheme;
- in exchange, Twine answers any strand-shaped query in exactly two
  interactions -- including author+year, which no paper scheme indexes;
- Twine's responses carry full descriptions (like *flat*), so its
  traffic sits at the flat end of the spectrum.
"""


from conftest import REDUCED, cell, emit
from repro.analysis.tables import format_table
from repro.baselines.twine import TwineResolver
from repro.core.fields import ARTICLE_SCHEMA
from repro.dht.idspace import hash_key
from repro.dht.ring import IdealRing
from repro.net.transport import SimulatedTransport
from repro.sim.runner import _shared_corpus
from repro.storage.store import DHTStorage
from repro.workload.popularity import PowerLawPopularity
from repro.workload.querygen import QueryGenerator


def run_twine():
    corpus = _shared_corpus(REDUCED)
    ring = IdealRing(REDUCED.bits)
    for index in range(REDUCED.num_nodes):
        ring.add_node(hash_key(f"node-{index}", REDUCED.bits))
    transport = SimulatedTransport()
    resolver = TwineResolver(
        ARTICLE_SCHEMA, DHTStorage(ring), DHTStorage(ring), transport
    )
    for record in corpus.records:
        resolver.insert_record(record)
    generator = QueryGenerator(
        corpus,
        PowerLawPopularity.for_population(len(corpus)),
        seed=REDUCED.query_seed,
    )
    outcome = resolver.run_workload(generator.generate(REDUCED.num_queries))
    return resolver, outcome


def test_baseline_twine_vs_index_schemes(benchmark):
    resolver, twine = benchmark.pedantic(run_twine, rounds=1, iterations=1)
    schemes = {
        scheme: cell(scheme, "none", base=REDUCED)
        for scheme in ("simple", "flat", "complex")
    }
    rows = []
    for name, result in schemes.items():
        rows.append(
            [
                name,
                f"{result.index_storage_bytes / 1e6:.1f} MB",
                round(result.avg_interactions, 2),
                int(result.normal_bytes_per_query),
                result.nonindexed_queries,
            ]
        )
    rows.append(
        [
            "twine (strands<=2)",
            f"{resolver.storage_bytes() / 1e6:.1f} MB",
            round(twine.avg_interactions, 2),
            int(twine.normal_bytes_per_query),
            0,
        ]
    )
    emit(
        "baseline_twine",
        format_table(
            ["system", "metadata storage", "interactions", "normal B/q",
             "non-indexed errors"],
            rows,
            title=(
                "INS/Twine replication vs key-to-key indexes "
                f"({REDUCED.num_articles:,} articles, "
                f"{REDUCED.num_queries:,} queries)"
            ),
        ),
    )

    assert twine.found == twine.searches
    # Twine is flat-shaped: two interactions, always.
    assert twine.avg_interactions == 2.0
    # The paper's storage claim: replicating descriptions on every strand
    # resolver costs more than any key-to-key scheme -- multiples of the
    # hierarchical schemes, and clearly above even flat (which already
    # stores full MSDs per query key, but only once per key-value pair).
    for result in schemes.values():
        assert resolver.storage_bytes() > 1.3 * result.index_storage_bytes
    assert resolver.storage_bytes() > 2 * schemes["simple"].index_storage_bytes
    # Twine's responses carry full descriptions: traffic at the flat end.
    assert twine.normal_bytes_per_query > (
        schemes["simple"].normal_bytes_per_query * 0.5
    )
    # What replication buys: the author+year queries that cost every
    # indexing scheme ~2,500 recoverable errors are ordinary strands.
    assert schemes["simple"].nonindexed_queries > 0
