"""Wire-stack throughput guard: loopback lookups/sec and insert batching.

Measures what one blocking client can push through a small loopback
cluster -- sequential covering-chain lookups per second, and record
publications per second with and without the pipelined (batched
replica fan-out + async shortcut) path -- and asserts two guards:

- a conservative **floor** on single-worker lookup throughput, so a
  regression in the rpc hot path (codec, socket loop, TCP pooling)
  fails CI rather than quietly shifting the capacity knee;
- pipelined inserts must not be slower than lockstep inserts (they
  batch the same messages into one concurrent round).

Raw numbers land in ``benchmarks/results/rpc_throughput.json`` for the
capacity narrative in EXPERIMENTS.md.  The floor is intentionally far
below the locally measured rate (hundreds/sec): CI boxes are slow and
shared, and this guard is about catching order-of-magnitude drops.
"""

import json
import pathlib
import time

import pytest

from repro.core.query import FieldQuery
from repro.net.message import Message, MessageKind
from repro.rpc.cluster import LocalCluster
from repro.rpc.codec import (
    FRAME_REQUEST,
    StreamUnframer,
    decode_frame,
    decode_frame_signed,
    encode_frame,
    encode_message,
    encode_stream,
)
from repro.workload.corpus import CorpusConfig, SyntheticCorpus

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Hard floor on sequential loopback lookups/sec (locally ~300+/s).
LOOKUP_FLOOR_PER_S = 25.0

#: Lookups in the timed section (a few seconds at the floor).
N_LOOKUPS = 150
N_INSERTS = 60

#: Hard floor on zero-copy stream unframing (locally ~1M+ frames/s).
UNFRAME_FLOOR_PER_S = 50_000.0

#: Frames in the unframer's timed section.
N_FRAMES = 20_000

#: Ceiling on decode_frame_signed's cost over decode_frame for an
#: UNSIGNED frame -- the "signing off costs nothing" guard.  The signed
#: entry point does the same structural work plus one version compare,
#: so parity with a generous noise band is the contract.
UNSIGNED_DECODE_OVERHEAD_MAX = 1.5


@pytest.fixture(scope="module")
def cluster():
    with LocalCluster(3, scheme="simple", cache="multi") as live:
        yield live


@pytest.fixture(scope="module")
def corpus():
    return SyntheticCorpus(CorpusConfig(num_articles=160, seed=77))


def timed(fn, count):
    started = time.perf_counter()
    fn()
    elapsed = time.perf_counter() - started
    return count / elapsed, elapsed


class TestRpcThroughput:
    def test_lookup_floor_and_insert_batching(self, cluster, corpus):
        client = cluster.client(pipelined=True)
        lockstep = cluster.client(pipelined=False)
        try:
            seeded = corpus.records[:20]
            for record in seeded:
                client.insert_record(record)

            def run_lookups():
                for index in range(N_LOOKUPS):
                    record = seeded[index % len(seeded)]
                    query = FieldQuery.msd_of(record).restrict(["author"])
                    trace = client.search(query, record)
                    assert trace.found

            lookups_per_s, lookup_elapsed = timed(run_lookups, N_LOOKUPS)

            pipelined_pool = corpus.records[20 : 20 + N_INSERTS]
            lockstep_pool = corpus.records[
                20 + N_INSERTS : 20 + 2 * N_INSERTS
            ]

            def run_pipelined_inserts():
                for record in pipelined_pool:
                    client.insert_record(record)

            def run_lockstep_inserts():
                for record in lockstep_pool:
                    lockstep.insert_record(record)

            lockstep_per_s, _ = timed(run_lockstep_inserts, N_INSERTS)
            pipelined_per_s, _ = timed(run_pipelined_inserts, N_INSERTS)

            messages_per_insert = len(
                client.insert_messages(corpus.records[-1])
            )
            results = {
                "nodes": cluster.num_nodes,
                "lookups_per_s": round(lookups_per_s, 1),
                "lookup_elapsed_s": round(lookup_elapsed, 3),
                "n_lookups": N_LOOKUPS,
                "inserts_per_s_pipelined": round(pipelined_per_s, 1),
                "inserts_per_s_lockstep": round(lockstep_per_s, 1),
                "insert_speedup": round(pipelined_per_s / lockstep_per_s, 2),
                "messages_per_insert": messages_per_insert,
                "floor_per_s": LOOKUP_FLOOR_PER_S,
            }
            RESULTS_DIR.mkdir(exist_ok=True)
            with open(RESULTS_DIR / "rpc_throughput.json", "w") as handle:
                json.dump(results, handle, indent=2)
                handle.write("\n")

            assert lookups_per_s >= LOOKUP_FLOOR_PER_S, (
                f"lookup throughput regressed: {lookups_per_s:.1f}/s "
                f"< floor {LOOKUP_FLOOR_PER_S}/s"
            )
            # Batching several messages into one concurrent round must
            # not lose to strict request/response lockstep.  Allow a
            # small noise band rather than asserting a specific speedup.
            assert pipelined_per_s >= 0.9 * lockstep_per_s, results
        finally:
            client.close()
            lockstep.close()


def lookup_frame() -> bytes:
    message = Message(
        kind=MessageKind.QUERY_REQUEST,
        source="user:bench",
        destination="node:42",
        payload=("author=knuth&title=taocp",),
    )
    return encode_frame(FRAME_REQUEST, 7, encode_message(message))


class TestCodecFloors:
    def test_unframer_zero_copy_floor(self):
        """The TCP reassembly hot path: whole frames per chunk must
        come back as views, fast, and byte-correct."""
        frame = lookup_frame()
        chunk = encode_stream(frame) * 50  # 50 frames per feed() call
        unframer = StreamUnframer()
        produced = 0
        started = time.perf_counter()
        while produced < N_FRAMES:
            frames = unframer.feed(chunk)
            produced += len(frames)
        elapsed = time.perf_counter() - started
        frames_per_s = produced / elapsed
        assert isinstance(frames, list) and len(frames) == 50
        assert isinstance(frames[0], memoryview), "zero-copy path lost"
        assert bytes(frames[0]) == frame
        assert unframer.pending_bytes == 0

        results = {
            "frames_per_s": round(frames_per_s),
            "n_frames": produced,
            "frame_bytes": len(frame),
            "floor_per_s": UNFRAME_FLOOR_PER_S,
        }
        RESULTS_DIR.mkdir(exist_ok=True)
        with open(RESULTS_DIR / "stream_unframer.json", "w") as handle:
            json.dump(results, handle, indent=2)
            handle.write("\n")
        assert frames_per_s >= UNFRAME_FLOOR_PER_S, results

    def test_unsigned_decode_pays_no_signing_tax(self):
        """decode_frame_signed on a v1 frame must track decode_frame:
        deployments that never sign keep their old hot path."""
        frame = lookup_frame()
        rounds = 30_000

        def best_of(fn, repeats=5):
            best = float("inf")
            for _ in range(repeats):
                started = time.perf_counter()
                for _ in range(rounds):
                    fn(frame)
                best = min(best, time.perf_counter() - started)
            return best

        plain = best_of(decode_frame)
        signed_entry = best_of(decode_frame_signed)
        ratio = signed_entry / plain
        results = {
            "decode_frame_s": round(plain, 4),
            "decode_frame_signed_s": round(signed_entry, 4),
            "ratio": round(ratio, 3),
            "ceiling": UNSIGNED_DECODE_OVERHEAD_MAX,
        }
        RESULTS_DIR.mkdir(exist_ok=True)
        with open(RESULTS_DIR / "unsigned_decode_overhead.json", "w") as handle:
            json.dump(results, handle, indent=2)
            handle.write("\n")
        assert ratio <= UNSIGNED_DECODE_OVERHEAD_MAX, results
