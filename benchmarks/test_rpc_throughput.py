"""Wire-stack throughput guard: loopback lookups/sec and insert batching.

Measures what one blocking client can push through a small loopback
cluster -- sequential covering-chain lookups per second, and record
publications per second with and without the pipelined (batched
replica fan-out + async shortcut) path -- and asserts two guards:

- a conservative **floor** on single-worker lookup throughput, so a
  regression in the rpc hot path (codec, socket loop, TCP pooling)
  fails CI rather than quietly shifting the capacity knee;
- pipelined inserts must not be slower than lockstep inserts (they
  batch the same messages into one concurrent round).

Raw numbers land in ``benchmarks/results/rpc_throughput.json`` for the
capacity narrative in EXPERIMENTS.md.  The floor is intentionally far
below the locally measured rate (hundreds/sec): CI boxes are slow and
shared, and this guard is about catching order-of-magnitude drops.
"""

import json
import pathlib
import time

import pytest

from repro.core.query import FieldQuery
from repro.rpc.cluster import LocalCluster
from repro.workload.corpus import CorpusConfig, SyntheticCorpus

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Hard floor on sequential loopback lookups/sec (locally ~300+/s).
LOOKUP_FLOOR_PER_S = 25.0

#: Lookups in the timed section (a few seconds at the floor).
N_LOOKUPS = 150
N_INSERTS = 60


@pytest.fixture(scope="module")
def cluster():
    with LocalCluster(3, scheme="simple", cache="multi") as live:
        yield live


@pytest.fixture(scope="module")
def corpus():
    return SyntheticCorpus(CorpusConfig(num_articles=160, seed=77))


def timed(fn, count):
    started = time.perf_counter()
    fn()
    elapsed = time.perf_counter() - started
    return count / elapsed, elapsed


class TestRpcThroughput:
    def test_lookup_floor_and_insert_batching(self, cluster, corpus):
        client = cluster.client(pipelined=True)
        lockstep = cluster.client(pipelined=False)
        try:
            seeded = corpus.records[:20]
            for record in seeded:
                client.insert_record(record)

            def run_lookups():
                for index in range(N_LOOKUPS):
                    record = seeded[index % len(seeded)]
                    query = FieldQuery.msd_of(record).restrict(["author"])
                    trace = client.search(query, record)
                    assert trace.found

            lookups_per_s, lookup_elapsed = timed(run_lookups, N_LOOKUPS)

            pipelined_pool = corpus.records[20 : 20 + N_INSERTS]
            lockstep_pool = corpus.records[
                20 + N_INSERTS : 20 + 2 * N_INSERTS
            ]

            def run_pipelined_inserts():
                for record in pipelined_pool:
                    client.insert_record(record)

            def run_lockstep_inserts():
                for record in lockstep_pool:
                    lockstep.insert_record(record)

            lockstep_per_s, _ = timed(run_lockstep_inserts, N_INSERTS)
            pipelined_per_s, _ = timed(run_pipelined_inserts, N_INSERTS)

            messages_per_insert = len(
                client.insert_messages(corpus.records[-1])
            )
            results = {
                "nodes": cluster.num_nodes,
                "lookups_per_s": round(lookups_per_s, 1),
                "lookup_elapsed_s": round(lookup_elapsed, 3),
                "n_lookups": N_LOOKUPS,
                "inserts_per_s_pipelined": round(pipelined_per_s, 1),
                "inserts_per_s_lockstep": round(lockstep_per_s, 1),
                "insert_speedup": round(pipelined_per_s / lockstep_per_s, 2),
                "messages_per_insert": messages_per_insert,
                "floor_per_s": LOOKUP_FLOOR_PER_S,
            }
            RESULTS_DIR.mkdir(exist_ok=True)
            with open(RESULTS_DIR / "rpc_throughput.json", "w") as handle:
                json.dump(results, handle, indent=2)
                handle.write("\n")

            assert lookups_per_s >= LOOKUP_FLOOR_PER_S, (
                f"lookup throughput regressed: {lookups_per_s:.1f}/s "
                f"< floor {LOOKUP_FLOOR_PER_S}/s"
            )
            # Batching several messages into one concurrent round must
            # not lose to strict request/response lockstep.  Allow a
            # small noise band rather than asserting a specific speedup.
            assert pipelined_per_s >= 0.9 * lockstep_per_s, results
        finally:
            client.close()
            lockstep.close()
