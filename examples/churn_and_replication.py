#!/usr/bin/env python3
"""Resilience: membership churn and replica load-spreading.

The paper delegates failure handling and hot-spot avoidance to the DHT
substrate (Sections III-A and V-g).  This example shows both mechanisms
working underneath unchanged indexes:

1. nodes leave and join *during* a query workload, with the storage
   layer rebalancing keys -- every search still succeeds;
2. storing keys on r replicas and rotating queries across them flattens
   the hot-spot curve without touching the indexing layer.

Run:  python examples/churn_and_replication.py
"""

from dataclasses import replace

from repro.analysis import format_table
from repro.sim import Experiment, ExperimentConfig
from repro.workload import CorpusConfig, SyntheticCorpus

BASE = ExperimentConfig(
    num_nodes=80,
    num_articles=1_200,
    num_queries=6_000,
    num_authors=500,
    cache="single",
)


def main() -> None:
    corpus = SyntheticCorpus(
        CorpusConfig(
            num_articles=BASE.num_articles,
            num_authors=BASE.num_authors,
            seed=BASE.corpus_seed,
        )
    )

    print("-- churn: leave+join events during the workload --")
    rows = []
    for events in (0, 20, 100):
        experiment = Experiment(replace(BASE, churn_events=events), corpus=corpus)
        result = experiment.run()
        rows.append(
            [
                events,
                f"{result.found}/{result.searches}",
                round(result.avg_interactions, 2),
                f"{100 * result.hit_ratio:.0f}%",
                experiment.churn_keys_moved,
            ]
        )
    print(
        format_table(
            ["churn events", "found", "interactions", "hit ratio",
             "keys moved"],
            rows,
        )
    )
    print(
        "availability is untouched; churn only costs moved keys and the\n"
        "caches that departed with their nodes.\n"
    )

    print("-- replication: spreading hot keys across replicas --")
    rows = []
    for replication in (1, 2, 4):
        result = Experiment(
            replace(BASE, cache="none", replication=replication), corpus=corpus
        ).run()
        rows.append(
            [
                replication,
                round(result.avg_interactions, 2),
                f"{100 * result.busiest_node_share:.2f}%",
                round(result.avg_index_keys_per_node, 1),
            ]
        )
    print(
        format_table(
            ["replicas", "interactions", "busiest node", "keys/node"],
            rows,
        )
    )
    print(
        "the busiest node's share falls roughly with the replication\n"
        "factor, while the number of user-system interactions -- a\n"
        "property of the index hierarchy alone -- stays constant."
    )


if __name__ == "__main__":
    main()
