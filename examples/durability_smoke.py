#!/usr/bin/env python3
"""Durability smoke: SIGKILL a daemon mid-load, restart it, lose nothing.

Boots a 3-node :class:`repro.rpc.cluster.LocalCluster` whose daemons
journal to per-node data dirs, publishes a synthetic corpus over the
wire, then kills one daemon the hard way (no WAL flush; optionally with
a power-loss torn tail), restarts it from its data dir, and re-runs
every lookup.  Exits 0 only if the restarted daemon recovered its state
from disk AND 100% of the post-restart lookups succeed.

Run:  python examples/durability_smoke.py --records 30 --power-loss
"""

from __future__ import annotations

import argparse
import random
import sys
import tempfile

from repro.core.query import FieldQuery
from repro.rpc.cluster import LocalCluster
from repro.workload.corpus import CorpusConfig, SyntheticCorpus


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=3)
    parser.add_argument("--records", type=int, default=30)
    parser.add_argument("--lookups", type=int, default=60)
    parser.add_argument("--replication", type=int, default=2)
    parser.add_argument("--fsync", default="interval:8")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--power-loss", action="store_true",
        help="also tear the unsynced WAL tail when killing the daemon",
    )
    parser.add_argument(
        "--data-root", default=None,
        help="data directory root (default: a fresh temp dir)",
    )
    return parser


def run_lookups(client, corpus, count: int, seed: int) -> int:
    entry_classes = client.scheme.entry_classes()
    rng = random.Random(seed)
    found = 0
    for _ in range(count):
        record = rng.choice(corpus.records)
        keyset = rng.choice(entry_classes)
        query = FieldQuery.msd_of(record).restrict(sorted(keyset))
        found += client.search(query, record).found
    return found


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    corpus = SyntheticCorpus(
        CorpusConfig(
            num_articles=args.records,
            num_authors=max(2, args.records // 3),
            seed=args.seed,
        )
    )
    data_root = args.data_root or tempfile.mkdtemp(prefix="durability-smoke-")
    print(
        f"booting {args.nodes} durable daemons "
        f"(data root {data_root}, fsync={args.fsync}) ..."
    )
    cluster = LocalCluster(
        args.nodes,
        substrate="chord",
        cache="single",
        replication=args.replication,
        data_root=data_root,
        fsync=args.fsync,
    )
    with cluster:
        client = cluster.client()
        for record in corpus.records:
            client.insert_record(record)
        print(f"published {len(corpus.records)} records over the wire")
        before = run_lookups(client, corpus, args.lookups, args.seed)
        print(f"pre-kill lookups: {before}/{args.lookups} found")

        victim = cluster.daemons[1]
        print(
            f"SIGKILLing node {victim.node_id:x} "
            f"(power loss: {args.power_loss}) ..."
        )
        cluster.kill_node(1, power_loss=args.power_loss)
        restarted = cluster.restart_node(1)
        report = restarted.recovery
        assert report is not None
        print(
            f"recovered: entries={report.index_entries + report.file_entries} "
            f"cache={report.cache_entries} wal_records={report.wal_records} "
            f"torn_bytes={report.truncated_bytes} "
            f"replay_ms={report.replay_ms:.2f}"
        )
        if not report.recovered:
            print("FAIL: restarted daemon found nothing on disk")
            return 1
        if restarted.node_id != victim.node_id:
            print("FAIL: restarted daemon lost its ring identity")
            return 1

        client.refresh_members(cluster.daemons[0].address)
        after = run_lookups(client, corpus, args.lookups, args.seed)
        print(f"post-restart lookups: {after}/{args.lookups} found")
        client.close()

    ok = before == args.lookups and after == args.lookups
    print("OK: zero lost entries" if ok else "FAIL: lookups lost data")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
