#!/usr/bin/env python3
"""End-to-end demo over real sockets: a loopback cluster of daemons.

Boots a :class:`repro.rpc.cluster.LocalCluster` of node daemons on
ephemeral loopback ports (UDP + TCP, real frames through the
:mod:`repro.rpc.codec` wire format), publishes a synthetic corpus
through a wire client, then resolves seeded covering-chain lookups and
prints the traffic/trace summary.  Exits 0 only if every lookup found
its file.

Run:  python examples/real_cluster.py --nodes 5 --records 20 --lookups 50

The corpus, query sequence, and overlay layout are seeded, so covering
chains and replica placement are reproducible; only ports and wall-clock
latencies differ between runs.  ``--trace-out lookups.jsonl`` also saves
the observability trace (same JSONL schema as the simulation's) and
prints its summary tables.
"""

from __future__ import annotations

import argparse
import random
import sys

from repro.core.query import FieldQuery
from repro.obs.summarize import summarize_file
from repro.obs.tracer import Tracer
from repro.perf import counters
from repro.rpc.cluster import LocalCluster
from repro.rpc.daemon import SCHEMES, SUBSTRATES
from repro.workload.corpus import CorpusConfig, SyntheticCorpus


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=5)
    parser.add_argument("--records", type=int, default=20)
    parser.add_argument("--lookups", type=int, default=50)
    parser.add_argument("--substrate", choices=SUBSTRATES, default="chord")
    parser.add_argument("--scheme", choices=SCHEMES, default="simple")
    parser.add_argument(
        "--cache", default="multi",
        help="shortcut cache policy: none, multi, single, or lruN",
    )
    parser.add_argument("--replication", type=int, default=1)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--signed", action="store_true",
        help=(
            "give every daemon an ed25519 identity and require signed "
            "frames end to end (version-2 wire format)"
        ),
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write the lookup trace (JSONL) here and print its summary",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    corpus = SyntheticCorpus(
        CorpusConfig(
            num_articles=args.records,
            num_authors=max(2, args.records // 3),
            seed=args.seed,
        )
    )
    tracer = Tracer(
        meta={
            "harness": "real_cluster",
            "substrate": args.substrate,
            "scheme": args.scheme,
            "cache": args.cache,
            "num_nodes": args.nodes,
            "num_articles": args.records,
            "num_queries": args.lookups,
            "seed": args.seed,
        }
    )
    print(
        f"booting {args.nodes} daemons "
        f"({args.substrate}/{args.scheme}/cache={args.cache}"
        f"{', signed frames required' if args.signed else ''}) ..."
    )
    cluster = LocalCluster(
        args.nodes,
        substrate=args.substrate,
        scheme=args.scheme,
        cache=args.cache,
        replication=args.replication,
        signed=args.signed,
    )
    with cluster:
        client = cluster.client(tracer=tracer)
        for daemon in cluster.daemons:
            host, port = daemon.address
            print(f"  node {daemon.node_id:x} on {host}:{port}")
        for record in corpus.records:
            client.insert_record(record)
        print(f"published {len(corpus.records)} records over the wire")

        entry_classes = client.scheme.entry_classes()
        rng = random.Random(args.seed)
        found = 0
        interactions = 0
        for _ in range(args.lookups):
            record = rng.choice(corpus.records)
            keyset = rng.choice(entry_classes)
            query = FieldQuery.msd_of(record).restrict(sorted(keyset))
            trace = client.search(query, record)
            found += trace.found
            interactions += trace.interactions
        client.close()

    print(
        f"lookups: {found}/{args.lookups} found, "
        f"{interactions / max(1, args.lookups):.2f} exchanges/lookup"
    )
    print(
        "wire traffic: "
        f"{counters.rpc_requests} requests, "
        f"{counters.rpc_udp_frames} UDP frames, "
        f"{counters.rpc_tcp_frames} TCP frames, "
        f"{counters.rpc_retries} retries, "
        f"{counters.rpc_bytes_sent} B sent, "
        f"{counters.rpc_bytes_received} B received"
    )
    if args.trace_out:
        events = tracer.write_jsonl(args.trace_out)
        print(f"trace: {events} events -> {args.trace_out}")
        print(summarize_file(args.trace_out))
    return 0 if found == args.lookups else 1


if __name__ == "__main__":
    sys.exit(main())
