#!/usr/bin/env python3
"""Indexing a different descriptor type with a custom hierarchy.

Section IV-C: "determining good decompositions for indexing each given
descriptor type (e.g., articles, music files, movies, books, etc.)
requires human input".  This example designs a schema and indexing
scheme for a music-file catalog, demonstrating the system's versatility
(Section IV-D): selective indexing, deep shortcut links for popular
content, and read/write semantics with recursive index cleanup.

Run:  python examples/custom_scheme.py
"""

from repro.core import (
    FieldQuery,
    IndexScheme,
    IndexService,
    LookupEngine,
    Record,
    Schema,
)
from repro.core.cache import CachePolicy
from repro.core.scheme import MSD_TARGET
from repro.dht import IdealRing, hash_key
from repro.net import SimulatedTransport
from repro.storage import DHTStorage

# A music-file descriptor type: artist/album/track/genre/year are
# queryable; bitrate is administrative (users don't search by it).
MUSIC_SCHEMA = Schema(
    root="song",
    fields={
        "artist": "artist",
        "album": "album",
        "track": "track",
        "genre": "genre",
        "year": "year",
    },
    admin={"bitrate": "bitrate"},
)

# Human-designed hierarchy: artist -> album -> track; genre -> year-in-
# genre -> album.  Tracks resolve to the file.
MUSIC_SCHEME = IndexScheme(
    "music",
    MUSIC_SCHEMA,
    {
        ("artist",): [("artist", "album")],
        ("artist", "album"): [("artist", "album", "track")],
        ("artist", "album", "track"): [MSD_TARGET],
        ("genre",): [("genre", "year")],
        ("genre", "year"): [("genre", "year", "album")],
        ("genre", "year", "album"): [MSD_TARGET],
        ("track",): [("artist", "album", "track")],
    },
)

CATALOG = [
    ("The_Overlays", "Routing_Songs", "Hello_DHT", "Electronic", "2001"),
    ("The_Overlays", "Routing_Songs", "Finger_Tables", "Electronic", "2001"),
    ("The_Overlays", "Second_Hop", "Stabilize_Me", "Electronic", "2003"),
    ("Consistent_Hash", "Ring_Cycle", "Clockwise", "Ambient", "2001"),
    ("Consistent_Hash", "Ring_Cycle", "Successor_Blues", "Ambient", "2001"),
]


def main() -> None:
    ring = IdealRing()
    for index in range(12):
        ring.add_node(hash_key(f"peer-{index}"))
    transport = SimulatedTransport()
    service = IndexService(
        MUSIC_SCHEMA,
        MUSIC_SCHEME,
        DHTStorage(ring),
        DHTStorage(ring),
        transport,
        cache_policy=CachePolicy.SINGLE,
    )
    engine = LookupEngine(service, user="user:music")

    songs = [
        Record(
            MUSIC_SCHEMA,
            {
                "artist": artist, "album": album, "track": track,
                "genre": genre, "year": year, "bitrate": "320",
            },
        )
        for artist, album, track, genre, year in CATALOG
    ]
    for song in songs:
        service.insert_record(song)
    print(f"indexed {len(songs)} songs under the custom music hierarchy\n")

    # Walk the artist chain interactively.
    artist_query = FieldQuery(MUSIC_SCHEMA, {"artist": "The_Overlays"})
    print(f"explore {artist_query.key()}:")
    for entry in engine.explore(artist_query):
        print("   ", entry)

    # Automated search down the 4-level chain.
    target = songs[1]
    trace = engine.search(artist_query, target)
    print(
        f"\nlocated {target['track']} in {trace.interactions} interactions "
        f"(chain depth {MUSIC_SCHEME.chain_length(['artist'])})"
    )

    # Popular-content deep link (Section IV-C): short-circuit the chain.
    service.insert_shortcut_mapping(target, ["artist"])
    boosted = engine.search(artist_query, target)
    print(
        f"after a permanent (artist; MSD) deep link: "
        f"{boosted.interactions} interactions"
    )

    # Genre path reaches the same file through a different index chain.
    genre_query = FieldQuery(MUSIC_SCHEMA, {"genre": "Ambient"})
    trace = engine.search(genre_query, songs[3])
    print(
        f"\nvia genre chain: located {songs[3]['track']} in "
        f"{trace.interactions} interactions"
    )

    # Read/write semantics: delete one song of a shared album and show
    # that the shared index entries survive (Section IV-C).
    service.delete_record(songs[4])
    remaining = engine.explore(
        FieldQuery(MUSIC_SCHEMA, {"artist": "Consistent_Hash",
                                  "album": "Ring_Cycle"})
    )
    print(f"\nafter deleting Successor_Blues, Ring_Cycle still lists:")
    for entry in remaining:
        print("   ", entry)


if __name__ == "__main__":
    main()
