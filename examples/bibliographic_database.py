#!/usr/bin/env python3
"""A distributed bibliographic database under a realistic workload.

Reproduces the paper's evaluation scenario at laptop scale: a 100-node
overlay storing a 2,000-article synthetic archive, queried 10,000 times
with the BibFinder query-structure distribution and the power-law
article popularity of Section V-C -- comparing the three indexing
schemes of Figure 8 with and without the adaptive cache.

Run:  python examples/bibliographic_database.py
"""

from dataclasses import replace

from repro.analysis import format_table
from repro.sim import Experiment, ExperimentConfig
from repro.workload import CorpusConfig, SyntheticCorpus

BASE = ExperimentConfig(
    num_nodes=100,
    num_articles=2_000,
    num_queries=10_000,
    num_authors=800,
)


def main() -> None:
    corpus = SyntheticCorpus(
        CorpusConfig(
            num_articles=BASE.num_articles,
            num_authors=BASE.num_authors,
            seed=BASE.corpus_seed,
        )
    )
    print(
        f"corpus: {len(corpus):,} articles, "
        f"{corpus.field_cardinalities()['author']:,} authors, "
        f"{corpus.field_cardinalities()['conf']} venues, "
        f"{corpus.total_article_bytes() / 1e9:.2f} GB of article data"
    )

    rows = []
    for scheme in ("simple", "flat", "complex"):
        for cache in ("none", "lru30", "single"):
            config = replace(BASE, scheme=scheme, cache=cache)
            result = Experiment(config, corpus=corpus).run()
            rows.append(
                [
                    scheme,
                    cache,
                    round(result.avg_interactions, 2),
                    int(result.normal_bytes_per_query),
                    int(result.cache_bytes_per_query),
                    f"{100 * result.hit_ratio:.0f}%",
                    result.nonindexed_queries,
                    f"{result.index_storage_bytes / 1e6:.1f} MB",
                ]
            )
            print(f"ran {scheme}/{cache}: "
                  f"{result.avg_interactions:.2f} interactions/query")

    print()
    print(
        format_table(
            [
                "scheme",
                "cache",
                "interactions",
                "normal B/q",
                "cache B/q",
                "hit ratio",
                "errors",
                "index size",
            ],
            rows,
            title="Scheme x cache-policy comparison (cf. Figures 11-13, Table I)",
        )
    )
    print(
        "\nReading the table like the paper does:\n"
        " - flat answers in the fewest steps but ships the largest\n"
        "   responses (every query returns full descriptors);\n"
        " - complex has the deepest chains and the leanest responses;\n"
        " - the adaptive cache cuts both interactions and the errors\n"
        "   caused by the non-indexed author+year queries."
    )


if __name__ == "__main__":
    main()
