#!/usr/bin/env python3
"""Interactive searching and partial-information (prefix) lookups.

Two features of Section IV the automated simulation doesn't show:

1. the *interactive* lookup mode, where the user reads each result set
   and refines by hand (here scripted step by step), and
2. *substring matching* index classes -- finding an author knowing only
   the first letters of their name.

Run:  python examples/interactive_search.py
"""

from repro.core import (
    ARTICLE_SCHEMA,
    FieldQuery,
    IndexService,
    InteractiveSession,
    LookupEngine,
    PrefixIndex,
    Record,
    simple_scheme,
)
from repro.dht import IdealRing, hash_key
from repro.net import SimulatedTransport
from repro.storage import DHTStorage

AUTHORS_AND_PAPERS = [
    ("Alan_Doe", "Wavelets", "INFOCOM", "1996"),
    ("Alan_Doe", "Filters", "ICASSP", "1998"),
    ("Alice_Dupont", "Codes", "ISIT", "1999"),
    ("John_Smith", "TCP", "SIGCOMM", "1989"),
    ("John_Smith", "IPv6", "INFOCOM", "1996"),
    ("Jorge_Santos", "Routing", "ICNP", "2000"),
]


def main() -> None:
    ring = IdealRing()
    for index in range(12):
        ring.add_node(hash_key(f"peer-{index}"))
    service = IndexService(
        ARTICLE_SCHEMA,
        simple_scheme(),
        DHTStorage(ring),
        DHTStorage(ring),
        SimulatedTransport(),
    )
    records = [
        Record(
            ARTICLE_SCHEMA,
            {"author": author, "title": title, "conf": conf, "year": year,
             "size": "250000"},
        )
        for author, title, conf, year in AUTHORS_AND_PAPERS
    ]
    for record in records:
        service.insert_record(record)
    # One-letter and four-letter author prefix indexes (Section IV-C).
    prefix_index = PrefixIndex(service, {"author": [1, 4]})
    prefix_index.insert_all(records)

    # --- interactive walk: a user exploring John Smith's publications ---
    print("-- interactive session: author John_Smith --")
    session = InteractiveSession(
        service, FieldQuery(ARTICLE_SCHEMA, {"author": "John_Smith"})
    )
    print(f"level 1 ({session.current.query.key()}):")
    for index, entry in enumerate(session.choices()):
        print(f"   [{index}] {entry}")
    session.refine(0)
    print(f"level 2 ({session.current.query.key()}):")
    for index, entry in enumerate(session.choices()):
        print(f"   [{index}] {entry}")
    session.refine(0)
    print(f"level 3 is the most specific descriptor; fetching the file ...")
    print(f"   fetched: {session.fetch()} ({session.fetched_msd})")

    # Back up and take the other branch.
    session.back()
    print(f"back at level 2; other siblings remain explorable")

    # --- prefix search: the user only remembers "Al..." ---
    print("\n-- prefix exploration: authors starting with 'A' --")
    for entry in prefix_index.explore("author", "A"):
        print("   ", entry)
    print("-- refining to 'Alan' --")
    for entry in prefix_index.explore("author", "Alan"):
        print("   ", entry)

    engine = LookupEngine(service, user="user:demo")
    target = records[1]  # Alan_Doe's "Filters"
    trace = prefix_index.search(engine, "author", "A", target)
    print(
        f"\nfull search from one letter: found={trace.found} in "
        f"{trace.interactions} interactions"
    )
    path = " -> ".join(key for _, key in trace.visited)
    print(f"path: {path}")


if __name__ == "__main__":
    main()
