#!/usr/bin/env python3
"""Quickstart: the paper's running example, end to end.

Builds a small P2P overlay, stores the three articles of Figure 1 with
the hierarchical indexing scheme of Figure 4, and then locates them with
the broad queries of Figure 2 -- following index paths down the partial
order of Figure 3 exactly as Section IV-B describes.

Run:  python examples/quickstart.py
"""

from repro.core import (
    ARTICLE_SCHEMA,
    FieldQuery,
    IndexService,
    LookupEngine,
    Record,
    simple_scheme,
)
from repro.dht import IdealRing, hash_key
from repro.net import SimulatedTransport
from repro.storage import DHTStorage


def main() -> None:
    # 1. A P2P overlay of 16 peers (any DHT works; the ideal ring is the
    #    paper's own abstraction of the substrate).
    ring = IdealRing()
    for index in range(16):
        ring.add_node(hash_key(f"peer-{index}"))

    # 2. The index service: storage for files, storage for query-to-query
    #    index mappings, and the "simple" hierarchy of Figure 8.
    transport = SimulatedTransport()
    service = IndexService(
        schema=ARTICLE_SCHEMA,
        scheme=simple_scheme(),
        index_store=DHTStorage(ring),
        file_store=DHTStorage(ring),
        transport=transport,
    )

    # 3. Insert the three articles of Figure 1.
    articles = [
        Record(ARTICLE_SCHEMA, {"author": "John_Smith", "title": "TCP",
                                "conf": "SIGCOMM", "year": "1989",
                                "size": "315635"}),
        Record(ARTICLE_SCHEMA, {"author": "John_Smith", "title": "IPv6",
                                "conf": "INFOCOM", "year": "1996",
                                "size": "312352"}),
        Record(ARTICLE_SCHEMA, {"author": "Alan_Doe", "title": "Wavelets",
                                "conf": "INFOCOM", "year": "1996",
                                "size": "259827"}),
    ]
    for article in articles:
        msd = service.insert_record(article)
        print(f"stored {article['title']:<9} under h({msd.key()})")

    # 4. Interactive search (Section IV-B): one step at a time.
    print("\n-- interactive: /article/author/last/Smith (q6 of Figure 2) --")
    engine = LookupEngine(service, user="user:quickstart")
    author_query = FieldQuery(ARTICLE_SCHEMA, {"author": "John_Smith"})
    for entry in engine.explore(author_query):
        print("  index returned:", entry)

    # 5. Automated search: the engine walks the index path to the file.
    print("\n-- automated: locate each article from a broad query --")
    for article, fields in [
        (articles[0], ["author"]),
        (articles[1], ["conf"]),
        (articles[2], ["title"]),
    ]:
        query = FieldQuery.of_record(article, fields)
        trace = engine.search(query, article)
        transport.meter.end_query()
        path = " -> ".join(key for _, key in trace.visited)
        print(f"  {query.key()}")
        print(f"    found={trace.found} in {trace.interactions} interactions")
        print(f"    path: {path}")

    # 6. A query that is valid but not indexed (author+year): the engine
    #    generalizes it and still finds the file, one interaction dearer.
    print("\n-- non-indexed query: author+year (Table I scenario) --")
    ay_query = FieldQuery.of_record(articles[1], ["author", "year"])
    trace = engine.search(ay_query, articles[1])
    transport.meter.end_query()
    print(f"  {ay_query.key()}")
    print(
        f"    found={trace.found} in {trace.interactions} interactions "
        f"(errors={trace.errors}, generalized={trace.generalized})"
    )

    print(f"\ntotal traffic: {transport.meter.total_bytes:,} bytes")


if __name__ == "__main__":
    main()
