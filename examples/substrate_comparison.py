#!/usr/bin/env python3
"""Layering claim: the same indexes over three different DHTs.

Section V: the indexing techniques "do not depend on a specific lookup
and storage layer".  This example runs an identical workload over the
ideal one-hop ring, Chord, and Kademlia and prints both views: the
indexing-level metrics (identical) and the routing cost underneath
(protocol-specific).

Run:  python examples/substrate_comparison.py
"""

from dataclasses import replace

from repro.analysis import format_table
from repro.sim import Experiment, ExperimentConfig
from repro.workload import CorpusConfig, SyntheticCorpus

BASE = ExperimentConfig(
    num_nodes=64,
    num_articles=800,
    num_queries=4_000,
    num_authors=300,
    cache="single",
    bits=32,
)


def main() -> None:
    corpus = SyntheticCorpus(
        CorpusConfig(
            num_articles=BASE.num_articles,
            num_authors=BASE.num_authors,
            seed=BASE.corpus_seed,
        )
    )
    rows = []
    for substrate in ("ideal", "chord", "kademlia"):
        result = Experiment(
            replace(BASE, substrate=substrate), corpus=corpus
        ).run()
        rows.append(
            [
                substrate,
                round(result.avg_interactions, 3),
                f"{100 * result.hit_ratio:.1f}%",
                result.nonindexed_queries,
                round(result.avg_dht_hops, 2),
            ]
        )
        print(f"ran {substrate} in {result.runtime_seconds:.1f}s")

    print()
    print(
        format_table(
            [
                "substrate",
                "interactions/query",
                "hit ratio",
                "errors",
                "DHT hops/key",
            ],
            rows,
            title="Same indexes, three substrates",
        )
    )
    print(
        "\nThe first three columns are identical: interactions, cache\n"
        "behaviour, and errors are properties of the indexing layer.\n"
        "Only the substrate hop count differs -- the ideal ring resolves\n"
        "keys in one hop, Chord and Kademlia in O(log N)."
    )


if __name__ == "__main__":
    main()
