#!/usr/bin/env python3
"""The query layer by itself: descriptors, XPath, covering, Figure 3.

The indexing system rests on three ideas from Section III-B: descriptors
are semi-structured XML, queries are an XPath subset, and queries form a
partial order under *covering*.  This example works through all three
with the paper's own data, without any network at all.

Run:  python examples/xpath_queries.py
"""

from repro.xmlq import (
    PartialOrderGraph,
    covers,
    evaluate,
    matches,
    normalize_xpath,
    parse_xml,
    serialize_xml,
)

DESCRIPTORS = {
    "d1": """
        <article>
          <author><first>John</first><last>Smith</last></author>
          <title>TCP</title><conf>SIGCOMM</conf>
          <year>1989</year><size>315635</size>
        </article>""",
    "d2": """
        <article>
          <author><first>John</first><last>Smith</last></author>
          <title>IPv6</title><conf>INFOCOM</conf>
          <year>1996</year><size>312352</size>
        </article>""",
    "d3": """
        <article>
          <author><first>Alan</first><last>Doe</last></author>
          <title>Wavelets</title><conf>INFOCOM</conf>
          <year>1996</year><size>259827</size>
        </article>""",
}

QUERIES = {
    "q1": "/article[author[first/John][last/Smith]][title/TCP]"
          "[conf/SIGCOMM][year/1989][size/315635]",
    "q2": "/article[author[first/John][last/Smith]][conf/INFOCOM]",
    "q3": "/article/author[first/John][last/Smith]",
    "q4": "/article/title/TCP",
    "q5": "/article/conf/INFOCOM",
    "q6": "/article/author/last/Smith",
}


def main() -> None:
    descriptors = {
        name: parse_xml(text) for name, text in DESCRIPTORS.items()
    }
    print("-- descriptors round-trip through the XML layer --")
    d1 = descriptors["d1"]
    print(serialize_xml(d1, indent=2))

    print("-- matching matrix (Figures 1 and 2) --")
    header = "     " + "  ".join(QUERIES)
    print(header)
    for d_name, descriptor in descriptors.items():
        cells = [
            " X " if matches(descriptor, query) else " . "
            for query in QUERIES.values()
        ]
        print(f"{d_name}:  " + "  ".join(cells))

    print("\n-- evaluation returns node sets, not just booleans --")
    result = evaluate("/article/author/last", d1)
    print(f"/article/author/last on d1 selects: {result!r}")

    print("\n-- equivalent spellings normalize to one canonical key --")
    for spelling in (
        "/article/author/last/Smith",
        "/article[author/last/Smith]",
        "/article[author[last[Smith]]]",
    ):
        print(f"  {spelling:<40} -> {normalize_xpath(spelling)}")

    print("\n-- covering relations (arrows of Figure 3) --")
    expectations = [
        ("q3", "q1"), ("q4", "q1"), ("q3", "q2"), ("q5", "q2"), ("q6", "q3"),
    ]
    for general, specific in expectations:
        held = covers(QUERIES[general], QUERIES[specific])
        print(f"  {general} covers {specific}: {held}")
    print(f"  q6 covers q1 (transitively): "
          f"{covers(QUERIES['q6'], QUERIES['q1'])}")
    print(f"  q5 covers q1 (should be False): "
          f"{covers(QUERIES['q5'], QUERIES['q1'])}")

    print("\n-- the partial-order graph, computed from scratch --")
    graph = PartialOrderGraph(QUERIES.values())
    print("  roots (most general):")
    for root in graph.roots():
        print(f"    {root}")
    print("  Hasse edges (specific -> general):")
    for specific, general in graph.hasse_edges():
        print(f"    {specific}")
        print(f"      -> {general}")

    print("\n-- range queries via comparison predicates --")
    nineties = "/article[year>=1990][year<2000]"
    for name, descriptor in descriptors.items():
        print(f"  {name} matches {nineties}: {matches(descriptor, nineties)}")


if __name__ == "__main__":
    main()
