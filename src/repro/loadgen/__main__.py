"""``python -m repro.loadgen``: run a capacity ramp, print the knee.

Boots a loopback cluster, ramps an open-loop store/retrieve mix across
worker processes, prints the offered-load vs throughput/latency table
with the knee verdict, and appends the run to ``BENCH_rpc.json``.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.loadgen.report import (
    append_bench_record,
    bench_record,
    format_capacity_report,
)
from repro.loadgen.runner import LoadTestConfig, run_load_test
from repro.rpc.loop import install_uvloop


def parse_ramp(text: str) -> tuple[float, ...]:
    """A comma-separated offered-load ramp, e.g. ``50,100,200,400``."""
    try:
        stages = tuple(float(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad ramp: {text!r}") from None
    if not stages or any(rate <= 0 for rate in stages):
        raise argparse.ArgumentTypeError("ramp needs positive rates")
    return stages


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.loadgen",
        description=(
            "Open-loop load generator for the repro.rpc cluster: ramp "
            "offered load in stages, measure throughput and latency "
            "percentiles, detect the capacity knee."
        ),
    )
    parser.add_argument(
        "--nodes", type=int, default=5, help="cluster size (default 5)"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="load-generator worker processes (default 2)",
    )
    parser.add_argument(
        "--ramp",
        type=parse_ramp,
        default=(50.0, 100.0, 200.0, 400.0),
        help="comma-separated offered ops/s per stage (default 50,100,200,400)",
    )
    parser.add_argument(
        "--stage-seconds",
        type=float,
        default=5.0,
        help="duration of each ramp stage (default 5)",
    )
    parser.add_argument(
        "--store-fraction",
        type=float,
        default=0.25,
        help="store share of the mix (default 0.25, i.e. store:retrieve 1:3)",
    )
    parser.add_argument("--seed", type=int, default=42, help="schedule seed")
    parser.add_argument(
        "--substrate", default="chord", help="DHT substrate (default chord)"
    )
    parser.add_argument(
        "--scheme", default="simple", help="indexing scheme (default simple)"
    )
    parser.add_argument(
        "--cache", default="multi", help="cache policy (default multi)"
    )
    parser.add_argument(
        "--replication", type=int, default=1, help="replica count (default 1)"
    )
    parser.add_argument(
        "--base-records",
        type=int,
        default=50,
        help="pre-seeded records the retrieves target (default 50)",
    )
    parser.add_argument(
        "--request-timeout-ms",
        type=float,
        default=250.0,
        help="per-request transport timeout (default 250)",
    )
    parser.add_argument(
        "--drain-seconds",
        type=float,
        default=15.0,
        help="grace after the last stage before in-flight ops count lost",
    )
    parser.add_argument(
        "--no-pipeline",
        action="store_true",
        help=(
            "disable rpc pipelining (batched inserts, async shortcuts) "
            "for A/B capacity comparison"
        ),
    )
    parser.add_argument(
        "--threads",
        action="store_true",
        help="run workers on threads in-process instead of spawned processes",
    )
    parser.add_argument(
        "--uvloop",
        action="store_true",
        help=(
            "run the cluster and client loops on uvloop when the "
            "package is importable (falls back to stock asyncio)"
        ),
    )
    parser.add_argument(
        "--out",
        default="BENCH_rpc.json",
        help="benchmark trajectory file to append to (default BENCH_rpc.json)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the run record as JSON instead of the table",
    )
    parser.add_argument(
        "--label", default="", help="free-form label stored with the record"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    options = build_parser().parse_args(argv)
    extra_meta = {"label": options.label} if options.label else {}
    if options.uvloop:
        # Installing the policy here covers the cluster's background
        # loop and the in-process client loops; spawned worker
        # processes keep the stock loop (they are CPU-light senders).
        extra_meta["loop"] = (
            "uvloop" if install_uvloop() else "asyncio (uvloop unavailable)"
        )
    config = LoadTestConfig(
        num_nodes=options.nodes,
        workers=options.workers,
        ramp=options.ramp,
        stage_seconds=options.stage_seconds,
        store_fraction=options.store_fraction,
        seed=options.seed,
        substrate=options.substrate,
        scheme=options.scheme,
        cache=options.cache,
        replication=options.replication,
        num_base_records=options.base_records,
        request_timeout_ms=options.request_timeout_ms,
        drain_timeout_s=options.drain_seconds,
        pipelined=not options.no_pipeline,
        processes=not options.threads,
        extra_meta=extra_meta,
    )
    report = run_load_test(config)
    record = bench_record(report)
    if options.out:
        append_bench_record(options.out, record)
    if options.json:
        print(json.dumps(record, indent=2))
    else:
        print(format_capacity_report(report))
        if options.out:
            print(f"appended to {options.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
