"""Load-test orchestration: cluster, worker fleet, merged capacity model.

:func:`run_load_test` is the programmatic face of
``python -m repro.loadgen``: boot a :class:`LocalCluster` (or aim at an
already-running bootstrap daemon), seed the base corpus the retrieves
will look up, fan the deterministic per-worker schedules out to worker
processes, and fold the per-worker, per-stage
:class:`LogBucketQuantiles` states back into one
:class:`CapacityReport` with the knee verdict.

Worker processes are *spawned* (never forked -- the parent runs live
asyncio threads) and synchronize on a shared wall-clock start instant,
so every worker's stage 0 begins together; per-worker start skew is
measured and reported rather than assumed away.  ``processes=False``
runs the same workers on threads inside this process -- exact for one
worker, convenient for tests -- while the capacity CLI keeps real
processes so the generator itself does not hit one interpreter's
ceiling before the cluster does.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from multiprocessing import get_context
from typing import Optional

from repro.analysis.stats import LogBucketQuantiles
from repro.dht import DEFAULT_BITS
from repro.loadgen.report import (
    CapacityReport,
    StageSummary,
    bench_record,
    detect_knee,
)
from repro.loadgen.schedule import combine_digests
from repro.loadgen.worker import (
    StagePlan,
    WorkerConfig,
    WorkerResult,
    run_worker,
)
from repro.rpc.cluster import LocalCluster


@dataclass
class LoadTestConfig:
    """One capacity run: cluster shape, ramp, mix, and determinism."""

    num_nodes: int = 5
    workers: int = 2
    #: Offered load per ramp stage, operations/second across ALL workers.
    ramp: tuple[float, ...] = (50.0, 100.0, 200.0)
    stage_seconds: float = 5.0
    store_fraction: float = 0.25
    seed: int = 42
    substrate: str = "chord"
    scheme: str = "simple"
    cache: str = "multi"
    replication: int = 1
    bits: int = DEFAULT_BITS
    num_base_records: int = 50
    store_pool_size: int = 200
    request_timeout_ms: float = 250.0
    max_retries: int = 3
    pipelined: bool = True
    #: Grace between worker setup and the common start instant.
    start_grace_s: float = 2.0
    drain_timeout_s: float = 15.0
    gamma: float = 1.02
    #: Real worker processes (the capacity default) vs in-process threads.
    processes: bool = True
    #: Attach to an existing daemon instead of booting a LocalCluster.
    bootstrap: Optional[tuple[str, int]] = None
    knee_gain_floor: float = 0.5
    knee_latency_inflection: float = 2.0
    knee_error_ceiling: float = 0.05
    extra_meta: dict = field(default_factory=dict)

    def describe(self) -> dict:
        """The config echo embedded in the benchmark record."""
        return {
            "num_nodes": self.num_nodes,
            "workers": self.workers,
            "ramp_hz": list(self.ramp),
            "stage_seconds": self.stage_seconds,
            "store_fraction": self.store_fraction,
            "seed": self.seed,
            "substrate": self.substrate,
            "scheme": self.scheme,
            "cache": self.cache,
            "replication": self.replication,
            "num_base_records": self.num_base_records,
            "store_pool_size": self.store_pool_size,
            "pipelined": self.pipelined,
            **self.extra_meta,
        }


def worker_configs(
    config: LoadTestConfig, bootstrap: tuple[str, int], start_at: float
) -> list[WorkerConfig]:
    """The per-worker slices of one run's offered load.

    Each stage's total rate splits evenly across the workers; offsets
    stack the stages back to back from the shared start instant.
    """
    if config.workers < 1:
        raise ValueError("need at least one worker")
    if not config.ramp:
        raise ValueError("ramp needs at least one stage")
    plans = []
    offset = 0.0
    for index, rate in enumerate(config.ramp):
        plans.append(
            StagePlan(
                index=index,
                rate_hz=rate / config.workers,
                duration_s=config.stage_seconds,
                offset_s=offset,
            )
        )
        offset += config.stage_seconds
    return [
        WorkerConfig(
            worker=worker,
            seed=config.seed,
            bootstrap=bootstrap,
            stages=tuple(plans),
            substrate=config.substrate,
            scheme=config.scheme,
            cache=config.cache,
            replication=config.replication,
            bits=config.bits,
            store_fraction=config.store_fraction,
            corpus_seed=config.seed * 1_000_003 + 17,
            num_base_records=config.num_base_records,
            store_pool_size=config.store_pool_size,
            start_at=start_at,
            request_timeout_ms=config.request_timeout_ms,
            max_retries=config.max_retries,
            pipelined=config.pipelined,
            gamma=config.gamma,
            drain_timeout_s=config.drain_timeout_s,
        )
        for worker in range(config.workers)
    ]


def merge_results(
    config: LoadTestConfig, results: list[WorkerResult]
) -> CapacityReport:
    """Fold per-worker stage outcomes into the run's capacity report."""
    stages: list[StageSummary] = []
    sketches: list[LogBucketQuantiles] = []
    run_digests: list[str] = []
    for stage_index in range(len(config.ramp)):
        outcomes = [
            outcome
            for result in results
            for outcome in result.stages
            if outcome.stage == stage_index
        ]
        sketch = LogBucketQuantiles(gamma=config.gamma)
        for outcome in outcomes:
            if outcome.sketch_state:
                sketch.merge(
                    LogBucketQuantiles.from_state(outcome.sketch_state)
                )
        digests = [
            outcome.digest
            for _, outcome in sorted(
                (result.worker, outcome)
                for result in results
                for outcome in result.stages
                if outcome.stage == stage_index
            )
        ]
        digest = combine_digests(digests)
        run_digests.append(digest)
        has_samples = sketch.count > 0
        stages.append(
            StageSummary(
                stage=stage_index,
                offered_hz=config.ramp[stage_index],
                duration_s=config.stage_seconds,
                scheduled=sum(o.scheduled for o in outcomes),
                completed=sum(o.completed for o in outcomes),
                stores=sum(o.stores for o in outcomes),
                retrieves=sum(o.retrieves for o in outcomes),
                not_found=sum(o.not_found for o in outcomes),
                gave_up=sum(o.gave_up for o in outcomes),
                delivery_errors=sum(o.delivery_errors for o in outcomes),
                lost=sum(o.lost for o in outcomes),
                duplicates=sum(o.duplicates for o in outcomes),
                p50_ms=sketch.percentile(0.50) if has_samples else 0.0,
                p95_ms=sketch.percentile(0.95) if has_samples else 0.0,
                p99_ms=sketch.percentile(0.99) if has_samples else 0.0,
                mean_ms=sketch.mean if has_samples else 0.0,
                digest=digest,
                max_start_skew_s=max(
                    (o.start_skew_s for o in outcomes), default=0.0
                ),
            )
        )
        sketches.append(sketch)
    knee = detect_knee(
        stages,
        gain_floor=config.knee_gain_floor,
        latency_inflection=config.knee_latency_inflection,
        error_ceiling=config.knee_error_ceiling,
    )
    return CapacityReport(
        config=config.describe(),
        stages=stages,
        knee=knee,
        digest=combine_digests(run_digests),
        sketches=sketches,
    )


def seed_base_records(
    cluster_or_bootstrap, config: LoadTestConfig
) -> None:
    """Publish the base corpus the retrieve mix will look up.

    Accepts a :class:`LocalCluster` (uses a throwaway client) so every
    retrieve target exists before the first arrival fires.
    """
    from repro.workload.corpus import CorpusConfig, SyntheticCorpus

    corpus = SyntheticCorpus(
        CorpusConfig(
            num_articles=config.num_base_records + config.store_pool_size,
            seed=config.seed * 1_000_003 + 17,
        )
    )
    client = cluster_or_bootstrap.client(pipelined=config.pipelined)
    try:
        for record in corpus.records[: config.num_base_records]:
            client.insert_record(record)
    finally:
        client.close()


def run_load_test(config: LoadTestConfig) -> CapacityReport:
    """Execute one full ramp and return the merged capacity report."""
    cluster: Optional[LocalCluster] = None
    try:
        if config.bootstrap is None:
            cluster = LocalCluster(
                config.num_nodes,
                substrate=config.substrate,
                scheme=config.scheme,
                cache=config.cache,
                replication=config.replication,
                bits=config.bits,
                request_timeout_ms=config.request_timeout_ms,
                max_retries=config.max_retries,
            ).start()
            seed_base_records(cluster, config)
            bootstrap = cluster.daemons[0].address
        else:
            bootstrap = config.bootstrap
        start_at = time.time() + config.start_grace_s + 0.5 * config.workers
        configs = worker_configs(config, bootstrap, start_at)
        if config.processes:
            with ProcessPoolExecutor(
                max_workers=config.workers,
                mp_context=get_context("spawn"),
            ) as pool:
                results = list(pool.map(run_worker, configs))
        else:
            with ThreadPoolExecutor(max_workers=config.workers) as pool:
                results = list(pool.map(run_worker, configs))
        return merge_results(config, results)
    finally:
        if cluster is not None:
            cluster.stop()


def capacity_bench_record(report: CapacityReport) -> dict:
    """Alias of :func:`repro.loadgen.report.bench_record` (re-export)."""
    return bench_record(report)
