"""Deterministic open-loop arrival schedules and request mixes.

This is the load generator's *pure* core: given a seed and a stage
description, it produces the exact sequence of operations one worker
process will replay -- Poisson arrival instants (exponential
inter-arrival times at the stage's offered rate) and, per arrival, the
operation kind (store vs retrieve at the configured mix, 1:3 by
default) plus the record/entry-class indices the operation targets.

Everything here is a function of ``(seed, worker, stage)`` only: no
wall clock, no sockets, no shared state.  Repeated runs with the same
seed therefore produce byte-identical schedules in every worker -- the
property suite pins reproducibility and the Poisson shape, and
:func:`schedule_digest` turns a schedule into a short fingerprint the
benchmark record carries so identical-mix reruns are checkable.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

#: Operation kinds; a store publishes a record, a retrieve runs one
#: covering-chain lookup.
STORE = "store"
RETRIEVE = "retrieve"

#: The paper-style workload mix: one store per three retrieves.
DEFAULT_STORE_FRACTION = 0.25


@dataclass(frozen=True)
class Op:
    """One scheduled operation of a worker's stage script.

    ``at_s`` is the arrival offset from the stage start (seconds);
    ``record_index`` selects the target record (store pool for stores,
    seeded base corpus for retrieves) and ``entry_class`` selects which
    of the scheme's entry classes the retrieve restricts its query to.
    """

    at_s: float
    kind: str
    record_index: int
    entry_class: int


def stage_rng(seed: int, worker: int, stage: int) -> random.Random:
    """The deterministic RNG of one ``(seed, worker, stage)`` cell.

    Seeded by a string so derivation is stable across processes and
    Python versions (string seeding hashes via SHA-512, unlike
    ``hash()`` which is salted per process).
    """
    return random.Random(f"loadgen:{seed}:{worker}:{stage}")


def stage_schedule(
    seed: int,
    worker: int,
    stage: int,
    rate_hz: float,
    duration_s: float,
    *,
    store_fraction: float = DEFAULT_STORE_FRACTION,
    num_store_records: int = 1,
    num_base_records: int = 1,
    num_entry_classes: int = 1,
) -> list[Op]:
    """One worker's operation script for one ramp stage.

    Arrivals form a Poisson process of intensity ``rate_hz`` truncated
    to ``duration_s`` (inter-arrival gaps drawn ``Exp(rate)``); each
    arrival independently becomes a store with probability
    ``store_fraction``.  Pure and deterministic: calling twice returns
    equal lists.
    """
    if rate_hz <= 0:
        raise ValueError("rate_hz must be positive")
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    if not 0.0 <= store_fraction <= 1.0:
        raise ValueError("store_fraction outside [0, 1]")
    rng = stage_rng(seed, worker, stage)
    ops: list[Op] = []
    at = rng.expovariate(rate_hz)
    while at < duration_s:
        if rng.random() < store_fraction:
            ops.append(
                Op(at, STORE, rng.randrange(num_store_records), 0)
            )
        else:
            ops.append(
                Op(
                    at,
                    RETRIEVE,
                    rng.randrange(num_base_records),
                    rng.randrange(num_entry_classes),
                )
            )
        at += rng.expovariate(rate_hz)
    return ops


def schedule_digest(ops: list[Op]) -> str:
    """Short stable fingerprint of a schedule (arrivals + mix).

    Arrival times enter via ``repr`` of the float, so two schedules
    digest equal exactly when every instant and every operation choice
    matches bit for bit.
    """
    hasher = hashlib.sha256()
    for op in ops:
        hasher.update(
            f"{op.at_s!r}|{op.kind}|{op.record_index}|{op.entry_class}\n".encode()
        )
    return hasher.hexdigest()[:16]


def combine_digests(digests: list[str]) -> str:
    """Fold per-worker digests into one run-level fingerprint."""
    hasher = hashlib.sha256()
    for digest in digests:
        hasher.update(digest.encode())
        hasher.update(b"\n")
    return hasher.hexdigest()[:16]
