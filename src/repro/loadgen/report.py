"""Capacity-model reporting: stage summaries, knee detection, BENCH file.

A load test produces one :class:`StageSummary` per ramp stage (offered
load, achieved throughput, latency percentiles, error accounting,
schedule fingerprint).  :func:`detect_knee` turns the stage sequence
into the capacity verdict -- the first stage where *goodput flattens
while latency inflects* -- and :func:`append_bench_record` persists the
whole trajectory to ``BENCH_rpc.json`` in the same append-only format
the kernel and query benchmarks use.

Knee semantics, precisely: walking the ramp in order, stage *i* is the
knee when

- **goodput flattens**: of the offered-load increase over stage *i-1*,
  less than ``gain_floor`` (default 50%) converts into goodput -- the
  marginal request is no longer being served; and
- **latency inflects or errors surface**: p95 grows by more than
  ``latency_inflection``x (default 2x) over the previous stage, or the
  error rate exceeds ``error_ceiling`` (default 5%) -- queueing or
  shedding, the two faces of saturation.

If no stage satisfies both, capacity was not reached within the ramp
and the report says so (``knee = None``); the peak measured goodput is
still reported as a lower bound.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from typing import Optional

from repro.analysis.stats import LogBucketQuantiles
from repro.analysis.tables import format_table


@dataclass
class StageSummary:
    """Everything one ramp stage measured, merged across workers."""

    stage: int
    offered_hz: float
    duration_s: float
    scheduled: int
    completed: int
    stores: int
    retrieves: int
    not_found: int
    gave_up: int
    delivery_errors: int
    lost: int
    duplicates: int
    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_ms: float
    digest: str
    #: Per-worker clock skew at stage start (honesty probe), seconds.
    max_start_skew_s: float = 0.0

    @property
    def errors(self) -> int:
        """Operations that completed wrong or never completed."""
        return self.not_found + self.gave_up + self.delivery_errors + self.lost

    @property
    def error_rate(self) -> float:
        """Fraction of scheduled operations that errored or were lost."""
        return self.errors / self.scheduled if self.scheduled else 0.0

    @property
    def throughput_hz(self) -> float:
        """Completed operations per second of stage time."""
        return self.completed / self.duration_s if self.duration_s else 0.0

    @property
    def goodput_hz(self) -> float:
        """Successfully served operations per second of stage time."""
        good = self.completed - self.not_found - self.gave_up - self.delivery_errors
        return max(0.0, good) / self.duration_s if self.duration_s else 0.0

    def to_dict(self) -> dict:
        """Return a JSON-ready mapping including the derived rates."""
        record = asdict(self)
        record["errors"] = self.errors
        record["error_rate"] = round(self.error_rate, 6)
        record["throughput_hz"] = round(self.throughput_hz, 3)
        record["goodput_hz"] = round(self.goodput_hz, 3)
        return record


@dataclass
class KneeReport:
    """The detected saturation point of a ramp."""

    stage: int
    offered_hz: float
    goodput_hz: float
    reason: str

    def to_dict(self) -> dict:
        """Return a JSON-ready mapping of the knee verdict."""
        return asdict(self)


@dataclass
class CapacityReport:
    """One complete load-test result: config echo, stages, verdict."""

    config: dict
    stages: list[StageSummary]
    knee: Optional[KneeReport]
    digest: str
    #: Latency sketches per stage (kept for callers that post-process).
    sketches: list[LogBucketQuantiles] = field(default_factory=list)

    @property
    def peak_goodput_hz(self) -> float:
        """Best goodput any single stage achieved."""
        return max((s.goodput_hz for s in self.stages), default=0.0)


def detect_knee(
    stages: list[StageSummary],
    *,
    gain_floor: float = 0.5,
    latency_inflection: float = 2.0,
    error_ceiling: float = 0.05,
) -> Optional[KneeReport]:
    """First stage where goodput flattens while latency inflects.

    See the module docstring for exact semantics.  Stages must be in
    ramp order; stages whose offered load did not increase over the
    previous stage are skipped (no marginal load to judge by).
    """
    for previous, current in zip(stages, stages[1:]):
        added_offer = current.offered_hz - previous.offered_hz
        if added_offer <= 0:
            continue
        gain = (current.goodput_hz - previous.goodput_hz) / added_offer
        if gain >= gain_floor:
            continue
        inflected = (
            previous.p95_ms > 0
            and current.p95_ms > latency_inflection * previous.p95_ms
        )
        shedding = current.error_rate > error_ceiling
        if not (inflected or shedding):
            continue
        causes = [f"goodput gain {gain:.2f} < {gain_floor:.2f}"]
        if inflected:
            causes.append(
                f"p95 inflected {current.p95_ms / previous.p95_ms:.1f}x"
            )
        if shedding:
            causes.append(f"error rate {current.error_rate:.1%}")
        return KneeReport(
            stage=current.stage,
            offered_hz=current.offered_hz,
            goodput_hz=current.goodput_hz,
            reason="; ".join(causes),
        )
    return None


def format_capacity_report(report: CapacityReport) -> str:
    """The human-facing capacity table + verdict the CLI prints."""
    rows = [
        [
            summary.stage,
            f"{summary.offered_hz:.0f}",
            f"{summary.throughput_hz:.1f}",
            f"{summary.goodput_hz:.1f}",
            f"{summary.p50_ms:.1f}",
            f"{summary.p95_ms:.1f}",
            f"{summary.p99_ms:.1f}",
            f"{summary.error_rate:.2%}",
            summary.scheduled,
        ]
        for summary in report.stages
    ]
    table = format_table(
        [
            "stage",
            "offered/s",
            "tput/s",
            "goodput/s",
            "p50 ms",
            "p95 ms",
            "p99 ms",
            "err",
            "ops",
        ],
        rows,
        title="Offered load vs throughput/latency (repro.rpc capacity)",
    )
    if report.knee is not None:
        verdict = (
            f"knee at stage {report.knee.stage}: offered "
            f"{report.knee.offered_hz:.0f}/s served "
            f"{report.knee.goodput_hz:.1f}/s ({report.knee.reason})"
        )
    else:
        verdict = (
            "knee not reached within the ramp; peak goodput "
            f"{report.peak_goodput_hz:.1f}/s is a lower capacity bound"
        )
    return f"{table}\n{verdict}\nschedule digest {report.digest}"


def append_bench_record(path: str, record: dict) -> None:
    """Append one run record to the BENCH trajectory file at ``path``.

    The file holds a JSON list of records, newest last -- the same
    shape as ``BENCH_kernel.json`` / ``BENCH_query.json``.
    """
    history: list = []
    if os.path.exists(path):
        with open(path) as handle:
            try:
                history = json.load(handle)
            except json.JSONDecodeError:
                history = []
        if not isinstance(history, list):
            history = [history]
    history.append(record)
    with open(path, "w") as handle:
        json.dump(history, handle, indent=2)
        handle.write("\n")


def bench_record(report: CapacityReport) -> dict:
    """The JSON-safe form of one capacity run for the BENCH file."""
    return {
        "config": report.config,
        "stages": [summary.to_dict() for summary in report.stages],
        "knee": report.knee.to_dict() if report.knee is not None else None,
        "peak_goodput_hz": round(report.peak_goodput_hz, 3),
        "schedule_digest": report.digest,
    }
