"""Open-loop load generator and capacity model for the rpc cluster.

``repro.loadgen`` measures what the real-socket stack of
:mod:`repro.rpc` can actually sustain.  It ramps an open-loop
store/retrieve mix (1:3 by default, the paper's workload shape) across
multiple worker processes against a live cluster, with deterministic
seeded Poisson arrival schedules (:mod:`~repro.loadgen.schedule`),
constant-memory latency sketches merged across workers
(:class:`~repro.analysis.stats.LogBucketQuantiles`), per-stage
offered-load vs throughput/p50/p95/p99/error-rate accounting, and
automatic detection of the capacity knee -- the stage where goodput
flattens while latency inflects (:mod:`~repro.loadgen.report`).

Run it as ``python -m repro.loadgen --nodes 5 --workers 2 --ramp
50,100,200,400``; results append to ``BENCH_rpc.json``.

Public surface:

- :class:`LoadTestConfig` / :func:`run_load_test` -- programmatic runs.
- :class:`CapacityReport` / :class:`StageSummary` / :class:`KneeReport`
  / :func:`detect_knee` -- the capacity model.
- :func:`stage_schedule` / :func:`stage_rng` / :func:`schedule_digest`
  / :class:`Op` -- the deterministic schedule core.
- :class:`WorkerConfig` / :class:`StagePlan` / :func:`run_worker` --
  one worker process's replay loop.
- :func:`format_capacity_report` / :func:`append_bench_record` /
  :func:`bench_record` -- reporting and the BENCH trajectory file.
"""

from repro.loadgen.report import (
    CapacityReport,
    KneeReport,
    StageSummary,
    append_bench_record,
    bench_record,
    detect_knee,
    format_capacity_report,
)
from repro.loadgen.runner import (
    LoadTestConfig,
    merge_results,
    run_load_test,
    worker_configs,
)
from repro.loadgen.schedule import (
    DEFAULT_STORE_FRACTION,
    RETRIEVE,
    STORE,
    Op,
    combine_digests,
    schedule_digest,
    stage_rng,
    stage_schedule,
)
from repro.loadgen.worker import (
    StagePlan,
    WorkerConfig,
    WorkerResult,
    run_worker,
)

__all__ = [
    "CapacityReport",
    "KneeReport",
    "StageSummary",
    "append_bench_record",
    "bench_record",
    "detect_knee",
    "format_capacity_report",
    "LoadTestConfig",
    "merge_results",
    "run_load_test",
    "worker_configs",
    "DEFAULT_STORE_FRACTION",
    "RETRIEVE",
    "STORE",
    "Op",
    "combine_digests",
    "schedule_digest",
    "stage_rng",
    "stage_schedule",
    "StagePlan",
    "WorkerConfig",
    "WorkerResult",
    "run_worker",
]
