"""One load-generator worker: an open-loop client process.

A worker owns one :class:`~repro.rpc.cluster.ClusterClient` (its own
UDP socket, its own routing mirror) and replays the deterministic
operation script of :mod:`repro.loadgen.schedule` against the cluster
*open-loop*: every operation is dispatched at its scheduled arrival
instant whether or not earlier operations finished -- exactly the
traffic a population of independent users offers, which is what makes
the measured latency inflate (queueing) instead of the offered load
silently deflating when the server saturates, as a closed loop would.

Concurrency model: the worker's asyncio loop runs in a background
thread; arrivals are ``loop.call_at`` timers; retrieves drive the
lookup engine's continuation-passing state machine
(:meth:`LookupEngine.start_async`) with a shim that maps retry-backoff
timers onto the loop, and stores fan their replica placements out
through :meth:`AsyncioTransport.request_many` (or strict lockstep when
pipelining is disabled, for A/B runs).  Thousands of logical clients
therefore fit in one process; multiple worker processes scale past one
interpreter.

Latency is measured from the *scheduled* arrival to completion, so
dispatch slip under overload counts -- that is the open-loop contract.
Every operation is accounted exactly once: the completion guard counts
duplicate completions (there must be none) and anything not completed
by the drain deadline is `lost`.  Per-stage latencies accumulate in a
constant-memory :class:`LogBucketQuantiles` sketch whose state rides
back to the parent for cross-worker merging.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass, field

from repro.analysis.stats import LogBucketQuantiles
from repro.core.query import FieldQuery
from repro.dht import DEFAULT_BITS
from repro.loadgen.schedule import (
    STORE,
    Op,
    schedule_digest,
    stage_schedule,
)
from repro.net.transport import DeliveryError
from repro.rpc.cluster import ClusterClient
from repro.workload.corpus import CorpusConfig, SyntheticCorpus


@dataclass(frozen=True)
class StagePlan:
    """One ramp stage as a worker sees it (per-worker rate)."""

    index: int
    rate_hz: float
    duration_s: float
    offset_s: float


@dataclass(frozen=True)
class WorkerConfig:
    """Everything one worker process needs (picklable for spawn)."""

    worker: int
    seed: int
    bootstrap: tuple[str, int]
    stages: tuple[StagePlan, ...]
    substrate: str = "chord"
    scheme: str = "simple"
    cache: str = "multi"
    replication: int = 1
    bits: int = DEFAULT_BITS
    store_fraction: float = 0.25
    corpus_seed: int = 4242
    num_base_records: int = 50
    store_pool_size: int = 200
    start_at: float = 0.0
    request_timeout_ms: float = 250.0
    max_retries: int = 3
    pipelined: bool = True
    gamma: float = 1.02
    drain_timeout_s: float = 15.0


@dataclass
class StageOutcome:
    """One worker's accounting for one stage (picklable)."""

    stage: int
    scheduled: int = 0
    completed: int = 0
    stores: int = 0
    retrieves: int = 0
    not_found: int = 0
    gave_up: int = 0
    delivery_errors: int = 0
    lost: int = 0
    duplicates: int = 0
    sketch_state: dict = field(default_factory=dict)
    digest: str = ""
    start_skew_s: float = 0.0


@dataclass
class WorkerResult:
    """Everything one worker measured, shipped back to the parent."""

    worker: int
    stages: list[StageOutcome]


class _LoopTimers:
    """The event-kernel ``post`` surface over a real asyncio loop.

    :meth:`LookupEngine.start_async` schedules retry backoff through
    ``kernel.post(delay_ms, fn)``; here a backoff is simply a real
    timer on the worker's loop.
    """

    __slots__ = ("_loop",)

    def __init__(self, loop: asyncio.AbstractEventLoop) -> None:
        self._loop = loop

    def post(self, delay_ms: float, fn) -> None:
        self._loop.call_later(delay_ms / 1000.0, fn)


class _StageTracker:
    """Exactly-once completion accounting for one stage's operations."""

    def __init__(self, plan: StagePlan, ops: list[Op], gamma: float) -> None:
        self.plan = plan
        self.ops = ops
        self.outcome = StageOutcome(
            stage=plan.index, scheduled=len(ops), digest=schedule_digest(ops)
        )
        self.sketch = LogBucketQuantiles(gamma=gamma)
        self._done = [False] * len(ops)
        self._finalized = False

    def complete(
        self,
        op_index: int,
        latency_ms: float,
        *,
        not_found: bool = False,
        gave_up: bool = False,
        delivery_error: bool = False,
    ) -> None:
        if self._finalized:
            return  # straggler past the drain deadline; already `lost`
        if self._done[op_index]:
            self.outcome.duplicates += 1
            return
        self._done[op_index] = True
        self.outcome.completed += 1
        if self.ops[op_index].kind == STORE:
            self.outcome.stores += 1
        else:
            self.outcome.retrieves += 1
        self.outcome.not_found += not_found
        self.outcome.gave_up += gave_up
        self.outcome.delivery_errors += delivery_error
        self.sketch.add(max(0.0, latency_ms))

    def finalize(self) -> StageOutcome:
        self._finalized = True
        self.outcome.lost = self.outcome.scheduled - self.outcome.completed
        self.outcome.sketch_state = self.sketch.to_state()
        return self.outcome


def run_worker(config: WorkerConfig) -> WorkerResult:
    """Run one worker's full multi-stage script; returns its results.

    Blocks the calling thread (the worker process's main thread) until
    every stage dispatched and either every operation completed or the
    drain deadline passed.
    """
    corpus = SyntheticCorpus(
        CorpusConfig(
            num_articles=config.num_base_records + config.store_pool_size,
            seed=config.corpus_seed,
        )
    )
    base_records = corpus.records[: config.num_base_records]
    store_pool = corpus.records[config.num_base_records:]

    loop = asyncio.new_event_loop()
    thread = threading.Thread(
        target=loop.run_forever,
        name=f"loadgen-worker-{config.worker}",
        daemon=True,
    )
    thread.start()
    client = ClusterClient(
        loop,
        tuple(config.bootstrap),
        substrate=config.substrate,
        scheme=config.scheme,
        cache=config.cache,
        replication=config.replication,
        bits=config.bits,
        user=f"loadgen:{config.worker}",
        request_timeout_ms=config.request_timeout_ms,
        max_retries=config.max_retries,
        pipelined=config.pipelined,
    )
    entry_classes = sorted(
        tuple(sorted(keyset)) for keyset in client.scheme.entry_classes()
    )
    timers = _LoopTimers(loop)

    trackers: list[_StageTracker] = []
    for plan in config.stages:
        ops = stage_schedule(
            config.seed,
            config.worker,
            plan.index,
            plan.rate_hz,
            plan.duration_s,
            store_fraction=config.store_fraction,
            num_store_records=len(store_pool),
            num_base_records=len(base_records),
            num_entry_classes=len(entry_classes),
        )
        trackers.append(_StageTracker(plan, ops, config.gamma))

    outstanding = sum(len(t.ops) for t in trackers)
    all_done = threading.Event()

    def op_finished() -> None:
        nonlocal outstanding
        outstanding -= 1
        if outstanding <= 0:
            all_done.set()

    def dispatch(tracker: _StageTracker, op_index: int, at_loop: float) -> None:
        op = tracker.ops[op_index]

        def finish(**kwargs) -> None:
            latency_ms = (loop.time() - at_loop) * 1000.0
            tracker.complete(op_index, latency_ms, **kwargs)
            op_finished()

        if op.kind == STORE:
            record = store_pool[op.record_index]
            messages = client.insert_messages(record)

            async def run_store() -> None:
                failed = False
                try:
                    if config.pipelined:
                        results = await client.transport.request_many(messages)
                        failed = any(
                            isinstance(item, DeliveryError) for item in results
                        )
                    else:
                        for message in messages:
                            await client.transport.request(message)
                except DeliveryError:
                    failed = True
                finish(delivery_error=failed)

            loop.create_task(run_store())
        else:
            record = base_records[op.record_index]
            query = FieldQuery.msd_of(record).restrict(
                list(entry_classes[op.entry_class])
            )

            def on_complete(trace) -> None:
                finish(
                    not_found=not trace.found and not trace.gave_up,
                    gave_up=trace.gave_up,
                )

            client.engine.start_async(query, record, timers, on_complete)

    # Anchor the loop clock to the shared wall-clock start instant, so
    # every worker's schedule counts offsets from the same origin.
    now_wall = time.time()
    if config.start_at > now_wall:
        time.sleep(config.start_at - now_wall)
    start_skews = [
        max(0.0, time.time() - config.start_at - plan.offset_s)
        for plan in config.stages
    ]
    anchor_holder: list[float] = []

    def arm_timers() -> None:
        anchor = loop.time() - (time.time() - config.start_at)
        anchor_holder.append(anchor)
        for tracker in trackers:
            plan = tracker.plan
            for op_index, op in enumerate(tracker.ops):
                at_loop = anchor + plan.offset_s + op.at_s
                loop.call_at(
                    at_loop, dispatch, tracker, op_index, at_loop
                )
        if not any(tracker.ops for tracker in trackers):
            all_done.set()

    loop.call_soon_threadsafe(arm_timers)

    total = max(
        (plan.offset_s + plan.duration_s for plan in config.stages),
        default=0.0,
    )
    deadline = config.start_at + total + config.drain_timeout_s
    all_done.wait(timeout=max(0.0, deadline - time.time()))

    # Snapshot on the loop thread so no completion races the collection.
    collected: list[StageOutcome] = []
    snapshot_done = threading.Event()

    def collect() -> None:
        for skew, tracker in zip(start_skews, trackers):
            outcome = tracker.finalize()
            outcome.start_skew_s = skew
            collected.append(outcome)
        snapshot_done.set()

    loop.call_soon_threadsafe(collect)
    snapshot_done.wait(timeout=10.0)

    client.close()

    # Cancel whatever the drain deadline left in flight before taking
    # the loop down, so stragglers cannot leak "pending task" noise.
    cancelled = threading.Event()

    def cancel_pending() -> None:
        for task in asyncio.all_tasks(loop):
            task.cancel()
        cancelled.set()

    loop.call_soon_threadsafe(cancel_pending)
    cancelled.wait(timeout=5.0)
    try:
        # Let the cancellations actually unwind before the loop stops,
        # or closing the loop reports them as destroyed-while-pending.
        asyncio.run_coroutine_threadsafe(
            asyncio.sleep(0.2), loop
        ).result(timeout=5.0)
    except Exception:
        pass
    loop.call_soon_threadsafe(loop.stop)
    thread.join(timeout=10.0)
    loop.close()
    return WorkerResult(worker=config.worker, stages=collected)
