"""DHT storage layer: key-to-values storage over any DHT substrate.

Models the Chord/DHash/CFS and Pastry/PAST class of systems the paper
assumes underneath its indexes (Section III-A), with the one extension the
indexing technique requires (Section IV): *the registration of multiple
entries under the same key*.  Index nodes store many query-to-query
mappings under one index key, and the storage layer must return all of
them on a lookup.
"""

from repro.storage.durable import (
    DurableNodeState,
    FsyncPolicy,
    NodeWalSet,
    RecoveryReport,
    SnapshotState,
    WalError,
    WriteAheadLog,
    replay_wal,
)
from repro.storage.store import (
    DHTStorage,
    GetResult,
    PutResult,
    StorageError,
)

__all__ = [
    "DHTStorage",
    "DurableNodeState",
    "FsyncPolicy",
    "GetResult",
    "NodeWalSet",
    "PutResult",
    "RecoveryReport",
    "SnapshotState",
    "StorageError",
    "WalError",
    "WriteAheadLog",
    "replay_wal",
]
