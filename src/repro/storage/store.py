"""Replicated multi-entry storage over a DHT substrate.

:class:`DHTStorage` maps textual keys (canonical query strings) to lists of
textual values.  The node responsible for a key is resolved through the
substrate's ``lookup``; with ``replication > 1`` each key is also stored on
the next ``replication - 1`` closest nodes, in the style of DHash/PAST.

The layer supports:

- multiple values per key (``put`` appends; ``get`` returns them all),
  which the paper's index model requires;
- deletion of single values or whole keys, with replica cleanup
  (read/write semantics of Section IV-C);
- membership changes: after nodes join or leave, :meth:`rebalance`
  re-places every key on its current responsible nodes (the block
  transfer CFS performs on join), while the cheaper incremental
  :meth:`repair` pass only re-replicates under-replicated keys and
  purges stale copies (churn-triggered maintenance);
- transient failures: reads fail over past crashed replicas
  (``protocol.is_alive``), counting the wasted probes;
- per-node occupancy statistics (keys per node), which Section V-F
  reports (e.g. "an average of 155 keys per node for simple").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.dht.base import DHTProtocol, NodeId
from repro.dht.idspace import hash_key
from repro.perf import counters

if TYPE_CHECKING:
    from repro.obs.tracer import Tracer
    from repro.storage.durable import DurableNodeState, NodeWalSet

    StorageJournal = DurableNodeState | NodeWalSet


class StorageError(KeyError):
    """Raised when a key or value is not present where required."""


@dataclass(frozen=True)
class PutResult:
    """Where a value was stored and what it cost to place it."""

    key: str
    numeric_key: int
    nodes: tuple[NodeId, ...]
    hops: int


@dataclass(frozen=True)
class GetResult:
    """Values found for a key and the node that served them."""

    key: str
    numeric_key: int
    node: Optional[NodeId]
    values: tuple[str, ...]
    hops: int

    @property
    def found(self) -> bool:
        return bool(self.values)


@dataclass(frozen=True)
class RepairReport:
    """What one incremental :meth:`DHTStorage.repair` pass did.

    ``keys_repaired`` counts keys copied to at least one node that
    lacked them; ``copies_created`` counts the individual new replicas;
    ``bytes_copied`` is the key+value text shipped (the repair-traffic
    overhead the availability report quotes); ``keys_pruned`` counts
    stale copies dropped from departed or no-longer-responsible nodes.
    """

    keys_repaired: int = 0
    copies_created: int = 0
    bytes_copied: int = 0
    keys_pruned: int = 0

    def __add__(self, other: "RepairReport") -> "RepairReport":
        return RepairReport(
            self.keys_repaired + other.keys_repaired,
            self.copies_created + other.copies_created,
            self.bytes_copied + other.bytes_copied,
            self.keys_pruned + other.keys_pruned,
        )


class DHTStorage:
    """Key -> list-of-values storage with replication over a substrate."""

    def __init__(
        self,
        protocol: DHTProtocol,
        replication: int = 1,
        hash_function: Optional[Callable[[str], int]] = None,
    ) -> None:
        if replication < 1:
            raise ValueError("replication factor must be >= 1")
        self.protocol = protocol
        self.replication = replication
        self._hash = hash_function or (lambda text: hash_key(text, protocol.bits))
        # Optional observability hook (see repro.obs): None = untraced.
        self.tracer: Optional["Tracer"] = None
        # Optional durability hook (see repro.storage.durable): every
        # replica placement, deletion, and repair copy is journaled to a
        # write-ahead log before this layer acknowledges it.  None =
        # fully in-memory (the default; zero overhead).
        self._journal: Optional["StorageJournal"] = None
        self._journal_store = "index"
        # Node-local stores: what each peer physically holds.
        self._node_stores: dict[NodeId, dict[str, list[str]]] = {}
        # Authoritative catalog used for rebalancing after churn.
        self._catalog: dict[str, list[str]] = {}
        # Replica-placement cache: the sorted ring and node -> position
        # map only change on membership events, so they are rebuilt at
        # most once per protocol.membership_version instead of per key.
        self._ring_version = -1
        self._ring: list[NodeId] = []
        self._ring_index: dict[NodeId, int] = {}

    def attach_journal(
        self, journal: "StorageJournal", store_label: str = "index"
    ) -> None:
        """Journal every mutation to ``journal`` under ``store_label``.

        ``store_label`` ("index" or "file") distinguishes this storage
        instance's records inside a shared write-ahead log.  The journal
        is written *before* an operation is acknowledged, so an entry
        that a caller saw succeed survives a crash.
        """
        from repro.storage.durable import STORE_CODES

        if store_label not in STORE_CODES:
            raise ValueError(f"unknown store label: {store_label!r}")
        self._journal = journal
        self._journal_store = store_label

    # -- placement -----------------------------------------------------------

    def numeric_key(self, key: str) -> int:
        """The m-bit numeric key ``h(key)`` used by the substrate."""
        return self._hash(key)

    def responsible_nodes(self, key: str) -> list[NodeId]:
        """The ``replication`` nodes that should hold ``key`` right now."""
        numeric = self.numeric_key(key)
        primary = self.protocol.lookup(numeric).node
        if self.replication == 1:
            return [primary]
        # Take the next closest nodes in identifier order after the
        # primary (successor-list placement, as in DHash/PAST).
        version = self.protocol.membership_version
        if version != self._ring_version:
            self._ring = sorted(self.protocol.node_ids)
            self._ring_index = {
                node: position for position, node in enumerate(self._ring)
            }
            self._ring_version = version
        ordered = self._ring
        if not ordered:
            return [primary]
        start = self._ring_index[primary]
        count = min(self.replication, len(ordered))
        return [ordered[(start + offset) % len(ordered)] for offset in range(count)]

    # -- operations ------------------------------------------------------------

    def put(self, key: str, value: str, allow_duplicate: bool = False) -> PutResult:
        """Store ``value`` under ``key`` on the responsible nodes.

        Multiple distinct values accumulate under one key.  Storing a value
        already present is a no-op unless ``allow_duplicate`` is set.
        """
        numeric = self.numeric_key(key)
        result = self.protocol.lookup(numeric)
        nodes = self.responsible_nodes(key)
        for node in nodes:
            bucket = self._node_stores.setdefault(node, {}).setdefault(key, [])
            if allow_duplicate or value not in bucket:
                bucket.append(value)
                if self._journal is not None:
                    self._journal.record_put(
                        node, self._journal_store, key, value
                    )
        catalog_bucket = self._catalog.setdefault(key, [])
        if allow_duplicate or value not in catalog_bucket:
            catalog_bucket.append(value)
        return PutResult(
            key=key, numeric_key=numeric, nodes=tuple(nodes), hops=result.hops
        )

    def put_local(
        self, node: NodeId, key: str, value: str, allow_duplicate: bool = False
    ) -> None:
        """Store one replica of ``value`` under ``key`` on ``node`` only.

        This is the wire-facing write: a networked daemon owns exactly one
        node's physical store, and each replica placement arrives as its
        own message, so the placement decision (``responsible_nodes``) is
        made by the *sender*, not here.  The catalog still learns the key
        so local reads (``values``, ``__contains__``) and statistics stay
        truthful for the daemon's slice of the data.
        """
        bucket = self._node_stores.setdefault(node, {}).setdefault(key, [])
        if allow_duplicate or value not in bucket:
            bucket.append(value)
            if self._journal is not None:
                self._journal.record_put(node, self._journal_store, key, value)
        catalog_bucket = self._catalog.setdefault(key, [])
        if allow_duplicate or value not in catalog_bucket:
            catalog_bucket.append(value)

    def get(self, key: str) -> GetResult:
        """Fetch every value stored under ``key``.

        Tries the primary responsible node first, then the replicas, so
        reads survive the loss of up to ``replication - 1`` nodes (until
        the next :meth:`rebalance` or :meth:`repair`).  A crashed replica
        (``protocol.is_alive`` false) cannot serve: it is skipped -- the
        failover still costs a wasted probe hop and is counted in
        ``storage_failovers`` -- and the read proceeds to the next copy.
        """
        numeric = self.numeric_key(key)
        result = self.protocol.lookup(numeric)
        hops = result.hops
        failovers = 0
        for node in self.responsible_nodes(key):
            if not self.protocol.is_alive(node):
                counters.storage_failovers += 1
                failovers += 1
                if self.tracer is not None:
                    self.tracer.failover(
                        key=key, node=node, attempt=failovers,
                        level="storage", use_current=True,
                    )
                hops += 1
                continue
            values = self._node_stores.get(node, {}).get(key)
            if values:
                return GetResult(
                    key=key,
                    numeric_key=numeric,
                    node=node,
                    values=tuple(values),
                    hops=hops,
                )
            hops += 1
        return GetResult(
            key=key, numeric_key=numeric, node=None, values=(), hops=hops
        )

    def remove_value(self, key: str, value: str) -> None:
        """Delete one value from a key everywhere; drop empty keys."""
        if key not in self._catalog or value not in self._catalog[key]:
            raise StorageError(f"value not stored under key {key!r}")
        self._catalog[key].remove(value)
        if not self._catalog[key]:
            del self._catalog[key]
        for node, store in self._node_stores.items():
            bucket = store.get(key)
            if bucket and value in bucket:
                bucket.remove(value)
                if not bucket:
                    del store[key]
                if self._journal is not None:
                    self._journal.record_remove_value(
                        node, self._journal_store, key, value
                    )

    def remove_key(self, key: str) -> None:
        """Delete a key and all its values everywhere."""
        if key not in self._catalog:
            raise StorageError(f"key not stored: {key!r}")
        del self._catalog[key]
        for node, store in self._node_stores.items():
            if store.pop(key, None) is not None and self._journal is not None:
                self._journal.record_remove_key(node, self._journal_store, key)

    def __contains__(self, key: str) -> bool:
        return key in self._catalog

    def values(self, key: str) -> tuple[str, ...]:
        """Authoritative values for a key (catalog view)."""
        return tuple(self._catalog.get(key, ()))

    def values_at(self, node: NodeId, key: str) -> tuple[str, ...]:
        """Values physically held by one node for a key.

        This is what the node itself can answer from local state -- the
        view a message handler must use (a departed or not-yet-rebalanced
        node does not see the global catalog).
        """
        return tuple(self._node_stores.get(node, {}).get(key, ()))

    def items_at(self, node: NodeId) -> list[tuple[str, tuple[str, ...]]]:
        """Every (key, values) pair physically held by one node.

        The iteration surface a daemon needs to answer a peer's
        re-replication ``pull``: strictly node-local state, like
        :meth:`values_at`.
        """
        return [
            (key, tuple(values))
            for key, values in self._node_stores.get(node, {}).items()
        ]

    # -- churn ----------------------------------------------------------------

    def drop_node(self, node: NodeId) -> int:
        """Discard a departed node's physical store (its copies are gone).

        Returns the number of keys the node was holding.  Call on node
        departure so no stale replica survives outside the ring --
        :meth:`repair` and :meth:`rebalance` also purge departed holders,
        but between the departure and the next repair pass the orphaned
        entries would otherwise still count toward storage statistics.
        """
        if self._journal is not None and node in self._node_stores:
            self._journal.record_drop_node(node)
        return len(self._node_stores.pop(node, {}))

    def forget_node(self, node: NodeId) -> int:
        """Wipe a node's in-memory store WITHOUT touching its journal.

        Power-cycle semantics: when a durable node is killed, its RAM is
        gone but its write-ahead log survives for replay on restart.
        :meth:`drop_node`, by contrast, is a *departure* -- copies and
        journal both go.  Returns the number of keys wiped.
        """
        return len(self._node_stores.pop(node, {}))

    def replay_entries(
        self, node: NodeId, entries: list[tuple[str, str]]
    ) -> int:
        """Re-apply recovered (key, value) entries to ``node``'s store.

        The recovery path: entries come *from* the node's journal, so
        they are applied with journaling suppressed -- re-logging them
        would double the WAL on every restart.  Idempotent (``put_local``
        deduplicates), which is what makes repeated restarts safe.
        Returns the number of entries actually (re)added.
        """
        journal, self._journal = self._journal, None
        added = 0
        try:
            for key, value in entries:
                bucket = self._node_stores.setdefault(node, {}).setdefault(
                    key, []
                )
                if value not in bucket:
                    added += 1
                self.put_local(node, key, value)
        finally:
            self._journal = journal
        return added

    def repair(self) -> RepairReport:
        """Incrementally re-replicate under-replicated keys after churn.

        Unlike the full :meth:`rebalance` (which rewrites every node's
        store from the catalog), repair only touches the delta: it purges
        copies held by departed or no-longer-responsible nodes, then
        copies each key to the live responsible nodes that lack it.
        Crashed nodes cannot receive repair traffic; their copies are
        restored once they recover and a later pass runs.  The bytes
        shipped are counted (``storage_repair_bytes``) so the repair
        overhead of a chaos run is measured, not estimated.
        """
        live = set(self.protocol.node_ids)
        keys_pruned = 0
        for node in list(self._node_stores):
            if node not in live:
                keys_pruned += self.drop_node(node)
        keys_repaired = copies_created = bytes_copied = 0
        placements: dict[str, set[NodeId]] = {}
        for key, stored_values in self._catalog.items():
            targets = self.responsible_nodes(key)
            placements[key] = set(targets)
            key_bytes = len(key.encode("utf-8"))
            repaired_here = False
            for node in targets:
                if not self.protocol.is_alive(node):
                    continue
                store = self._node_stores.setdefault(node, {})
                held = store.get(key)
                if held is None:
                    store[key] = list(stored_values)
                    copies_created += 1
                    repaired_here = True
                    bytes_copied += sum(
                        key_bytes + len(value.encode("utf-8"))
                        for value in stored_values
                    )
                    if self._journal is not None:
                        for value in stored_values:
                            self._journal.record_put(
                                node, self._journal_store, key, value
                            )
                elif len(held) < len(stored_values):
                    for value in stored_values:
                        if value not in held:
                            held.append(value)
                            bytes_copied += key_bytes + len(
                                value.encode("utf-8")
                            )
                            if self._journal is not None:
                                self._journal.record_put(
                                    node, self._journal_store, key, value
                                )
                    repaired_here = True
            if repaired_here:
                keys_repaired += 1
        # Prune copies on live nodes that are no longer responsible for a
        # key (responsibility shifted to a joiner), so occupancy stays
        # truthful without a full rebalance.
        for node, store in self._node_stores.items():
            stale = [
                key for key in store if node not in placements.get(key, ())
            ]
            for key in stale:
                del store[key]
                if self._journal is not None:
                    self._journal.record_remove_key(
                        node, self._journal_store, key
                    )
            keys_pruned += len(stale)
        counters.storage_repair_keys += keys_repaired
        counters.storage_repair_bytes += bytes_copied
        return RepairReport(
            keys_repaired=keys_repaired,
            copies_created=copies_created,
            bytes_copied=bytes_copied,
            keys_pruned=keys_pruned,
        )

    def under_replicated_keys(self) -> list[str]:
        """Keys currently held by fewer live nodes than required.

        A diagnostic for churn experiments: after :meth:`repair` (with
        all responsible nodes alive) this must be empty.
        """
        missing: list[str] = []
        for key in self._catalog:
            holders = sum(
                1
                for node in self.responsible_nodes(key)
                if self.protocol.is_alive(node)
                and key in self._node_stores.get(node, {})
            )
            required = min(self.replication, len(self.protocol.node_ids))
            if holders < required:
                missing.append(key)
        return missing

    def rebalance(self) -> int:
        """Re-place every key on its current responsible nodes.

        Run after membership changes.  Returns the number of keys moved to
        at least one new node.
        """
        new_stores: dict[NodeId, dict[str, list[str]]] = {}
        moved = 0
        for key, stored_values in self._catalog.items():
            nodes = self.responsible_nodes(key)
            previously = {
                node
                for node, store in self._node_stores.items()
                if key in store
            }
            if set(nodes) != previously:
                moved += 1
            for node in nodes:
                new_stores.setdefault(node, {})[key] = list(stored_values)
        if self._journal is not None:
            # Journal the delta: keys leaving a node, values arriving.
            for node, store in self._node_stores.items():
                new_store = new_stores.get(node, {})
                for key, held in store.items():
                    if key not in new_store:
                        self._journal.record_remove_key(
                            node, self._journal_store, key
                        )
            for node, new_store in new_stores.items():
                old_store = self._node_stores.get(node, {})
                for key, values in new_store.items():
                    held = old_store.get(key, ())
                    for value in values:
                        if value not in held:
                            self._journal.record_put(
                                node, self._journal_store, key, value
                            )
        self._node_stores = new_stores
        return moved

    # -- statistics -------------------------------------------------------------

    def keys_on_node(self, node: NodeId) -> int:
        """Number of distinct keys physically held by ``node``."""
        return len(self._node_stores.get(node, {}))

    def entries_on_node(self, node: NodeId) -> int:
        """Number of (key, value) entries physically held by ``node``."""
        return sum(len(values) for values in self._node_stores.get(node, {}).values())

    def keys_per_node(self) -> dict[NodeId, int]:
        """Occupancy map over all nodes that hold at least one key."""
        return {
            node: len(store) for node, store in self._node_stores.items() if store
        }

    def total_keys(self) -> int:
        """Number of distinct keys in the catalog."""
        return len(self._catalog)

    def total_entries(self) -> int:
        """Number of (key, value) entries in the catalog."""
        return sum(len(values) for values in self._catalog.values())

    def storage_bytes(self) -> int:
        """Total bytes of key and value text held across all nodes.

        Replicas count once per copy, matching the paper's "extra storage
        in the system" measure for indexes (Section V-B).
        """
        total = 0
        for store in self._node_stores.values():
            for key, stored_values in store.items():
                key_bytes = len(key.encode("utf-8"))
                for value in stored_values:
                    total += key_bytes + len(value.encode("utf-8"))
        return total
