"""Durable node state: write-ahead log + snapshot persistence.

Every daemon from :mod:`repro.rpc` was fully in-memory: a restart lost
its index entries, replicas, shortcut cache, and membership view.  This
module supplies the missing persistence layer as a *pluggable journal*
behind :class:`repro.storage.store.DHTStorage` (and the index service's
shortcut caches), with crash-recovery semantics a production storage
node needs:

- an **append-only write-ahead log** (``wal.log``) of every
  state-changing operation -- index/file inserts, deletes, shortcut
  cache inserts, and membership-relevant local state -- using the same
  framing discipline as the :mod:`repro.rpc.codec` wire protocol:
  length-prefixed, CRC32-checksummed, versioned records that a decoder
  can reject without crashing;
- **fsync policies** (``always`` / ``interval[:N]`` / ``never``)
  trading write latency against the power-loss window.  The log file is
  unbuffered, so a SIGKILL of the process loses *nothing* under any
  policy -- only losing the machine (power loss) can cost the records
  appended since the last fsync;
- **compacting snapshots** (``snapshot.bin``): the materialized node
  state is written to a temporary file, fsynced, and atomically renamed
  over the previous snapshot, after which the log is reset.  Snapshots
  carry the sequence number of the last folded-in record, so recovery
  replays only the log tail -- and a log that is *older* than the
  snapshot (the crash-between-rename-and-truncate window) replays
  nothing instead of double-applying;
- a **recovery path** that loads the snapshot, replays the log tail,
  truncates torn tails (a record half-written when the power died)
  instead of crashing, and skips a corrupt-CRC record with a warning
  while keeping the valid prefix.

Layering: :class:`DurableNodeState` is one node's journal (what a
:class:`repro.rpc.daemon.NodeDaemon` owns); :class:`NodeWalSet` fans the
same journal protocol out to one log per node for the simulator's
restart/power-loss chaos, where hundreds of nodes journal concurrently
and any of them may be power-cycled mid-run.
"""

from __future__ import annotations

import os
import struct
import time
import warnings
import zlib
from dataclasses import dataclass, field
from typing import Optional

from repro.perf import counters

#: First bytes of a write-ahead log file.
WAL_MAGIC = b"RPWL"
#: First bytes of a snapshot file.
SNAPSHOT_MAGIC = b"RPSN"
#: On-disk format version stamped into (and required of) both files.
DURABLE_VERSION = 1
#: Fixed WAL file header: magic + version byte.
WAL_HEADER_BYTES = len(WAL_MAGIC) + 1
#: Per-record framing: u32 body length + u32 CRC32 of the body.
RECORD_PREFIX_BYTES = 8
#: Upper bound on one record body; a length prefix beyond this is
#: treated as corruption, not as an allocation request.
MAX_RECORD_BYTES = 16 * 1024 * 1024

#: WAL operation codes (the versioned part of the format: existing codes
#: never change, new operations append).
OP_PUT = 1
OP_REMOVE_VALUE = 2
OP_REMOVE_KEY = 3
OP_CACHE_INSERT = 4
OP_MEMBER = 5
OP_IDENTITY = 6

#: Store labels used by the journal protocol, mapped to wire codes.
STORE_CODES = {"index": 0, "file": 1}
_STORES_BY_CODE = {code: label for label, code in STORE_CODES.items()}

_U32_MAX = 0xFFFFFFFF


class WalError(ValueError):
    """Raised for unrecoverable misuse of the durable layer (bad fsync
    spec, unencodable record).  Disk-level damage never raises this --
    recovery degrades (truncate, skip, warn) instead of crashing."""


@dataclass(frozen=True)
class FsyncPolicy:
    """When the log forces its bytes to the platter.

    ``always`` fsyncs after every append (no power-loss window, slowest);
    ``interval`` fsyncs every ``every`` appends (bounded window);
    ``never`` leaves it to the OS (fastest; a power loss can take the
    whole OS write-back window).  Process death alone -- SIGKILL -- loses
    nothing under any policy, because appends are unbuffered writes.
    """

    mode: str = "interval"
    every: int = 64

    def __post_init__(self) -> None:
        if self.mode not in ("always", "interval", "never"):
            raise WalError(f"unknown fsync mode: {self.mode!r}")
        if self.every < 1:
            raise WalError("fsync interval must be >= 1")

    @classmethod
    def parse(cls, spec: str) -> "FsyncPolicy":
        """``always`` | ``never`` | ``interval[:N]`` -> policy."""
        mode, _, arg = spec.partition(":")
        if mode == "interval" and arg:
            if not arg.isdigit() or int(arg) < 1:
                raise WalError(f"bad fsync interval: {spec!r}")
            return cls(mode, int(arg))
        if arg:
            raise WalError(f"fsync policy takes no argument: {spec!r}")
        return cls(mode)


@dataclass(frozen=True)
class WalOp:
    """One decoded log record: a sequence number and a typed operation.

    ``fields`` is the op-specific tuple:

    ============== =================================================
    op              fields
    ============== =================================================
    OP_PUT          (store_label, key, value)
    OP_REMOVE_VALUE (store_label, key, value)
    OP_REMOVE_KEY   (store_label, key)
    OP_CACHE_INSERT (query_key, msd_key)
    OP_MEMBER       (node_id, host, port)
    OP_IDENTITY     (node_id,)
    ============== =================================================
    """

    seq: int
    op: int
    fields: tuple


# -- record encoding --------------------------------------------------------


def _pack_id(node_id: int) -> bytes:
    """Length-prefixed big-endian node id (ids are ``bits``-wide -- 160
    by default -- so no fixed-width integer field fits them)."""
    if node_id < 0:
        raise WalError("node ids are unsigned")
    data = node_id.to_bytes((node_id.bit_length() + 7) // 8 or 1, "big")
    if len(data) > 0xFFFF:
        raise WalError("node id exceeds u16 byte length")
    return struct.pack(">H", len(data)) + data


def _pack_text(text: str) -> bytes:
    data = text.encode("utf-8")
    if len(data) > _U32_MAX:
        raise WalError("text field exceeds u32 byte length")
    return struct.pack(">I", len(data)) + data


class _Reader:
    """Bounds-checked cursor over one record body (codec discipline)."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def take(self, count: int) -> bytes:
        end = self.pos + count
        if end > len(self.data):
            raise WalError("truncated record body")
        chunk = self.data[self.pos:end]
        self.pos = end
        return chunk

    def u8(self) -> int:
        return self.take(1)[0]

    def u16(self) -> int:
        return int.from_bytes(self.take(2), "big")

    def node_id(self) -> int:
        return int.from_bytes(self.take(self.u16()), "big")

    def u32(self) -> int:
        return int.from_bytes(self.take(4), "big")

    def u64(self) -> int:
        return int.from_bytes(self.take(8), "big")

    def text(self) -> str:
        try:
            return self.take(self.u32()).decode("utf-8")
        except UnicodeDecodeError as error:
            raise WalError(f"invalid UTF-8 in record: {error}") from None

    def done(self) -> None:
        if self.pos != len(self.data):
            raise WalError("trailing bytes after record body")


def encode_record_body(seq: int, op: int, fields: tuple) -> bytes:
    """Serialize one operation into a record body (no framing)."""
    parts = [struct.pack(">QB", seq, op)]
    if op in (OP_PUT, OP_REMOVE_VALUE):
        store, key, value = fields
        parts.append(struct.pack(">B", STORE_CODES[store]))
        parts.append(_pack_text(key))
        parts.append(_pack_text(value))
    elif op == OP_REMOVE_KEY:
        store, key = fields
        parts.append(struct.pack(">B", STORE_CODES[store]))
        parts.append(_pack_text(key))
    elif op == OP_CACHE_INSERT:
        query_key, msd_key = fields
        parts.append(_pack_text(query_key))
        parts.append(_pack_text(msd_key))
    elif op == OP_MEMBER:
        node_id, host, port = fields
        parts.append(_pack_id(node_id))
        parts.append(_pack_text(host))
        parts.append(struct.pack(">I", port))
    elif op == OP_IDENTITY:
        (node_id,) = fields
        parts.append(_pack_id(node_id))
    else:
        raise WalError(f"unknown WAL op: {op}")
    return b"".join(parts)


def decode_record_body(body: bytes) -> WalOp:
    """Parse one record body back into a :class:`WalOp`."""
    reader = _Reader(body)
    seq = reader.u64()
    op = reader.u8()
    if op in (OP_PUT, OP_REMOVE_VALUE):
        store = _STORES_BY_CODE.get(reader.u8())
        if store is None:
            raise WalError("unknown store code")
        fields: tuple = (store, reader.text(), reader.text())
    elif op == OP_REMOVE_KEY:
        store = _STORES_BY_CODE.get(reader.u8())
        if store is None:
            raise WalError("unknown store code")
        fields = (store, reader.text())
    elif op == OP_CACHE_INSERT:
        fields = (reader.text(), reader.text())
    elif op == OP_MEMBER:
        fields = (reader.node_id(), reader.text(), reader.u32())
    elif op == OP_IDENTITY:
        fields = (reader.node_id(),)
    else:
        raise WalError(f"unknown WAL op: {op}")
    reader.done()
    return WalOp(seq=seq, op=op, fields=fields)


def frame_record(body: bytes) -> bytes:
    """Wrap a record body in the length + CRC32 framing."""
    if len(body) > MAX_RECORD_BYTES:
        raise WalError("record body exceeds the size limit")
    return struct.pack(">II", len(body), zlib.crc32(body)) + body


# -- write-ahead log --------------------------------------------------------


@dataclass
class ReplayReport:
    """What one log replay saw (and fixed)."""

    records: int = 0
    last_seq: int = 0
    #: Records whose seq was at or below the snapshot watermark and were
    #: therefore skipped (already folded into the snapshot).
    skipped: int = 0
    #: Records dropped for a CRC mismatch (the valid prefix is kept).
    corrupt_records: int = 0
    #: Bytes cut off the end of the file (torn tail / post-corruption).
    truncated_bytes: int = 0
    #: True when the file had to be repaired (torn or corrupt).
    repaired: bool = False


class WriteAheadLog:
    """One append-only, CRC-checksummed, length-prefixed log file.

    The file handle is unbuffered: every :meth:`append` issues the write
    syscall before returning, so an acknowledged append survives process
    death (SIGKILL) under every fsync policy.  ``fsync`` then bounds what
    a *power loss* can take.
    """

    def __init__(
        self,
        path: str,
        fsync: FsyncPolicy = FsyncPolicy(),
        start_seq: int = 0,
    ) -> None:
        self.path = path
        self.fsync_policy = fsync
        self.next_seq = start_seq + 1
        self._appends_since_sync = 0
        existing = os.path.getsize(path) if os.path.exists(path) else 0
        self._file = open(path, "ab", buffering=0)
        if existing < WAL_HEADER_BYTES:
            if existing:
                # A torn header cannot be continued; start clean.
                self._file.truncate(0)
            self._file.write(WAL_MAGIC + bytes((DURABLE_VERSION,)))
            self._sync()
        #: File size at the last fsync: the byte count a power loss is
        #: guaranteed not to touch (used by the power-loss chaos to
        #: decide where a simulated outage may tear the file).
        self.synced_size = self.size

    @property
    def size(self) -> int:
        return self._file.tell() if not self._file.closed else 0

    def append(self, op: int, fields: tuple) -> int:
        """Write one record; returns its sequence number.

        When this returns, the record is in the OS (SIGKILL-safe); it is
        on the platter according to the fsync policy.
        """
        seq = self.next_seq
        self.next_seq += 1
        frame = frame_record(encode_record_body(seq, op, fields))
        self._file.write(frame)
        counters.wal_appends += 1
        counters.wal_bytes += len(frame)
        self._appends_since_sync += 1
        policy = self.fsync_policy
        if policy.mode == "always" or (
            policy.mode == "interval"
            and self._appends_since_sync >= policy.every
        ):
            self._sync()
        return seq

    def flush(self) -> None:
        """Force everything appended so far to stable storage."""
        if not self._file.closed:
            self._sync()

    def _sync(self) -> None:
        os.fsync(self._file.fileno())
        counters.wal_fsyncs += 1
        self._appends_since_sync = 0
        self.synced_size = self._file.tell()

    def reset(self, start_seq: int) -> None:
        """Empty the log after a snapshot folded its records in."""
        self._file.truncate(WAL_HEADER_BYTES)
        self._file.seek(WAL_HEADER_BYTES)
        self._sync()
        self.next_seq = start_seq + 1

    def close(self) -> None:
        """Flush and release the file (graceful shutdown)."""
        if not self._file.closed:
            self._sync()
            self._file.close()

    def abandon(self) -> None:
        """Release the file WITHOUT flushing -- the SIGKILL path.

        Used by the cluster harness's ``kill_node`` to model a process
        that never got to say goodbye.  Appended bytes are already in
        the OS (unbuffered writes), so only a simulated *power loss* --
        :func:`tear_wal` -- additionally rolls back to the fsync line.
        """
        if not self._file.closed:
            self._file.close()


def replay_wal(
    path: str, min_seq: int = 0, repair: bool = True
) -> tuple[list[WalOp], ReplayReport]:
    """Read a log back, tolerating every form of tail damage.

    Returns the decoded operations with ``seq > min_seq`` (records at or
    below the snapshot watermark are skipped) plus a report.  A torn
    tail -- fewer bytes than the framing promises -- is truncated; a
    record whose CRC does not match is dropped with a warning and
    everything *after* it is discarded too (framing downstream of a
    corrupt length cannot be trusted), keeping the valid prefix.  With
    ``repair=False`` the file is left untouched (diagnostics).
    """
    ops: list[WalOp] = []
    report = ReplayReport(last_seq=min_seq)
    if not os.path.exists(path):
        return ops, report
    with open(path, "rb") as handle:
        data = handle.read()
    if len(data) < WAL_HEADER_BYTES or data[: len(WAL_MAGIC)] != WAL_MAGIC:
        warnings.warn(
            f"WAL {path!r} has a bad or torn header; starting empty",
            RuntimeWarning,
            stacklevel=2,
        )
        if repair and data:
            with open(path, "r+b") as handle:
                handle.truncate(0)
        report.truncated_bytes = len(data)
        report.repaired = bool(data)
        counters.wal_torn_tails += bool(data)
        return ops, report
    version = data[len(WAL_MAGIC)]
    if version != DURABLE_VERSION:
        warnings.warn(
            f"WAL {path!r} speaks version {version}, not {DURABLE_VERSION}; "
            "ignoring its records",
            RuntimeWarning,
            stacklevel=2,
        )
        return ops, report
    offset = WAL_HEADER_BYTES
    valid_end = offset
    while True:
        if offset + RECORD_PREFIX_BYTES > len(data):
            break  # torn or clean EOF; handled below
        length, crc = struct.unpack_from(">II", data, offset)
        if length > MAX_RECORD_BYTES:
            warnings.warn(
                f"WAL {path!r}: absurd record length {length} at offset "
                f"{offset}; keeping the prefix",
                RuntimeWarning,
                stacklevel=2,
            )
            report.corrupt_records += 1
            counters.wal_corrupt_records += 1
            break
        body_end = offset + RECORD_PREFIX_BYTES + length
        if body_end > len(data):
            break  # torn tail: the record never finished hitting disk
        body = data[offset + RECORD_PREFIX_BYTES:body_end]
        if zlib.crc32(body) != crc:
            warnings.warn(
                f"WAL {path!r}: CRC mismatch at offset {offset}; dropping "
                "the record and everything after it",
                RuntimeWarning,
                stacklevel=2,
            )
            report.corrupt_records += 1
            counters.wal_corrupt_records += 1
            break
        try:
            record = decode_record_body(body)
        except WalError as error:
            warnings.warn(
                f"WAL {path!r}: undecodable record at offset {offset} "
                f"({error}); keeping the prefix",
                RuntimeWarning,
                stacklevel=2,
            )
            report.corrupt_records += 1
            counters.wal_corrupt_records += 1
            break
        offset = valid_end = body_end
        if record.seq <= min_seq:
            report.skipped += 1
            continue
        ops.append(record)
        report.records += 1
        report.last_seq = max(report.last_seq, record.seq)
    if valid_end < len(data):
        report.truncated_bytes = len(data) - valid_end
        report.repaired = True
        counters.wal_torn_tails += 1
        if repair:
            with open(path, "r+b") as handle:
                handle.truncate(valid_end)
    counters.wal_records_replayed += report.records
    return ops, report


def tear_wal(path: str, synced_size: int) -> int:
    """Simulate a power loss: tear the log mid-write.

    Everything up to ``synced_size`` (the last fsync line) survives; of
    the unsynced tail, roughly half is kept -- usually cutting the final
    record in two, which is exactly the torn tail recovery must handle.
    Returns the number of bytes torn off.
    """
    size = os.path.getsize(path) if os.path.exists(path) else 0
    if size <= synced_size:
        return 0
    keep = synced_size + (size - synced_size) // 2
    with open(path, "r+b") as handle:
        handle.truncate(keep)
    return size - keep


# -- snapshots --------------------------------------------------------------


@dataclass
class SnapshotState:
    """The materialized node state a snapshot (and recovery) carries."""

    node_id: Optional[int] = None
    #: Sequence number of the last WAL record folded into this state.
    wal_seq: int = 0
    #: Membership view: node id -> (host, port).
    peers: dict[int, tuple[str, int]] = field(default_factory=dict)
    #: Physical store contents: label -> key -> values (insertion order).
    stores: dict[str, dict[str, list[str]]] = field(
        default_factory=lambda: {"index": {}, "file": {}}
    )
    #: Shortcut cache contents: query key -> msd keys (insertion order).
    cache: dict[str, list[str]] = field(default_factory=dict)

    def apply(self, record: WalOp) -> None:
        """Fold one log record into the state (replay semantics).

        Idempotent by construction: re-applying an already-applied
        record changes nothing, which is what makes double replay after
        repeated restarts safe.
        """
        self.wal_seq = max(self.wal_seq, record.seq)
        if record.op == OP_PUT:
            store, key, value = record.fields
            bucket = self.stores[store].setdefault(key, [])
            if value not in bucket:
                bucket.append(value)
        elif record.op == OP_REMOVE_VALUE:
            store, key, value = record.fields
            bucket = self.stores[store].get(key)
            if bucket and value in bucket:
                bucket.remove(value)
                if not bucket:
                    del self.stores[store][key]
        elif record.op == OP_REMOVE_KEY:
            store, key = record.fields
            self.stores[store].pop(key, None)
        elif record.op == OP_CACHE_INSERT:
            query_key, msd_key = record.fields
            targets = self.cache.setdefault(query_key, [])
            if msd_key not in targets:
                targets.append(msd_key)
        elif record.op == OP_MEMBER:
            node_id, host, port = record.fields
            self.peers[node_id] = (host, port)
        elif record.op == OP_IDENTITY:
            (self.node_id,) = record.fields

    def entries(self, store: str) -> list[tuple[str, str]]:
        """Flat (key, value) pairs of one store, in stored order."""
        return [
            (key, value)
            for key, values in self.stores[store].items()
            for value in values
        ]

    def total_entries(self) -> int:
        """Count of stored (key, value) entries across both stores."""
        return sum(
            len(values)
            for store in self.stores.values()
            for values in store.values()
        )


def _encode_snapshot_body(state: SnapshotState) -> bytes:
    parts = [struct.pack(">Q", state.wal_seq)]
    parts.append(struct.pack(">B", 1 if state.node_id is not None else 0))
    if state.node_id is not None:
        parts.append(_pack_id(state.node_id))
    parts.append(struct.pack(">I", len(state.peers)))
    for node_id, (host, port) in sorted(state.peers.items()):
        parts.append(_pack_id(node_id))
        parts.append(_pack_text(host))
        parts.append(struct.pack(">I", port))
    for label in ("index", "file"):
        store = state.stores[label]
        parts.append(struct.pack(">I", len(store)))
        for key, values in store.items():
            parts.append(_pack_text(key))
            parts.append(struct.pack(">I", len(values)))
            for value in values:
                parts.append(_pack_text(value))
    parts.append(struct.pack(">I", len(state.cache)))
    for query_key, targets in state.cache.items():
        parts.append(_pack_text(query_key))
        parts.append(struct.pack(">I", len(targets)))
        for target in targets:
            parts.append(_pack_text(target))
    return b"".join(parts)


def _decode_snapshot_body(body: bytes) -> SnapshotState:
    reader = _Reader(body)
    state = SnapshotState(wal_seq=reader.u64())
    if reader.u8():
        state.node_id = reader.node_id()
    for _ in range(reader.u32()):
        node_id = reader.node_id()
        host = reader.text()
        port = reader.u32()
        state.peers[node_id] = (host, port)
    for label in ("index", "file"):
        store = state.stores[label]
        for _ in range(reader.u32()):
            key = reader.text()
            store[key] = [reader.text() for _ in range(reader.u32())]
    for _ in range(reader.u32()):
        query_key = reader.text()
        state.cache[query_key] = [
            reader.text() for _ in range(reader.u32())
        ]
    reader.done()
    return state


def write_snapshot(path: str, state: SnapshotState) -> int:
    """Atomically persist a snapshot; returns the bytes written.

    The bytes go to ``<path>.tmp`` first, are fsynced, and only then
    renamed over ``path`` -- a crash at any instant leaves either the
    old snapshot or the new one, never a half-written file under the
    real name.
    """
    body = _encode_snapshot_body(state)
    blob = (
        SNAPSHOT_MAGIC
        + bytes((DURABLE_VERSION,))
        + struct.pack(">I", zlib.crc32(body))
        + body
    )
    tmp = path + ".tmp"
    with open(tmp, "wb") as handle:
        handle.write(blob)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    directory = os.path.dirname(os.path.abspath(path))
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        dir_fd = -1
    if dir_fd >= 0:
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    counters.wal_snapshots += 1
    return len(blob)


def load_snapshot(path: str) -> Optional[SnapshotState]:
    """Read a snapshot back; None (with a warning) when missing/corrupt."""
    if not os.path.exists(path):
        return None
    with open(path, "rb") as handle:
        blob = handle.read()
    prefix = len(SNAPSHOT_MAGIC) + 1 + 4
    if len(blob) < prefix or blob[: len(SNAPSHOT_MAGIC)] != SNAPSHOT_MAGIC:
        warnings.warn(
            f"snapshot {path!r} has a bad header; ignoring it",
            RuntimeWarning,
            stacklevel=2,
        )
        return None
    if blob[len(SNAPSHOT_MAGIC)] != DURABLE_VERSION:
        warnings.warn(
            f"snapshot {path!r} has an unsupported version; ignoring it",
            RuntimeWarning,
            stacklevel=2,
        )
        return None
    (crc,) = struct.unpack_from(">I", blob, len(SNAPSHOT_MAGIC) + 1)
    body = blob[prefix:]
    if zlib.crc32(body) != crc:
        warnings.warn(
            f"snapshot {path!r} fails its checksum; ignoring it",
            RuntimeWarning,
            stacklevel=2,
        )
        return None
    try:
        return _decode_snapshot_body(body)
    except WalError as error:
        warnings.warn(
            f"snapshot {path!r} is undecodable ({error}); ignoring it",
            RuntimeWarning,
            stacklevel=2,
        )
        return None


# -- one node's durable state ----------------------------------------------


@dataclass
class RecoveryReport:
    """What one :class:`DurableNodeState` recovery found."""

    #: True when any persisted state existed in the data dir.
    recovered: bool = False
    snapshot_loaded: bool = False
    index_entries: int = 0
    file_entries: int = 0
    cache_entries: int = 0
    peers: int = 0
    wal_records: int = 0
    corrupt_records: int = 0
    truncated_bytes: int = 0
    replay_ms: float = 0.0


class DurableNodeState:
    """One node's data directory: WAL + snapshot + materialized state.

    Construction *is* recovery: the snapshot (if any) is loaded, the log
    tail replayed (torn tails truncated, corrupt records skipped with a
    warning), and the log reopened for appending.  The resulting
    :attr:`state` is what the owner re-applies to its in-memory stores;
    :attr:`report` says how much came back and how long replay took.

    The instance then implements the storage-journal protocol
    (``record_put`` / ``record_remove_value`` / ``record_remove_key`` /
    ``record_cache_insert`` / ``record_member`` / ``record_drop_node``),
    so it plugs directly into
    :meth:`repro.storage.store.DHTStorage.attach_journal` and the index
    service's cache-journal hook.  Every journaled operation also
    updates the materialized state, which is what periodic compaction
    snapshots.

    Layout of ``data_dir``::

        wal.log       append-only record log (this module's framing)
        snapshot.bin  latest compacting snapshot (atomic rename)
    """

    WAL_NAME = "wal.log"
    SNAPSHOT_NAME = "snapshot.bin"

    def __init__(
        self,
        data_dir: str,
        *,
        fsync: str | FsyncPolicy = "interval",
        snapshot_every: int = 8192,
        node_scope: Optional[int] = None,
    ) -> None:
        """``snapshot_every`` bounds the log: after that many appended
        records a compacting snapshot runs and resets it.  ``node_scope``
        restricts the journal to one node's operations (a daemon owns
        exactly one node; the storage layer passes the writing node with
        every journal call)."""
        self.data_dir = data_dir
        self.node_scope = node_scope
        if snapshot_every < 1:
            raise WalError("snapshot_every must be >= 1")
        self.snapshot_every = snapshot_every
        policy = (
            fsync if isinstance(fsync, FsyncPolicy) else FsyncPolicy.parse(fsync)
        )
        os.makedirs(data_dir, exist_ok=True)
        self.wal_path = os.path.join(data_dir, self.WAL_NAME)
        self.snapshot_path = os.path.join(data_dir, self.SNAPSHOT_NAME)
        started = time.perf_counter()
        snapshot = load_snapshot(self.snapshot_path)
        self.state = snapshot if snapshot is not None else SnapshotState()
        ops, replay = replay_wal(self.wal_path, min_seq=self.state.wal_seq)
        for record in ops:
            self.state.apply(record)
        counters.wal_recoveries += 1
        self.report = RecoveryReport(
            recovered=(
                snapshot is not None
                or replay.records > 0
                or replay.skipped > 0
            ),
            snapshot_loaded=snapshot is not None,
            index_entries=sum(
                len(values) for values in self.state.stores["index"].values()
            ),
            file_entries=sum(
                len(values) for values in self.state.stores["file"].values()
            ),
            cache_entries=sum(
                len(targets) for targets in self.state.cache.values()
            ),
            peers=len(self.state.peers),
            wal_records=replay.records,
            corrupt_records=replay.corrupt_records,
            truncated_bytes=replay.truncated_bytes,
            replay_ms=(time.perf_counter() - started) * 1000.0,
        )
        self.wal = WriteAheadLog(
            self.wal_path, policy, start_seq=max(self.state.wal_seq, replay.last_seq)
        )
        self._records_since_snapshot = 0
        #: True while recovered state is being re-applied to the stores:
        #: journal calls are ignored (the records are already on disk).
        self.replaying = False

    # -- journal protocol ----------------------------------------------------

    def _scoped(self, node: Optional[int]) -> bool:
        """Whether an operation on ``node`` belongs in this journal."""
        if self.replaying:
            return False
        return (
            self.node_scope is None
            or node is None
            or node == self.node_scope
        )

    def _append(self, op: int, fields: tuple) -> None:
        self.wal.append(op, fields)
        self.state.apply(
            WalOp(seq=self.wal.next_seq - 1, op=op, fields=fields)
        )
        self._records_since_snapshot += 1
        if self._records_since_snapshot >= self.snapshot_every:
            self.compact()

    def record_put(self, node: int, store: str, key: str, value: str) -> None:
        """Journal one replica placement on ``node``."""
        if self._scoped(node):
            self._append(OP_PUT, (store, key, value))

    def record_remove_value(
        self, node: int, store: str, key: str, value: str
    ) -> None:
        """Journal one value removed from ``key`` on ``node``."""
        if self._scoped(node):
            self._append(OP_REMOVE_VALUE, (store, key, value))

    def record_remove_key(self, node: int, store: str, key: str) -> None:
        """Journal a whole key dropped from ``node``."""
        if self._scoped(node):
            self._append(OP_REMOVE_KEY, (store, key))

    def record_cache_insert(
        self, node: int, query_key: str, msd_key: str
    ) -> None:
        """Journal one cache shortcut created on ``node``."""
        if self._scoped(node):
            self._append(OP_CACHE_INSERT, (query_key, msd_key))

    def record_member(self, node_id: int, host: str, port: int) -> None:
        """Journal one membership entry (deduplicated against state)."""
        if not self.replaying and self.state.peers.get(node_id) != (host, port):
            self._append(OP_MEMBER, (node_id, host, port))

    def record_identity(self, node_id: int) -> None:
        """Journal this node's own ring identity (written once)."""
        if not self.replaying and self.state.node_id != node_id:
            self._append(OP_IDENTITY, (node_id,))

    def record_drop_node(self, node: int) -> None:
        """A node's copies are gone (departure): nothing to keep here.

        A single-node journal only ever sees its own node; dropping it
        means the daemon itself is departing, which the owner handles by
        deleting the data dir -- so this is a no-op at this layer.
        """

    # -- lifecycle -----------------------------------------------------------

    def flush(self) -> None:
        """Fsync the log (the SIGTERM / graceful-shutdown path)."""
        self.wal.flush()

    def compact(self) -> int:
        """Snapshot the materialized state and reset the log."""
        written = write_snapshot(self.snapshot_path, self.state)
        self.wal.reset(self.state.wal_seq)
        self._records_since_snapshot = 0
        return written

    def close(self) -> None:
        """Graceful shutdown: flush and release the log."""
        self.wal.close()

    def abandon(self) -> None:
        """SIGKILL semantics: drop the handle without flushing."""
        self.wal.abandon()


# -- per-node journal fan-out (simulation) ----------------------------------


class NodeWalSet:
    """One :class:`DurableNodeState` per node, behind one journal surface.

    The simulator's stores host *every* node, so its journal must route
    each operation to the owning node's log.  Logs are created lazily on
    first write (``root/node-<id:x>/``); a node that never stores
    anything never touches the disk.  Restart chaos then works on one
    victim at a time: :meth:`kill` (clean SIGKILL) or :meth:`power_loss`
    (kill mid-write: the unsynced log tail is torn), followed by
    :meth:`recover`, which replays snapshot + log tail and reopens the
    log for the node's next life.
    """

    def __init__(self, root: str, fsync: str | FsyncPolicy = "interval") -> None:
        self.root = root
        self.fsync = (
            fsync if isinstance(fsync, FsyncPolicy) else FsyncPolicy.parse(fsync)
        )
        os.makedirs(root, exist_ok=True)
        self._states: dict[int, DurableNodeState] = {}
        #: Nodes whose journal was killed and not yet recovered: writes
        #: during the outage window would be lost in reality, and the
        #: storage layer must not journal on a dead node's behalf.
        self._down: set[int] = set()

    def node_dir(self, node: int) -> str:
        """The data directory holding ``node``'s WAL and snapshot."""
        return os.path.join(self.root, f"node-{node:x}")

    def _state_for(self, node: int) -> Optional[DurableNodeState]:
        if node in self._down:
            return None
        state = self._states.get(node)
        if state is None:
            state = DurableNodeState(
                self.node_dir(node), fsync=self.fsync, node_scope=node
            )
            self._states[node] = state
        return state

    # -- journal protocol (routing) -----------------------------------------

    def record_put(self, node: int, store: str, key: str, value: str) -> None:
        """Route one replica placement to ``node``'s journal."""
        state = self._state_for(node)
        if state is not None:
            state.record_put(node, store, key, value)

    def record_remove_value(
        self, node: int, store: str, key: str, value: str
    ) -> None:
        """Route one value removal to ``node``'s journal."""
        state = self._state_for(node)
        if state is not None:
            state.record_remove_value(node, store, key, value)

    def record_remove_key(self, node: int, store: str, key: str) -> None:
        """Route a whole-key drop to ``node``'s journal."""
        state = self._state_for(node)
        if state is not None:
            state.record_remove_key(node, store, key)

    def record_cache_insert(
        self, node: int, query_key: str, msd_key: str
    ) -> None:
        """Route one cache shortcut to ``node``'s journal."""
        state = self._state_for(node)
        if state is not None:
            state.record_cache_insert(node, query_key, msd_key)

    def record_drop_node(self, node: int) -> None:
        """A node departed for good: its durable state goes with it."""
        state = self._states.pop(node, None)
        if state is not None:
            state.abandon()
            for name in (DurableNodeState.WAL_NAME, DurableNodeState.SNAPSHOT_NAME):
                path = os.path.join(self.node_dir(node), name)
                if os.path.exists(path):
                    os.remove(path)

    # -- restart chaos -------------------------------------------------------

    def kill(self, node: int) -> None:
        """SIGKILL the node's journal: no flush, handle dropped."""
        state = self._states.pop(node, None)
        if state is not None:
            state.abandon()
        self._down.add(node)

    def power_loss(self, node: int) -> int:
        """Kill mid-write: additionally tear the unsynced log tail.

        Returns the number of bytes the outage destroyed.
        """
        state = self._states.pop(node, None)
        synced = state.wal.synced_size if state is not None else 0
        if state is not None:
            state.abandon()
        self._down.add(node)
        wal_path = os.path.join(self.node_dir(node), DurableNodeState.WAL_NAME)
        return tear_wal(wal_path, synced)

    def recover(self, node: int) -> DurableNodeState:
        """Bring a killed node's journal back: replay and reopen."""
        self._down.discard(node)
        state = DurableNodeState(
            self.node_dir(node), fsync=self.fsync, node_scope=node
        )
        self._states[node] = state
        return state

    def close(self) -> None:
        """Flush and release every node's journal."""
        for state in self._states.values():
            state.close()
        self._states.clear()
