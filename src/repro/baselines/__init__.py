"""Baseline comparators from the paper's related work.

The paper positions its key-to-key indexes against INS/Twine
(Balazinska, Balakrishnan & Karger, Pervasive 2002), which resolves
intentional names by *replicating complete resource descriptions* on
every resolver responsible for a "strand" of the description:

    "The resource and device information are stored redundantly on all
    peer resolvers that correspond to the numeric keys.  ...  Unlike
    Twine, we do not replicate data at multiple locations; we rather
    provide a key-to-key service."  (Section II)

:class:`repro.baselines.twine.TwineResolver` implements that strategy
over the same DHT storage substrate, so the storage/traffic/interaction
trade-off the paper argues qualitatively can be measured.
"""

from repro.baselines.twine import TwineResolver, TwineWorkloadResult

__all__ = ["TwineResolver", "TwineWorkloadResult"]
