"""INS/Twine-style strand replication over a DHT (baseline).

INS/Twine extracts *strands* -- subsequences of attribute-value pairs --
from each semi-structured resource description, hashes every strand to a
numeric key, and stores the **complete description** on the resolver
node of every strand.  A query is sent to the resolver of its longest
strand, which filters its local descriptions and returns the matches.

Mapped onto this repository's field model, a strand is a combination of
up to ``max_strand_fields`` queryable field values, serialized in the
same canonical form the index layer hashes.  The contrast with the
paper's approach is then direct and measurable on identical substrates
and workloads:

==============================  ================  ======================
                                 key-to-key index  Twine replication
==============================  ================  ======================
stored under a broad key         target *queries*  full descriptions
copies of a record's data        1 (at the MSD)    one per strand
lookup interactions              2..4 (chain)      2 (resolver + file)
query shapes answerable          indexed classes   every strand shape
==============================  ================  ======================
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable

from repro.core.fields import Record, Schema
from repro.core.query import FieldQuery
from repro.net.message import Message, MessageKind
from repro.net.transport import SimulatedTransport
from repro.storage.store import DHTStorage


@dataclass
class TwineWorkloadResult:
    """Aggregate measurements of a Twine workload run."""

    searches: int = 0
    found: int = 0
    total_interactions: int = 0
    normal_bytes_total: int = 0

    @property
    def avg_interactions(self) -> float:
        return self.total_interactions / max(1, self.searches)

    @property
    def normal_bytes_per_query(self) -> float:
        return self.normal_bytes_total / max(1, self.searches)


class TwineResolver:
    """Strand-replicated resource discovery over a DHT substrate."""

    def __init__(
        self,
        schema: Schema,
        description_store: DHTStorage,
        file_store: DHTStorage,
        transport: SimulatedTransport,
        max_strand_fields: int = 2,
    ) -> None:
        if max_strand_fields < 1:
            raise ValueError("strands need at least one field")
        self.schema = schema
        self.description_store = description_store
        self.file_store = file_store
        self.transport = transport
        self.max_strand_fields = max_strand_fields
        self._registered: set[str] = set()
        self.register_nodes()

    # -- resolver endpoints ------------------------------------------------------

    @staticmethod
    def endpoint_name(node: int) -> str:
        """Transport endpoint name of a resolver node."""
        return f"resolver:{node:x}"

    def register_nodes(self) -> None:
        """Create transport endpoints for all substrate nodes."""
        for node in self.description_store.protocol.node_ids:
            name = self.endpoint_name(node)
            if name not in self._registered:
                self.transport.register(name, self._make_handler(node))
                self._registered.add(name)

    def _make_handler(self, node: int):
        def handle(message: Message):
            if message.kind is MessageKind.QUERY_REQUEST:
                (strand_key,) = message.payload
                descriptions = self.description_store.values_at(node, strand_key)
                return message.reply(MessageKind.QUERY_RESPONSE, descriptions)
            if message.kind is MessageKind.FILE_REQUEST:
                (msd_key,) = message.payload
                stored = self.file_store.values_at(node, msd_key)
                return message.reply(
                    MessageKind.FILE_RESPONSE, (msd_key,) if stored else ()
                )
            return None

        return handle

    # -- strand extraction ----------------------------------------------------------

    def strand_keysets(self) -> list[tuple[str, ...]]:
        """Every field combination that forms a strand."""
        fields = self.schema.field_names
        keysets: list[tuple[str, ...]] = []
        for size in range(1, self.max_strand_fields + 1):
            keysets.extend(itertools.combinations(fields, size))
        return keysets

    def strands_for(self, record: Record) -> list[FieldQuery]:
        """The strand queries of one record."""
        return [
            FieldQuery.of_record(record, keyset)
            for keyset in self.strand_keysets()
        ]

    # -- operations --------------------------------------------------------------------

    def insert_record(self, record: Record, file_payload: str = "file") -> None:
        """Replicate the full description on every strand resolver."""
        msd = FieldQuery.msd_of(record)
        description = msd.key()  # carries every field of the record
        self.file_store.put(msd.key(), file_payload)
        for strand in self.strands_for(record):
            self.description_store.put(strand.key(), description)

    def lookup(self, query: FieldQuery, target: Record, user: str) -> tuple[bool, int]:
        """Resolve a query and fetch the target's file.

        Returns ``(found, interactions)``.  One resolver round trip
        returns the full matching descriptions; selecting the target's
        and fetching its file costs one more interaction -- Twine
        lookups are flat by construction.
        """
        if not self.transport.is_registered(user):
            self.transport.register(user, lambda message: None)
        strand_key = query.key()
        node = self.description_store.responsible_nodes(strand_key)[0]
        response = self.transport.send(
            Message(
                kind=MessageKind.QUERY_REQUEST,
                source=user,
                destination=self.endpoint_name(node),
                payload=(strand_key,),
            )
        )
        self.transport.meter.touch_node(self.endpoint_name(node))
        interactions = 1
        assert response is not None
        target_msd = FieldQuery.msd_of(target).key()
        if target_msd not in response.payload:
            return False, interactions
        file_node = self.file_store.responsible_nodes(target_msd)[0]
        file_response = self.transport.send(
            Message(
                kind=MessageKind.FILE_REQUEST,
                source=user,
                destination=self.endpoint_name(file_node),
                payload=(target_msd,),
            )
        )
        self.transport.meter.touch_node(self.endpoint_name(file_node))
        interactions += 1
        assert file_response is not None
        return bool(file_response.payload), interactions

    def run_workload(self, workload: Iterable, user: str = "user:twine") -> TwineWorkloadResult:
        """Feed generated queries (see :mod:`repro.workload.querygen`)."""
        result = TwineWorkloadResult()
        meter = self.transport.meter
        for item in workload:
            query = item.query
            # Queries broader than the longest strand cannot be resolved
            # directly; Twine sends them to the longest available strand,
            # which for our field queries is the query itself when small
            # enough, else its largest strand-sized restriction.
            if len(query.fields) > self.max_strand_fields:
                fields = sorted(query.fields)[: self.max_strand_fields]
                query = query.restrict(fields)
            found, interactions = self.lookup(query, item.target, user)
            meter.end_query()
            result.searches += 1
            result.found += int(found)
            result.total_interactions += interactions
        result.normal_bytes_total = meter.normal_bytes
        return result

    # -- statistics ------------------------------------------------------------------------

    def storage_bytes(self) -> int:
        """Bytes of replicated description data (excludes files)."""
        return self.description_store.storage_bytes()

    def copies_per_record(self) -> int:
        """How many replicas of a record's description exist."""
        return len(self.strand_keysets())
