"""Cheap, always-on performance counters for the query-algebra hot path.

The paper's evaluation pushes 50,000 queries through the index hierarchy
(Section V); every one of them parses query text, normalizes it, and runs
covering checks.  This module counts those operations -- and the cache
hits that avoid them -- so that performance work on the hot path can be
*proved* rather than eyeballed.

Counters are plain integer attributes on a module-level singleton,
incremented inline by the instrumented layers (:mod:`repro.xmlq`,
:mod:`repro.core`).  Incrementing an int attribute costs tens of
nanoseconds, so the counters stay on in production and in every
simulation run; :meth:`PerfCounters.snapshot` and :func:`delta` turn them
into dictionaries for reports, benchmark JSON dumps, and regression
guards.

Invariants (enforced by tests):

- every counter is monotonically non-decreasing between resets;
- for each cached operation, ``hits + misses == calls``.
"""

from __future__ import annotations

#: (calls, hits, misses) attribute triples of every cached operation.
CACHE_TRIPLES: tuple[tuple[str, str, str], ...] = (
    ("normalize_calls", "normalize_cache_hits", "normalize_cache_misses"),
    ("pattern_calls", "pattern_cache_hits", "pattern_cache_misses"),
    ("covers_calls", "covers_cache_hits", "covers_cache_misses"),
    (
        "field_parse_calls",
        "field_parse_cache_hits",
        "field_parse_cache_misses",
    ),
)


class PerfCounters:
    """Hot-path operation counters; one process-wide instance lives below."""

    __slots__ = (
        # parsing / normalization
        "xpath_parses",
        "normalize_calls",
        "normalize_cache_hits",
        "normalize_cache_misses",
        # pattern interning
        "pattern_calls",
        "pattern_cache_hits",
        "pattern_cache_misses",
        # covering
        "covers_calls",
        "covers_cache_hits",
        "covers_cache_misses",
        "covers_fingerprint_rejections",
        "homomorphism_runs",
        "homomorphism_node_visits",
        # field-query parsing (core layer)
        "field_parse_calls",
        "field_parse_cache_hits",
        "field_parse_cache_misses",
        # partial-order graph maintenance
        "pog_adds",
        "pog_covers_checks",
        "pog_prefilter_skips",
        "pog_hasse_edge_updates",
        # service / engine traffic
        "service_queries",
        "service_file_fetches",
        "engine_searches",
        "engine_generalizations",
        # predicate queries (repro.core.predicates / repro.core.trie)
        "engine_specializations",
        "trie_walks",
        # fault injection (repro.net.faults)
        "fault_drops",
        "fault_duplicates",
        "fault_latency_ms",
        "fault_crashed_sends",
        # failure-aware lookups (engine retries, service replica failover)
        "engine_retries",
        "engine_failed_sends",
        "engine_gave_up",
        "service_failovers",
        # storage failover and churn repair
        "storage_failovers",
        "storage_repair_keys",
        "storage_repair_bytes",
        # durable node state (repro.storage.durable)
        "wal_appends",
        "wal_bytes",
        "wal_fsyncs",
        "wal_snapshots",
        "wal_recoveries",
        "wal_records_replayed",
        "wal_torn_tails",
        "wal_corrupt_records",
        # restart / power-loss chaos (repro.net.faults + repro.sim)
        "fault_restarts",
        "fault_power_losses",
        # real wire transport (repro.rpc)
        "rpc_requests",
        "rpc_responses",
        "rpc_retries",
        "rpc_timeouts",
        "rpc_udp_frames",
        "rpc_tcp_frames",
        "rpc_tcp_connects",
        "rpc_tcp_reuses",
        "rpc_oversized_fallbacks",
        "rpc_codec_errors",
        "rpc_bytes_sent",
        "rpc_bytes_received",
        "rpc_batches",
        "rpc_batched_messages",
        # security layer (repro.sec + repro.net.adversary)
        "sec_sign_calls",
        "sec_verify_calls",
        "sec_verify_failures",
        "sec_poisoned_answers",
        "sec_poisoned_results",
        "sec_forged_referrals",
        "sec_eclipse_drops",
        "sec_sybil_joins",
        "sec_trust_updates",
        "sec_entry_verify_failures",
        "sec_contradictions",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Zero every counter (used by benchmarks and tests)."""
        for name in self.__slots__:
            setattr(self, name, 0)

    def snapshot(self) -> dict[str, int]:
        """Current counter values as a plain dict (JSON-serializable)."""
        return {name: getattr(self, name) for name in self.__slots__}

    def cache_hit_rates(self) -> dict[str, float]:
        """Hit rate per cached operation, keyed by the calls counter name."""
        rates: dict[str, float] = {}
        for calls_name, hits_name, _ in CACHE_TRIPLES:
            calls = getattr(self, calls_name)
            if calls:
                rates[calls_name] = getattr(self, hits_name) / calls
        return rates

    def __repr__(self) -> str:
        busy = {k: v for k, v in self.snapshot().items() if v}
        return f"PerfCounters({busy})"


#: The process-wide counter instance every instrumented layer increments.
counters = PerfCounters()


def snapshot() -> dict[str, int]:
    """Shorthand for ``counters.snapshot()``."""
    return counters.snapshot()


def reset() -> None:
    """Shorthand for ``counters.reset()``."""
    counters.reset()


def delta(before: dict[str, int], after: dict[str, int]) -> dict[str, int]:
    """Counter increments between two snapshots (missing keys count as 0)."""
    return {name: after.get(name, 0) - before.get(name, 0) for name in after}
