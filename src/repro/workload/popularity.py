"""Popularity models: power laws over popularity ranks.

Section V-C of the paper observes that author and article request
probabilities in the BibFinder, NetBib, and CiteSeer logs all roughly
follow power laws (Figure 9), fits the BibFinder author distribution by
least squares, and -- after truncating the collection to 10,000 articles
-- arrives at the complementary cumulative distribution function
(Figure 10)::

    F̄(i) = 1 - F(i) = 1 - 0.063 * i**0.3

where ``i`` is the article's popularity rank.  :class:`PowerLawPopularity`
implements exactly that family (CDF ``c * i**a``), with the paper's
fitted constants as defaults; :class:`ZipfPopularity` provides the
classical ``p_i ∝ 1/i**s`` family used for auxiliary distributions
(author productivity, venue sizes).

Sampling uses inverse-transform on the closed-form CDF, so draws are
O(1) and deterministic given the caller's random generator.
"""

from __future__ import annotations

import math
import random
from typing import Optional

#: Coefficient of the paper's fitted CDF, Section V-C.
PAPER_CCDF_COEFFICIENT = 0.063
#: Exponent of the paper's fitted CDF, Section V-C.
PAPER_CCDF_EXPONENT = 0.3


class PowerLawPopularity:
    """Rank popularity with CDF ``F(i) = c * i**a`` over ranks 1..n.

    With the paper's constants (c=0.063, a=0.3) and n=10,000 articles,
    ``F(n)`` is approximately 0.999: the paper notes that the articles
    beyond the 10,000th "would be requested so seldom that we can
    effectively neglect their existence".  The residual mass is assigned
    to rank n so the distribution sums to one.
    """

    def __init__(
        self,
        population: int,
        coefficient: float = PAPER_CCDF_COEFFICIENT,
        exponent: float = PAPER_CCDF_EXPONENT,
    ) -> None:
        if population < 1:
            raise ValueError("population must be at least 1")
        if coefficient <= 0 or exponent <= 0:
            raise ValueError("coefficient and exponent must be positive")
        if coefficient * population**exponent < 1.0 - 1e-9:
            raise ValueError(
                "CDF never reaches 1 on this population; increase the "
                "coefficient, the exponent, or the population"
            )
        self.population = population
        self.coefficient = coefficient
        self.exponent = exponent

    @classmethod
    def for_population(
        cls, population: int, exponent: float = PAPER_CCDF_EXPONENT
    ) -> "PowerLawPopularity":
        """The paper's family adapted to a finite population.

        Section V-C: "after adapting the parameters of the power-law
        distribution to match the finite population of articles".  Fixing
        ``F(n) = 1`` gives ``c = n**-a``; at n=10,000 and a=0.3 this is
        0.0631 -- the paper's published 0.063.
        """
        return cls(population, population ** (-exponent), exponent)

    def cdf(self, rank: int) -> float:
        """P(popularity rank <= rank)."""
        self._check_rank(rank)
        if rank >= self.population:
            return 1.0
        return min(1.0, self.coefficient * rank**self.exponent)

    def ccdf(self, rank: int) -> float:
        """The paper's Figure 10 curve: ``1 - F(rank)``."""
        return 1.0 - self.cdf(rank)

    def probability(self, rank: int) -> float:
        """Probability mass of one rank."""
        self._check_rank(rank)
        if rank == 1:
            return self.cdf(1)
        return self.cdf(rank) - self.cdf(rank - 1)

    def sample(self, rng: random.Random) -> int:
        """Draw a rank by inverse-transform sampling (1 = most popular)."""
        u = rng.random()
        if self.population > 1 and u >= self.cdf(self.population - 1):
            # Residual mass beyond the analytic CDF belongs to the tail.
            return self.population
        raw = (u / self.coefficient) ** (1.0 / self.exponent)
        rank = max(1, math.ceil(raw))
        return min(rank, self.population)

    def _check_rank(self, rank: int) -> None:
        if not 1 <= rank <= self.population:
            raise ValueError(
                f"rank {rank} outside population [1, {self.population}]"
            )

    def __repr__(self) -> str:
        return (
            f"PowerLawPopularity(n={self.population}, "
            f"c={self.coefficient}, a={self.exponent})"
        )


class ZipfPopularity:
    """Classical Zipf distribution: ``p_i ∝ 1 / i**s`` over ranks 1..n.

    Used for the skewed auxiliary populations of the synthetic corpus
    (how many articles an author writes, how large a venue is) -- the
    phenomena Zipf's law was coined for [21 in the paper].
    """

    def __init__(self, population: int, s: float = 1.0) -> None:
        if population < 1:
            raise ValueError("population must be at least 1")
        if s <= 0:
            raise ValueError("exponent must be positive")
        self.population = population
        self.s = s
        weights = [1.0 / (rank**s) for rank in range(1, population + 1)]
        total = sum(weights)
        self._cumulative: list[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            self._cumulative.append(acc)
        self._cumulative[-1] = 1.0

    def probability(self, rank: int) -> float:
        """Probability mass of one rank under the Zipf model."""
        if not 1 <= rank <= self.population:
            raise ValueError(f"rank {rank} outside [1, {self.population}]")
        previous = self._cumulative[rank - 2] if rank > 1 else 0.0
        return self._cumulative[rank - 1] - previous

    def cdf(self, rank: int) -> float:
        """P(rank' <= rank) under the Zipf model."""
        if not 1 <= rank <= self.population:
            raise ValueError(f"rank {rank} outside [1, {self.population}]")
        return self._cumulative[rank - 1]

    def sample(self, rng: random.Random) -> int:
        """Draw a rank by binary search on the cumulative table."""
        import bisect

        u = rng.random()
        return bisect.bisect_right(self._cumulative, u) + 1

    def __repr__(self) -> str:
        return f"ZipfPopularity(n={self.population}, s={self.s})"


def fitted_ccdf(
    population: int,
    coefficient: float = PAPER_CCDF_COEFFICIENT,
    exponent: float = PAPER_CCDF_EXPONENT,
) -> list[tuple[int, float]]:
    """The (rank, CCDF) series of Figure 10, at every rank."""
    model = PowerLawPopularity(population, coefficient, exponent)
    return [(rank, model.ccdf(rank)) for rank in range(1, population + 1)]


def empirical_rank_probabilities(samples: list[int], population: Optional[int] = None) -> list[float]:
    """Per-rank empirical request probabilities from sampled ranks.

    Returns probabilities indexed by rank-1, for comparing a sampled
    workload against the model (Figure 9 style), padded with zeros to
    ``population`` when given.
    """
    if not samples:
        raise ValueError("no samples")
    size = population if population is not None else max(samples)
    counts = [0] * size
    for rank in samples:
        if not 1 <= rank <= size:
            raise ValueError(f"sample rank {rank} outside [1, {size}]")
        counts[rank - 1] += 1
    total = len(samples)
    return [count / total for count in counts]
