"""Query traces: logged workloads and their summaries.

The paper derives its workload model from the query logs of BibFinder
(9,108 queries) and NetBib (5,924 queries).  This module provides the
trace record type for logged queries, a text serialization (one query per
line) so examples can write and re-read logs, and the summary the paper
plots in Figure 7: the distribution of query *types* (which fields each
query uses).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.workload.querygen import WorkloadQuery


@dataclass(frozen=True)
class QueryTrace:
    """One logged query: its field structure and the values used."""

    structure: tuple[str, ...]
    values: tuple[str, ...]
    target_rank: int = 0

    @classmethod
    def from_workload(cls, item: WorkloadQuery) -> "QueryTrace":
        values = tuple(item.query.value(name) or "" for name in item.structure)
        return cls(
            structure=item.structure, values=values, target_rank=item.target_rank
        )

    def to_line(self) -> str:
        """Serialize as ``rank|field=value|field=value``."""
        fields = "|".join(
            f"{name}={value}" for name, value in zip(self.structure, self.values)
        )
        return f"{self.target_rank}|{fields}"

    @classmethod
    def from_line(cls, line: str) -> "QueryTrace":
        parts = line.strip().split("|")
        if len(parts) < 2:
            raise ValueError(f"malformed trace line: {line!r}")
        rank = int(parts[0])
        structure: list[str] = []
        values: list[str] = []
        for part in parts[1:]:
            name, _, value = part.partition("=")
            if not name or not value:
                raise ValueError(f"malformed trace field: {part!r}")
            structure.append(name)
            values.append(value)
        return cls(
            structure=tuple(structure), values=tuple(values), target_rank=rank
        )


def write_trace(traces: Iterable[QueryTrace]) -> str:
    """Serialize traces to log text (one per line)."""
    return "\n".join(trace.to_line() for trace in traces) + "\n"


def read_trace(text: str) -> Iterator[QueryTrace]:
    """Parse log text produced by :func:`write_trace`."""
    for line in text.splitlines():
        if line.strip():
            yield QueryTrace.from_line(line)


def structure_distribution(
    traces: Iterable[QueryTrace],
) -> dict[tuple[str, ...], float]:
    """The Figure 7 summary: fraction of queries per query type."""
    counts: Counter[tuple[str, ...]] = Counter()
    total = 0
    for trace in traces:
        counts[trace.structure] += 1
        total += 1
    if total == 0:
        raise ValueError("no traces")
    return {structure: count / total for structure, count in counts.items()}


def format_structure_label(structure: Sequence[str]) -> str:
    """Human label matching the paper's Figure 7 axis (``/author/title``)."""
    return "".join(f"/{name}" for name in structure)
