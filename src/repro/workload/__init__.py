"""Workload generation: corpus, popularity, and query models (Section V).

The paper's workload has three ingredients, each with a module here:

- a bibliographic **corpus** (DBLP's 115,879 article entries, reduced to
  the 10,000 most popular articles for simulation) --
  :mod:`repro.workload.corpus` generates a synthetic corpus with
  realistic field cardinalities and sharing;
- an article **popularity** model fitted to BibFinder/NetBib/CiteSeer
  logs: a power law with CCDF ``1 - 0.063 * i**0.3`` over ranks --
  :mod:`repro.workload.popularity`;
- a **query structure** model taken from BibFinder's query log
  (Figure 7): author 60%, title 20%, year 10%, author+title 5%,
  author+year 5% -- :mod:`repro.workload.querygen`.

:mod:`repro.workload.trace` holds the query-trace record type and helpers
to summarize traces the way the paper's figures do.
"""

from repro.workload.corpus import CorpusConfig, SyntheticCorpus
from repro.workload.logs import (
    DerivedModels,
    LogEntry,
    LogSummary,
    derive_models,
    generate_query_log,
    parse_query_log,
    summarize_log,
)
from repro.workload.popularity import (
    PAPER_CCDF_COEFFICIENT,
    PAPER_CCDF_EXPONENT,
    PowerLawPopularity,
    ZipfPopularity,
)
from repro.workload.querygen import (
    BIBFINDER_STRUCTURE,
    QueryGenerator,
    QueryStructureModel,
    WorkloadQuery,
)
from repro.workload.trace import (
    QueryTrace,
    format_structure_label,
    read_trace,
    structure_distribution,
    write_trace,
)

__all__ = [
    "CorpusConfig",
    "SyntheticCorpus",
    "PAPER_CCDF_COEFFICIENT",
    "PAPER_CCDF_EXPONENT",
    "PowerLawPopularity",
    "ZipfPopularity",
    "BIBFINDER_STRUCTURE",
    "QueryGenerator",
    "QueryStructureModel",
    "WorkloadQuery",
    "QueryTrace",
    "format_structure_label",
    "read_trace",
    "structure_distribution",
    "write_trace",
    "DerivedModels",
    "LogEntry",
    "LogSummary",
    "derive_models",
    "generate_query_log",
    "parse_query_log",
    "summarize_log",
]
