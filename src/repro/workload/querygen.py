"""Query generation: structure model x popularity model.

Section V-C: "When constructing the query workload for the simulation, we
first choose an article according to the popularity distribution.  Then,
we select the structure of the query and assign the corresponding fields,
according to the following probabilities: author only (0.6); title only
(0.2); year only (0.1); both author and title (0.05); both author and
year (0.05)."

:data:`BIBFINDER_STRUCTURE` is that distribution;
:class:`QueryGenerator` implements the two-step draw and yields
:class:`WorkloadQuery` items pairing the broad query with the target
article the (simulated) user is actually after.

With ``predicate_mix > 0`` a fraction of the drawn queries loosen one
constraint into a predicate -- a year shape becomes a
:class:`~repro.core.predicates.Range` around the target's year, other
shapes turn their first field into a :class:`Prefix` or
:class:`Wildcard` of the target's value -- modelling users who only
partially remember what they are looking for (Section IV-C's
motivation).  ``predicate_mix = 0`` (the default) draws no extra
randomness, so exact-only workloads are bit-identical to the seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Mapping, Optional, Sequence

from repro.core.fields import Record
from repro.core.predicates import Prefix, Range, Wildcard
from repro.core.query import FieldQuery
from repro.workload.corpus import SyntheticCorpus
from repro.workload.popularity import PowerLawPopularity

#: Query-structure probabilities extracted from the BibFinder log
#: (Figure 7 / Section V-C).
BIBFINDER_STRUCTURE: dict[tuple[str, ...], float] = {
    ("author",): 0.60,
    ("title",): 0.20,
    ("year",): 0.10,
    ("author", "title"): 0.05,
    ("author", "year"): 0.05,
}


class QueryStructureModel:
    """A categorical distribution over query field combinations."""

    def __init__(
        self, probabilities: Mapping[Sequence[str], float] = BIBFINDER_STRUCTURE
    ) -> None:
        if not probabilities:
            raise ValueError("structure model needs at least one shape")
        total = sum(probabilities.values())
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"structure probabilities sum to {total}, not 1")
        self._shapes: list[tuple[str, ...]] = []
        self._cumulative: list[float] = []
        acc = 0.0
        for shape, probability in probabilities.items():
            if probability < 0:
                raise ValueError("probabilities cannot be negative")
            if probability == 0:
                continue
            acc += probability
            self._shapes.append(tuple(shape))
            self._cumulative.append(acc)
        self._cumulative[-1] = 1.0

    @property
    def shapes(self) -> list[tuple[str, ...]]:
        return list(self._shapes)

    def probability(self, shape: Sequence[str]) -> float:
        """The model's probability of one query shape (0 if absent)."""
        target = tuple(shape)
        for index, candidate in enumerate(self._shapes):
            if candidate == target:
                previous = self._cumulative[index - 1] if index else 0.0
                return self._cumulative[index] - previous
        return 0.0

    def sample(self, rng: random.Random) -> tuple[str, ...]:
        """Draw a query shape according to the model."""
        import bisect

        u = rng.random()
        index = bisect.bisect_right(self._cumulative, u)
        index = min(index, len(self._shapes) - 1)
        return self._shapes[index]


@dataclass(frozen=True)
class WorkloadQuery:
    """One generated lookup: the broad query and its intended target."""

    query: FieldQuery
    target: Record
    target_rank: int
    structure: tuple[str, ...]


class QueryGenerator:
    """Two-step workload draw: popular article, then query structure."""

    def __init__(
        self,
        corpus: SyntheticCorpus,
        popularity: Optional[PowerLawPopularity] = None,
        structure: Optional[QueryStructureModel] = None,
        seed: int = 42,
        predicate_mix: float = 0.0,
    ) -> None:
        if not 0.0 <= predicate_mix <= 1.0:
            raise ValueError(f"predicate_mix must be in [0, 1]: {predicate_mix}")
        self.predicate_mix = predicate_mix
        self.corpus = corpus
        self.popularity = popularity or PowerLawPopularity.for_population(len(corpus))
        if self.popularity.population != len(corpus):
            raise ValueError(
                "popularity population must match the corpus size "
                f"({self.popularity.population} != {len(corpus)})"
            )
        self.structure = structure or QueryStructureModel()
        self.seed = seed

    def generate(self, count: int) -> Iterator[WorkloadQuery]:
        """Yield ``count`` workload queries, deterministically in the seed."""
        rng = random.Random(self.seed)
        for _ in range(count):
            yield self._one(rng)

    def _one(self, rng: random.Random) -> WorkloadQuery:
        rank = self.popularity.sample(rng)
        target = self.corpus.record_at_rank(rank)
        shape = self.structure.sample(rng)
        constraints: dict[str, object] = {
            field_name: target[field_name] for field_name in shape
        }
        if self.predicate_mix and rng.random() < self.predicate_mix:
            constraints = self._predicated(rng, shape, target, constraints)
        query = FieldQuery(self.corpus.schema, constraints)
        return WorkloadQuery(
            query=query, target=target, target_rank=rank, structure=shape
        )

    def _predicated(
        self,
        rng: random.Random,
        shape: tuple[str, ...],
        target: Record,
        constraints: dict[str, object],
    ) -> dict[str, object]:
        """Loosen one constraint into a predicate covering the target."""
        loosened = dict(constraints)
        if "year" in shape:
            year = int(target["year"])
            loosened["year"] = Range(
                year - rng.randint(0, 5), year + rng.randint(0, 5)
            )
            return loosened
        field_name = shape[0]
        value = target[field_name]
        if len(value) >= 3 and rng.random() < 0.5:
            loosened[field_name] = Wildcard(f"{value[:2]}*{value[-1]}")
        else:
            loosened[field_name] = Prefix(value[: rng.randint(1, min(3, len(value)))])
        return loosened
