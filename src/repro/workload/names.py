"""Deterministic name, title, and venue corpora for the synthetic corpus.

The DBLP archive is not redistributable inside this reproduction, so the
corpus generator composes field values from these pools.  Values are
bare-word safe (no spaces -- multi-word values are joined with
underscores) so that every value can appear verbatim inside canonical
query text (see :mod:`repro.xmlq.lexer`).
"""

from __future__ import annotations

FIRST_NAMES: tuple[str, ...] = (
    "John", "Alan", "Maria", "Wei", "Anna", "David", "Elena", "Marc",
    "Laura", "James", "Sofia", "Pedro", "Yuki", "Nina", "Omar", "Lucia",
    "Hans", "Ivan", "Mei", "Paul", "Rosa", "Erik", "Dana", "Igor",
    "Clara", "Tomas", "Ada", "Raj", "Lena", "Carl", "Vera", "Samir",
    "Ines", "Jorge", "Eva", "Petr", "Aiko", "Luis", "Marta", "Kofi",
    "Olga", "Timo", "Rita", "Sven", "Noor", "Emil", "Zoe", "Viktor",
    "Amara", "Henri", "Greta", "Mateo", "Lin", "Frida", "Oscar", "Yara",
    "Bruno", "Alice", "Dmitri", "Chloe", "Arjun", "Maya", "Felix", "Iris",
)

LAST_NAMES: tuple[str, ...] = (
    "Smith", "Doe", "Garcia", "Chen", "Muller", "Rossi", "Kim", "Dubois",
    "Silva", "Novak", "Tanaka", "Kumar", "Ivanov", "Schmidt", "Moreau",
    "Costa", "Haddad", "Olsen", "Peeters", "Kowalski", "Nagy", "Fischer",
    "Santos", "Berg", "Leroy", "Ricci", "Park", "Vogel", "Mendez",
    "Popov", "Sato", "Patel", "Keller", "Fontaine", "Almeida", "Dvorak",
    "Yamamoto", "Rao", "Sokolov", "Weber", "Girard", "Pereira", "Farah",
    "Lund", "Janssen", "Wojcik", "Szabo", "Braun", "Carvalho", "Holm",
    "Lambert", "Conti", "Cho", "Hoffmann", "Ortiz", "Orlov", "Suzuki",
    "Mehta", "Volkov", "Koch", "Renard", "Ramos", "Nasser", "Dahl",
)

TITLE_ADJECTIVES: tuple[str, ...] = (
    "Scalable", "Adaptive", "Distributed", "Efficient", "Robust",
    "Decentralized", "Incremental", "Optimal", "Practical", "Secure",
    "Reliable", "Dynamic", "Hierarchical", "Parallel", "Lightweight",
    "Fault-Tolerant", "Self-Organizing", "Cooperative", "Approximate",
    "Probabilistic", "Low-Latency", "Bandwidth-Aware", "Locality-Aware",
    "Load-Balanced", "Consistent", "Resilient", "Anonymous", "Replicated",
)

TITLE_NOUNS: tuple[str, ...] = (
    "Routing", "Indexing", "Caching", "Lookup", "Storage", "Replication",
    "Multicast", "Search", "Naming", "Hashing", "Scheduling", "Streaming",
    "Aggregation", "Discovery", "Placement", "Clustering", "Gossip",
    "Broadcast", "Membership", "Consensus", "Recovery", "Partitioning",
    "Synchronization", "Filtering", "Ranking", "Compression", "Sampling",
)

TITLE_DOMAINS: tuple[str, ...] = (
    "Overlay-Networks", "DHT-Systems", "P2P-Networks", "Sensor-Networks",
    "Content-Networks", "Ad-Hoc-Networks", "Grid-Systems", "Web-Caches",
    "File-Systems", "Wireless-Networks", "Publish-Subscribe",
    "Mobile-Systems", "Storage-Clusters", "Internet-Services",
    "Data-Centers", "Media-Streaming", "Distributed-Databases",
    "Edge-Networks", "Anonymity-Systems", "Name-Services",
)

CONFERENCES: tuple[str, ...] = (
    "SIGCOMM", "INFOCOM", "ICDCS", "SOSP", "OSDI", "NSDI", "SIGMETRICS",
    "PODC", "SPAA", "ICNP", "IPTPS", "MIDDLEWARE", "EUROSYS", "USENIX-ATC",
    "VLDB", "SIGMOD", "ICDE", "WWW", "MOBICOM", "SIGIR", "HOTNETS",
    "IMC", "CONEXT", "DSN", "SRDS", "ICPP", "EUROPAR", "HPDC", "CCGRID",
    "GLOBECOM",
)

#: Publication years covered by the synthetic archive (the DBLP snapshot
#: in the paper is from January 2003).
YEARS: tuple[str, ...] = tuple(str(year) for year in range(1985, 2003))
