"""Synthetic bibliographic corpus with realistic field sharing.

Stands in for the DBLP article collection (115,879 entries in the paper's
snapshot; 10,000 kept for simulation).  What matters to the indexing
behaviour is not the actual strings but the *sharing structure* of field
values, which drives result-set sizes and index-entry dedup:

- authors write several articles (productivity is Zipf-distributed, per
  Lotka's law), so author queries return multi-entry result sets;
- venues recur across years and publish many articles per year, so
  conference/year queries return long lists and the
  conference->conference/year index entries are shared by many articles;
- titles are unique per article (as in DBLP).

All generation is deterministic in the seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.fields import ARTICLE_SCHEMA, Record, Schema
from repro.workload import names
from repro.workload.popularity import ZipfPopularity


@dataclass(frozen=True)
class CorpusConfig:
    """Shape of the synthetic archive."""

    num_articles: int = 10_000
    #: Approximate number of distinct authors; the Zipf productivity
    #: exponent decides how many articles each one signs.
    num_authors: int = 4_000
    #: Zipf exponent for author productivity (Lotka's law is ~2 over
    #: per-author paper counts; s=1.0 on the assignment distribution
    #: yields a comparable skew at this scale).
    author_zipf_s: float = 1.0
    #: Zipf exponent for venue sizes (a few venues publish most papers).
    venue_zipf_s: float = 0.8
    #: Average article size in bytes (the paper estimates 250 KB).
    mean_article_size: int = 250_000
    seed: int = 2003

    def __post_init__(self) -> None:
        if self.num_articles < 1:
            raise ValueError("num_articles must be positive")
        if self.num_authors < 1:
            raise ValueError("num_authors must be positive")


class SyntheticCorpus:
    """A deterministic synthetic article archive."""

    def __init__(
        self, config: CorpusConfig = CorpusConfig(), schema: Schema = ARTICLE_SCHEMA
    ) -> None:
        self.config = config
        self.schema = schema
        self._records: list[Record] = []
        self._generate()

    # -- generation ---------------------------------------------------------------

    def _generate(self) -> None:
        rng = random.Random(self.config.seed)
        authors = self._author_pool(rng)
        author_popularity = ZipfPopularity(
            len(authors), self.config.author_zipf_s
        )
        venue_popularity = ZipfPopularity(
            len(names.CONFERENCES), self.config.venue_zipf_s
        )
        seen_titles: set[str] = set()
        for _ in range(self.config.num_articles):
            author = authors[author_popularity.sample(rng) - 1]
            title = self._fresh_title(rng, seen_titles)
            conf = names.CONFERENCES[venue_popularity.sample(rng) - 1]
            year = rng.choice(names.YEARS)
            size = max(
                10_000,
                int(rng.gauss(self.config.mean_article_size, 80_000)),
            )
            self._records.append(
                Record(
                    self.schema,
                    {
                        "author": author,
                        "title": title,
                        "conf": conf,
                        "year": year,
                        "size": str(size),
                    },
                )
            )

    def _author_pool(self, rng: random.Random) -> list[str]:
        pool: set[str] = set()
        combos = [
            f"{first}_{last}"
            for first in names.FIRST_NAMES
            for last in names.LAST_NAMES
        ]
        rng.shuffle(combos)
        for combo in combos:
            pool.add(combo)
            if len(pool) >= self.config.num_authors:
                break
        # If more authors than name combinations were requested, extend
        # with middle initials.
        initials = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
        while len(pool) < self.config.num_authors:
            base = rng.choice(combos)
            first, last = base.split("_", 1)
            pool.add(f"{first}_{rng.choice(initials)}._{last}")
        ordered = sorted(pool)
        rng.shuffle(ordered)
        return ordered

    def _fresh_title(self, rng: random.Random, seen: set[str]) -> str:
        for attempt in range(100):
            pieces = [
                rng.choice(names.TITLE_ADJECTIVES),
                rng.choice(names.TITLE_NOUNS),
                "in" if attempt % 2 == 0 else "for",
                rng.choice(names.TITLE_DOMAINS),
            ]
            title = "_".join(pieces)
            if title not in seen:
                seen.add(title)
                return title
            # Collisions get a distinguishing roman-free suffix.
            suffixed = f"{title}_{len(seen)}"
            if suffixed not in seen:
                seen.add(suffixed)
                return suffixed
        raise RuntimeError("could not generate a fresh title")

    # -- access ---------------------------------------------------------------------

    @property
    def records(self) -> list[Record]:
        """All articles; index position = popularity rank - 1.

        The simulation ranks articles by popularity; the generator emits
        them directly in rank order, so ``records[0]`` is the most
        popular article.
        """
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __getitem__(self, index: int) -> Record:
        return self._records[index]

    def record_at_rank(self, rank: int) -> Record:
        """The article at a 1-based popularity rank."""
        if not 1 <= rank <= len(self._records):
            raise IndexError(f"rank {rank} outside [1, {len(self._records)}]")
        return self._records[rank - 1]

    # -- statistics ------------------------------------------------------------------

    def distinct_values(self, field_name: str) -> set[str]:
        """The set of values a field takes across the corpus."""
        return {record[field_name] for record in self._records}

    def field_cardinalities(self) -> dict[str, int]:
        """Distinct value counts per queryable field (sanity reporting)."""
        return {
            field_name: len(self.distinct_values(field_name))
            for field_name in self.schema.field_names
        }

    def total_article_bytes(self) -> int:
        """Sum of article sizes: the 29.1 GB figure of Section V-B."""
        return sum(int(record["size"]) for record in self._records)
