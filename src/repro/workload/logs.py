"""Query-log pipeline: the paper's workload-modelling methodology.

Section V-C derives its models from raw query logs: BibFinder's 9,108
queries give the *structure* distribution (Figure 7); counting queries
per author/article gives the *popularity* distributions, fitted by least
squares to power laws (Figure 9), which -- adapted to the finite
population -- yield the simulation's CCDF (Figure 10).

This module reproduces the pipeline end to end, so the benches derive
their models from logs exactly as the paper did, instead of hard-coding
constants:

1. :func:`generate_query_log` emits a BibFinder-like textual log (one
   ``field=value&field=value`` line per query);
2. :func:`parse_query_log` recovers structured entries from the text;
3. :func:`summarize_log` computes the structure distribution and the
   per-value request counts;
4. :func:`derive_models` turns a summary into a
   :class:`~repro.workload.querygen.QueryStructureModel` and a fitted
   power-law popularity model ready to drive the generator.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from repro.analysis.powerlaw import PowerLawFit, fit_power_law
from repro.workload.corpus import SyntheticCorpus
from repro.workload.popularity import PowerLawPopularity
from repro.workload.querygen import QueryGenerator, QueryStructureModel


@dataclass(frozen=True)
class LogEntry:
    """One logged query: ordered (field, value) pairs."""

    pairs: tuple[tuple[str, str], ...]

    @property
    def structure(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.pairs)

    def value(self, field_name: str) -> Optional[str]:
        """The logged value of a field, or None."""
        for name, value in self.pairs:
            if name == field_name:
                return value
        return None

    def to_line(self) -> str:
        """Serialize as a ``field=value&field=value`` log line."""
        return "&".join(f"{name}={value}" for name, value in self.pairs)

    @classmethod
    def from_line(cls, line: str) -> "LogEntry":
        pairs = []
        for part in line.strip().split("&"):
            name, separator, value = part.partition("=")
            if not separator or not name or not value:
                raise ValueError(f"malformed log line: {line!r}")
            pairs.append((name, value))
        if not pairs:
            raise ValueError("empty log line")
        return cls(tuple(pairs))


@dataclass
class LogSummary:
    """Aggregates the paper extracts from a log."""

    total: int = 0
    structure_counts: Counter = field(default_factory=Counter)
    #: Requests per author value (the Figure 9 author series).
    author_counts: Counter = field(default_factory=Counter)
    #: Requests per title value (the Figure 9 article series).
    title_counts: Counter = field(default_factory=Counter)

    def structure_distribution(self) -> dict[tuple[str, ...], float]:
        """Fraction of queries per query type (Figure 7)."""
        if not self.total:
            raise ValueError("empty log")
        return {
            structure: count / self.total
            for structure, count in self.structure_counts.items()
        }

    def popularity_series(self, field_name: str) -> list[float]:
        """Request probabilities by decreasing rank for one field."""
        counts = {
            "author": self.author_counts,
            "title": self.title_counts,
        }.get(field_name)
        if counts is None:
            raise ValueError(f"no popularity series for field {field_name!r}")
        if not counts:
            raise ValueError(f"log has no {field_name} queries")
        ordered = sorted(counts.values(), reverse=True)
        volume = sum(ordered)
        return [count / volume for count in ordered]


def generate_query_log(
    corpus: SyntheticCorpus, volume: int, seed: int = 42
) -> list[str]:
    """Emit a BibFinder-like log from the reference workload models."""
    generator = QueryGenerator(corpus, seed=seed)
    lines = []
    for item in generator.generate(volume):
        pairs = tuple(
            (name, item.query.value(name)) for name in item.structure
        )
        lines.append(LogEntry(pairs).to_line())
    return lines


def parse_query_log(lines: Iterable[str]) -> Iterator[LogEntry]:
    """Parse log text lines, skipping blanks."""
    for line in lines:
        if line.strip():
            yield LogEntry.from_line(line)


def summarize_log(entries: Iterable[LogEntry]) -> LogSummary:
    """Compute the Figure 7 and Figure 9 raw material from a log."""
    summary = LogSummary()
    for entry in entries:
        summary.total += 1
        summary.structure_counts[entry.structure] += 1
        author = entry.value("author")
        if author is not None:
            summary.author_counts[author] += 1
        title = entry.value("title")
        if title is not None:
            summary.title_counts[title] += 1
    return summary


@dataclass(frozen=True)
class DerivedModels:
    """Workload models recovered from a log (the paper's Section V-C)."""

    structure: QueryStructureModel
    popularity_fit: PowerLawFit

    def popularity_for_population(self, population: int) -> PowerLawPopularity:
        """Adapt the fitted power law to a finite article population.

        The pmf exponent ``alpha`` of ``p_i = k / i**alpha`` corresponds
        to a CDF family ``c * i**(1 - alpha)``; normalizing to the
        population reproduces the paper's "after adapting the parameters
        ... to match the finite population" step.
        """
        exponent = max(0.05, min(0.95, 1.0 - self.popularity_fit.alpha))
        return PowerLawPopularity.for_population(population, exponent)


def derive_models(summary: LogSummary) -> DerivedModels:
    """Recover generator models from a log summary."""
    structure = QueryStructureModel(summary.structure_distribution())
    series = summary.popularity_series("author")
    ranks = list(range(1, len(series) + 1))
    fit = fit_power_law(ranks, series)
    return DerivedModels(structure=structure, popularity_fit=fit)
