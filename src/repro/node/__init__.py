"""``python -m repro.node``: run one index node as a socket daemon.

The command-line entry point around :class:`repro.rpc.daemon.NodeDaemon`
-- see :mod:`repro.node.__main__` for the flags and the README's
"Running real nodes" quickstart for a two-terminal walkthrough.
"""
