"""Command-line node daemon: one substrate node on one socket.

Start a fresh single-node overlay::

    python -m repro.node --listen 127.0.0.1:7000 --substrate chord

Join an existing one from a second terminal::

    python -m repro.node --listen 127.0.0.1:7001 \
        --bootstrap 127.0.0.1:7000 --substrate chord

The daemon prints one ``READY host:port node=<id:x>`` line (flushed, so
wrappers can wait for it), serves until SIGINT/SIGTERM or an
over-the-wire ``shutdown`` control message, then prints ``SHUTDOWN``
and exits 0.  ``--listen`` port 0 asks the OS for an ephemeral port --
the READY line reports the real one.

With ``--data-dir PATH`` the node is durable: state is journaled to a
write-ahead log (``--fsync always|interval[:N]|never`` picks the sync
policy) and a restarted daemon recovers it -- a ``RECOVERY`` line after
READY reports what came back.  A graceful stop flushes the WAL before
the final ``SHUTDOWN`` line; a SIGKILL loses nothing that was
acknowledged (appends are unbuffered), and recovery truncates any tail
a power loss tore::

    python -m repro.node --listen 127.0.0.1:7000 \
        --data-dir /var/lib/repro/node0 --fsync interval:32
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import signal
import sys

from repro.dht import DEFAULT_BITS
from repro.rpc.daemon import SCHEMES, SUBSTRATES, NodeDaemon
from repro.rpc.loop import install_uvloop


def parse_host_port(text: str) -> tuple[str, int]:
    """``HOST:PORT`` -> ``(host, port)`` with a helpful error."""
    host, _, port_text = text.rpartition(":")
    if not host or not port_text.isdigit():
        raise argparse.ArgumentTypeError(
            f"expected HOST:PORT, got {text!r}"
        )
    return host, int(port_text)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.node",
        description="Serve one index node over UDP/TCP.",
    )
    parser.add_argument(
        "--listen", type=parse_host_port, required=True, metavar="HOST:PORT",
        help="address to bind (port 0 = ephemeral; see the READY line)",
    )
    parser.add_argument(
        "--bootstrap", type=parse_host_port, default=None, metavar="HOST:PORT",
        help="join the overlay via this daemon (omit to seed a new one)",
    )
    parser.add_argument(
        "--substrate", choices=SUBSTRATES, default="chord",
        help="DHT substrate (default: chord)",
    )
    parser.add_argument(
        "--scheme", choices=SCHEMES, default="simple",
        help="index scheme (default: simple)",
    )
    parser.add_argument(
        "--cache", default="none",
        help="shortcut cache policy: none, multi, single, or lruN",
    )
    parser.add_argument(
        "--replication", type=int, default=1,
        help="replication factor the overlay runs with (default: 1)",
    )
    parser.add_argument(
        "--bits", type=int, default=DEFAULT_BITS,
        help=f"identifier-space bits (default: {DEFAULT_BITS})",
    )
    parser.add_argument(
        "--node-id", default=None, metavar="HEX",
        help="explicit node id (default: hash of the listen address)",
    )
    parser.add_argument(
        "--data-dir", default=None, metavar="PATH",
        help=(
            "persist node state (WAL + snapshot) under PATH and recover "
            "it on restart (default: in-memory only)"
        ),
    )
    parser.add_argument(
        "--fsync", default="interval", metavar="POLICY",
        help=(
            "WAL sync policy: always | interval[:N] | never "
            "(default: interval)"
        ),
    )
    parser.add_argument(
        "--identity-dir", default=None, metavar="PATH",
        help=(
            "persist an ed25519 identity under PATH and sign every "
            "frame; the node id derives from the public key unless "
            "--node-id or a recovered snapshot overrides it"
        ),
    )
    parser.add_argument(
        "--require-signed", action="store_true",
        help=(
            "reject unsigned requests with a verify_failed error "
            "(needs --identity-dir)"
        ),
    )
    parser.add_argument(
        "--uvloop", action="store_true",
        help=(
            "run on uvloop when the package is importable "
            "(falls back to the stock asyncio loop otherwise)"
        ),
    )
    return parser


async def run(args: argparse.Namespace) -> int:
    host, port = args.listen
    daemon = NodeDaemon(
        host,
        port,
        substrate=args.substrate,
        scheme=args.scheme,
        cache=args.cache,
        replication=args.replication,
        bits=args.bits,
        node_id=None if args.node_id is None else int(args.node_id, 16),
        data_dir=args.data_dir,
        fsync=args.fsync,
        identity_dir=args.identity_dir,
        require_signed=args.require_signed,
    )
    bound_host, bound_port = await daemon.start(bootstrap=args.bootstrap)
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        # add_signal_handler is unavailable on some platforms (Windows
        # event loops); the over-the-wire shutdown still works there.
        with contextlib.suppress(NotImplementedError):
            loop.add_signal_handler(signum, daemon.stop)
    print(
        f"READY {bound_host}:{bound_port} node={daemon.node_id:x}",
        flush=True,
    )
    if daemon.identity is not None:
        # A separate line AFTER the 3-token READY protocol, like
        # RECOVERY below, so wrappers that split READY keep working.
        print(
            f"IDENTITY pub={daemon.identity.public_key.hex()} "
            f"backend={daemon.identity.backend}",
            flush=True,
        )
    if daemon.recovery is not None:
        # A separate line AFTER the 3-token READY protocol, so wrappers
        # that split READY keep working.
        report = daemon.recovery
        print(
            "RECOVERY "
            f"entries={report.index_entries + report.file_entries} "
            f"cache={report.cache_entries} peers={report.peers} "
            f"wal_records={report.wal_records} "
            f"torn_bytes={report.truncated_bytes} "
            f"replay_ms={report.replay_ms:.2f}",
            flush=True,
        )
    await daemon.serve()
    print("SHUTDOWN", flush=True)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.require_signed and args.identity_dir is None:
        parser.error("--require-signed needs --identity-dir")
    if args.uvloop:
        active = install_uvloop()
        print(
            "LOOP uvloop" if active else "LOOP asyncio (uvloop unavailable)",
            flush=True,
        )
    try:
        return asyncio.run(run(args))
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    sys.exit(main())
