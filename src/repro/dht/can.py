"""CAN: content-addressable network (Ratnasamy et al., SIGCOMM 2001).

The paper's second citation for DHT substrates.  CAN organizes nodes in
a d-dimensional torus: each node owns a hyper-rectangular *zone*, keys
hash to points, and the node whose zone contains a key's point owns the
key.  Routing is greedy: forward to the neighbouring zone closest (in
torus distance) to the target point, giving O(d * N^(1/d)) hops.

Zones are maintained exactly as in the original protocol's simple form:

- a joining node picks a random point, routes to the zone containing it,
  and splits that zone in half along the next dimension in round-robin
  order (the split order makes zones re-mergeable);
- a departing node hands its zone to the neighbour that keeps the zone
  set a valid partition (its split sibling when available, otherwise the
  smallest mergeable neighbour... in this simulation we rebuild from the
  recorded split history, which yields the same partition the takeover
  protocol converges to).

Keys hash into the unit torus [0, 1)^d through the shared m-bit space so
that CAN plugs into the same :class:`repro.dht.base.DHTProtocol` surface
as the other substrates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.dht.base import DHTProtocol, LookupResult, NodeId
from repro.dht.idspace import DEFAULT_BITS, IdSpace


@dataclass
class Zone:
    """A half-open hyper-rectangle [low, high) per dimension."""

    low: tuple[float, ...]
    high: tuple[float, ...]

    @property
    def dimensions(self) -> int:
        return len(self.low)

    def contains(self, point: tuple[float, ...]) -> bool:
        """Half-open containment test for a torus point."""
        return all(
            low <= coordinate < high
            for low, coordinate, high in zip(self.low, point, self.high)
        )

    def center(self) -> tuple[float, ...]:
        """The zone's geometric center (greedy-routing waypoint)."""
        return tuple((l + h) / 2 for l, h in zip(self.low, self.high))

    def split(self, dimension: int) -> tuple["Zone", "Zone"]:
        """Halve the zone along one dimension (join protocol)."""
        middle = (self.low[dimension] + self.high[dimension]) / 2
        first_high = list(self.high)
        first_high[dimension] = middle
        second_low = list(self.low)
        second_low[dimension] = middle
        return (
            Zone(self.low, tuple(first_high)),
            Zone(tuple(second_low), self.high),
        )

    def touches(self, other: "Zone") -> bool:
        """True when the zones abut (share a (d-1)-dimensional face) on
        the unit torus."""
        overlap_dimensions = 0
        touch_dimensions = 0
        for axis in range(self.dimensions):
            a_low, a_high = self.low[axis], self.high[axis]
            b_low, b_high = other.low[axis], other.high[axis]
            if a_low < b_high and b_low < a_high:
                overlap_dimensions += 1
            elif (
                a_high == b_low
                or b_high == a_low
                or (a_high == 1.0 and b_low == 0.0)
                or (b_high == 1.0 and a_low == 0.0)
            ):
                touch_dimensions += 1
            else:
                return False
        return touch_dimensions == 1 and overlap_dimensions == self.dimensions - 1


def _torus_distance(a: tuple[float, ...], b: tuple[float, ...]) -> float:
    total = 0.0
    for x, y in zip(a, b):
        delta = abs(x - y)
        delta = min(delta, 1.0 - delta)
        total += delta * delta
    return total


class CANNetwork(DHTProtocol):
    """A simulated d-dimensional CAN."""

    def __init__(
        self, bits: int = DEFAULT_BITS, dimensions: int = 2, seed: int = 0
    ) -> None:
        if dimensions < 1:
            raise ValueError("dimensions must be >= 1")
        self.space = IdSpace(bits)
        self.dimensions = dimensions
        self._rng = random.Random(seed)
        self._zones: dict[NodeId, Zone] = {}
        self._neighbors: dict[NodeId, set[NodeId]] = {}
        # Split genealogy: node -> (parent node it split from, dimension).
        self._split_of: dict[NodeId, tuple[NodeId, int]] = {}
        self._next_split_dimension: dict[NodeId, int] = {}
        #: Memoized sorted membership (invalidated on join/leave).
        self._ids_cache: Optional[list[NodeId]] = None

    @classmethod
    def bulk_build(
        cls,
        node_ids: list[NodeId],
        bits: int = DEFAULT_BITS,
        dimensions: int = 2,
        seed: int = 0,
    ) -> "CANNetwork":
        network = cls(bits=bits, dimensions=dimensions, seed=seed)
        unique = sorted(set(node_ids))
        if len(unique) != len(node_ids):
            raise ValueError("duplicate node ids")
        for node_id in unique:
            network.add_node(node_id)
        return network

    # -- key geometry ------------------------------------------------------------

    def key_point(self, key: int) -> tuple[float, ...]:
        """Map an m-bit key to a point of the unit torus.

        The key's bits are sliced into ``d`` coordinates, preserving the
        uniformity of the hash.
        """
        if not self.space.contains(key):
            raise ValueError(f"key {key} outside the identifier space")
        slice_bits = max(1, self.bits // self.dimensions)
        coordinates = []
        value = key
        for _ in range(self.dimensions):
            coordinates.append((value & ((1 << slice_bits) - 1)) / (1 << slice_bits))
            value >>= slice_bits
        return tuple(coordinates)

    # -- DHTProtocol surface --------------------------------------------------------

    @property
    def bits(self) -> int:
        return self.space.bits

    @property
    def node_ids(self) -> list[NodeId]:
        if self._ids_cache is None:
            self._ids_cache = sorted(self._zones)
        return list(self._ids_cache)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._zones

    def _note_membership_change(self) -> None:
        self._ids_cache = None
        self._bump_membership()

    def zone_of(self, node: NodeId) -> Zone:
        """The zone currently owned by a node."""
        return self._zones[node]

    def neighbors_of(self, node: NodeId) -> set[NodeId]:
        """Nodes whose zones abut this node's zone."""
        return set(self._neighbors[node])

    def add_node(self, node: NodeId) -> None:
        """Join a node: route to a random point's zone and split it."""
        if not self.space.contains(node):
            raise ValueError(f"node id {node} outside the identifier space")
        if node in self._zones:
            raise ValueError(f"node id {node} already present")
        if not self._zones:
            self._zones[node] = Zone(
                (0.0,) * self.dimensions, (1.0,) * self.dimensions
            )
            self._neighbors[node] = set()
            self._next_split_dimension[node] = 0
            self._note_membership_change()
            return
        # Join: random point -> owning zone -> split it in half.
        point = tuple(self._rng.random() for _ in range(self.dimensions))
        owner = self._owner_of_point(point)
        dimension = self._next_split_dimension[owner]
        first, second = self._zones[owner].split(dimension)
        self._zones[owner] = first
        self._zones[node] = second
        self._split_of[node] = (owner, dimension)
        self._next_split_dimension[owner] = (dimension + 1) % self.dimensions
        self._next_split_dimension[node] = (dimension + 1) % self.dimensions
        self._note_membership_change()
        self._rewire_neighbors_around(node, owner)

    def remove_node(self, node: NodeId) -> None:
        """Depart a node; survivors take over its zone (partition repair)."""
        if node not in self._zones:
            raise KeyError(f"node id {node} not present")
        if len(self._zones) == 1:
            del self._zones[node]
            del self._neighbors[node]
            self._note_membership_change()
            return
        # Takeover: rebuild the partition without the departed node by
        # replaying the split history (equivalent to the zone-merge
        # protocol's converged outcome).
        survivors = [n for n in self._zones if n != node]
        rebuilt = CANNetwork(
            bits=self.bits, dimensions=self.dimensions, seed=self._rng.randint(0, 2**31)
        )
        for survivor in survivors:
            rebuilt.add_node(survivor)
        self._zones = rebuilt._zones
        self._neighbors = rebuilt._neighbors
        self._split_of = rebuilt._split_of
        self._next_split_dimension = rebuilt._next_split_dimension
        self._note_membership_change()

    def responsible_node(self, key: int) -> NodeId:
        """Ground truth: the node whose zone contains the key's point."""
        return self._owner_of_point(self.key_point(key))

    def lookup(self, key: int, start: Optional[NodeId] = None) -> LookupResult:
        """Greedy torus routing to the zone containing the key's point."""
        if not self._zones:
            raise RuntimeError("network has no nodes")
        point = self.key_point(key)
        if start is None:
            start = min(self._zones)
        current = start
        path = [current]
        for _ in range(4 * len(self._zones) + 8):
            if self._zones[current].contains(point):
                return LookupResult(
                    key=key, node=current, hops=len(path), path=tuple(path)
                )
            candidates = [
                neighbor
                for neighbor in self._neighbors[current]
                if neighbor in self._zones
            ]
            if not candidates:
                break
            best = min(
                candidates,
                key=lambda n: _torus_distance(self._zones[n].center(), point),
            )
            if _torus_distance(
                self._zones[best].center(), point
            ) >= _torus_distance(self._zones[current].center(), point):
                # Greedy stuck (possible on coarse partitions): step to
                # the best neighbour anyway, but only once per node.
                if best in path:
                    break
            current = best
            path.append(current)
        # Greedy failed to deliver (rare, coarse partitions only): fall
        # back to flooding outward from the stuck node, counting hops.
        owner = self._owner_of_point(point)
        if owner != path[-1]:
            path.append(owner)
        return LookupResult(key=key, node=owner, hops=len(path), path=tuple(path))

    # -- internals --------------------------------------------------------------------

    def _owner_of_point(self, point: tuple[float, ...]) -> NodeId:
        for node, zone in self._zones.items():
            if zone.contains(point):
                return node
        raise RuntimeError(f"no zone contains {point}; partition broken")

    def _rewire_neighbors_around(self, new_node: NodeId, split_parent: NodeId) -> None:
        """Recompute adjacency for the two halves of a split zone."""
        affected = {new_node, split_parent} | self._neighbors.get(
            split_parent, set()
        )
        self._neighbors[new_node] = set()
        for node in affected:
            if node not in self._zones:
                continue
            self._neighbors[node] = {
                other
                for other in self._zones
                if other != node and self._zones[node].touches(self._zones[other])
            }

    def partition_is_valid(self) -> bool:
        """Invariant check: zones tile the torus exactly (used by tests)."""
        total = 0.0
        for zone in self._zones.values():
            volume = 1.0
            for low, high in zip(zone.low, zone.high):
                volume *= high - low
            total += volume
        return abs(total - 1.0) < 1e-9
