"""Identifier space and hashing for DHT keys.

All substrates share one m-bit circular identifier space.  Keys are query
strings in canonical form; ``h(descriptor)`` / ``h(query)`` (the paper's
hash function mapping identifiers to numeric keys) is SHA-1 truncated to
the space's width, which both Chord and Kademlia used in their original
papers.
"""

from __future__ import annotations

import hashlib

#: Default identifier width in bits.  160 matches SHA-1/Chord; tests use
#: narrower spaces to exercise wrap-around arithmetic.
DEFAULT_BITS = 160


def hash_key(text: str, bits: int = DEFAULT_BITS) -> int:
    """Hash a textual key into an m-bit numeric identifier."""
    digest = hashlib.sha1(text.encode("utf-8")).digest()
    value = int.from_bytes(digest, "big")
    if bits >= 160:
        return value
    return value >> (160 - bits)


def in_interval(
    value: int,
    left: int,
    right: int,
    left_closed: bool = False,
    right_closed: bool = False,
) -> bool:
    """Membership test on the circular interval from ``left`` to ``right``.

    Intervals wrap around zero; when ``left == right`` the interval spans
    the whole ring (minus the endpoints unless closed), matching Chord's
    conventions for a single-node ring.
    """
    if left_closed and value == left:
        return True
    if right_closed and value == right:
        return True
    if left == right:
        # Whole ring (exclusive of the endpoint unless closed above).
        return value != left or (left_closed and right_closed)
    if left < right:
        return left < value < right
    return value > left or value < right


class IdSpace:
    """An m-bit circular identifier space with modular arithmetic."""

    def __init__(self, bits: int = DEFAULT_BITS) -> None:
        if not 1 <= bits <= 256:
            raise ValueError(f"bits must be in [1, 256], got {bits}")
        self.bits = bits
        self.size = 1 << bits

    def hash(self, text: str) -> int:
        """Hash text into this space's identifier range."""
        return hash_key(text, self.bits)

    def contains(self, value: int) -> bool:
        """True when the value is a valid identifier of this space."""
        return 0 <= value < self.size

    def add(self, value: int, delta: int) -> int:
        """Modular addition on the ring."""
        return (value + delta) % self.size

    def finger_start(self, node: int, index: int) -> int:
        """Start of Chord finger ``index`` (0-based): node + 2^index."""
        return (node + (1 << index)) % self.size

    def distance_clockwise(self, source: int, target: int) -> int:
        """Clockwise distance from ``source`` to ``target`` on the ring."""
        return (target - source) % self.size

    def distance_xor(self, left: int, right: int) -> int:
        """Kademlia's symmetric XOR distance."""
        return left ^ right

    def __repr__(self) -> str:
        return f"IdSpace(bits={self.bits})"
