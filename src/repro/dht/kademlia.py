"""Kademlia: XOR-metric DHT with k-buckets (Maymounkov & Mazières, 2002).

The second real substrate for the layering ablation.  The node responsible
for a key is the live node whose identifier minimizes the XOR distance to
the key.  Routing state is per-node: ``bits`` k-buckets, bucket ``i``
holding up to ``k`` contacts whose distance to the owner has bit length
``i + 1`` (i.e. shares exactly ``bits - i - 1`` leading bits).

Lookups are iterative: the initiator keeps a shortlist of the ``k``
closest contacts seen, repeatedly queries the closest unqueried one for
its ``k`` closest contacts to the target, and stops when the shortlist
stops improving.  Every queried node counts as a hop.  As in the real
protocol, nodes opportunistically learn about peers that contact them.
"""

from __future__ import annotations

from typing import Optional

from repro.dht.base import DHTProtocol, LookupResult, NodeId
from repro.dht.idspace import DEFAULT_BITS, IdSpace


class KademliaNode:
    """A single Kademlia peer: its id and k-bucket table."""

    def __init__(self, node_id: NodeId, bits: int, k: int) -> None:
        self.id = node_id
        self.bits = bits
        self.k = k
        # buckets[i] holds contacts at XOR distance with bit length i+1,
        # most-recently-seen last (we do not model liveness pings, so a
        # full bucket simply rejects new contacts, per the original paper).
        self.buckets: list[list[NodeId]] = [[] for _ in range(bits)]

    def bucket_index(self, other: NodeId) -> int:
        """Bucket holding a contact: bit length of the XOR distance - 1."""
        distance = self.id ^ other
        if distance == 0:
            raise ValueError("a node does not bucket itself")
        return distance.bit_length() - 1

    def observe(self, other: NodeId) -> None:
        """Record a live contact (move-to-tail on re-observation)."""
        if other == self.id:
            return
        bucket = self.buckets[self.bucket_index(other)]
        if other in bucket:
            bucket.remove(other)
            bucket.append(other)
        elif len(bucket) < self.k:
            bucket.append(other)
        # else: bucket full; the original protocol pings the oldest contact
        # and keeps it if alive -- all our contacts are alive, so drop.

    def forget(self, other: NodeId) -> None:
        """Remove a (departed) contact from its bucket."""
        bucket = self.buckets[self.bucket_index(other)]
        if other in bucket:
            bucket.remove(other)

    def closest_contacts(self, key: int, count: int) -> list[NodeId]:
        """The node's ``count`` known contacts closest to ``key`` (XOR)."""
        contacts = [c for bucket in self.buckets for c in bucket]
        contacts.append(self.id)
        contacts.sort(key=lambda c: c ^ key)
        return contacts[:count]

    def __repr__(self) -> str:
        populated = sum(1 for bucket in self.buckets if bucket)
        return f"KademliaNode(id={self.id}, buckets={populated})"


class KademliaNetwork(DHTProtocol):
    """A simulated Kademlia overlay with iterative lookups."""

    def __init__(self, bits: int = DEFAULT_BITS, k: int = 8) -> None:
        self.space = IdSpace(bits)
        self.k = k
        self._nodes: dict[NodeId, KademliaNode] = {}
        #: Memoized sorted membership (invalidated on join/leave).
        self._ids_cache: Optional[list[NodeId]] = None

    @classmethod
    def bulk_build(
        cls, node_ids: list[NodeId], bits: int = DEFAULT_BITS, k: int = 8
    ) -> "KademliaNetwork":
        """Construct a converged overlay directly from global knowledge.

        Each node's buckets are filled with up to ``k`` contacts per
        populated distance range -- the steady state periodic refresh
        maintains -- without paying one iterative lookup per bucket per
        join.  The incremental protocol remains available for churn.

        Bucket ``i`` of node ``n`` holds peers whose XOR distance to
        ``n`` has bit length ``i + 1``: exactly the ids agreeing with
        ``n`` above bit ``i`` and differing at bit ``i``, which is the
        contiguous range ``[base, base + 2^i)`` with ``base = (n ^ 2^i)
        & ~(2^i - 1)``.  Taking the first ``k`` of the sorted membership
        in that range (two bisects) reproduces the naive
        scan-all-pairs fill -- which appended candidates in ascending id
        order -- in O(N * bits * log N) instead of O(N^2).
        """
        import bisect

        network = cls(bits=bits, k=k)
        unique = sorted(set(node_ids))
        if len(unique) != len(node_ids):
            raise ValueError("duplicate node ids")
        for node_id in unique:
            if not network.space.contains(node_id):
                raise ValueError(f"node id {node_id} outside the identifier space")
            network._nodes[node_id] = KademliaNode(node_id, bits, k)
        bisect_left = bisect.bisect_left
        for node_id, peer in network._nodes.items():
            buckets = peer.buckets
            for index in range(bits):
                width = 1 << index
                base = (node_id ^ width) & ~(width - 1)
                low = bisect_left(unique, base)
                high = bisect_left(unique, base + width, low)
                contacts = unique[low : min(low + k, high)]
                if contacts:
                    buckets[index] = contacts
        network._note_membership_change()
        return network

    @property
    def bits(self) -> int:
        return self.space.bits

    @property
    def node_ids(self) -> list[NodeId]:
        if self._ids_cache is None:
            self._ids_cache = sorted(self._nodes)
        return list(self._ids_cache)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._nodes

    def _note_membership_change(self) -> None:
        self._ids_cache = None
        self._bump_membership()

    def node(self, node_id: NodeId) -> KademliaNode:
        """The peer object for a node id."""
        return self._nodes[node_id]

    def add_node(self, node: NodeId) -> None:
        """Join: bootstrap contact, self-lookup, bucket refresh."""
        if not self.space.contains(node):
            raise ValueError(f"node id {node} outside the identifier space")
        if node in self._nodes:
            raise ValueError(f"node id {node} already present")
        peer = KademliaNode(node, self.bits, self.k)
        self._nodes[node] = peer
        self._note_membership_change()
        others = [n for n in self._nodes if n != node]
        if not others:
            return
        bootstrap = min(others)
        peer.observe(bootstrap)
        self._nodes[bootstrap].observe(node)
        # Join procedure of the original paper: a self-lookup populates
        # buckets along the path, then every bucket range is refreshed so
        # the node knows a contact in each populated subtree -- the
        # invariant that makes greedy XOR routing converge globally.
        self._iterative_find(peer, node)
        self.refresh_node(node)
        for contact in peer.closest_contacts(node, self.k):
            if contact != node:
                self._nodes[contact].observe(node)

    def remove_node(self, node: NodeId) -> None:
        """Depart a node; affected peers re-probe the emptied range."""
        if node not in self._nodes:
            raise KeyError(f"node id {node} not present")
        del self._nodes[node]
        self._note_membership_change()
        affected = []
        for peer in self._nodes.values():
            bucket = peer.buckets[peer.bucket_index(node)]
            if node in bucket:
                bucket.remove(node)
                affected.append(peer.id)
        # Repair: peers that lost a contact re-probe that bucket's range so
        # routing tables keep one contact per populated subtree (the role
        # of Kademlia's periodic bucket refresh).
        for peer_id in affected:
            if peer_id in self._nodes:
                peer = self._nodes[peer_id]
                self._iterative_find(peer, node)

    def refresh_node(self, node: NodeId) -> None:
        """Refresh every bucket range of one node (periodic maintenance)."""
        peer = self._nodes[node]
        for index in range(self.bits):
            probe = peer.id ^ (1 << index)
            self._iterative_find(peer, probe)

    def lookup(self, key: int, start: Optional[NodeId] = None) -> LookupResult:
        """Iterative FIND_NODE toward the XOR-closest node."""
        if not self._nodes:
            raise RuntimeError("network has no nodes")
        if not self.space.contains(key):
            raise ValueError(f"key {key} outside the identifier space")
        if start is None:
            start = min(self._nodes)
        initiator = self._nodes[start]
        closest, path = self._iterative_find(initiator, key)
        return LookupResult(key=key, node=closest, hops=len(path), path=tuple(path))

    def responsible_node(self, key: int) -> NodeId:
        """Ground truth: the globally XOR-closest node (for tests)."""
        return min(self._nodes, key=lambda n: n ^ key)

    def _iterative_find(
        self, initiator: KademliaNode, key: int
    ) -> tuple[NodeId, list[NodeId]]:
        """Iterative FIND_NODE; returns (closest node, queried path)."""
        shortlist = set(initiator.closest_contacts(key, self.k))
        shortlist.add(initiator.id)
        queried: set[NodeId] = {initiator.id}
        path: list[NodeId] = []
        while True:
            live = [n for n in shortlist if n in self._nodes]
            closest_k = sorted(live, key=lambda n: n ^ key)[: self.k]
            unqueried = [n for n in closest_k if n not in queried]
            if not unqueried:
                break
            target = unqueried[0]
            contact = self._nodes[target]
            queried.add(target)
            path.append(target)
            # The queried node learns about the initiator (opportunistic
            # routing-table maintenance), and vice versa.
            contact.observe(initiator.id)
            for learned in contact.closest_contacts(key, self.k):
                initiator.observe(learned)
                shortlist.add(learned)
        live = [n for n in shortlist if n in self._nodes]
        closest = min(live, key=lambda n: n ^ key)
        return closest, path
