"""DHT substrates: key-to-node lookup protocols.

The paper layers its indexes on top of "an arbitrary P2P DHT
infrastructure" (Chord, CAN, Pastry, Tapestry are cited) and explicitly
does not depend on any particular one.  This package provides three
interchangeable substrates behind one interface:

- :class:`repro.dht.ring.IdealRing` -- consistent hashing with global
  knowledge, resolving any key in one hop.  This is the abstraction the
  paper's own simulation uses ("we simply assume that the underlying DHT
  is able to find a node n responsible for a given key k").
- :class:`repro.dht.chord.ChordNetwork` -- Chord (Stoica et al., SIGCOMM
  2001): an m-bit identifier ring with finger tables, successor lists, and
  iterative O(log N)-hop lookups, plus join/leave/stabilize.
- :class:`repro.dht.kademlia.KademliaNetwork` -- Kademlia (Maymounkov &
  Mazières, IPTPS 2002): XOR metric, k-buckets, iterative node lookups.
- :class:`repro.dht.pastry.PastryNetwork` -- Pastry (Rowstron & Druschel,
  Middleware 2001): prefix routing tables and leaf sets.
- :class:`repro.dht.can.CANNetwork` -- CAN (Ratnasamy et al., SIGCOMM
  2001): d-dimensional torus zones with greedy geometric routing.

All of them resolve a key to the same notion of "responsible node" given the
same node population (modulo each protocol's distance metric), and all
report per-lookup hop counts so the substrate-independence ablation can
contrast routing cost with indexing cost.
"""

from repro.dht.base import DHTProtocol, LookupResult, NodeId
from repro.dht.can import CANNetwork, Zone
from repro.dht.chord import ChordNetwork, ChordNode
from repro.dht.idspace import (
    DEFAULT_BITS,
    IdSpace,
    hash_key,
    in_interval,
)
from repro.dht.kademlia import KademliaNetwork, KademliaNode
from repro.dht.pastry import PastryNetwork, PastryNode
from repro.dht.ring import IdealRing

__all__ = [
    "DEFAULT_BITS",
    "IdSpace",
    "hash_key",
    "in_interval",
    "DHTProtocol",
    "LookupResult",
    "NodeId",
    "IdealRing",
    "ChordNetwork",
    "ChordNode",
    "KademliaNetwork",
    "KademliaNode",
    "PastryNetwork",
    "PastryNode",
    "CANNetwork",
    "Zone",
]
