"""Pastry: prefix-routing DHT (Rowstron & Druschel, Middleware 2001).

The third real substrate the paper names (its storage-layer example is
Pastry/PAST).  Node identifiers are strings of base-``2^b`` digits; each
node keeps:

- a **routing table** with one row per identifier-prefix length and one
  column per digit value: entry (r, c) points at some node sharing the
  first ``r`` digits with the owner and having digit ``c`` at position
  ``r``;
- a **leaf set** of the ``l/2`` numerically closest nodes on either side.

A message for key ``k`` is forwarded to a node whose shared prefix with
``k`` is at least one digit longer (routing table), or -- when no such
entry exists -- to a node numerically closer to ``k`` (leaf set), giving
``O(log_{2^b} N)`` hops.  A key is owned by the numerically closest node
(ties broken downward), which the leaf set decides exactly.

As with the other substrates this is an in-process simulation whose
routing consults strictly node-local state, so hop counts are faithful.
"""

from __future__ import annotations

from typing import Optional

from repro.dht.base import DHTProtocol, LookupResult, NodeId
from repro.dht.idspace import DEFAULT_BITS, IdSpace


class PastryNode:
    """A single Pastry peer: routing table + leaf set."""

    def __init__(self, node_id: NodeId, bits: int, digit_bits: int, leaf_size: int) -> None:
        self.id = node_id
        self.bits = bits
        self.digit_bits = digit_bits
        self.rows = bits // digit_bits
        self.leaf_size = leaf_size
        # routing_table[row][column] -> node id or None.
        self.routing_table: list[list[Optional[NodeId]]] = [
            [None] * (1 << digit_bits) for _ in range(self.rows)
        ]
        # Numerically closest neighbours, below and above (sorted).
        self.leaf_below: list[NodeId] = []
        self.leaf_above: list[NodeId] = []

    def digit(self, value: NodeId, row: int) -> int:
        """The ``row``-th most significant base-2^b digit of ``value``."""
        shift = self.bits - (row + 1) * self.digit_bits
        return (value >> shift) & ((1 << self.digit_bits) - 1)

    def shared_prefix_length(self, other: NodeId) -> int:
        """Number of leading digits shared with ``other``."""
        for row in range(self.rows):
            if self.digit(self.id, row) != self.digit(other, row):
                return row
        return self.rows

    def observe(self, other: NodeId) -> None:
        """Install a contact into the routing table (first-come)."""
        if other == self.id:
            return
        row = self.shared_prefix_length(other)
        if row >= self.rows:
            return
        column = self.digit(other, row)
        if self.routing_table[row][column] is None:
            self.routing_table[row][column] = other

    def forget(self, other: NodeId) -> None:
        """Remove a (departed) contact from table and leaf sets."""
        row = self.shared_prefix_length(other)
        if row < self.rows:
            column = self.digit(other, row)
            if self.routing_table[row][column] == other:
                self.routing_table[row][column] = None
        if other in self.leaf_below:
            self.leaf_below.remove(other)
        if other in self.leaf_above:
            self.leaf_above.remove(other)

    def leaf_set(self) -> list[NodeId]:
        """The numerically closest neighbours, including this node."""
        return self.leaf_below + [self.id] + self.leaf_above

    def covers_key(self, key: int) -> bool:
        """True when the leaf set brackets ``key`` (owner decidable)."""
        leaves = self.leaf_set()
        return (not self.leaf_below or min(leaves) <= key) and (
            not self.leaf_above or key <= max(leaves)
        )


def _numeric_distance(a: int, b: int) -> int:
    return abs(a - b)


class PastryNetwork(DHTProtocol):
    """A simulated Pastry overlay."""

    def __init__(
        self, bits: int = DEFAULT_BITS, digit_bits: int = 4, leaf_size: int = 8
    ) -> None:
        if bits % digit_bits != 0:
            raise ValueError("bits must be a multiple of digit_bits")
        self.space = IdSpace(bits)
        self.digit_bits = digit_bits
        self.leaf_size = leaf_size
        self._nodes: dict[NodeId, PastryNode] = {}
        #: Memoized sorted membership (invalidated on join/leave).
        self._ids_cache: Optional[list[NodeId]] = None

    @classmethod
    def bulk_build(
        cls,
        node_ids: list[NodeId],
        bits: int = DEFAULT_BITS,
        digit_bits: int = 4,
        leaf_size: int = 8,
    ) -> "PastryNetwork":
        """Construct a converged overlay directly from global knowledge.

        Routing entry (row ``r``, column ``c``) of a node must point at
        a peer sharing the node's first ``r`` digits and having digit
        ``c`` at position ``r`` -- the ids in one contiguous range of
        the sorted membership.  The naive fill ``observe``d every pair
        (O(N^2) with an O(rows) digit scan each), installing the
        *smallest* id per slot (first-come over the ascending scan);
        one bisect per slot finds that same smallest id directly, in
        O(N * rows * 2^digit_bits * log N).
        """
        import bisect

        network = cls(bits=bits, digit_bits=digit_bits, leaf_size=leaf_size)
        unique = sorted(set(node_ids))
        if len(unique) != len(node_ids):
            raise ValueError("duplicate node ids")
        for node_id in unique:
            if not network.space.contains(node_id):
                raise ValueError(f"node id {node_id} outside the identifier space")
            network._nodes[node_id] = PastryNode(
                node_id, bits, digit_bits, leaf_size
            )
        bisect_left = bisect.bisect_left
        count = len(unique)
        columns = 1 << digit_bits
        half = leaf_size // 2
        for position, node_id in enumerate(unique):
            peer = network._nodes[node_id]
            peer.leaf_below = unique[max(0, position - half) : position]
            peer.leaf_above = unique[position + 1 : position + 1 + half]
            for row in range(peer.rows):
                shift = bits - (row + 1) * digit_bits
                own_digit = (node_id >> shift) & (columns - 1)
                prefix = (node_id >> (shift + digit_bits)) << (shift + digit_bits)
                table_row = peer.routing_table[row]
                for column in range(columns):
                    if column == own_digit:
                        continue  # a longer shared prefix: deeper row's slot
                    base = prefix | (column << shift)
                    low = bisect_left(unique, base)
                    if low < count and unique[low] < base + (1 << shift):
                        table_row[column] = unique[low]
        network._note_membership_change()
        return network

    # -- DHTProtocol surface ---------------------------------------------------

    @property
    def bits(self) -> int:
        return self.space.bits

    @property
    def node_ids(self) -> list[NodeId]:
        if self._ids_cache is None:
            self._ids_cache = sorted(self._nodes)
        return list(self._ids_cache)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._nodes

    def _note_membership_change(self) -> None:
        self._ids_cache = None
        self._bump_membership()

    def node(self, node_id: NodeId) -> PastryNode:
        """The peer object for a node id."""
        return self._nodes[node_id]

    def add_node(self, node: NodeId) -> None:
        """Join a node (converges to the same state as a routed JOIN)."""
        if not self.space.contains(node):
            raise ValueError(f"node id {node} outside the identifier space")
        if node in self._nodes:
            raise ValueError(f"node id {node} already present")
        # Join: rebuild from the (small) global membership.  Incremental
        # Pastry join routes a JOIN message and copies table rows; the
        # converged state is identical, so we rebuild directly -- churn
        # behaviour is exercised through remove_node's local repair.
        members = list(self._nodes) + [node]
        rebuilt = PastryNetwork.bulk_build(
            sorted(members),
            bits=self.bits,
            digit_bits=self.digit_bits,
            leaf_size=self.leaf_size,
        )
        self._nodes = rebuilt._nodes
        self._note_membership_change()

    def remove_node(self, node: NodeId) -> None:
        """Depart a node; peers repair routing entries and leaf sets."""
        if node not in self._nodes:
            raise KeyError(f"node id {node} not present")
        del self._nodes[node]
        self._note_membership_change()
        ordered = self.node_ids
        import bisect

        for peer in self._nodes.values():
            peer.forget(node)
            # Leaf-set repair: refill from the live membership around us
            # (real Pastry asks the farthest leaf for its leaf set).
            position = bisect.bisect_left(ordered, peer.id)
            half = peer.leaf_size // 2
            peer.leaf_below = ordered[max(0, position - half) : position]
            peer.leaf_above = ordered[position + 1 : position + 1 + half]

    def responsible_node(self, key: int) -> NodeId:
        """Ground truth: numerically closest node (ties downward)."""
        return min(
            self._nodes,
            key=lambda n: (_numeric_distance(n, key), n > key),
        )

    def lookup(self, key: int, start: Optional[NodeId] = None) -> LookupResult:
        """Prefix-route toward the key; the leaf set decides ownership."""
        if not self._nodes:
            raise RuntimeError("network has no nodes")
        if not self.space.contains(key):
            raise ValueError(f"key {key} outside the identifier space")
        if start is None:
            start = min(self._nodes)
        current = self._nodes[start]
        path: list[NodeId] = [current.id]
        for _ in range(2 * len(self._nodes) + current.rows):
            # Leaf set covers the key: deliver to the numerically closest
            # leaf (this is the exact ownership rule).
            if current.covers_key(key):
                owner = min(
                    (leaf for leaf in current.leaf_set() if leaf in self._nodes),
                    key=lambda n: (_numeric_distance(n, key), n > key),
                )
                if owner != current.id:
                    path.append(owner)
                return LookupResult(
                    key=key, node=owner, hops=len(path), path=tuple(path)
                )
            shared = current.shared_prefix_length(key)
            next_id = None
            if shared < current.rows:
                candidate = current.routing_table[shared][
                    current.digit(key, shared)
                ]
                if candidate is not None and candidate in self._nodes:
                    next_id = candidate
            if next_id is None:
                # Rare case: fall back to any known node strictly closer.
                known = [
                    contact
                    for row in current.routing_table
                    for contact in row
                    if contact is not None and contact in self._nodes
                ] + [leaf for leaf in current.leaf_set() if leaf in self._nodes]
                closer = [
                    contact
                    for contact in known
                    if _numeric_distance(contact, key)
                    < _numeric_distance(current.id, key)
                ]
                if not closer:
                    return LookupResult(
                        key=key, node=current.id, hops=len(path), path=tuple(path)
                    )
                next_id = min(closer, key=lambda n: _numeric_distance(n, key))
            current = self._nodes[next_id]
            path.append(current.id)
        raise RuntimeError(f"lookup for key {key} did not converge")
