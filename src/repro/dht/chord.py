"""Chord: ring-based DHT with finger tables (Stoica et al., SIGCOMM 2001).

Implements the protocol the paper cites as its primary example substrate:

- an m-bit circular identifier space in which the node responsible for a
  key is the key's clockwise *successor*;
- per-node finger tables (finger ``i`` points at the first node succeeding
  ``n + 2^i``), giving O(log N)-hop iterative lookups;
- successor lists for resilience to departures;
- textbook ``join``/``stabilize``/``fix_fingers``/``notify`` maintenance,
  plus a convergence driver that runs maintenance rounds until the overlay
  is quiescent (used after membership changes so that the network object
  always answers lookups correctly).

The implementation is a *simulation*: nodes are in-process objects and
"messages" are method calls, but the information each node consults during
routing is strictly node-local state (its fingers, successors, and
predecessor), so hop counts are faithful to the real protocol.
"""

from __future__ import annotations

from typing import Optional

from repro.dht.base import DHTProtocol, LookupResult, NodeId
from repro.dht.idspace import DEFAULT_BITS, IdSpace, in_interval


class ChordNode:
    """A single Chord peer: node-local routing state."""

    def __init__(self, node_id: NodeId, bits: int, successor_list_size: int) -> None:
        self.id = node_id
        self.bits = bits
        self.fingers: list[Optional[NodeId]] = [None] * bits
        self.successor_list: list[NodeId] = []
        self.successor_list_size = successor_list_size
        self.predecessor: Optional[NodeId] = None

    @property
    def successor(self) -> NodeId:
        """The node's current immediate successor (itself when alone)."""
        if self.successor_list:
            return self.successor_list[0]
        return self.id

    def set_successor(self, successor: NodeId) -> None:
        """Replace the immediate successor (head of the successor list)."""
        if self.successor_list:
            self.successor_list[0] = successor
        else:
            self.successor_list.append(successor)

    def closest_preceding_node(self, key: int) -> NodeId:
        """Best local routing choice: the highest finger in (id, key)."""
        for finger in reversed(self.fingers):
            if finger is not None and in_interval(finger, self.id, key):
                return finger
        for candidate in reversed(self.successor_list):
            if in_interval(candidate, self.id, key):
                return candidate
        return self.id

    def __repr__(self) -> str:
        return f"ChordNode(id={self.id}, successor={self.successor})"


class ChordNetwork(DHTProtocol):
    """A simulated Chord overlay with correct-by-convergence maintenance."""

    def __init__(
        self,
        bits: int = DEFAULT_BITS,
        successor_list_size: int = 8,
        max_stabilize_rounds: int = 64,
    ) -> None:
        self.space = IdSpace(bits)
        self.successor_list_size = successor_list_size
        self.max_stabilize_rounds = max_stabilize_rounds
        self._nodes: dict[NodeId, ChordNode] = {}
        #: Memoized sorted membership (invalidated on join/leave).
        self._ids_cache: Optional[list[NodeId]] = None

    @classmethod
    def bulk_build(
        cls,
        node_ids: list[NodeId],
        bits: int = DEFAULT_BITS,
        successor_list_size: int = 8,
    ) -> "ChordNetwork":
        """Construct a converged overlay directly from global knowledge.

        Produces exactly the state incremental join+stabilization would
        converge to, in O(N log N + N*m) instead of O(N^2 m): successors,
        predecessors, successor lists, and finger tables are computed from
        the sorted ring.  Used to stand up large simulated networks; the
        incremental protocol remains available for churn experiments.
        """
        network = cls(bits=bits, successor_list_size=successor_list_size)
        ordered = sorted(set(node_ids))
        if len(ordered) != len(node_ids):
            raise ValueError("duplicate node ids")
        count = len(ordered)
        for node_id in ordered:
            if not network.space.contains(node_id):
                raise ValueError(f"node id {node_id} outside the identifier space")
            network._nodes[node_id] = ChordNode(node_id, bits, successor_list_size)
        import bisect

        for position, node_id in enumerate(ordered):
            peer = network._nodes[node_id]
            peer.predecessor = ordered[(position - 1) % count]
            peer.successor_list = [
                ordered[(position + offset + 1) % count]
                for offset in range(min(successor_list_size, count))
            ]
            for index in range(bits):
                start = network.space.finger_start(node_id, index)
                at = bisect.bisect_left(ordered, start)
                peer.fingers[index] = ordered[at % count]
        network._note_membership_change()
        return network

    # -- DHTProtocol surface -------------------------------------------------

    @property
    def bits(self) -> int:
        return self.space.bits

    @property
    def node_ids(self) -> list[NodeId]:
        if self._ids_cache is None:
            self._ids_cache = sorted(self._nodes)
        return list(self._ids_cache)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._nodes

    def _note_membership_change(self) -> None:
        self._ids_cache = None
        self._bump_membership()

    def node(self, node_id: NodeId) -> ChordNode:
        """The peer object for a node id."""
        return self._nodes[node_id]

    def add_node(self, node: NodeId) -> None:
        """Textbook join: find the successor, then stabilize to quiescence."""
        if not self.space.contains(node):
            raise ValueError(f"node id {node} outside the identifier space")
        if node in self._nodes:
            raise ValueError(f"node id {node} already present")
        peer = ChordNode(node, self.bits, self.successor_list_size)
        if not self._nodes:
            peer.set_successor(node)
            peer.predecessor = node
            self._nodes[node] = peer
            self._note_membership_change()
            self._refresh_fingers(peer)
            return
        bootstrap = next(iter(self._nodes.values()))
        successor = self._find_successor_internal(bootstrap, node)
        peer.set_successor(successor)
        self._nodes[node] = peer
        self._note_membership_change()
        self.stabilize_until_quiescent()

    def remove_node(self, node: NodeId) -> None:
        """Depart a node and repair successors/fingers via stabilization."""
        if node not in self._nodes:
            raise KeyError(f"node id {node} not present")
        del self._nodes[node]
        self._note_membership_change()
        if not self._nodes:
            return
        for peer in self._nodes.values():
            peer.successor_list = [s for s in peer.successor_list if s != node]
            peer.fingers = [f if f != node else None for f in peer.fingers]
            if peer.predecessor == node:
                peer.predecessor = None
            if not peer.successor_list:
                # Lost the whole successor list: fall back to any live node
                # (a real node would use its last known alternates).
                peer.successor_list = [self._any_other(peer.id)]
        self.stabilize_until_quiescent()

    def lookup(self, key: int, start: Optional[NodeId] = None) -> LookupResult:
        """Iteratively resolve a key from ``start`` (default: lowest id)."""
        if not self._nodes:
            raise RuntimeError("network has no nodes")
        if not self.space.contains(key):
            raise ValueError(f"key {key} outside the identifier space")
        if start is None:
            start = min(self._nodes)
        current = self._nodes[start]
        path: list[NodeId] = [current.id]
        for _ in range(2 * len(self._nodes) + self.bits):
            successor = current.successor
            if in_interval(key, current.id, successor, right_closed=True):
                if successor != current.id:
                    path.append(successor)
                return LookupResult(
                    key=key, node=successor, hops=len(path), path=tuple(path)
                )
            next_id = current.closest_preceding_node(key)
            if next_id == current.id:
                # No finger makes progress; step to the successor.
                next_id = successor
            current = self._nodes[next_id]
            path.append(current.id)
        raise RuntimeError(f"lookup for key {key} did not converge")

    # -- maintenance protocol --------------------------------------------------

    def stabilize_node(self, node_id: NodeId) -> bool:
        """One round of stabilize+notify for one node.

        Returns ``True`` when the node's state changed (used by the
        convergence driver).
        """
        peer = self._nodes[node_id]
        changed = False
        successor = self._nodes.get(peer.successor)
        if successor is None:
            peer.set_successor(self._any_other(peer.id))
            successor = self._nodes[peer.successor]
            changed = True
        candidate = successor.predecessor
        if (
            candidate is not None
            and candidate in self._nodes
            and in_interval(candidate, peer.id, successor.id)
        ):
            peer.set_successor(candidate)
            successor = self._nodes[candidate]
            changed = True
        # notify: tell the successor about us.
        if successor.predecessor is None or (
            successor.predecessor not in self._nodes
        ) or in_interval(peer.id, successor.predecessor, successor.id):
            if successor.predecessor != peer.id:
                successor.predecessor = peer.id
                changed = True
        if self._refresh_successor_list(peer):
            changed = True
        if self._refresh_fingers(peer):
            changed = True
        return changed

    def stabilize_until_quiescent(self) -> int:
        """Run maintenance rounds until no node changes; returns rounds."""
        for round_number in range(1, self.max_stabilize_rounds + 1):
            changed = False
            for node_id in sorted(self._nodes):
                if self.stabilize_node(node_id):
                    changed = True
            if not changed:
                return round_number
        raise RuntimeError("stabilization did not converge")

    def _refresh_successor_list(self, peer: ChordNode) -> bool:
        """Rebuild the successor list by walking successors' successors."""
        new_list: list[NodeId] = []
        current = peer.successor
        for _ in range(self.successor_list_size):
            if current not in self._nodes:
                break
            new_list.append(current)
            current = self._nodes[current].successor
            if current == peer.id or (new_list and current == new_list[0]):
                break
        if new_list and new_list != peer.successor_list:
            peer.successor_list = new_list
            return True
        return False

    def _refresh_fingers(self, peer: ChordNode) -> bool:
        changed = False
        for index in range(self.bits):
            start = self.space.finger_start(peer.id, index)
            target = self._find_successor_internal(peer, start)
            if peer.fingers[index] != target:
                peer.fingers[index] = target
                changed = True
        return changed

    def _find_successor_internal(self, start: ChordNode, key: int) -> NodeId:
        """Authoritative successor resolution used for maintenance.

        Routes greedily like :meth:`lookup` but falls back to the sorted
        ring on stale state, because maintenance must never fail.
        """
        current = start
        for _ in range(2 * len(self._nodes) + self.bits):
            successor = current.successor
            if in_interval(key, current.id, successor, right_closed=True):
                if successor in self._nodes:
                    return successor
                break
            next_id = current.closest_preceding_node(key)
            if next_id == current.id:
                next_id = successor
            if next_id not in self._nodes:
                break
            current = self._nodes[next_id]
        ordered = sorted(self._nodes)
        for node_id in ordered:
            if node_id >= key:
                return node_id
        return ordered[0]

    def _any_other(self, node_id: NodeId) -> NodeId:
        for candidate in self._nodes:
            if candidate != node_id:
                return candidate
        return node_id

    # -- invariant checks (used by tests) -------------------------------------

    def ring_is_consistent(self) -> bool:
        """True when following successors from any node tours all nodes."""
        if not self._nodes:
            return True
        start = min(self._nodes)
        seen = []
        current = start
        for _ in range(len(self._nodes) + 1):
            seen.append(current)
            current = self._nodes[current].successor
            if current == start:
                break
        return len(seen) == len(self._nodes) and set(seen) == set(self._nodes)
