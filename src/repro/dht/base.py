"""Abstract interface shared by all DHT substrates.

The indexing layer needs exactly one operation from the substrate
(Section III-A of the paper): given a key, find the live node responsible
for it.  Every substrate also supports membership changes and reports the
routing cost (hop count and path) of each lookup, which the storage layer
aggregates and the substrate ablation benchmarks.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

NodeId = int


@dataclass(frozen=True)
class LookupResult:
    """Outcome of resolving a key to its responsible node.

    ``hops`` counts overlay routing steps beyond the first contacted node;
    ``path`` lists every node id consulted, starting with the node that
    initiated the resolution.
    """

    key: int
    node: NodeId
    hops: int
    path: tuple[NodeId, ...] = field(default_factory=tuple)


class DHTProtocol(abc.ABC):
    """A key-to-node resolution service over a dynamic node population."""

    @property
    @abc.abstractmethod
    def bits(self) -> int:
        """Width of the identifier space in bits."""

    @property
    @abc.abstractmethod
    def node_ids(self) -> list[NodeId]:
        """Identifiers of all live nodes."""

    @abc.abstractmethod
    def lookup(self, key: int) -> LookupResult:
        """Resolve a numeric key to the responsible live node."""

    @abc.abstractmethod
    def add_node(self, node: NodeId) -> None:
        """Add a node with the given identifier to the overlay."""

    @abc.abstractmethod
    def remove_node(self, node: NodeId) -> None:
        """Remove a node from the overlay."""

    # -- crash state (transient failures, Section IV-C) ----------------------
    #
    # A *crashed* node differs from a *removed* one: it stays in the
    # overlay's routing state (lookups still resolve to it) but cannot
    # serve requests until it recovers.  This is the window in which the
    # storage layer's replica failover and the engine's retries must
    # carry the load.  The state lives here so every substrate exposes
    # ``fail_node`` / ``recover_node`` / ``is_alive`` consistently.

    @property
    def _crashed_nodes(self) -> set[NodeId]:
        crashed = self.__dict__.get("_crashed_node_set")
        if crashed is None:
            crashed = self.__dict__["_crashed_node_set"] = set()
        return crashed

    def fail_node(self, node: NodeId) -> None:
        """Mark a member node crashed (it stays in the overlay)."""
        if node not in self:
            raise KeyError(f"node id {node} not in the overlay")
        self._crashed_nodes.add(node)

    def recover_node(self, node: NodeId) -> None:
        """Bring a crashed node back up (no-op when it is not crashed)."""
        self._crashed_nodes.discard(node)

    def is_alive(self, node: NodeId) -> bool:
        """True for overlay members that are not currently crashed."""
        if node in self._crashed_nodes:
            return False
        return node in self

    @property
    def failed_nodes(self) -> set[NodeId]:
        """Crashed nodes that are still overlay members."""
        crashed = self._crashed_nodes
        if not crashed:
            return set()
        return crashed & set(self.node_ids)

    # -- membership versioning ----------------------------------------------
    #
    # Layers above the substrate (storage replica placement, service
    # registration) cache derived views of the membership -- the sorted
    # ring, node -> position maps -- that are only invalidated by joins
    # and leaves, never by lookups.  Every substrate bumps this counter
    # from ``add_node``/``remove_node`` so those caches can key on it
    # instead of re-deriving O(N) state per operation.

    @property
    def membership_version(self) -> int:
        """Counter incremented by every join or leave."""
        return self.__dict__.get("_membership_version", 0)

    def _bump_membership(self) -> None:
        self.__dict__["_membership_version"] = self.membership_version + 1

    # -- common helpers ------------------------------------------------------

    def __len__(self) -> int:
        return len(self.node_ids)

    def __contains__(self, node: NodeId) -> bool:
        # Fallback only: every substrate overrides this with an O(1) or
        # O(log N) check against its own membership structure (this copy
        # plus set build is O(N) per call and sits under ``is_alive``,
        # which storage reads invoke per replica probe).
        return node in set(self.node_ids)

    def lookup_many(self, keys: list[int]) -> list[LookupResult]:
        """Resolve a batch of keys (convenience for bulk placement)."""
        return [self.lookup(key) for key in keys]
