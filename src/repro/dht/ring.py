"""Ideal consistent-hashing ring: the paper's substrate abstraction.

Section V-A: "we simply assume that the underlying DHT is able to find a
node n responsible for a given key k".  The ideal ring implements exactly
that assumption -- each key is owned by its clockwise successor node, and
resolution is a single hop -- making it the reference substrate for all
headline experiments, while Chord and Kademlia substantiate the layering
claim in the ablation.
"""

from __future__ import annotations

import bisect

from repro.dht.base import DHTProtocol, LookupResult, NodeId
from repro.dht.idspace import DEFAULT_BITS, IdSpace


class IdealRing(DHTProtocol):
    """Consistent hashing with global knowledge (one-hop resolution)."""

    def __init__(self, bits: int = DEFAULT_BITS) -> None:
        self.space = IdSpace(bits)
        self._nodes: list[NodeId] = []  # kept sorted

    @classmethod
    def bulk_build(cls, node_ids: list[NodeId], bits: int = DEFAULT_BITS) -> "IdealRing":
        """Construct a ring from a full membership in one O(N log N) pass.

        Identical to N ``add_node`` calls, without the O(N^2) pointer
        shuffling of inserting into a sorted list at random positions --
        the difference between instant and several seconds at 10^5 nodes.
        """
        ring = cls(bits)
        ordered = sorted(set(node_ids))
        if len(ordered) != len(node_ids):
            raise ValueError("duplicate node ids")
        for node_id in ordered:
            if not ring.space.contains(node_id):
                raise ValueError(f"node id {node_id} outside the identifier space")
        ring._nodes = ordered
        ring._bump_membership()
        return ring

    @property
    def bits(self) -> int:
        return self.space.bits

    @property
    def node_ids(self) -> list[NodeId]:
        return list(self._nodes)

    def __contains__(self, node: NodeId) -> bool:
        nodes = self._nodes
        index = bisect.bisect_left(nodes, node)
        return index < len(nodes) and nodes[index] == node

    def add_node(self, node: NodeId) -> None:
        """Insert a node into the sorted ring."""
        if not self.space.contains(node):
            raise ValueError(f"node id {node} outside the identifier space")
        index = bisect.bisect_left(self._nodes, node)
        if index < len(self._nodes) and self._nodes[index] == node:
            raise ValueError(f"node id {node} already present")
        self._nodes.insert(index, node)
        self._bump_membership()

    def remove_node(self, node: NodeId) -> None:
        """Remove a node from the ring."""
        index = bisect.bisect_left(self._nodes, node)
        if index >= len(self._nodes) or self._nodes[index] != node:
            raise KeyError(f"node id {node} not present")
        self._nodes.pop(index)
        self._bump_membership()

    def successor(self, key: int) -> NodeId:
        """The first node at or clockwise after ``key``."""
        if not self._nodes:
            raise RuntimeError("ring has no nodes")
        index = bisect.bisect_left(self._nodes, key)
        if index == len(self._nodes):
            index = 0
        return self._nodes[index]

    def lookup(self, key: int) -> LookupResult:
        """Resolve a key to its clockwise successor in one hop."""
        if not self.space.contains(key):
            raise ValueError(f"key {key} outside the identifier space")
        node = self.successor(key)
        return LookupResult(key=key, node=node, hops=1, path=(node,))
