"""Ideal consistent-hashing ring: the paper's substrate abstraction.

Section V-A: "we simply assume that the underlying DHT is able to find a
node n responsible for a given key k".  The ideal ring implements exactly
that assumption -- each key is owned by its clockwise successor node, and
resolution is a single hop -- making it the reference substrate for all
headline experiments, while Chord and Kademlia substantiate the layering
claim in the ablation.
"""

from __future__ import annotations

import bisect

from repro.dht.base import DHTProtocol, LookupResult, NodeId
from repro.dht.idspace import DEFAULT_BITS, IdSpace


class IdealRing(DHTProtocol):
    """Consistent hashing with global knowledge (one-hop resolution)."""

    def __init__(self, bits: int = DEFAULT_BITS) -> None:
        self.space = IdSpace(bits)
        self._nodes: list[NodeId] = []  # kept sorted

    @property
    def bits(self) -> int:
        return self.space.bits

    @property
    def node_ids(self) -> list[NodeId]:
        return list(self._nodes)

    def add_node(self, node: NodeId) -> None:
        """Insert a node into the sorted ring."""
        if not self.space.contains(node):
            raise ValueError(f"node id {node} outside the identifier space")
        index = bisect.bisect_left(self._nodes, node)
        if index < len(self._nodes) and self._nodes[index] == node:
            raise ValueError(f"node id {node} already present")
        self._nodes.insert(index, node)

    def remove_node(self, node: NodeId) -> None:
        """Remove a node from the ring."""
        index = bisect.bisect_left(self._nodes, node)
        if index >= len(self._nodes) or self._nodes[index] != node:
            raise KeyError(f"node id {node} not present")
        self._nodes.pop(index)

    def successor(self, key: int) -> NodeId:
        """The first node at or clockwise after ``key``."""
        if not self._nodes:
            raise RuntimeError("ring has no nodes")
        index = bisect.bisect_left(self._nodes, key)
        if index == len(self._nodes):
            index = 0
        return self._nodes[index]

    def lookup(self, key: int) -> LookupResult:
        """Resolve a key to its clockwise successor in one hop."""
        if not self.space.contains(key):
            raise ValueError(f"key {key} outside the identifier space")
        node = self.successor(key)
        return LookupResult(key=key, node=node, hops=1, path=(node,))
