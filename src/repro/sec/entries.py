"""Publisher-signed index entries: content authentication for answers.

Transport signatures (the version-2 frames of :mod:`repro.rpc.codec`)
authenticate the *channel*: they prove which keypair produced a frame
and that nothing altered it in transit.  They are powerless against the
Byzantine threat this repo's adversarial model centres on -- a node
that participates in the protocol but lies about its state signs its
forged answer with its own perfectly valid key and passes every
transport check.  Catching that lie requires authenticating the
*content* of the answer, independently of whoever relayed it:

- **index entries** are attested by their publisher at insert time: the
  stored value carries the publisher's public key and an ed25519
  signature over ``(index key, entry)``, so a responding node can
  neither fabricate entries (it holds no trusted publisher key) nor
  replay a real entry under a different index key (the key is inside
  the signed span);
- **file descriptors** are content-addressed (the descriptor *is* the
  most-specific-query hash the lookup asked for), so forged content is
  detected by recomputing the hash over what was actually fetched.

Verification is membership-based, never self-referential: the verifier
accepts only publishers whose public keys it already trusts.  An
attestation whose embedded key were trusted *by virtue of being
embedded* would prove nothing -- the forger would simply sign its
garbage with a fresh key of its own.

What attestation does **not** provide: it cannot force a node to
answer.  A malicious replica that *withholds* entries returns a
perfectly valid (empty) answer; the defence against withholding is
replication plus cross-replica second opinions (see
``IndexService.query_key``), not signatures.  Nor does authenticity
imply truth -- a trusted publisher can publish nonsense; attestation
only removes the ability of other nodes to put words in its mouth.

Wire form: an attested entry is one payload string,
``entry <US> pubkey-hex <US> signature-hex`` with ``<US>`` the ASCII
unit separator (0x1f), a byte that cannot appear in canonical keys.
The attested string travels and is stored in place of the raw entry,
so the byte cost of attestation is metered like any other payload.
"""

from __future__ import annotations

from typing import Collection, Optional, Union

from repro.perf import counters
from repro.sec.identity import (
    PUBLIC_KEY_BYTES,
    SIGNATURE_BYTES,
    NodeIdentity,
    verify_signature,
)

#: Field separator inside an attested entry (ASCII unit separator).
#: Canonical keys and entries are printable text and never contain it.
ATTEST_SEP = "\x1f"

#: Domain-separation prefix of the signed span, so an entry signature
#: can never be confused with a frame signature over the same bytes.
_SPAN_PREFIX = b"repro.sec.entry\x00"


def _signed_span(key: str, entry: str) -> bytes:
    """The byte span an entry attestation signs: domain prefix, the
    index key the entry is filed under, and the entry itself.  Binding
    the key prevents replaying a real attested entry under a different
    query."""
    return (
        _SPAN_PREFIX
        + key.encode("utf-8")
        + b"\x00"
        + entry.encode("utf-8")
    )


def attest_entry(key: str, entry: str, identity: NodeIdentity) -> str:
    """Attest ``entry`` (filed under index ``key``) as ``identity``.

    Returns the attested wire/storage form.  Deterministic: ed25519 is
    a deterministic signature scheme, so the same publisher attesting
    the same mapping always produces the same string (which is what
    lets deletion recompute and remove the stored value).
    """
    if ATTEST_SEP in key or ATTEST_SEP in entry:
        raise ValueError("keys and entries cannot contain the attest separator")
    signature = identity.sign(_signed_span(key, entry))
    return (
        entry
        + ATTEST_SEP
        + identity.public_key.hex()
        + ATTEST_SEP
        + signature.hex()
    )


def is_attested(value: str) -> bool:
    """True when ``value`` has the structural shape of an attested entry."""
    return ATTEST_SEP in value


def split_attested(value: str) -> Optional[tuple[str, bytes, bytes]]:
    """Split an attested entry into ``(entry, public_key, signature)``.

    Returns ``None`` for anything structurally malformed (wrong field
    count, non-hex, wrong lengths) -- a wire payload is attacker
    input, so this never raises.
    """
    parts = value.split(ATTEST_SEP)
    if len(parts) != 3:
        return None
    entry, pub_hex, sig_hex = parts
    try:
        public_key = bytes.fromhex(pub_hex)
        signature = bytes.fromhex(sig_hex)
    except ValueError:
        return None
    if len(public_key) != PUBLIC_KEY_BYTES or len(signature) != SIGNATURE_BYTES:
        return None
    return entry, public_key, signature


def verify_entry(
    key: str,
    value: str,
    trusted_publishers: Union[Collection[bytes], frozenset],
) -> Optional[str]:
    """Verify one answer payload string against the trusted publishers.

    Returns the raw entry when ``value`` is a well-formed attestation
    by a publisher in ``trusted_publishers`` over ``(key, entry)``;
    returns ``None`` -- and counts ``sec_entry_verify_failures`` -- for
    everything else: unattested strings, malformed attestations,
    untrusted publisher keys, and signatures that do not verify.
    """
    parsed = split_attested(value)
    if parsed is None:
        counters.sec_entry_verify_failures += 1
        return None
    entry, public_key, signature = parsed
    if public_key not in trusted_publishers:
        counters.sec_entry_verify_failures += 1
        return None
    if not verify_signature(public_key, _signed_span(key, entry), signature):
        counters.sec_entry_verify_failures += 1
        return None
    return entry
