"""Pure-python ed25519 (RFC 8032) fallback backend.

Used only when the ``cryptography`` package is unavailable, so that
signed frames work in every container the suite runs in.  The point
arithmetic uses extended homogeneous coordinates; speed is a few
milliseconds per operation, which is fine for the small message counts
the tests and the loopback smoke push through it.  This is a reference
implementation, not a hardened one: it makes no constant-time claims.
"""

from __future__ import annotations

import hashlib

_P = 2**255 - 19
_L = 2**252 + 27742317777372353535851937790883648493
_D = (-121665 * pow(121666, _P - 2, _P)) % _P
_I = pow(2, (_P - 1) // 4, _P)

_IDENTITY = (0, 1, 1, 0)


def _sha512(data: bytes) -> bytes:
    return hashlib.sha512(data).digest()


def _recover_x(y: int, sign: int) -> int:
    xx = (y * y - 1) * pow(_D * y * y + 1, _P - 2, _P) % _P
    x = pow(xx, (_P + 3) // 8, _P)
    if (x * x - xx) % _P != 0:
        x = x * _I % _P
    if (x * x - xx) % _P != 0:
        raise ValueError("point not on curve")
    if x % 2 != sign:
        x = _P - x
    return x


_BY = 4 * pow(5, _P - 2, _P) % _P
_BX = _recover_x(_BY, 0)
_B = (_BX, _BY, 1, _BX * _BY % _P)


def _add(p: tuple[int, int, int, int], q: tuple[int, int, int, int]) -> tuple[int, int, int, int]:
    x1, y1, z1, t1 = p
    x2, y2, z2, t2 = q
    a = (y1 - x1) * (y2 - x2) % _P
    b = (y1 + x1) * (y2 + x2) % _P
    c = 2 * t1 * t2 * _D % _P
    d = 2 * z1 * z2 % _P
    e = b - a
    f = d - c
    g = d + c
    h = b + a
    return (e * f % _P, g * h % _P, f * g % _P, e * h % _P)


def _scalar_mult(p: tuple[int, int, int, int], e: int) -> tuple[int, int, int, int]:
    q = _IDENTITY
    while e:
        if e & 1:
            q = _add(q, p)
        p = _add(p, p)
        e >>= 1
    return q


def _encode_point(p: tuple[int, int, int, int]) -> bytes:
    x, y, z, _ = p
    inv_z = pow(z, _P - 2, _P)
    x = x * inv_z % _P
    y = y * inv_z % _P
    return (y | ((x & 1) << 255)).to_bytes(32, "little")


def _decode_point(data: bytes) -> tuple[int, int, int, int]:
    if len(data) != 32:
        raise ValueError("point must be 32 bytes")
    raw = int.from_bytes(data, "little")
    sign = raw >> 255
    y = raw & ((1 << 255) - 1)
    if y >= _P:
        raise ValueError("point coordinate out of range")
    x = _recover_x(y, sign)
    return (x, y, 1, x * y % _P)


def _clamp(digest: bytes) -> int:
    a = int.from_bytes(digest[:32], "little")
    a &= (1 << 254) - 8
    a |= 1 << 254
    return a


def public_key(seed: bytes) -> bytes:
    """Derive the 32-byte public key from a 32-byte private seed."""
    if len(seed) != 32:
        raise ValueError("seed must be 32 bytes")
    a = _clamp(_sha512(seed))
    return _encode_point(_scalar_mult(_B, a))


def sign(seed: bytes, message: bytes) -> bytes:
    """Produce the 64-byte RFC 8032 signature of ``message``."""
    digest = _sha512(seed)
    a = _clamp(digest)
    prefix = digest[32:]
    pub = _encode_point(_scalar_mult(_B, a))
    r = int.from_bytes(_sha512(prefix + message), "little") % _L
    r_point = _encode_point(_scalar_mult(_B, r))
    h = int.from_bytes(_sha512(r_point + pub + message), "little") % _L
    s = (r + h * a) % _L
    return r_point + s.to_bytes(32, "little")


def verify(pub: bytes, message: bytes, signature: bytes) -> bool:
    """Check a signature; returns False on any malformed input."""
    if len(pub) != 32 or len(signature) != 64:
        return False
    try:
        a_point = _decode_point(pub)
        r_point = _decode_point(signature[:32])
    except ValueError:
        return False
    s = int.from_bytes(signature[32:], "little")
    if s >= _L:
        return False
    h = int.from_bytes(_sha512(signature[:32] + pub + message), "little") % _L
    left = _scalar_mult(_B, s)
    right = _add(r_point, _scalar_mult(a_point, h))
    return _encode_point(left) == _encode_point(right)
