"""Per-peer trust ledger.

Scores live in [0, 1] and start at 1.0 (trust until proven otherwise).
Failures multiply the score down -- signature failures hardest,
contradicted answers next, timeouts lightly -- and successful exchanges
recover it additively, so a peer that was briefly eclipsed earns its
way back while a persistent forger stays pinned near zero.  The index
service uses :meth:`prioritize` to try trusted replicas first during
failover; ordering within each trust class is preserved, so runs with a
fully trusted population are order-identical to runs without a ledger.

All arithmetic is deterministic (no draws, no wall clock), which keeps
adversarial experiment cells bit-reproducible under a fixed seed.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

VERIFY_FAILURE_FACTOR = 0.25
CONTRADICTION_FACTOR = 0.5
TIMEOUT_FACTOR = 0.9
SUCCESS_RECOVERY = 0.02
DEFAULT_THRESHOLD = 0.5


class TrustLedger:
    """Tracks per-peer trust scores keyed by endpoint name."""

    __slots__ = ("threshold", "_scores", "updates")

    def __init__(self, threshold: float = DEFAULT_THRESHOLD):
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be in [0, 1]")
        self.threshold = threshold
        self._scores: Dict[str, float] = {}
        self.updates = 0

    # -- recording ---------------------------------------------------

    def _scale(self, peer: str, factor: float) -> float:
        score = self._scores.get(peer, 1.0) * factor
        self._scores[peer] = score
        self.updates += 1
        return score

    def record_verify_failure(self, peer: str) -> float:
        """A frame from ``peer`` failed signature verification."""
        return self._scale(peer, VERIFY_FAILURE_FACTOR)

    def record_contradiction(self, peer: str) -> float:
        """``peer`` gave an answer contradicted by a later exchange."""
        return self._scale(peer, CONTRADICTION_FACTOR)

    def record_timeout(self, peer: str) -> float:
        """``peer`` dropped or timed out on an exchange."""
        return self._scale(peer, TIMEOUT_FACTOR)

    def record_success(self, peer: str) -> float:
        score = self._scores.get(peer, 1.0)
        if score >= 1.0:
            return score
        score = min(1.0, score + SUCCESS_RECOVERY)
        self._scores[peer] = score
        self.updates += 1
        return score

    # -- queries -----------------------------------------------------

    def score(self, peer: str) -> float:
        return self._scores.get(peer, 1.0)

    def is_trusted(self, peer: str) -> bool:
        return self.score(peer) >= self.threshold

    def prioritize(self, peers: Sequence[str]) -> List[str]:
        """Stable partition: trusted peers first, order preserved."""
        if not self._scores:
            return list(peers)
        trusted = [p for p in peers if self.is_trusted(p)]
        if len(trusted) == len(peers):
            return list(peers)
        flagged = [p for p in peers if not self.is_trusted(p)]
        return trusted + flagged

    def flagged(self) -> List[str]:
        """Peers currently below the trust threshold, sorted by name."""
        return sorted(p for p, s in self._scores.items() if s < self.threshold)

    def known_peers(self) -> Iterable[str]:
        return self._scores.keys()

    def __len__(self) -> int:
        return len(self._scores)
