"""Node identities: ed25519 keypairs and pubkey-derived node ids.

Backend selection is automatic: the ``cryptography`` package when it is
importable, otherwise the pure-python RFC 8032 implementation in
``repro.sec.ed25519``.  Both produce interoperable keys and signatures
(same seed -> same public key -> same signature bytes), so an identity
written on a box with ``cryptography`` verifies on a box without it.

Identities persist as a single ``identity.key`` file inside a node's
data directory (the durable-state path from the daemon), so a restarted
daemon keeps its node id.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path
from typing import Optional, Union

from repro.perf import counters
from repro.sec import ed25519 as _pure

SEED_BYTES = 32
PUBLIC_KEY_BYTES = 32
SIGNATURE_BYTES = 64

IDENTITY_FILENAME = "identity.key"

try:  # pragma: no cover - depends on the environment
    from cryptography.hazmat.primitives import serialization as _ser
    from cryptography.hazmat.primitives.asymmetric.ed25519 import (
        Ed25519PrivateKey as _CryptoPrivate,
    )
    from cryptography.hazmat.primitives.asymmetric.ed25519 import (
        Ed25519PublicKey as _CryptoPublic,
    )

    _HAVE_CRYPTOGRAPHY = True
except ImportError:  # pragma: no cover - depends on the environment
    _HAVE_CRYPTOGRAPHY = False


def _seed_from(seed: Union[bytes, int, str, None]) -> bytes:
    if seed is None:
        return os.urandom(SEED_BYTES)
    if isinstance(seed, bytes):
        if len(seed) != SEED_BYTES:
            raise ValueError(f"seed must be {SEED_BYTES} bytes, got {len(seed)}")
        return seed
    if isinstance(seed, int):
        return hashlib.sha256(b"repro.sec.seed:" + str(seed).encode("ascii")).digest()
    if isinstance(seed, str):
        return hashlib.sha256(b"repro.sec.seed:" + seed.encode("utf-8")).digest()
    raise TypeError(f"unsupported seed type: {type(seed).__name__}")


class NodeIdentity:
    """An ed25519 keypair plus the node id derived from its public key."""

    __slots__ = ("seed", "public_key", "backend", "_private")

    def __init__(self, seed: Union[bytes, int, str, None] = None, *, backend: Optional[str] = None):
        if backend is None:
            backend = "cryptography" if _HAVE_CRYPTOGRAPHY else "pure"
        if backend not in ("cryptography", "pure"):
            raise ValueError(f"unknown backend: {backend!r}")
        if backend == "cryptography" and not _HAVE_CRYPTOGRAPHY:
            raise ValueError("cryptography backend requested but not importable")
        self.seed = _seed_from(seed)
        self.backend = backend
        if backend == "cryptography":
            self._private = _CryptoPrivate.from_private_bytes(self.seed)
            self.public_key = self._private.public_key().public_bytes(
                _ser.Encoding.Raw, _ser.PublicFormat.Raw
            )
        else:
            self._private = None
            self.public_key = _pure.public_key(self.seed)

    @classmethod
    def generate(cls, seed: Union[bytes, int, str, None] = None) -> "NodeIdentity":
        return cls(seed)

    def sign(self, data: bytes) -> bytes:
        counters.sec_sign_calls += 1
        if self._private is not None:
            return self._private.sign(bytes(data))
        return _pure.sign(self.seed, bytes(data))

    def node_id(self, bits: int = 64) -> int:
        """Derive a DHT node id from the public key hash."""
        if not 1 <= bits <= 256:
            raise ValueError("bits must be in [1, 256]")
        digest = hashlib.sha256(self.public_key).digest()
        return int.from_bytes(digest, "big") >> (256 - bits)

    # -- persistence -------------------------------------------------

    def save(self, directory: Union[str, Path]) -> Path:
        """Write the seed to ``<directory>/identity.key`` (0600).

        The file is *created* with mode 0600 (O_CREAT with the mode, not
        create-then-chmod), so the secret seed is never readable by
        other users, not even for the instant between the two calls.
        """
        path = Path(directory)
        path.mkdir(parents=True, exist_ok=True)
        key_path = path / IDENTITY_FILENAME
        fd = os.open(
            key_path, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o600
        )
        with os.fdopen(fd, "w", encoding="ascii") as handle:
            handle.write(self.seed.hex() + "\n")
        # A pre-existing file keeps its old mode under O_CREAT: clamp it.
        os.chmod(key_path, 0o600)
        return key_path

    @classmethod
    def load(cls, directory: Union[str, Path], *, backend: Optional[str] = None) -> "NodeIdentity":
        key_path = Path(directory) / IDENTITY_FILENAME
        text = key_path.read_text(encoding="ascii").strip()
        seed = bytes.fromhex(text)
        return cls(seed, backend=backend)

    @classmethod
    def load_or_create(
        cls, directory: Union[str, Path], *, backend: Optional[str] = None
    ) -> "NodeIdentity":
        key_path = Path(directory) / IDENTITY_FILENAME
        if key_path.exists():
            return cls.load(directory, backend=backend)
        identity = cls(backend=backend)
        identity.save(directory)
        return identity

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"NodeIdentity(pub={self.public_key.hex()[:16]}..., backend={self.backend})"


def verify_signature(public_key: bytes, data: bytes, signature: bytes) -> bool:
    """Verify ``signature`` over ``data``; never raises on bad input."""
    counters.sec_verify_calls += 1
    public_key = bytes(public_key)
    data = bytes(data)
    signature = bytes(signature)
    if len(public_key) != PUBLIC_KEY_BYTES or len(signature) != SIGNATURE_BYTES:
        return False
    if _HAVE_CRYPTOGRAPHY:
        try:
            _CryptoPublic.from_public_bytes(public_key).verify(signature, data)
            return True
        except Exception:
            return False
    return _pure.verify(public_key, data, signature)
