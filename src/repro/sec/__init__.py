"""Security layer: node identities, signed frames, and peer trust.

``repro.sec`` gives every node an ed25519 keypair (``NodeIdentity``),
derives DHT node ids from public keys, and keeps a per-peer
``TrustLedger`` that the index service consults to deprioritize
low-trust replicas during failover.  The wire-level half lives in
``repro.rpc.codec`` (the version-2 signed envelope); this package owns
the keys and the policy.
"""

from repro.sec.entries import (
    ATTEST_SEP,
    attest_entry,
    is_attested,
    split_attested,
    verify_entry,
)
from repro.sec.identity import (
    PUBLIC_KEY_BYTES,
    SEED_BYTES,
    SIGNATURE_BYTES,
    NodeIdentity,
    verify_signature,
)
from repro.sec.trust import TrustLedger

__all__ = [
    "ATTEST_SEP",
    "PUBLIC_KEY_BYTES",
    "SEED_BYTES",
    "SIGNATURE_BYTES",
    "NodeIdentity",
    "TrustLedger",
    "attest_entry",
    "is_attested",
    "split_attested",
    "verify_entry",
    "verify_signature",
]
