"""Semi-structured descriptors and the XPath query subset.

This package implements the data-description layer of the paper
(Section III-B):

- :mod:`repro.xmlq.element` -- a small XML element-tree model used for file
  *descriptors* (Figure 1 of the paper).
- :mod:`repro.xmlq.xmlparse` -- a miniature XML parser and serializer so
  descriptors can be read from and written to text.
- :mod:`repro.xmlq.lexer`, :mod:`repro.xmlq.xpparser`,
  :mod:`repro.xmlq.astnodes` -- lexer, parser, and AST for the XPath subset
  the paper uses for queries (location steps, predicates, ``*`` and ``//``).
- :mod:`repro.xmlq.evaluator` -- evaluates an XPath expression against a
  descriptor; a descriptor *matches* an expression when evaluation yields a
  non-empty node set.
- :mod:`repro.xmlq.pattern` -- tree-pattern form of queries, used to decide
  the *covering* relation (``q' ⊒ q``) and to build the partial-order graph
  of queries (Figure 3).
- :mod:`repro.xmlq.normalize` -- canonical normal form for equivalent XPath
  expressions (footnote 1 of the paper).
"""

from repro.xmlq.astnodes import Axis, Comparison, LocationPath, LocationStep, Predicate
from repro.xmlq.element import Element, element, text_element
from repro.xmlq.evaluator import evaluate, matches
from repro.xmlq.lexer import Token, TokenType, XPathLexError, tokenize
from repro.xmlq.normalize import clear_normalize_cache, normalize_xpath
from repro.xmlq.partial_order import PartialOrderGraph, QuerySetView
from repro.xmlq.pattern import (
    PatternEdge,
    PatternNode,
    TreePattern,
    clear_pattern_caches,
    covers,
    covers_uncached,
    descriptor_to_pattern,
    pattern_from_xpath,
)
from repro.xmlq.xmlparse import XMLParseError, parse_xml, serialize_xml
from repro.xmlq.xpparser import XPathParseError, parse_xpath

__all__ = [
    "Element",
    "element",
    "text_element",
    "XMLParseError",
    "parse_xml",
    "serialize_xml",
    "Token",
    "TokenType",
    "XPathLexError",
    "tokenize",
    "Axis",
    "Comparison",
    "LocationPath",
    "LocationStep",
    "Predicate",
    "XPathParseError",
    "parse_xpath",
    "evaluate",
    "matches",
    "PatternEdge",
    "PatternNode",
    "TreePattern",
    "clear_pattern_caches",
    "covers",
    "covers_uncached",
    "descriptor_to_pattern",
    "pattern_from_xpath",
    "clear_normalize_cache",
    "normalize_xpath",
    "PartialOrderGraph",
    "QuerySetView",
]
