"""Miniature XML parser and serializer for file descriptors.

Descriptors in the paper are small XML documents (Figure 1).  This module
parses exactly the subset those descriptors need -- nested elements with
text leaves -- without pulling in an external XML dependency.  Supported:

- start/end tags and self-closing tags,
- text content on leaf elements,
- the five predefined entities (``&amp;`` ``&lt;`` ``&gt;`` ``&quot;``
  ``&apos;``) plus numeric character references,
- comments and XML declarations (skipped),
- attributes are parsed and *rejected* with a clear error, since descriptor
  matching semantics in the paper are defined over elements and values only.

Whitespace-only text between elements is treated as formatting and dropped;
text inside a leaf element is preserved verbatim (then stripped, matching
how bibliographic archives like DBLP format values).
"""

from __future__ import annotations

import re

from repro.xmlq.element import Element


class XMLParseError(ValueError):
    """Raised when descriptor text is not well-formed for our subset."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position})")
        self.position = position


_ENTITY_MAP = {"amp": "&", "lt": "<", "gt": ">", "quot": '"', "apos": "'"}
_ENTITY_RE = re.compile(r"&(#x?[0-9A-Fa-f]+|[A-Za-z]+);")
_NAME_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_.\-]*")


def _decode_entities(text: str, base_position: int) -> str:
    def replace(match: re.Match[str]) -> str:
        body = match.group(1)
        if body.startswith("#x") or body.startswith("#X"):
            return chr(int(body[2:], 16))
        if body.startswith("#"):
            return chr(int(body[1:], 10))
        if body in _ENTITY_MAP:
            return _ENTITY_MAP[body]
        raise XMLParseError(
            f"unknown entity &{body};", base_position + match.start()
        )

    return _ENTITY_RE.sub(replace, text)


def _encode_entities(text: str) -> str:
    return (
        text.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
    )


class _Parser:
    """Single-pass recursive-descent parser over the document string."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.position = 0

    def parse_document(self) -> Element:
        self._skip_misc()
        root = self._parse_element()
        self._skip_misc()
        if self.position != len(self.source):
            raise XMLParseError("trailing content after root element", self.position)
        return root

    def _skip_misc(self) -> None:
        """Skip whitespace, comments, and processing/declaration blocks."""
        while self.position < len(self.source):
            remaining = self.source[self.position :]
            if remaining[0].isspace():
                self.position += 1
            elif remaining.startswith("<!--"):
                end = self.source.find("-->", self.position + 4)
                if end < 0:
                    raise XMLParseError("unterminated comment", self.position)
                self.position = end + 3
            elif remaining.startswith("<?"):
                end = self.source.find("?>", self.position + 2)
                if end < 0:
                    raise XMLParseError("unterminated declaration", self.position)
                self.position = end + 2
            elif remaining.startswith("<!DOCTYPE"):
                end = self.source.find(">", self.position)
                if end < 0:
                    raise XMLParseError("unterminated DOCTYPE", self.position)
                self.position = end + 1
            else:
                return

    def _parse_element(self) -> Element:
        if not self._peek_is("<"):
            raise XMLParseError("expected start tag", self.position)
        self.position += 1
        tag = self._parse_name()
        self._skip_whitespace()
        if not self._peek_is(">") and not self._peek_is("/"):
            raise XMLParseError(
                f"attributes are not supported in descriptors (element <{tag}>)",
                self.position,
            )
        if self._peek_is("/"):
            self.position += 1
            self._expect(">")
            return Element(tag)
        self._expect(">")

        children: list[Element] = []
        text_parts: list[str] = []
        while True:
            if self.position >= len(self.source):
                raise XMLParseError(f"unterminated element <{tag}>", self.position)
            if self.source.startswith("</", self.position):
                self.position += 2
                close_tag = self._parse_name()
                self._skip_whitespace()
                self._expect(">")
                if close_tag != tag:
                    raise XMLParseError(
                        f"mismatched closing tag </{close_tag}> for <{tag}>",
                        self.position,
                    )
                break
            if self.source.startswith("<!--", self.position):
                end = self.source.find("-->", self.position + 4)
                if end < 0:
                    raise XMLParseError("unterminated comment", self.position)
                self.position = end + 3
                continue
            if self._peek_is("<"):
                children.append(self._parse_element())
                continue
            start = self.position
            next_tag = self.source.find("<", self.position)
            if next_tag < 0:
                raise XMLParseError(f"unterminated element <{tag}>", self.position)
            raw = self.source[start:next_tag]
            text_parts.append(_decode_entities(raw, start))
            self.position = next_tag

        text = "".join(text_parts)
        if children:
            if text.strip():
                raise XMLParseError(
                    f"mixed content in <{tag}> is not supported", self.position
                )
            return Element(tag, children=children)
        stripped = text.strip()
        if stripped:
            return Element(tag, text=stripped)
        return Element(tag)

    def _parse_name(self) -> str:
        match = _NAME_RE.match(self.source, self.position)
        if match is None:
            raise XMLParseError("expected a name", self.position)
        self.position = match.end()
        return match.group(0)

    def _skip_whitespace(self) -> None:
        while self.position < len(self.source) and self.source[self.position].isspace():
            self.position += 1

    def _peek_is(self, char: str) -> bool:
        return self.source.startswith(char, self.position)

    def _expect(self, char: str) -> None:
        if not self._peek_is(char):
            raise XMLParseError(f"expected {char!r}", self.position)
        self.position += len(char)


def parse_xml(source: str) -> Element:
    """Parse descriptor text into an :class:`Element` tree.

    Raises :class:`XMLParseError` on malformed input or on XML features
    outside the descriptor subset (attributes, mixed content).
    """
    return _Parser(source).parse_document()


def serialize_xml(root: Element, indent: int = 0) -> str:
    """Serialize an element tree back to descriptor text.

    With ``indent > 0`` the output is pretty-printed with that many spaces
    per nesting level; with ``indent == 0`` the output is compact and
    round-trips exactly through :func:`parse_xml`.
    """
    pieces: list[str] = []
    _serialize_into(root, pieces, indent, 0)
    return "".join(pieces)


def _serialize_into(
    node: Element, pieces: list[str], indent: int, level: int
) -> None:
    pad = " " * (indent * level) if indent else ""
    newline = "\n" if indent else ""
    if node.text is not None:
        pieces.append(
            f"{pad}<{node.tag}>{_encode_entities(node.text)}</{node.tag}>{newline}"
        )
    elif node.is_leaf:
        pieces.append(f"{pad}<{node.tag}/>{newline}")
    else:
        pieces.append(f"{pad}<{node.tag}>{newline}")
        for child in node.children:
            _serialize_into(child, pieces, indent, level + 1)
        pieces.append(f"{pad}</{node.tag}>{newline}")
