"""Evaluation of the XPath query subset against descriptor trees.

A descriptor *matches* an XPath expression when evaluating the expression
on the descriptor yields a non-empty node set (Section III-B of the paper).

Two kinds of node can appear in a node set:

- :class:`repro.xmlq.element.Element` nodes, selected by name tests on
  element tags, and
- :class:`ValueNode` wrappers, selected when a bare word in the path equals
  the *text value* of a leaf element.  This implements the paper's query
  notation in which values appear as trailing path components
  (e.g. ``/article/title/TCP`` selects the value ``TCP`` of the ``title``
  element).

Comparison predicates (``[year>=1990]``) compare numerically when both
sides parse as numbers and lexically otherwise, following XPath 1.0's loose
typing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.xmlq.astnodes import Axis, Comparison, LocationPath, LocationStep, Predicate
from repro.xmlq.element import Element
from repro.xmlq.xpparser import parse_xpath


@dataclass(frozen=True)
class ValueNode:
    """A text value selected as if it were a child node of its element."""

    parent: Element
    value: str


Node = Union[Element, ValueNode]


def evaluate(expression: Union[str, LocationPath], descriptor: Element) -> list[Node]:
    """Evaluate an XPath expression against a descriptor tree.

    ``expression`` may be a source string or a pre-parsed
    :class:`LocationPath`.  Returns the selected node set (possibly empty),
    deduplicated but in stable document order.
    """
    path = parse_xpath(expression) if isinstance(expression, str) else expression
    if not path.absolute:
        raise ValueError("top-level evaluation requires an absolute path")
    context: list[Node] = [_VirtualRoot(descriptor)]
    return _evaluate_steps(path.steps, context)


def matches(descriptor: Element, expression: Union[str, LocationPath]) -> bool:
    """True when the descriptor matches the expression (non-empty result)."""
    return bool(evaluate(expression, descriptor))


@dataclass(frozen=True)
class _VirtualRoot:
    """Synthetic parent of the document root, so absolute paths can test
    the root element's name like any other step."""

    root: Element


def _evaluate_steps(
    steps: tuple[LocationStep, ...], context: list[Node]
) -> list[Node]:
    current = context
    for step in steps:
        selected: list[Node] = []
        seen: set[int] = set()
        for node in current:
            for candidate in _step_candidates(node, step):
                marker = id(candidate)
                if marker in seen:
                    continue
                if _predicates_hold(candidate, step.predicates):
                    seen.add(marker)
                    selected.append(candidate)
        current = selected
        if not current:
            break
    return current


def _step_candidates(node: Node, step: LocationStep) -> list[Node]:
    if isinstance(node, ValueNode):
        return []
    if isinstance(node, _VirtualRoot):
        if step.axis is Axis.CHILD:
            return _filter_by_name([node.root], step)
        selected = _filter_by_name(list(node.root.iter()), step)
        if not step.is_wildcard:
            for descendant in node.root.iter():
                if descendant.text is not None and descendant.text == step.name:
                    selected.append(ValueNode(descendant, descendant.text))
        return selected
    if step.axis is Axis.CHILD:
        return _filter_by_name(list(node.children), step, parent=node)
    # Descendant axis: all strict descendants, plus value nodes anywhere
    # below (including on this node itself is excluded -- '//' selects
    # descendants of the context node).
    candidates: list[Node] = []
    for descendant in node.descendants():
        candidates.append(descendant)
    filtered = _filter_by_name(
        [c for c in candidates if isinstance(c, Element)], step
    )
    if not step.is_wildcard:
        for descendant in node.descendants():
            if descendant.text is not None and descendant.text == step.name:
                filtered.append(ValueNode(descendant, descendant.text))
    return filtered


def _filter_by_name(
    elements: list[Element], step: LocationStep, parent: Optional[Element] = None
) -> list[Node]:
    if step.is_wildcard:
        return list(elements)
    selected: list[Node] = [e for e in elements if e.tag == step.name]
    # A bare word can also select the text value of the context element,
    # implementing the paper's value-as-step notation.
    if (
        parent is not None
        and parent.text is not None
        and parent.text == step.name
    ):
        selected.append(ValueNode(parent, parent.text))
    return selected


def _predicates_hold(node: Node, predicates: tuple[Predicate, ...]) -> bool:
    for predicate in predicates:
        if not _predicate_holds(node, predicate):
            return False
    return True


def _predicate_holds(node: Node, predicate: Predicate) -> bool:
    if isinstance(node, ValueNode):
        # Values have no substructure; only a degenerate predicate that
        # re-tests the value itself could hold, which the grammar does not
        # produce, so any predicate on a value node fails.
        return False
    selected = _evaluate_steps(predicate.path.steps, [node])
    if predicate.comparison is None:
        return bool(selected)
    return any(
        _comparison_holds(_string_value(sel), predicate.comparison)
        for sel in selected
    )


def _string_value(node: Node) -> str:
    if isinstance(node, ValueNode):
        return node.value
    if node.text is not None:
        return node.text
    # XPath string value of an element: concatenation of descendant text.
    return "".join(
        descendant.text for descendant in node.iter() if descendant.text is not None
    )


def _comparison_holds(value: str, comparison: Comparison) -> bool:
    left_num = _as_number(value)
    right_num = _as_number(comparison.value)
    if left_num is not None and right_num is not None:
        left: Union[float, str] = left_num
        right: Union[float, str] = right_num
    else:
        left, right = value, comparison.value
    op = comparison.op
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right  # type: ignore[operator]
    if op == "<=":
        return left <= right  # type: ignore[operator]
    if op == ">":
        return left > right  # type: ignore[operator]
    return left >= right  # type: ignore[operator]


def _as_number(text: str) -> Optional[float]:
    try:
        return float(text)
    except ValueError:
        return None
